/**
 * @file
 * CPU timing models.
 *
 * A Cpu is an accounting object that application processes (tasks)
 * charge time against. It does not fetch/decode an ISA; instead the
 * workload models call:
 *
 *  - compute(instr): busy time at one instruction per cycle,
 *  - touch(addr, bytes, kind): memory-hierarchy stall time,
 *  - fetchCode(pc, bytes): instruction-side stall time,
 *
 * each returning an awaitable Delay so the calling task advances
 * simulated time. Busy, cache-stall and idle components are tracked
 * for the paper's execution-time breakdowns.
 *
 * Two concrete configurations exist:
 *  - HostCpu: 2 GHz, host memory hierarchy (32K/32K L1, 512K L2),
 *    up to 4 overlapped outstanding store/prefetch lines.
 *  - SwitchCpu: 500 MHz single-issue MIPS-like embedded core, 4 KB
 *    I$ / 1 KB D$, no L2, one outstanding request.
 */

#ifndef SAN_CPU_CPU_HH
#define SAN_CPU_CPU_HH

#include <cstdint>
#include <string>

#include "mem/MemorySystem.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace san::cpu {

/** Busy/stall/idle split of a CPU's time over a run. */
struct TimeBreakdown {
    sim::Tick busy = 0;
    sim::Tick stall = 0;
    sim::Tick total = 0;

    sim::Tick
    idle() const
    {
        const sim::Tick used = busy + stall;
        return total > used ? total - used : 0;
    }

    /** Paper metric: (1 - idle/total). */
    double
    utilization() const
    {
        if (total == 0)
            return 0.0;
        return static_cast<double>(busy + stall) /
               static_cast<double>(total);
    }
};

/** A single-issue CPU timing model bound to a memory hierarchy. */
class Cpu
{
  public:
    Cpu(sim::Simulation &sim, std::string name, sim::Frequency freq,
        const mem::MemorySystemParams &mem_params)
        : sim_(sim), name_(std::move(name)), freq_(freq), mem_(mem_params)
    {}

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    const std::string &name() const { return name_; }
    sim::Frequency frequency() const { return freq_; }
    mem::MemorySystem &memory() { return mem_; }
    /** Current simulated time (for batched memory simulations). */
    sim::Tick now() const { return sim_.now(); }

    /** Busy-execute @p instructions at one per cycle. */
    sim::Delay
    compute(std::uint64_t instructions)
    {
        const sim::Tick t = freq_.cycles(instructions);
        busy_ += t;
        return sim::Delay{t};
    }

    /** Charge a fixed amount of busy time (OS overheads etc). */
    sim::Delay
    busyFor(sim::Tick t)
    {
        busy_ += t;
        return sim::Delay{t};
    }

    /**
     * Charge precomputed stall time. Used when a workload batches
     * many memory-system simulations (e.g. per-record hash probes)
     * and awaits their combined cost once.
     */
    sim::Delay
    stallFor(sim::Tick t)
    {
        stall_ += t;
        return sim::Delay{t};
    }

    /** Data access through the hierarchy; stall time is charged. */
    sim::Delay
    touch(mem::Addr addr, std::uint64_t bytes, mem::AccessKind kind)
    {
        const sim::Tick t = mem_.dataAccess(addr, bytes, kind, sim_.now());
        stall_ += t;
        return sim::Delay{t};
    }

    /** Instruction-side access for a phase's code footprint. */
    sim::Delay
    fetchCode(mem::Addr pc, std::uint64_t bytes)
    {
        const sim::Tick t = mem_.instFetch(pc, bytes, sim_.now());
        stall_ += t;
        return sim::Delay{t};
    }

    /**
     * Convenience: compute + data touch in one awaitable, the usual
     * unit of work for processing one record/block.
     */
    sim::Delay
    exec(std::uint64_t instructions, mem::Addr addr, std::uint64_t bytes,
         mem::AccessKind kind)
    {
        const sim::Tick b = freq_.cycles(instructions);
        busy_ += b;
        const sim::Tick s =
            mem_.dataAccess(addr, bytes, kind, sim_.now() + b);
        stall_ += s;
        return sim::Delay{b + s};
    }

    /** Breakdown against a run that lasted @p total ticks. */
    TimeBreakdown
    breakdown(sim::Tick total) const
    {
        return TimeBreakdown{busy_, stall_, total};
    }

    sim::Tick busyTicks() const { return busy_; }
    sim::Tick stallTicks() const { return stall_; }

    /**
     * Register this CPU's per-interval busy / stall / idle fractions
     * (the paper's breakdown bars, as a timeline) under @p prefix.
     */
    void
    registerMetrics(obs::MetricsRegistry &m,
                    const std::string &prefix) const
    {
        m.add(prefix + ".busy", obs::GaugeKind::TimeShare,
              [this] { return static_cast<double>(busy_); });
        m.add(prefix + ".stall", obs::GaugeKind::TimeShare,
              [this] { return static_cast<double>(stall_); });
        m.add(prefix + ".idle", obs::GaugeKind::IdleShare,
              [this] { return static_cast<double>(busy_ + stall_); });
    }

    void
    resetAccounting()
    {
        busy_ = 0;
        stall_ = 0;
    }

  protected:
    sim::Simulation &sim_;
    std::string name_;
    sim::Frequency freq_;
    mem::MemorySystem mem_;
    sim::Tick busy_ = 0;
    sim::Tick stall_ = 0;
};

/** Paper host processor: 2 GHz with the host memory hierarchy. */
class HostCpu : public Cpu
{
  public:
    static constexpr std::uint64_t defaultHz = 2'000'000'000;

    HostCpu(sim::Simulation &sim, std::string name,
            const mem::MemorySystemParams &mem_params =
                mem::hostMemoryParams())
        : Cpu(sim, std::move(name), sim::Frequency(defaultHz), mem_params)
    {}
};

/**
 * Paper embedded switch processor: 500 MHz (a quarter of the host
 * clock), tiny caches, blocking misses.
 */
class SwitchCpu : public Cpu
{
  public:
    static constexpr std::uint64_t defaultHz = 500'000'000;

    SwitchCpu(sim::Simulation &sim, std::string name,
              const mem::MemorySystemParams &mem_params =
                  mem::switchMemoryParams(),
              std::uint64_t hz = defaultHz)
        : Cpu(sim, std::move(name), sim::Frequency(hz), mem_params)
    {}
};

} // namespace san::cpu

#endif // SAN_CPU_CPU_HH
