/**
 * @file
 * MD5 (paper §5 + "Multiple Switch Processors"): digest a 256 KB
 * input.
 *
 * MD5's block chaining prevents parallelism, so with one switch CPU
 * the active split *loses*: the embedded core runs at a quarter of
 * the host's clock and ends up doing all the work. The paper then
 * reformulates MD5 into K independent chains (block I belongs to
 * chain I mod K), digests each chain on its own switch CPU, and
 * digests the concatenated K digests on the host — recovering a
 * speedup with 2 and 4 switch CPUs (Figure 17).
 *
 * The semantic checksum uses the real MD5 implementation in
 * apps/Md5.hh over a deterministic pseudo-random input.
 */

#ifndef SAN_APPS_MD5_APP_HH
#define SAN_APPS_MD5_APP_HH

#include <cstdint>

#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for the MD5 benchmark. */
struct Md5Params {
    std::uint64_t fileBytes = 256 * 1024; //!< paper: 256 KB
    std::uint64_t blockBytes = 16 * 1024; //!< I/O request size
    unsigned switchCpus = 1;              //!< 1, 2 or 4
    std::uint64_t seed = 99;

    /** @{ Cost model. */
    std::uint64_t digestInstrPerByte = 20; //!< rounds per 64 B block
    std::uint64_t finalizeInstr = 3000;    //!< padding + final block
    std::uint64_t chunkOverheadInstr = 40;
    std::uint64_t handlerCodeBytes = 4096; //!< fills the 4 KB I$
    /** @} */
};

/** Run MD5 in one mode. checksum = interleaved digest (hex). */
RunStats runMd5(Mode mode, const Md5Params &params = {});

} // namespace san::apps

#endif // SAN_APPS_MD5_APP_HH
