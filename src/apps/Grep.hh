/**
 * @file
 * Grep (paper §5): search one file for lines matching a pattern.
 *
 * GNU Grep's three phases are: option parsing (host in all modes),
 * DFA construction, and the search loop. The active version runs the
 * latter two on the switch; only the 16 matching lines travel back
 * to the host. The workload mirrors the paper: a 1,146,880-byte file
 * with exactly 16 matching lines, searched for a fixed string with
 * 32 KB I/O requests.
 */

#ifndef SAN_APPS_GREP_HH
#define SAN_APPS_GREP_HH

#include <cstdint>

#include "apps/Cluster.hh"
#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for Grep. */
struct GrepParams {
    std::uint64_t fileBytes = 1146880;   //!< paper's input size
    std::uint64_t blockBytes = 32 * 1024; //!< I/O request size
    unsigned lineBytes = 70;             //!< 16384 lines exactly
    unsigned matchingLines = 16;

    /** @{ Cost model. */
    std::uint64_t dfaSetupInstr = 20000;   //!< build the DFA once
    std::uint64_t searchInstrPerByte = 4;  //!< DFA transition + loop
    std::uint64_t perMatchInstr = 200;     //!< record/emit a match
    std::uint64_t chunkOverheadInstr = 40;
    std::uint64_t dfaTableBytes = 3328;    //!< 13 states x 256
    std::uint64_t handlerCodeBytes = 3072;
    /** @} */

    /** System shape/hardware overrides (ablation studies). */
    ClusterParams cluster{};
};

/** Run Grep in one mode. checksum = "<lines>:<matched bytes>". */
RunStats runGrep(Mode mode, const GrepParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_GREP_HH
