/**
 * @file
 * Stateless deterministic hashing shared by host-side and switch-side
 * code so both compute identical per-record decisions (bit-vector
 * probes, match outcomes, destination nodes) without materializing
 * the data.
 */

#ifndef SAN_APPS_DET_HASH_HH
#define SAN_APPS_DET_HASH_HH

#include <cstdint>

namespace san::apps {

/** splitmix64-style avalanche of (seed, index). */
constexpr std::uint64_t
detHash(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed + index * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Deterministic Bernoulli trial with probability @p p. */
constexpr bool
detChance(std::uint64_t seed, std::uint64_t index, double p)
{
    return static_cast<double>(detHash(seed, index) >> 11) *
               0x1.0p-53 < p;
}

} // namespace san::apps

#endif // SAN_APPS_DET_HASH_HH
