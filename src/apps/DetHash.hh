/**
 * @file
 * Stateless deterministic hashing shared by host-side and switch-side
 * code so both compute identical per-record decisions (bit-vector
 * probes, match outcomes, destination nodes) without materializing
 * the data.
 */

#ifndef SAN_APPS_DET_HASH_HH
#define SAN_APPS_DET_HASH_HH

#include <cstdint>

namespace san::apps {

/** splitmix64-style avalanche of (seed, index). */
constexpr std::uint64_t
detHash(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed + index * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Deterministic Bernoulli trial with probability @p p. */
constexpr bool
detChance(std::uint64_t seed, std::uint64_t index, double p)
{
    return static_cast<double>(detHash(seed, index) >> 11) *
               0x1.0p-53 < p;
}

/**
 * 5-tuple connection hash: the two packed words of a
 * net::FiveTuple (src/dst IP in @p w0, ports + protocol in @p w1)
 * chained through detHash so both the host-side and switch-side load
 * balancer code derive bit-identical connection signatures. One
 * avalanche per word — cheap enough for the 500 MHz switch CPU —
 * and the result is the *only* flow identity the lb subsystem uses,
 * so a (vanishingly unlikely) 64-bit collision still yields a
 * consistent assignment everywhere.
 */
constexpr std::uint64_t
detTupleHash(std::uint64_t seed, std::uint64_t w0, std::uint64_t w1)
{
    return detHash(detHash(seed, w0), w1);
}

} // namespace san::apps

#endif // SAN_APPS_DET_HASH_HH
