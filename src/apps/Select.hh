/**
 * @file
 * Select: sequential range selection over a table (paper §5).
 *
 * Each 128-byte record carries an integer field checked against a
 * range. In the normal modes the host scans every record (streaming
 * the whole table through its scaled-down caches); in the active
 * modes the selection runs inside the switch on data-buffer contents
 * and only matching records (selectivity's worth) reach the host,
 * which merely counts them. The experiment uses the scaled host
 * caches (8 KB L1D / 64 KB L2) like HashJoin.
 */

#ifndef SAN_APPS_SELECT_HH
#define SAN_APPS_SELECT_HH

#include <cstdint>

#include "apps/Cluster.hh"
#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for Select. */
struct SelectParams {
    std::uint64_t tableBytes = 128ull * 1024 * 1024; //!< paper: 128 MB
    unsigned recordBytes = 128;
    double selectivity = 0.25;     //!< fraction of matching records
    std::uint64_t blockBytes = 64 * 1024; //!< I/O request size
    std::uint64_t seed = 12345;

    /** @{ Cost model (single-issue instructions). */
    std::uint64_t checkInstrPerRecord = 24; //!< load field + compare
    std::uint64_t countInstrPerMatch = 4;   //!< host-side tally
    std::uint64_t chunkOverheadInstr = 40;  //!< per-MTU handler loop
    std::uint64_t handlerCodeBytes = 1024;
    /** @} */

    /** System shape/hardware overrides (ablation studies). */
    ClusterParams cluster{};
};

/** Run Select in one mode. checksum = number of matching records. */
RunStats runSelect(Mode mode, const SelectParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_SELECT_HH
