#include "apps/Md5.hh"

#include <cstring>

namespace san::apps {

namespace {

constexpr std::uint32_t
leftRotate(std::uint32_t x, unsigned c)
{
    return (x << c) | (x >> (32 - c));
}

// Per-round shift amounts.
constexpr unsigned shifts[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// Binary integer parts of abs(sin(i+1)) * 2^32.
constexpr std::uint32_t sines[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void
writeLe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

} // namespace

void
Md5::reset()
{
    state_[0] = 0x67452301;
    state_[1] = 0xefcdab89;
    state_[2] = 0x98badcfe;
    state_[3] = 0x10325476;
    totalLen_ = 0;
    bufferLen_ = 0;
    blocks_ = 0;
}

void
Md5::compress(const std::uint8_t block[64])
{
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i)
        m[i] = readLe32(block + 4 * i);

    std::uint32_t a = state_[0], b = state_[1];
    std::uint32_t c = state_[2], d = state_[3];

    for (unsigned i = 0; i < 64; ++i) {
        std::uint32_t f;
        unsigned g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        const std::uint32_t tmp = d;
        d = c;
        c = b;
        b = b + leftRotate(a + f + sines[i] + m[g], shifts[i]);
        a = tmp;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    ++blocks_;
}

void
Md5::update(const std::uint8_t *data, std::size_t len)
{
    totalLen_ += len;
    while (len > 0) {
        if (bufferLen_ == 0 && len >= 64) {
            compress(data);
            data += 64;
            len -= 64;
            continue;
        }
        const std::size_t take = std::min<std::size_t>(64 - bufferLen_,
                                                       len);
        std::memcpy(buffer_ + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == 64) {
            compress(buffer_);
            bufferLen_ = 0;
        }
    }
}

Md5Digest
Md5::finish()
{
    const std::uint64_t bit_len = totalLen_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (bufferLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_bytes[8];
    writeLe32(len_bytes, static_cast<std::uint32_t>(bit_len));
    writeLe32(len_bytes + 4, static_cast<std::uint32_t>(bit_len >> 32));
    update(len_bytes, 8);

    Md5Digest out;
    for (int i = 0; i < 4; ++i)
        writeLe32(out.data() + 4 * i, state_[i]);
    return out;
}

Md5Digest
md5(const std::uint8_t *data, std::size_t len)
{
    Md5 ctx;
    ctx.update(data, len);
    return ctx.finish();
}

Md5Digest
md5(const std::vector<std::uint8_t> &data)
{
    return md5(data.data(), data.size());
}

Md5Digest
md5Interleaved(const std::vector<std::uint8_t> &data, unsigned k,
               std::size_t block_bytes)
{
    if (k == 0)
        k = 1;
    std::vector<Md5> chains(k);
    std::size_t off = 0;
    std::uint64_t block = 0;
    while (off < data.size()) {
        const std::size_t take =
            std::min(block_bytes, data.size() - off);
        chains[block % k].update(data.data() + off, take);
        off += take;
        ++block;
    }
    // The K digests themselves form a message, digested once more.
    std::vector<std::uint8_t> combined;
    combined.reserve(16 * k);
    for (auto &chain : chains) {
        const Md5Digest d = chain.finish();
        combined.insert(combined.end(), d.begin(), d.end());
    }
    return md5(combined);
}

std::string
toHex(const Md5Digest &digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (std::uint8_t b : digest) {
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xf]);
    }
    return out;
}

} // namespace san::apps
