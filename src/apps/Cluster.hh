/**
 * @file
 * Single-switch cluster builder used by most benchmarks: N hosts and
 * M storage nodes around one (active-capable) switch.
 */

#ifndef SAN_APPS_CLUSTER_HH
#define SAN_APPS_CLUSTER_HH

#include <memory>
#include <vector>

#include "active/ActiveSwitch.hh"
#include "apps/RunConfig.hh"
#include "host/Host.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"

namespace san::apps {

/** Cluster shape and component parameters. */
struct ClusterParams {
    unsigned hosts = 1;
    unsigned storageNodes = 1;
    unsigned switchPorts = 16;
    active::ActiveConfig active{};
    mem::MemorySystemParams hostMem = mem::hostMemoryParams();
    host::OsCostParams os{};
    io::StorageParams storage{};
    net::LinkParams link{};
    net::AdapterParams adapter{};
};

/**
 * One simulated system. The switch is always an ActiveSwitch; in the
 * normal modes no handlers are registered and no active messages are
 * sent, so it behaves exactly like a conventional switch.
 */
class Cluster
{
  public:
    explicit Cluster(const ClusterParams &params = {});

    sim::Simulation &sim() { return sim_; }
    net::Fabric &fabric() { return fabric_; }
    active::ActiveSwitch &sw() { return *sw_; }
    host::Host &host(unsigned i = 0) { return *hosts_.at(i); }
    io::StorageNode &storage(unsigned i = 0) { return *storage_.at(i); }
    unsigned hostCount() const
    {
        return static_cast<unsigned>(hosts_.size());
    }
    unsigned storageCount() const
    {
        return static_cast<unsigned>(storage_.size());
    }

    /** Run to completion and collect the paper's metrics. */
    RunStats collect(Mode mode);

  private:
    ClusterParams params_;
    sim::Simulation sim_;
    net::Fabric fabric_;
    active::ActiveSwitch *sw_ = nullptr;
    std::vector<std::unique_ptr<host::Host>> hosts_;
    std::vector<std::unique_ptr<io::StorageNode>> storage_;
};

} // namespace san::apps

#endif // SAN_APPS_CLUSTER_HH
