/**
 * @file
 * Single-switch cluster builder used by most benchmarks: N hosts and
 * M storage nodes around one (active-capable) switch.
 */

#ifndef SAN_APPS_CLUSTER_HH
#define SAN_APPS_CLUSTER_HH

#include <functional>
#include <memory>
#include <vector>

#include "active/ActiveSwitch.hh"
#include "apps/RunConfig.hh"
#include "host/Host.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "obs/Fingerprint.hh"
#include "sim/Simulation.hh"

namespace san::apps {

/** Cluster shape and component parameters. */
struct ClusterParams {
    unsigned hosts = 1;
    unsigned storageNodes = 1;
    unsigned switchPorts = 16;
    /**
     * Worker threads for the run. 1 (the default) is the historical
     * single-queue kernel, bit-identical to every golden. >1 shards
     * the cluster one-component-per-shard (switch, each HCA, each
     * TCA) under the conservative PDES kernel; fingerprints are then
     * stable across thread counts but differ from the single-thread
     * stream (see DESIGN.md §14).
     */
    unsigned threads = 1;
    active::ActiveConfig active{};
    mem::MemorySystemParams hostMem = mem::hostMemoryParams();
    host::OsCostParams os{};
    io::StorageParams storage{};
    net::LinkParams link{};
    net::AdapterParams adapter{};
};

/**
 * One simulated system. The switch is always an ActiveSwitch; in the
 * normal modes no handlers are registered and no active messages are
 * sent, so it behaves exactly like a conventional switch.
 */
class Cluster
{
  public:
    explicit Cluster(const ClusterParams &params = {});

    sim::Simulation &sim() { return sim_; }
    net::Fabric &fabric() { return fabric_; }
    active::ActiveSwitch &sw() { return *sw_; }
    host::Host &host(unsigned i = 0) { return *hosts_.at(i); }
    io::StorageNode &storage(unsigned i = 0) { return *storage_.at(i); }
    unsigned hostCount() const
    {
        return static_cast<unsigned>(hosts_.size());
    }
    unsigned storageCount() const
    {
        return static_cast<unsigned>(storage_.size());
    }

    /**
     * The run fingerprint, folded over every executed event since
     * construction (see obs::RunFingerprint). collect() folds the
     * end-of-run stat values on top and reports it in RunStats.
     */
    obs::RunFingerprint &fingerprint() { return fingerprint_; }

    /**
     * Spawn a task pinned to host @p i's shard (a plain spawn when
     * threads == 1). The per-figure run functions start their host
     * loops through this so the task's events land on the host's
     * logical process.
     */
    void spawnOnHost(unsigned i, sim::Task task);

    /** The shard plan in effect (default-constructed single-shard
     *  plan when threads == 1). */
    const net::ShardPlan &shardPlan() const { return plan_; }

    /** Run to completion and collect the paper's metrics. */
    RunStats collect(Mode mode);

  private:
    std::size_t hostShard(unsigned i);

    ClusterParams params_;
    sim::Simulation sim_;
    obs::RunFingerprint fingerprint_;
    obs::ShardedFingerprint shardedFp_;
    net::ShardPlan plan_;
    net::Fabric fabric_;
    active::ActiveSwitch *sw_ = nullptr;
    std::vector<std::unique_ptr<host::Host>> hosts_;
    std::vector<std::unique_ptr<io::StorageNode>> storage_;
};

/**
 * Hook called at the end of every Cluster::collect(), while the
 * cluster and its components are still alive. The bench driver and
 * the golden-stats tests use it to export machine-readable stats
 * from runs whose Cluster is otherwise an implementation detail of
 * the per-app run functions. Empty (default) means disabled.
 */
using ClusterObserver = std::function<void(Cluster &, Mode)>;
ClusterObserver &clusterObserver();

} // namespace san::apps

#endif // SAN_APPS_CLUSTER_HH
