#include "apps/MpegFilter.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "apps/Cluster.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

std::uint64_t
gopBytes(const MpegParams &p)
{
    return p.iFrameBytes + p.pFramesPerGop * p.pFrameBytes;
}

/** Overlap of [a0,a1) and [b0,b1). */
std::uint64_t
overlap(std::uint64_t a0, std::uint64_t a1, std::uint64_t b0,
        std::uint64_t b1)
{
    const std::uint64_t lo = std::max(a0, b0);
    const std::uint64_t hi = std::min(a1, b1);
    return hi > lo ? hi - lo : 0;
}

} // namespace

std::uint64_t
iBytesInRange(const MpegParams &p, std::uint64_t offset,
              std::uint64_t len)
{
    // Each GOP starts with its I frame: I bytes occupy
    // [g*GOP, g*GOP + iFrameBytes) for every GOP index g.
    const std::uint64_t gop = gopBytes(p);
    std::uint64_t total = 0;
    for (std::uint64_t g = offset / gop;
         g * gop < offset + len; ++g)
        total += overlap(offset, offset + len, g * gop,
                         g * gop + p.iFrameBytes);
    return total;
}

std::uint64_t
framesInRange(const MpegParams &p, std::uint64_t offset,
              std::uint64_t len)
{
    const std::uint64_t gop = gopBytes(p);
    std::uint64_t frames = 0;
    for (std::uint64_t g = offset / gop; g * gop < offset + len; ++g) {
        // Frame start offsets within this GOP.
        std::uint64_t starts[1 + 8];
        unsigned n = 0;
        starts[n++] = g * gop;
        for (unsigned k = 0; k < p.pFramesPerGop; ++k)
            starts[n++] = g * gop + p.iFrameBytes + k * p.pFrameBytes;
        for (unsigned k = 0; k < n; ++k)
            if (starts[k] >= offset && starts[k] < offset + len)
                ++frames;
    }
    return frames;
}

RunStats
runMpegFilter(Mode mode, const MpegParams &params)
{
    Cluster cluster(params.cluster);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();

    auto kept_bytes = std::make_shared<std::uint64_t>(0);

    // Color reduction of the I bytes in a buffer (host side, both
    // modes): the compute-heavy decode + re-encode stage.
    auto color_reduce = [&params](host::Host &h, mem::Addr buf,
                                  std::uint64_t i_bytes) -> sim::Task {
        if (i_bytes == 0)
            co_return;
        co_await h.cpu().compute(i_bytes *
                                 params.colorReduceInstrPerByte);
        co_await h.cpu().touch(buf, i_bytes, mem::AccessKind::Load);
        // Re-encoded output written back.
        co_await h.cpu().touch(buf + 0x2000000, i_bytes,
                               mem::AccessKind::Store);
    };

    if (!isActive(mode)) {
        auto cursor = std::make_shared<std::uint64_t>(0);
        auto on_block = [&params, kept_bytes, color_reduce, cursor](
                            host::Host &h, mem::Addr buf,
                            std::uint64_t bytes) -> sim::Task {
            const std::uint64_t off = *cursor;
            *cursor += bytes;
            const std::uint64_t frames = framesInRange(params, off,
                                                       bytes);
            const std::uint64_t i_bytes = iBytesInRange(params, off,
                                                        bytes);
            // Frame filter on the host: scan for start codes across
            // the whole block, check each header, copy survivors.
            co_await h.cpu().compute(bytes * params.scanInstrPerByte +
                                     frames * params.headerCheckInstr);
            co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
            *kept_bytes += i_bytes;
            co_await color_reduce(h, buf, i_bytes);
        };
        cluster.spawnOnHost(0, normalHostLoop(
            host, storage, params.fileBytes, params.blockBytes,
            outstandingRequests(mode), on_block));
    } else {
        FilterHandler spec;
        spec.fileBytes = params.fileBytes;
        spec.blockBytes = params.blockBytes;
        spec.codeBytes = params.handlerCodeBytes;
        spec.processChunk =
            [&params](active::HandlerContext &ctx,
                      const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            const std::uint64_t frames =
                framesInRange(params, chunk.address, chunk.bytes);
            const std::uint64_t i_bytes =
                iBytesInRange(params, chunk.address, chunk.bytes);
            // Same scan, running from on-chip buffers at the switch.
            co_await ctx.compute(params.chunkOverheadInstr +
                                 chunk.bytes * params.scanInstrPerByte +
                                 frames * params.headerCheckInstr);
            co_return static_cast<std::uint32_t>(i_bytes);
        };
        sw.registerHandler(1, "mpeg-filter",
                           [spec](active::HandlerContext &c) {
                               return runFilterHandler(c, spec);
                           });

        auto on_reply = [kept_bytes, color_reduce](
                            host::Host &h,
                            const net::Message &reply) -> sim::Task {
            *kept_bytes += reply.bytes;
            if (reply.bytes > 0) {
                const mem::Addr buf = h.allocBuffer(reply.bytes);
                co_await color_reduce(h, buf, reply.bytes);
            }
        };
        ActiveLoop loop;
        loop.storage = storage;
        loop.switchNode = sw.id();
        loop.handlerId = 1;
        loop.fileBytes = params.fileBytes;
        loop.blockBytes = params.blockBytes;
        loop.outstanding = outstandingRequests(mode);
        cluster.spawnOnHost(0, activeHostLoop(host, loop, on_reply));
    }

    RunStats stats = cluster.collect(mode);
    stats.checksum = std::to_string(*kept_bytes);
    return stats;
}

} // namespace san::apps
