#include "apps/ParallelSort.hh"

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "apps/Cluster.hh"
#include "apps/DetHash.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Records whose start offset falls in [start, start+len). */
std::uint64_t
recordsIn(const SortParams &p, std::uint64_t start, std::uint64_t len)
{
    auto starts_below = [&](std::uint64_t x) {
        return (x + p.recordBytes - 1) / p.recordBytes;
    };
    return starts_below(start + len) - starts_below(start);
}

/** First record whose start offset is >= start. */
std::uint64_t
firstRecordAt(const SortParams &p, std::uint64_t start)
{
    return (start + p.recordBytes - 1) / p.recordBytes;
}

} // namespace

unsigned
sortDestination(const SortParams &p, std::uint64_t record)
{
    return static_cast<unsigned>(detHash(p.seed, record) % p.nodes);
}

RunStats
runParallelSort(Mode mode, const SortParams &params)
{
    ClusterParams cp;
    cp.hosts = params.nodes;
    cp.storageNodes = params.nodes;
    cp.switchPorts = 16;
    Cluster cluster(cp);
    auto &sw = cluster.sw();

    const std::uint64_t total_records =
        params.totalBytes / params.recordBytes;
    const std::uint64_t per_node_records = total_records / params.nodes;
    const std::uint64_t per_node_bytes =
        per_node_records * params.recordBytes;

    // Expected incoming records per node (used for completion and
    // the semantic checksum).
    std::vector<std::uint64_t> owned(params.nodes, 0);
    for (std::uint64_t r = 0; r < per_node_records * params.nodes; ++r)
        ++owned[sortDestination(params, r)];

    auto received =
        std::make_shared<std::vector<std::uint64_t>>(params.nodes, 0);

    // Stream address bases keep the four disk streams from
    // colliding in the (direct-mapped) ATB.
    auto stream_base = [](unsigned node) {
        return static_cast<std::uint32_t>(node * (0x800000 + 512));
    };

    if (!isActive(mode)) {
        for (unsigned n = 0; n < params.nodes; ++n) {
            auto &h = cluster.host(n);
            const net::NodeId st = cluster.storage(n).id();

            // Reader: scan own partition, ship records to owners.
            cluster.sim().spawn(
                [](host::Host &host, net::NodeId storage, Cluster &cl,
                   const SortParams &p, unsigned self,
                   std::uint64_t my_records, unsigned outstanding,
                   std::shared_ptr<std::vector<std::uint64_t>> recv_ctr)
                    -> sim::Task {
                    const std::uint64_t base_record =
                        self * my_records;
                    auto on_block = [&p, &cl, self, base_record,
                                     recv_ctr](
                                        host::Host &hh, mem::Addr buf,
                                        std::uint64_t bytes,
                                        std::uint64_t off) -> sim::Task {
                        const std::uint64_t first =
                            base_record + firstRecordAt(p, off);
                        const std::uint64_t recs =
                            recordsIn(p, off, bytes);
                        co_await hh.cpu().compute(
                            recs * (p.classifyInstrPerRecord +
                                    p.gatherInstrPerRecord));
                        co_await hh.cpu().touch(
                            buf, bytes, mem::AccessKind::Load);
                        // Count destinations, ship batches to peers;
                        // records we own stay local.
                        std::vector<std::uint64_t> bins(p.nodes, 0);
                        for (std::uint64_t i = 0; i < recs; ++i)
                            ++bins[sortDestination(p, first + i)];
                        for (unsigned d = 0; d < p.nodes; ++d) {
                            if (bins[d] == 0)
                                continue;
                            if (d == self) {
                                (*recv_ctr)[self] += bins[d];
                                continue;
                            }
                            co_await hh.send(
                                cl.host(d).id(),
                                bins[d] * p.recordBytes, std::nullopt,
                                nullptr, tagData);
                        }
                    };

                    const std::uint64_t file_bytes =
                        my_records * p.recordBytes;
                    struct Req {
                        std::uint64_t id, off, len;
                    };
                    std::deque<Req> window;
                    std::uint64_t off = 0;
                    auto post_one = [&]() -> sim::Task {
                        const std::uint64_t len =
                            std::min<std::uint64_t>(p.blockBytes,
                                                    file_bytes - off);
                        const std::uint64_t id = co_await host.postRead(
                            storage, off, len);
                        window.push_back({id, off, len});
                        off += len;
                    };
                    while (off < file_bytes &&
                           window.size() < outstanding)
                        co_await post_one();
                    while (!window.empty()) {
                        const Req req = window.front();
                        window.pop_front();
                        co_await host.awaitIo(req.id);
                        if (outstanding > 1 && off < file_bytes)
                            co_await post_one();
                        const mem::Addr buf = host.allocBuffer(req.len);
                        co_await on_block(host, buf, req.len, req.off);
                        if (outstanding == 1 && off < file_bytes)
                            co_await post_one();
                    }
                }(h, st, cluster, params, n, per_node_records,
                  outstandingRequests(mode), received));

            // Receiver: drain peer batches.
            cluster.sim().spawn(
                [](host::Host &host, const SortParams &p, unsigned self,
                   std::uint64_t expect_from_peers,
                   std::shared_ptr<std::vector<std::uint64_t>> recv_ctr)
                    -> sim::Task {
                    std::uint64_t got = 0;
                    while (got < expect_from_peers) {
                        net::Message m = co_await host.recv();
                        const std::uint64_t recs =
                            m.bytes / p.recordBytes;
                        got += recs;
                        (*recv_ctr)[self] += recs;
                        const mem::Addr buf = host.allocBuffer(m.bytes);
                        co_await host.cpu().compute(
                            recs * p.gatherInstrPerRecord);
                        co_await host.cpu().touch(
                            buf, m.bytes, mem::AccessKind::Store);
                    }
                }(h, params, n,
                  owned[n] - [&] {
                      // Records node n keeps locally (sourced by n).
                      std::uint64_t local = 0;
                      for (std::uint64_t r = n * per_node_records;
                           r < (n + 1) * per_node_records; ++r)
                          local += (sortDestination(params, r) == n);
                      return local;
                  }(),
                  received));
        }
    } else {
        // ---- Switch handler: classify + route every record --------
        struct StreamState {
            std::uint64_t consumed = 0;
            std::uint64_t blockConsumed = 0;
        };
        struct SortCtl {
            std::vector<StreamState> streams;
            std::vector<std::uint64_t> batchRecords;
            std::uint64_t totalConsumed = 0;
        };
        std::vector<net::NodeId> host_ids;
        for (unsigned n = 0; n < params.nodes; ++n)
            host_ids.push_back(cluster.host(n).id());

        auto handler = [params, host_ids, stream_base, per_node_bytes,
                        per_node_records](active::HandlerContext &ctx)
            -> sim::Task {
            co_await ctx.fetchCode(0x1000, params.handlerCodeBytes);
            SortCtl ctl;
            ctl.streams.resize(params.nodes);
            ctl.batchRecords.assign(params.nodes, 0);
            const std::uint64_t total =
                per_node_bytes * params.nodes;
            const unsigned batch_cap = 512 / params.recordBytes;

            while (ctl.totalConsumed < total) {
                active::StreamChunk c = co_await ctx.nextChunk();
                // Identify the source stream by address range.
                unsigned src_node = 0;
                for (unsigned n = 0; n < params.nodes; ++n)
                    if (c.address >= stream_base(n) &&
                        c.address < stream_base(n) + per_node_bytes)
                        src_node = n;
                StreamState &st = ctl.streams[src_node];
                const std::uint64_t off = c.address - stream_base(src_node);

                co_await ctx.awaitValid(c, 0, c.bytes);
                const std::uint64_t first =
                    src_node * per_node_records +
                    firstRecordAt(params, off);
                const std::uint64_t recs = recordsIn(params, off,
                                                     c.bytes);
                co_await ctx.compute(
                    params.chunkOverheadInstr +
                    recs * (params.classifyInstrPerRecord +
                            params.gatherInstrPerRecord));
                for (std::uint64_t i = 0; i < recs; ++i) {
                    const unsigned d =
                        sortDestination(params, first + i);
                    if (++ctl.batchRecords[d] >= batch_cap) {
                        co_await ctx.send(
                            host_ids[d],
                            ctl.batchRecords[d] * params.recordBytes,
                            std::nullopt, nullptr, tagData);
                        ctl.batchRecords[d] = 0;
                    }
                }
                st.consumed += c.bytes;
                st.blockConsumed += c.bytes;
                ctl.totalConsumed += c.bytes;
                // Four streams interleave in one address space, so
                // buffers are released per chunk (an address-exact
                // ATB release), not with the below-address sweep.
                ctx.deallocateOne(c.address);
                if (st.blockConsumed >= params.blockBytes ||
                    st.consumed >= per_node_bytes) {
                    st.blockConsumed = 0;
                    co_await ctx.send(host_ids[src_node], 0,
                                      std::nullopt, nullptr, tagResult);
                }
            }
            // Flush the tails.
            for (unsigned d = 0; d < params.nodes; ++d)
                if (ctl.batchRecords[d] > 0)
                    co_await ctx.send(
                        host_ids[d],
                        ctl.batchRecords[d] * params.recordBytes,
                        std::nullopt, nullptr, tagData);
        };
        sw.registerHandler(1, "sort-distribute", handler);

        // ---- Hosts: post reads, count acks and arriving records ---
        for (unsigned n = 0; n < params.nodes; ++n) {
            cluster.sim().spawn(
                [](host::Host &host, net::NodeId storage,
                   net::NodeId sw_id, const SortParams &p, unsigned self,
                   std::uint64_t file_bytes, std::uint64_t expected_recs,
                   std::uint32_t base, unsigned outstanding,
                   std::shared_ptr<std::vector<std::uint64_t>> recv_ctr)
                    -> sim::Task {
                    const std::uint64_t blocks =
                        (file_bytes + p.blockBytes - 1) / p.blockBytes;
                    std::uint64_t posted = 0, acked = 0;
                    std::uint64_t got_records = 0;

                    auto post = [&]() -> sim::Task {
                        const std::uint64_t off = posted * p.blockBytes;
                        const std::uint64_t len =
                            std::min<std::uint64_t>(p.blockBytes,
                                                    file_bytes - off);
                        co_await host.postReadTo(
                            storage, off, len, sw_id,
                            net::ActiveHeader{
                                1,
                                base + static_cast<std::uint32_t>(off),
                                0});
                        ++posted;
                    };
                    while (posted < blocks && posted < outstanding)
                        co_await post();

                    while (acked < blocks ||
                           got_records < expected_recs) {
                        net::Message m = co_await host.recv();
                        if (m.tag == tagResult) {
                            ++acked;
                            if (posted < blocks)
                                co_await post();
                        } else {
                            const std::uint64_t recs =
                                m.bytes / p.recordBytes;
                            got_records += recs;
                            (*recv_ctr)[self] += recs;
                            const mem::Addr buf =
                                host.allocBuffer(m.bytes);
                            co_await host.cpu().compute(
                                recs * p.gatherInstrPerRecord);
                            co_await host.cpu().touch(
                                buf, m.bytes, mem::AccessKind::Store);
                        }
                    }
                }(cluster.host(n), cluster.storage(n).id(), sw.id(),
                  params, n, per_node_bytes, owned[n], stream_base(n),
                  outstandingRequests(mode), received));
        }
    }

    RunStats stats = cluster.collect(mode);
    std::string sum;
    std::uint64_t total_received = 0;
    for (unsigned n = 0; n < params.nodes; ++n) {
        total_received += (*received)[n];
        sum += std::to_string((*received)[n]) + (n + 1 < params.nodes
                                                     ? ","
                                                     : "");
    }
    stats.checksum = sum + "=" + std::to_string(total_received);
    return stats;
}

} // namespace san::apps
