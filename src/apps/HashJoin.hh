/**
 * @file
 * HashJoin with bit-vector filter (paper §5).
 *
 * Join of R (16 MB, fits in memory) with S (128 MB), 128-byte
 * records, following DeWitt & Gerber's bit-vector optimization:
 * while R is scanned, each tuple's join attribute is hashed into a
 * 128 KB bit-vector; while S is scanned, tuples whose bit is clear
 * are discarded before the (expensive) hash-table probe. The
 * bit-vector reduction factor is 0.24.
 *
 * Normal modes: the host builds both the bit-vector and R's hash
 * table, then scans S doing filter + probe — with the scaled caches
 * (8 KB L1D / 64 KB L2) both structures miss constantly.
 *
 * Active modes: the switch builds/keeps the bit-vector as R streams
 * through to the host, then filters S inside its data buffers; only
 * the surviving 24% reach the host for the real probe.
 */

#ifndef SAN_APPS_HASH_JOIN_HH
#define SAN_APPS_HASH_JOIN_HH

#include <cstdint>

#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for HashJoin. */
struct HashJoinParams {
    std::uint64_t rBytes = 16ull * 1024 * 1024;   //!< relation R
    std::uint64_t sBytes = 128ull * 1024 * 1024;  //!< relation S
    unsigned recordBytes = 128;
    std::uint64_t bitVectorBytes = 128 * 1024;
    double reductionFactor = 0.24;  //!< S survival probability
    std::uint64_t blockBytes = 64 * 1024;
    std::uint64_t seed = 777;

    /** @{ Cost model. */
    std::uint64_t hashInstrPerRecord = 40;     //!< hash join attribute
    std::uint64_t buildInstrPerRecord = 80;    //!< hash-table insert
    std::uint64_t probeInstrPerMatch = 120;    //!< bucket walk+compare
    std::uint64_t filterInstrPerRecord = 12;   //!< bit test + branch
    std::uint64_t chunkOverheadInstr = 40;
    std::uint64_t handlerCodeBytes = 2048;
    /** @} */
};

/** Run HashJoin in one mode. checksum = surviving S records. */
RunStats runHashJoin(Mode mode, const HashJoinParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_HASH_JOIN_HH
