/**
 * @file
 * The four evaluation configurations and per-run result metrics.
 *
 * Every benchmark runs in the paper's four cases:
 *   normal       — host only, synchronous I/O (one outstanding req)
 *   normal+pref  — host only, two outstanding I/O requests
 *   active       — host + switch handlers, one outstanding request
 *   active+pref  — host + switch handlers, two outstanding requests
 */

#ifndef SAN_APPS_RUN_CONFIG_HH
#define SAN_APPS_RUN_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cpu/Cpu.hh"
#include "obs/Telemetry.hh"
#include "sim/Types.hh"

namespace san::apps {

enum class Mode { Normal, NormalPref, Active, ActivePref };

inline constexpr std::array<Mode, 4> allModes = {
    Mode::Normal, Mode::NormalPref, Mode::Active, Mode::ActivePref};

constexpr bool
isActive(Mode m)
{
    return m == Mode::Active || m == Mode::ActivePref;
}

constexpr bool
isPref(Mode m)
{
    return m == Mode::NormalPref || m == Mode::ActivePref;
}

/** Number of outstanding I/O requests in this mode. */
constexpr unsigned
outstandingRequests(Mode m)
{
    return isPref(m) ? 2 : 1;
}

inline const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Normal: return "normal";
      case Mode::NormalPref: return "normal+pref";
      case Mode::Active: return "active";
      case Mode::ActivePref: return "active+pref";
    }
    return "?";
}

/**
 * One handler program's switch-CPU cost over a run, in cycles of the
 * embedded core (the profiler view of the "a-SP" bars).
 */
struct HandlerCpuProfile {
    std::uint8_t id = 0;
    std::string name;
    std::uint64_t invocations = 0;
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;
    sim::Tick busyTicks = 0;
    sim::Tick stallTicks = 0;
    std::uint64_t busyCycles = 0;
    double cyclesPerByte = 0.0; //!< busyCycles / bytes processed
};

/**
 * Fault-injection and recovery counters of one run. All zero — and
 * `active` false — unless a fault plan was installed (fault/): the
 * struct exists so reliability sweeps can read recovery behaviour
 * without touching component internals.
 */
struct FaultStats {
    bool active = false;           //!< a fault plan drove this run
    std::uint64_t injected = 0;    //!< total faults injected
    std::uint64_t retransmits = 0; //!< data packets resent (all flows)
    std::uint64_t timeouts = 0;    //!< retransmit-timer expiries
    std::uint64_t crcDrops = 0;    //!< corrupt packets caught on arrival
    std::uint64_t dupDrops = 0;    //!< duplicates suppressed (dedup)
    std::uint64_t failovers = 0;   //!< handler crash relaunches
    std::uint64_t ioRetries = 0;   //!< disk chunk reads re-issued
    std::uint64_t ioErrors = 0;    //!< completions with error status
    std::uint64_t creditsLost = 0; //!< link credit flits lost
    std::uint64_t flowAborts = 0;  //!< flows past the retry budget
};

/**
 * Load-balancer counters of one run. All zero — and `active` false —
 * unless the run drove the lb subsystem (src/lb). Like FaultStats,
 * NOT folded into the fingerprint: the event stream already is.
 */
struct LbStats {
    bool active = false;            //!< an lb workload drove this run
    std::uint64_t lookups = 0;      //!< connection-table lookups
    std::uint64_t hotHits = 0;      //!< resolved in the D$ hot index
    std::uint64_t tableHits = 0;    //!< resolved in the full table
    std::uint64_t misses = 0;       //!< unknown connection
    std::uint64_t inserts = 0;      //!< connections admitted
    std::uint64_t insertFailures = 0; //!< table full / probe cap hit
    std::uint64_t removes = 0;      //!< connections retired (FIN)
    std::uint64_t forwarded = 0;    //!< packets sent to a backend
    std::uint64_t punts = 0;        //!< packets punted to the host
    std::uint64_t migrations = 0;   //!< flows reassigned (backend died)
    std::uint64_t flowsTracked = 0; //!< live entries at end of run
    std::uint64_t peakFlows = 0;    //!< peak live entries
    std::uint64_t backendDownEvents = 0;
    std::uint64_t backendUpEvents = 0;
    std::uint64_t hotBytes = 0;     //!< hot-index footprint (<= 1 KB)
    std::uint64_t tableBytes = 0;   //!< full-table footprint
    double occupancy = 0.0;         //!< live entries / table capacity
    /** Packets each backend received from the balancer. */
    std::vector<std::uint64_t> backendPackets;
};

/** Results of one benchmark run in one mode. */
struct RunStats {
    Mode mode = Mode::Normal;
    sim::Tick execTime = 0;

    /** Kernel events executed by this run (simulator throughput
     * denominator for the perf harness; not part of the stats JSON). */
    std::uint64_t eventsExecuted = 0;

    /** Per-host breakdowns ("n-HP" bars of the paper's figures). */
    std::vector<cpu::TimeBreakdown> hosts;
    /** Per-switch-CPU breakdowns ("a-SP" bars). */
    std::vector<cpu::TimeBreakdown> switchCpus;

    /** Bytes in+out of host HCAs (the paper's host I/O traffic). */
    std::uint64_t hostIoBytes = 0;

    /** Per-handler switch-CPU profiles (active modes only). */
    std::vector<HandlerCpuProfile> handlerProfiles;

    /**
     * Run fingerprint: a 64-bit hash of every executed event plus the
     * end-of-run stat values (see obs::RunFingerprint). Two runs of
     * the same configuration must produce the same fingerprint.
     */
    std::uint64_t fingerprint = 0;

    /** Optional semantic check result (digest, match count...). */
    std::string checksum;

    /** Fault/recovery counters; all-zero without a fault plan. NOT
     * folded into the fingerprint (the event stream already is). */
    FaultStats faults;

    /** Packet-lineage latency telemetry; inactive (and empty) unless
     * --telemetry armed the collector. Like FaultStats, NOT folded
     * into the fingerprint: telemetry observes the event stream, it
     * never perturbs it. */
    obs::TelemetryStats telemetry;

    /** Load-balancer counters; inactive unless an lb workload ran.
     * NOT folded into the fingerprint (same rule as FaultStats). */
    LbStats lb;

    /** Mean host utilization: (1 - idle/total). */
    double
    hostUtilization() const
    {
        if (hosts.empty())
            return 0.0;
        double sum = 0;
        for (const auto &h : hosts)
            sum += h.utilization();
        return sum / static_cast<double>(hosts.size());
    }

    /** Mean switch CPU utilization. */
    double
    switchUtilization() const
    {
        if (switchCpus.empty())
            return 0.0;
        double sum = 0;
        for (const auto &s : switchCpus)
            sum += s.utilization();
        return sum / static_cast<double>(switchCpus.size());
    }
};

} // namespace san::apps

#endif // SAN_APPS_RUN_CONFIG_HH
