/**
 * @file
 * Collective reduction (paper §5, Table 2, Figures 15 & 16).
 *
 * All p compute nodes combine equal-length vectors with an
 * associative operation (addition here). Two variants:
 *  - Reduce-to-one: node 0 ends with the full result vector y.
 *  - Distributed Reduce: node i ends with segment y_i of the result.
 *
 * Normal implementation: binomial (minimum spanning tree) reduce in
 * ceil(log2 p) rounds of point-to-point messages; Distributed Reduce
 * appends a binomial scatter. Cost per round is alpha + lambda in
 * the paper's model.
 *
 * Active implementation: every node fires its vector at its leaf
 * switch simultaneously; each switch reduces its children's vectors
 * in its data buffers and forwards one partial up the tree; the root
 * emits the result — latency alpha + gamma + ceil(log_{N/2} p) *
 * delta, beating the software lower bound because the switch touches
 * message data with almost no per-message overhead.
 *
 * Topology: 16-port switches with 8 hosts per leaf switch (half the
 * ports), switch tree of arity 8 above them, as in the paper.
 */

#ifndef SAN_APPS_REDUCTION_HH
#define SAN_APPS_REDUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "active/ActiveSwitch.hh"
#include "apps/RunConfig.hh"
#include "sim/Types.hh"

namespace san::apps {

enum class ReduceKind { ToOne, Distributed, ToAll };

/** Workload and cost parameters for collective reduction. */
struct ReductionParams {
    unsigned nodes = 8;             //!< p (results shown to 128)
    unsigned vectorBytes = 512;     //!< per-node vector
    unsigned elementBytes = 4;      //!< int32 elements
    unsigned switchPorts = 16;
    unsigned hostsPerLeaf = 8;      //!< half the ports, as in paper
    std::uint64_t seed = 31;
    /**
     * Worker threads. 1 = historical single-queue kernel. >1 shards
     * the system per-switch (hosts follow their leaf) under the
     * conservative PDES kernel; results and checksums are identical,
     * fingerprints are stable across thread counts (DESIGN.md §14).
     */
    unsigned threads = 1;

    /** @{ Cost model. */
    /**
     * Switch-side combine: the embedded CPU reads both operands
     * straight from data buffers through its dedicated ports
     * (load-add-accumulate per element; no cache, no copies).
     */
    std::uint64_t addInstrPerElement = 1;
    std::uint64_t handlerCodeBytes = 512;
    /**
     * Host-side messaging software (user-level protocol layer: build
     * descriptor, ring doorbell, poll completion, reorder/copy).
     * Charged per send / per receive on hosts in both modes — this
     * is the alpha of the paper's latency model, which the switch
     * data path avoids between tree levels.
     */
    std::uint64_t sendProtocolInstr = 12000;
    std::uint64_t recvProtocolInstr = 16000;
    /** @} */

    /** Switch hardware overrides (ablation studies). */
    active::ActiveConfig switchConfig{};
};

/** Outcome of one reduction run. */
struct ReductionRun {
    sim::Tick latency = 0;
    bool correct = false;      //!< result equals sequential reference
    std::string checksum;      //!< first/last elements of the result
    /** Event-stream digest: the single-queue RunFingerprint at
     *  threads == 1, the deterministic per-shard merge otherwise. */
    std::uint64_t fingerprint = 0;
    std::uint64_t events = 0;  //!< events executed
};

/** Run one reduction. @p active selects switch-based reduction. */
ReductionRun runReduction(bool active, ReduceKind kind,
                          const ReductionParams &params = {});

/** Sequential reference: elementwise sum of all node vectors. */
std::vector<std::int32_t> reduceReference(const ReductionParams &params);

/** The deterministic input vector of one node. */
std::vector<std::int32_t> nodeVector(const ReductionParams &params,
                                     unsigned node);

} // namespace san::apps

#endif // SAN_APPS_REDUCTION_HH
