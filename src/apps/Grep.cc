#include "apps/Grep.hh"

#include <memory>
#include <string>

#include "apps/Cluster.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Line index of the k-th matching line (spread across the file). */
std::uint64_t
matchLine(const GrepParams &p, unsigned k)
{
    const std::uint64_t lines = p.fileBytes / p.lineBytes;
    return (k * lines) / p.matchingLines + lines / (2 * p.matchingLines);
}

/** Matching lines whose *start* falls in [offset, offset+len). */
std::uint64_t
matchesInRange(const GrepParams &p, std::uint64_t offset,
               std::uint64_t len)
{
    std::uint64_t m = 0;
    for (unsigned k = 0; k < p.matchingLines; ++k) {
        const std::uint64_t pos = matchLine(p, k) * p.lineBytes;
        if (pos >= offset && pos < offset + len)
            ++m;
    }
    return m;
}

} // namespace

RunStats
runGrep(Mode mode, const GrepParams &params)
{
    Cluster cluster(params.cluster);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();

    auto matched_lines = std::make_shared<std::uint64_t>(0);
    auto matched_bytes = std::make_shared<std::uint64_t>(0);
    const mem::Addr dfa_table = 0x20000; // switch/host-local table

    if (!isActive(mode)) {
        auto cursor = std::make_shared<std::uint64_t>(0);
        auto setup_done = std::make_shared<bool>(false);
        auto on_block = [&params, matched_lines, matched_bytes, cursor,
                         setup_done, dfa_table](
                            host::Host &h, mem::Addr buf,
                            std::uint64_t bytes) -> sim::Task {
            if (!*setup_done) {
                *setup_done = true;
                co_await h.cpu().compute(params.dfaSetupInstr);
                co_await h.cpu().touch(dfa_table, params.dfaTableBytes,
                                       mem::AccessKind::Store);
            }
            const std::uint64_t off = *cursor;
            *cursor += bytes;
            const std::uint64_t m = matchesInRange(params, off, bytes);
            *matched_lines += m;
            *matched_bytes += m * params.lineBytes;
            co_await h.cpu().compute(bytes * params.searchInstrPerByte +
                                     m * params.perMatchInstr);
            co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
        };
        cluster.sim().spawn(normalHostLoop(
            host, storage, params.fileBytes, params.blockBytes,
            outstandingRequests(mode), on_block));
    } else {
        FilterHandler spec;
        spec.fileBytes = params.fileBytes;
        spec.blockBytes = params.blockBytes;
        spec.codeBytes = params.handlerCodeBytes;
        // DFA construction happens on the switch in the active split.
        spec.setupInstructions = params.dfaSetupInstr;
        spec.processChunk =
            [&params, matched_lines, matched_bytes, dfa_table](
                active::HandlerContext &ctx,
                const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(
                params.chunkOverheadInstr +
                chunk.bytes * params.searchInstrPerByte);
            // The DFA's hot states live in switch memory; touch a
            // line's worth per chunk to model residency effects in
            // the tiny 1 KB D$.
            co_await ctx.access(dfa_table + (chunk.address % 256) * 13,
                                64, mem::AccessKind::Load);
            const std::uint64_t m =
                matchesInRange(params, chunk.address, chunk.bytes);
            if (m > 0) {
                *matched_lines += m;
                *matched_bytes += m * params.lineBytes;
                co_await ctx.compute(m * params.perMatchInstr);
            }
            co_return static_cast<std::uint32_t>(m * params.lineBytes);
        };
        sw.registerHandler(1, "grep", [spec](active::HandlerContext &c) {
            return runFilterHandler(c, spec);
        });

        auto on_reply = [&params](host::Host &h,
                                  const net::Message &reply) -> sim::Task {
            // The host only collects the (rare) matched lines.
            if (reply.bytes > 0) {
                const mem::Addr buf = h.allocBuffer(reply.bytes);
                co_await h.cpu().touch(buf, reply.bytes,
                                       mem::AccessKind::Load);
                co_await h.cpu().compute(
                    (reply.bytes / params.lineBytes) * 50);
            }
        };
        ActiveLoop loop;
        loop.storage = storage;
        loop.switchNode = sw.id();
        loop.handlerId = 1;
        loop.fileBytes = params.fileBytes;
        loop.blockBytes = params.blockBytes;
        loop.outstanding = outstandingRequests(mode);
        cluster.sim().spawn(activeHostLoop(host, loop, on_reply));
    }

    RunStats stats = cluster.collect(mode);
    stats.checksum = std::to_string(*matched_lines) + ":" +
                     std::to_string(*matched_bytes);
    return stats;
}

} // namespace san::apps
