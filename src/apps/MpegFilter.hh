/**
 * @file
 * MPEG-filter (paper §5): video stream filtering + color reduction.
 *
 * Two cascaded filters from the Lancaster distributed-multimedia
 * filter suite: (1) frame filtering — drop all B/P frames, keeping
 * only I frames (cheap header checks, large data reduction), and
 * (2) color reduction of the surviving I frames (decode + re-encode,
 * compute-heavy).
 *
 * The active split pipelines the two: the switch runs the frame
 * filter (dropping the 63.5% of bytes that are P frames), the host
 * runs color reduction on what remains — host and switch CPU form a
 * balanced pipeline.
 *
 * The Lancaster test clip is not distributable; the synthetic stream
 * reproduces its only relevant properties: total length 2,202,640
 * bytes and 63.5% P-frame bytes (GOP pattern I:16 KB + 4 x P:7 KB).
 */

#ifndef SAN_APPS_MPEG_FILTER_HH
#define SAN_APPS_MPEG_FILTER_HH

#include <cstdint>

#include "apps/Cluster.hh"
#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for MPEG-filter. */
struct MpegParams {
    std::uint64_t fileBytes = 2202640; //!< paper's clip size
    std::uint64_t blockBytes = 64 * 1024; //!< 64 KB I/O requests
    std::uint64_t iFrameBytes = 16 * 1024;
    std::uint64_t pFrameBytes = 7 * 1024;
    unsigned pFramesPerGop = 4; //!< P bytes = 28/44 = 63.6%

    /** @{ Cost model. */
    std::uint64_t headerCheckInstr = 150;   //!< start-code + type
    std::uint64_t scanInstrPerByte = 6;     //!< find start codes, copy
    std::uint64_t colorReduceInstrPerByte = 64; //!< decode+re-encode
    std::uint64_t chunkOverheadInstr = 40;
    std::uint64_t handlerCodeBytes = 2048;
    /** @} */

    /** System shape/hardware overrides (ablation studies). */
    ClusterParams cluster{};
};

/** Bytes of I-frame data inside [offset, offset+len). */
std::uint64_t iBytesInRange(const MpegParams &p, std::uint64_t offset,
                            std::uint64_t len);

/** Frame headers beginning inside [offset, offset+len). */
std::uint64_t framesInRange(const MpegParams &p, std::uint64_t offset,
                            std::uint64_t len);

/** Run MPEG-filter in one mode. checksum = I bytes kept. */
RunStats runMpegFilter(Mode mode, const MpegParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_MPEG_FILTER_HH
