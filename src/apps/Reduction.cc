#include "apps/Reduction.hh"

#include <cassert>
#include <memory>

#include "active/ActiveSwitch.hh"
#include "apps/DetHash.hh"
#include "apps/StreamCommon.hh"
#include "host/Host.hh"
#include "net/Fabric.hh"
#include "obs/Fingerprint.hh"
#include "sim/Simulation.hh"

namespace san::apps {

namespace {

using Vec = std::vector<std::int32_t>;
using VecPtr = std::shared_ptr<const Vec>;

/** Elementwise a += b. */
void
addInto(Vec &a, const Vec &b)
{
    assert(a.size() == b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] += b[i];
}

/** The reduction system: hosts + a tree of active-capable switches. */
struct ReduceSystem {
    sim::Simulation sim;
    net::Fabric fabric{sim};
    std::vector<host::Host *> hosts;
    std::vector<active::ActiveSwitch *> switches;

    struct SwInfo {
        int parent = -1;          //!< switch index of parent
        unsigned childOrdinal = 0; //!< position among parent children
        unsigned children = 0;    //!< hosts (leaf) or switches (inner)
        bool leaf = false;
    };
    std::vector<SwInfo> info;
    std::vector<unsigned> hostLeaf;     //!< leaf switch per host
    std::vector<unsigned> hostChildIdx; //!< ordinal among leaf children
    unsigned root = 0;

    explicit ReduceSystem(const ReductionParams &p)
    {
        const unsigned leaves =
            (p.nodes + p.hostsPerLeaf - 1) / p.hostsPerLeaf;
        // Leaf switches and their hosts.
        for (unsigned l = 0; l < leaves; ++l) {
            switches.push_back(&fabric.addSwitch<active::ActiveSwitch>(
                net::SwitchParams{p.switchPorts}, p.switchConfig));
            info.push_back(SwInfo{-1, 0, 0, true});
        }
        for (unsigned n = 0; n < p.nodes; ++n) {
            const unsigned leaf = n / p.hostsPerLeaf;
            auto *h = new host::Host(sim, "node" + std::to_string(n),
                                     fabric);
            hosts.push_back(h);
            const unsigned ordinal = info[leaf].children++;
            fabric.connect(*switches[leaf], ordinal, h->hca());
            hostLeaf.push_back(leaf);
            hostChildIdx.push_back(ordinal);
        }
        // Inner levels: arity hostsPerLeaf, uplink on the last port.
        std::vector<unsigned> level;
        for (unsigned l = 0; l < leaves; ++l)
            level.push_back(l);
        while (level.size() > 1) {
            std::vector<unsigned> next;
            for (std::size_t g = 0; g < level.size();
                 g += p.hostsPerLeaf) {
                switches.push_back(
                    &fabric.addSwitch<active::ActiveSwitch>(
                        net::SwitchParams{p.switchPorts},
                        p.switchConfig));
                info.push_back(SwInfo{-1, 0, 0, false});
                const unsigned parent =
                    static_cast<unsigned>(switches.size() - 1);
                for (std::size_t c = g;
                     c < std::min(level.size(),
                                  g + p.hostsPerLeaf);
                     ++c) {
                    const unsigned child = level[c];
                    const unsigned ordinal = info[parent].children++;
                    fabric.connectSwitches(*switches[parent], ordinal,
                                           *switches[child],
                                           p.switchPorts - 1);
                    info[child].parent = static_cast<int>(parent);
                    info[child].childOrdinal = ordinal;
                }
                next.push_back(parent);
            }
            level = next;
        }
        root = level[0];
        fabric.computeRoutes();
        for (auto *h : hosts)
            h->start();

        // Threaded run: one shard per switch, hosts riding with
        // their leaf, so only the inter-switch tree cables cross
        // shards. The partition depends on the topology alone, never
        // on p.threads, which is what keeps N-thread fingerprints
        // stable across N. (The demux tasks started above schedule
        // nothing until traffic arrives, so starting them unsharded
        // is safe.)
        if (p.threads > 1) {
            plan = fabric.planShards(switches.size());
            fabric.applyShardPlan(plan);
            if (obs::Telemetry *tel = obs::globalTelemetry())
                tel->enableShards(plan.shards);
        }
    }

    /** Shard of host @p n's logical process (0 when unsharded). */
    std::size_t
    hostShard(unsigned n)
    {
        if (!sim.sharded())
            return 0;
        return plan.adapterShard[fabric.adapterIndex(hosts[n]->hca())];
    }

    net::ShardPlan plan;

    ~ReduceSystem()
    {
        for (auto *h : hosts)
            delete h;
    }
};

/**
 * Address stride between child vectors: mapping addresses must be
 * data-buffer (512 B) aligned so each child occupies whole buffers.
 */
std::uint32_t
mapStride(const ReductionParams &p)
{
    return (p.vectorBytes + 511) / 512 * 512;
}

std::string
vecChecksum(const Vec &v)
{
    if (v.empty())
        return "empty";
    std::int64_t sum = 0;
    for (auto x : v)
        sum += x;
    return std::to_string(v.front()) + "/" + std::to_string(v.back()) +
           "/" + std::to_string(sum);
}

} // namespace

Vec
nodeVector(const ReductionParams &p, unsigned node)
{
    const unsigned elements = p.vectorBytes / p.elementBytes;
    Vec v(elements);
    for (unsigned e = 0; e < elements; ++e)
        v[e] = static_cast<std::int32_t>(
            detHash(p.seed, node * elements + e) % 1000);
    return v;
}

Vec
reduceReference(const ReductionParams &p)
{
    Vec sum(p.vectorBytes / p.elementBytes, 0);
    for (unsigned n = 0; n < p.nodes; ++n)
        addInto(sum, nodeVector(p, n));
    return sum;
}

ReductionRun
runReduction(bool active, ReduceKind kind, const ReductionParams &p)
{
    ReduceSystem sys(p);
    const unsigned elements = p.vectorBytes / p.elementBytes;
    const Vec reference = reduceReference(p);

    // What each host ends up holding.
    auto results = std::make_shared<std::vector<Vec>>(p.nodes);

    obs::RunFingerprint fp;
    obs::ShardedFingerprint sharded_fp;
    if (p.threads > 1)
        sharded_fp.attach(sys.sim);
    else
        sys.sim.events().setObserver(&fp);

    if (!active) {
        // ---- Binomial (MST) software reduction -------------------
        unsigned rounds = 0;
        while ((1u << rounds) < p.nodes)
            ++rounds;

        for (unsigned n = 0; n < p.nodes; ++n) {
            sim::ShardGuard guard(sys.sim, sys.hostShard(n));
            sys.sim.spawn([](ReduceSystem &s, const ReductionParams &pp,
                             unsigned self, unsigned n_rounds,
                             ReduceKind k,
                             std::shared_ptr<std::vector<Vec>> out)
                              -> sim::Task {
                host::Host &me = *s.hosts[self];
                const unsigned elems = pp.vectorBytes / pp.elementBytes;
                Vec acc = nodeVector(pp, self);

                // Pairwise-exchange machinery shared by the
                // reduce-scatter (Distributed) and recursive-doubling
                // (ToAll) algorithms: rounds from different partners
                // can arrive out of order, so messages carry their
                // round number and strays are stashed.
                struct RoundMsg {
                    unsigned round;
                    Vec slice;
                };
                std::vector<std::shared_ptr<const RoundMsg>> stash;
                auto recv_round =
                    [&](unsigned want)
                    -> sim::ValueTask<std::shared_ptr<const RoundMsg>> {
                    for (;;) {
                        for (std::size_t i = 0; i < stash.size(); ++i) {
                            if (stash[i]->round == want) {
                                auto m = stash[i];
                                stash.erase(stash.begin() +
                                            static_cast<long>(i));
                                co_return m;
                            }
                        }
                        net::Message msg = co_await me.recv();
                        auto m = std::static_pointer_cast<
                            const RoundMsg>(msg.payload);
                        if (m->round == want)
                            co_return m;
                        stash.push_back(m);
                    }
                };

                if (k == ReduceKind::ToAll) {
                    // Recursive doubling: log2(p) rounds of full
                    // pairwise exchange; every node ends with the
                    // complete result vector.
                    unsigned round = 0;
                    for (unsigned bit = 1; bit < pp.nodes; bit <<= 1) {
                        const unsigned partner = self ^ bit;
                        auto out_msg = std::make_shared<RoundMsg>();
                        out_msg->round = round;
                        out_msg->slice = acc;
                        co_await me.cpu().compute(
                            pp.sendProtocolInstr);
                        co_await me.send(s.hosts[partner]->id(),
                                         pp.vectorBytes, std::nullopt,
                                         out_msg, tagData);
                        auto in_msg = co_await recv_round(round);
                        co_await me.cpu().compute(
                            pp.recvProtocolInstr);
                        const mem::Addr buf =
                            me.allocBuffer(pp.vectorBytes);
                        co_await me.cpu().touch(
                            buf, pp.vectorBytes, mem::AccessKind::Load);
                        co_await me.cpu().compute(
                            elems * pp.addInstrPerElement);
                        addInto(acc, in_msg->slice);
                        ++round;
                    }
                    (*out)[self] = std::move(acc);
                    co_return;
                }

                if (k == ReduceKind::Distributed) {
                    // Recursive-halving reduce-scatter: log2(p)
                    // rounds; each pair exchanges the half of the
                    // current segment the other needs and combines
                    // its own half.
                    unsigned lo = 0, hi = elems;
                    unsigned round = 0;
                    for (unsigned d = pp.nodes / 2; d >= 1; d /= 2) {
                        const unsigned partner = self ^ d;
                        const unsigned mid = lo + (hi - lo) / 2;
                        const bool keep_upper = (self & d) != 0;
                        auto out_msg = std::make_shared<RoundMsg>();
                        out_msg->round = round;
                        out_msg->slice.assign(
                            acc.begin() + (keep_upper ? lo : mid),
                            acc.begin() + (keep_upper ? mid : hi));
                        co_await me.cpu().compute(
                            pp.sendProtocolInstr);
                        co_await me.send(
                            s.hosts[partner]->id(),
                            out_msg->slice.size() * pp.elementBytes,
                            std::nullopt, out_msg, tagData);
                        auto in_msg = co_await recv_round(round);
                        co_await me.cpu().compute(
                            pp.recvProtocolInstr);
                        if (keep_upper)
                            lo = mid;
                        else
                            hi = mid;
                        const mem::Addr buf =
                            me.allocBuffer(in_msg->slice.size() *
                                           pp.elementBytes);
                        co_await me.cpu().touch(
                            buf, in_msg->slice.size() * pp.elementBytes,
                            mem::AccessKind::Load);
                        co_await me.cpu().compute(
                            (hi - lo) * pp.addInstrPerElement);
                        for (unsigned e = lo; e < hi; ++e)
                            acc[e] += in_msg->slice[e - lo];
                        ++round;
                    }
                    (*out)[self] =
                        Vec(acc.begin() + lo, acc.begin() + hi);
                    co_return;
                }

                // Reduce phase: partner exchange up the binomial tree.
                bool sent_up = false;
                for (unsigned k_r = 0; k_r < n_rounds; ++k_r) {
                    const unsigned bit = 1u << k_r;
                    if (self & bit) {
                        co_await me.cpu().compute(pp.sendProtocolInstr);
                        co_await me.send(
                            s.hosts[self - bit]->id(), pp.vectorBytes,
                            std::nullopt,
                            std::make_shared<Vec>(acc), tagData);
                        sent_up = true;
                        break;
                    }
                    if (self + bit < pp.nodes) {
                        net::Message m = co_await me.recv();
                        assert(m.tag == tagData);
                        co_await me.cpu().compute(
                            pp.recvProtocolInstr);
                        const Vec &in =
                            *static_cast<const Vec *>(m.payload.get());
                        const mem::Addr buf =
                            me.allocBuffer(pp.vectorBytes);
                        co_await me.cpu().touch(
                            buf, pp.vectorBytes, mem::AccessKind::Load);
                        co_await me.cpu().compute(
                            elems * pp.addInstrPerElement);
                        addInto(acc, in);
                    }
                }
                // Only node 0 holds the full result.
                if (self == 0)
                    (*out)[self] = acc;
                (void)sent_up;
            }(sys, p, n, rounds, kind, results));
        }
    } else {
        // ---- Active switch-tree reduction -------------------------
        // Every switch runs the same handler: combine vectors from
        // all children, then pass the partial up (or emit results).
        for (unsigned s = 0; s < sys.switches.size(); ++s) {
            const auto inf = sys.info[s];
            auto handler = [&sys, p, inf, s, kind,
                            elements](active::HandlerContext &ctx)
                -> sim::Task {
                co_await ctx.fetchCode(0x1000, p.handlerCodeBytes);
                Vec acc(elements, 0);
                const unsigned line =
                    ctx.owner().buffers().params().lineBytes;
                for (unsigned c = 0; c < inf.children; ++c) {
                    active::StreamChunk ch = co_await ctx.nextChunk();
                    // Combine line by line as the vector streams in:
                    // the valid bits let the adds overlap the copy.
                    for (std::uint32_t off = 0; off < ch.bytes;
                         off += line) {
                        const std::uint32_t n =
                            std::min<std::uint32_t>(line,
                                                    ch.bytes - off);
                        co_await ctx.awaitValid(ch, off, n);
                        co_await ctx.compute(
                            (n / p.elementBytes) *
                            p.addInstrPerElement);
                    }
                    addInto(acc,
                            *static_cast<const Vec *>(ch.payload.get()));
                    ctx.deallocateOne(ch.address);
                }
                if (inf.parent >= 0) {
                    // Partial to the parent switch's handler.
                    co_await ctx.send(
                        sys.switches[static_cast<unsigned>(
                                         inf.parent)]
                            ->id(),
                        p.vectorBytes,
                        net::ActiveHeader{
                            1,
                            inf.childOrdinal * mapStride(p), 0},
                        std::make_shared<Vec>(acc), tagData);
                    co_return;
                }
                // Root: emit the result.
                if (kind == ReduceKind::ToOne) {
                    co_await ctx.send(sys.hosts[0]->id(), p.vectorBytes,
                                      std::nullopt,
                                      std::make_shared<Vec>(acc),
                                      tagResult);
                    co_return;
                }
                if (kind == ReduceKind::ToAll) {
                    // Broadcast the whole result to every node (the
                    // messages fan back down the switch tree).
                    auto full = std::make_shared<Vec>(acc);
                    for (unsigned n = 0; n < p.nodes; ++n)
                        co_await ctx.send(sys.hosts[n]->id(),
                                          p.vectorBytes, std::nullopt,
                                          full, tagResult);
                    co_return;
                }
                // Distributed: one segment per node.
                const unsigned per =
                    std::max(1u, elements / p.nodes);
                for (unsigned n = 0; n < p.nodes; ++n) {
                    const unsigned lo = n * per;
                    const unsigned hi =
                        n + 1 == p.nodes ? elements : (n + 1) * per;
                    auto seg = std::make_shared<Vec>(
                        acc.begin() + lo, acc.begin() + hi);
                    co_await ctx.send(sys.hosts[n]->id(),
                                      (hi - lo) * p.elementBytes,
                                      std::nullopt, seg, tagResult);
                }
            };
            sys.switches[s]->registerHandler(1, "reduce", handler);
        }

        // Hosts: fire the vector, then await the result/segment.
        for (unsigned n = 0; n < p.nodes; ++n) {
            sim::ShardGuard guard(sys.sim, sys.hostShard(n));
            sys.sim.spawn(
                [](ReduceSystem &s, const ReductionParams &pp,
                   unsigned self, ReduceKind k,
                   std::shared_ptr<std::vector<Vec>> out) -> sim::Task {
                    host::Host &me = *s.hosts[self];
                    auto v = std::make_shared<Vec>(
                        nodeVector(pp, self));
                    co_await me.cpu().compute(pp.sendProtocolInstr);
                    co_await me.send(
                        s.switches[s.hostLeaf[self]]->id(),
                        pp.vectorBytes,
                        net::ActiveHeader{
                            1,
                            s.hostChildIdx[self] * mapStride(pp), 0},
                        v, tagData);
                    const bool expects =
                        (k != ReduceKind::ToOne) || self == 0;
                    if (!expects)
                        co_return;
                    net::Message m = co_await me.recv();
                    co_await me.cpu().compute(pp.recvProtocolInstr);
                    const mem::Addr buf = me.allocBuffer(m.bytes);
                    co_await me.cpu().touch(buf, m.bytes,
                                            mem::AccessKind::Load);
                    (*out)[self] =
                        *static_cast<const Vec *>(m.payload.get());
                }(sys, p, n, kind, results));
        }
    }

    const sim::Tick end =
        p.threads > 1 ? sys.sim.runSharded(p.threads) : sys.sim.run();

    // ---- Verify against the sequential reference ------------------
    bool correct = true;
    Vec assembled;
    if (kind == ReduceKind::ToOne) {
        assembled = (*results)[0];
        correct = (assembled == reference);
    } else if (kind == ReduceKind::ToAll) {
        assembled = (*results)[0];
        for (unsigned n = 0; n < p.nodes; ++n)
            correct = correct && ((*results)[n] == reference);
    } else {
        for (unsigned n = 0; n < p.nodes; ++n)
            assembled.insert(assembled.end(), (*results)[n].begin(),
                             (*results)[n].end());
        correct = (assembled == reference);
    }

    ReductionRun run;
    run.latency = end;
    run.correct = correct;
    run.checksum = vecChecksum(assembled);
    run.fingerprint = p.threads > 1 ? sharded_fp.value() : fp.value();
    run.events = p.threads > 1 ? sharded_fp.eventsFolded()
                               : fp.eventsFolded();
    return run;
}

} // namespace san::apps
