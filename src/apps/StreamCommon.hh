/**
 * @file
 * Shared host-side and switch-side machinery for the streaming
 * benchmarks (MPEG filter, HashJoin, Select, Grep, and friends).
 *
 * Protocol
 * --------
 * Active modes:
 *  1. The host sends a small active "argument" message to the switch
 *     (tag tagArgs), invoking the handler; its payload carries the
 *     app parameters. The paper's ReadArg(arg) step.
 *  2. The host posts disk reads of blockBytes each, directed at the
 *     switch handler (the memory-mapped file region of §2.2). One or
 *     two requests stay outstanding (mode without/with "+pref").
 *  3. The handler consumes the arriving MTU chunks, processes them,
 *     forwards whatever survives its filter to the host (tag
 *     tagResult, one message per block, possibly 0 bytes), and
 *     deallocates buffers as it goes.
 *  4. The host overlaps its own processing of filtered results with
 *     the stream, posting the next block on each block reply.
 *
 * Normal modes: the host reads blockBytes at a time (sync or two
 * outstanding) and processes each block itself.
 */

#ifndef SAN_APPS_STREAM_COMMON_HH
#define SAN_APPS_STREAM_COMMON_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "active/ActiveSwitch.hh"
#include "apps/RunConfig.hh"
#include "host/Host.hh"
#include "sim/Task.hh"

namespace san::apps {

/** @{ Application-level message tags. */
inline constexpr std::uint32_t tagArgs = host::tagApp + 1;
inline constexpr std::uint32_t tagResult = host::tagApp + 2;
inline constexpr std::uint32_t tagData = host::tagApp + 3;
/** @} */

/** Per-block processing callback of the normal-mode host loop. */
using BlockFn =
    std::function<sim::Task(host::Host &, mem::Addr, std::uint64_t)>;

/** Per-reply processing callback of the active-mode host loop. */
using ReplyFn =
    std::function<sim::Task(host::Host &, const net::Message &)>;

/**
 * Normal-path host loop: read @p file_bytes in @p block_bytes
 * requests with @p outstanding (1 or 2) in flight, invoking
 * @p on_block for each completed block.
 */
sim::Task normalHostLoop(host::Host &host, net::NodeId storage,
                         std::uint64_t file_bytes,
                         std::uint64_t block_bytes, unsigned outstanding,
                         BlockFn on_block);

/** Parameters of the active-path host loop. */
struct ActiveLoop {
    net::NodeId storage = net::invalidNode;
    net::NodeId switchNode = net::invalidNode;
    std::uint8_t handlerId = 0;
    std::uint8_t cpuId = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t blockBytes = 0;
    unsigned outstanding = 1;
    net::PayloadPtr args;             //!< handler argument payload
    std::uint64_t diskOffset = 0;     //!< where the file lives
};

/**
 * Active-path host loop: send the argument message, stream the file
 * through the handler with the requested number of outstanding block
 * requests, and run @p on_reply for every per-block result message.
 */
sim::Task activeHostLoop(host::Host &host, ActiveLoop loop,
                         ReplyFn on_reply);

/**
 * Per-chunk handler callback: process one arrived chunk and return
 * the number of payload bytes that survive the filter (to be
 * forwarded to the host with the block's result message).
 */
using ChunkFn = std::function<sim::ValueTask<std::uint32_t>(
    active::HandlerContext &, const active::StreamChunk &)>;

/** Configuration of the generic filtering handler. */
struct FilterHandler {
    std::uint64_t fileBytes = 0;
    std::uint64_t blockBytes = 0;
    /** Instructions charged once per invocation (setup, ReadArg). */
    std::uint64_t setupInstructions = 100;
    /** Handler code footprint fetched through the I$. */
    std::uint64_t codeBytes = 2048;
    ChunkFn processChunk;
    /** Optional payload attached to each block result. */
    std::function<net::PayloadPtr(std::uint64_t block_index)>
        blockPayload;
};

/**
 * The generic streaming filter handler (the paper's §2.2 skeleton):
 * ReadArg, then per MTU chunk: await valid lines, ProcessData,
 * Deallocate_Buffer; per block: reply to the host.
 */
sim::Task runFilterHandler(active::HandlerContext &ctx,
                           FilterHandler spec);

} // namespace san::apps

#endif // SAN_APPS_STREAM_COMMON_HH
