#include "apps/StreamCommon.hh"

#include <cassert>
#include <deque>

namespace san::apps {

sim::Task
normalHostLoop(host::Host &host, net::NodeId storage,
               std::uint64_t file_bytes, std::uint64_t block_bytes,
               unsigned outstanding, BlockFn on_block)
{
    assert(outstanding >= 1);
    struct Posted {
        std::uint64_t id;
        std::uint64_t bytes;
    };
    std::deque<Posted> inflight;
    std::uint64_t posted = 0;

    auto post_next = [&]() -> sim::ValueTask<std::uint64_t> {
        const std::uint64_t n =
            std::min<std::uint64_t>(block_bytes, file_bytes - posted);
        auto id = co_await host.postRead(storage, posted, n);
        posted += n;
        co_return id;
    };

    while (posted < file_bytes &&
           inflight.size() < static_cast<std::size_t>(outstanding)) {
        const std::uint64_t n =
            std::min<std::uint64_t>(block_bytes, file_bytes - posted);
        inflight.push_back({co_await post_next(), n});
    }

    while (!inflight.empty()) {
        Posted blk = inflight.front();
        inflight.pop_front();
        co_await host.awaitIo(blk.id);
        // With prefetching the pipeline is refilled before burning
        // CPU on this block, overlapping compute with I/O. The
        // synchronous case posts only after processing: the disk
        // sits idle while the host computes, and vice versa.
        if (outstanding > 1 && posted < file_bytes) {
            const std::uint64_t n = std::min<std::uint64_t>(
                block_bytes, file_bytes - posted);
            inflight.push_back({co_await post_next(), n});
        }
        // Fresh DMA landing zone: first touch is a cold miss.
        const mem::Addr buf = host.allocBuffer(blk.bytes);
        co_await on_block(host, buf, blk.bytes);
        if (outstanding == 1 && posted < file_bytes) {
            const std::uint64_t n = std::min<std::uint64_t>(
                block_bytes, file_bytes - posted);
            inflight.push_back({co_await post_next(), n});
        }
    }
}

sim::Task
activeHostLoop(host::Host &host, ActiveLoop loop, ReplyFn on_reply)
{
    assert(loop.outstanding >= 1);
    const net::ActiveHeader arg_hdr{loop.handlerId, 0, loop.cpuId};
    co_await host.send(loop.switchNode, 64, arg_hdr, loop.args,
                       tagArgs);

    const std::uint64_t blocks =
        (loop.fileBytes + loop.blockBytes - 1) / loop.blockBytes;
    std::uint64_t posted_blocks = 0;

    auto post_next = [&]() -> sim::Task {
        const std::uint64_t off = posted_blocks * loop.blockBytes;
        const std::uint64_t n =
            std::min<std::uint64_t>(loop.blockBytes,
                                    loop.fileBytes - off);
        net::ActiveHeader hdr{loop.handlerId,
                              static_cast<std::uint32_t>(off),
                              loop.cpuId};
        co_await host.postReadTo(loop.storage, loop.diskOffset + off, n,
                                 loop.switchNode, hdr);
        ++posted_blocks;
    };

    while (posted_blocks < blocks &&
           posted_blocks < static_cast<std::uint64_t>(loop.outstanding))
        co_await post_next();

    for (std::uint64_t done = 0; done < blocks; ++done) {
        net::Message reply = co_await host.recv();
        assert(reply.tag == tagResult);
        if (posted_blocks < blocks)
            co_await post_next();
        co_await on_reply(host, reply);
    }
}

sim::Task
runFilterHandler(active::HandlerContext &ctx, FilterHandler spec)
{
    // ReadArg: the invoking message carries the arguments.
    active::StreamChunk arg = co_await ctx.nextChunk();
    assert(arg.tag == tagArgs);
    const net::NodeId reply_to = arg.src;
    co_await ctx.awaitValid(arg, 0, arg.bytes);
    co_await ctx.fetchCode(0x1000, spec.codeBytes);
    co_await ctx.compute(spec.setupInstructions);
    ctx.deallocateThrough(arg.address + ctx.owner().buffers()
                                            .params().bytes);

    std::uint64_t consumed = 0;
    std::uint64_t block_index = 0;
    std::uint64_t block_consumed = 0;
    std::uint64_t block_forward = 0;

    while (consumed < spec.fileBytes) {
        active::StreamChunk chunk = co_await ctx.nextChunk();
        assert(chunk.tag == io::tagIoReply);
        block_forward +=
            co_await spec.processChunk(ctx, chunk);
        consumed += chunk.bytes;
        block_consumed += chunk.bytes;
        ctx.deallocateThrough(chunk.address + chunk.bytes);

        const bool block_end = block_consumed >= spec.blockBytes ||
                               consumed >= spec.fileBytes;
        if (block_end) {
            net::PayloadPtr payload;
            if (spec.blockPayload)
                payload = spec.blockPayload(block_index);
            co_await ctx.send(reply_to, block_forward, std::nullopt,
                              std::move(payload), tagResult);
            ++block_index;
            block_consumed = 0;
            block_forward = 0;
        }
    }
}

} // namespace san::apps
