/**
 * @file
 * Parallel sort, distribution phase (paper §5).
 *
 * One-pass parallel sort over uniformly distributed keys
 * (Datamation-style 100-byte records with 10-byte keys): each of the
 * p participating hosts reads 1/p of the data and redistributes
 * records to their range owners; the local sort that follows is
 * identical in all configurations and is not simulated (as in the
 * paper).
 *
 * Normal modes: every host receives its file from disk, classifies
 * each record, and ships (p-1)/p of them to peers — per-node traffic
 * is its file in, (p-1)/p out, (p-1)/p in.
 *
 * Active modes: the switch handler classifies records as the disk
 * streams flow through it and forwards each record only to its
 * owner: per-node traffic drops to 1/p of the total data in and
 * nothing out — the paper's p/(3p-2) ratio (40% at p = 4).
 */

#ifndef SAN_APPS_PARALLEL_SORT_HH
#define SAN_APPS_PARALLEL_SORT_HH

#include <cstdint>

#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for the sort distribution phase. */
struct SortParams {
    std::uint64_t totalBytes = 16ull * 1024 * 1024; //!< Table 1: 16M
    unsigned nodes = 4;
    unsigned recordBytes = 100; //!< Datamation format
    unsigned keyBytes = 10;
    std::uint64_t blockBytes = 64 * 1024;
    std::uint64_t seed = 4242;

    /** @{ Cost model. */
    std::uint64_t classifyInstrPerRecord = 30; //!< key -> range bin
    std::uint64_t gatherInstrPerRecord = 25;   //!< copy into out-buf
    std::uint64_t chunkOverheadInstr = 40;
    std::uint64_t handlerCodeBytes = 2048;
    /** @} */
};

/** Destination node of a record (uniform key distribution). */
unsigned sortDestination(const SortParams &p, std::uint64_t record);

/** Run the distribution phase. checksum = records per node list. */
RunStats runParallelSort(Mode mode, const SortParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_PARALLEL_SORT_HH
