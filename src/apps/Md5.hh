/**
 * @file
 * MD5 message digest (RFC 1321), implemented from scratch.
 *
 * Two variants are provided:
 *  - md5(): the standard chained digest.
 *  - md5Interleaved(): the paper's multi-processor reformulation —
 *    blocks are dealt round-robin onto K independent chains ("the
 *    I-th block is part of the (I mod K)-th chain"); the K digests
 *    are concatenated and digested once more with the single-block
 *    algorithm.
 *
 * The real implementation grounds the simulator's cost model and
 * gives the semantic tests something to verify.
 */

#ifndef SAN_APPS_MD5_HH
#define SAN_APPS_MD5_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace san::apps {

/** A 128-bit digest. */
using Md5Digest = std::array<std::uint8_t, 16>;

/** Incremental MD5 state. */
class Md5
{
  public:
    Md5() { reset(); }

    void reset();
    void update(const std::uint8_t *data, std::size_t len);
    Md5Digest finish();

    /** Number of 64-byte blocks compressed so far. */
    std::uint64_t blocksProcessed() const { return blocks_; }

  private:
    void compress(const std::uint8_t block[64]);

    std::uint32_t state_[4];
    std::uint64_t totalLen_;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
    std::uint64_t blocks_ = 0;
};

/** One-shot digest of a byte vector. */
Md5Digest md5(const std::uint8_t *data, std::size_t len);
Md5Digest md5(const std::vector<std::uint8_t> &data);

/**
 * K-chain interleaved digest (the multi-switch-CPU algorithm).
 * @p k must be >= 1; k == 1 degenerates to plain MD5.
 */
Md5Digest md5Interleaved(const std::vector<std::uint8_t> &data,
                         unsigned k, std::size_t block_bytes = 64);

/** Hex string of a digest (for tests and tools). */
std::string toHex(const Md5Digest &digest);

} // namespace san::apps

#endif // SAN_APPS_MD5_HH
