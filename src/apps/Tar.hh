/**
 * @file
 * Tar -cf (paper §5): archive a set of input files.
 *
 * Split: the host parses options and generates a 512-byte header per
 * input file; the data path writes headers + file contents to the
 * output archive on a remote node. In the active modes the switch
 * handler initiates the disk reads itself (the only benchmark that
 * does) and streams the archive directly to the remote node — the
 * host sees nothing but its own headers, and nearly all its normal-
 * mode busy time (per-request OS overhead, interrupts) disappears.
 */

#ifndef SAN_APPS_TAR_HH
#define SAN_APPS_TAR_HH

#include <cstdint>

#include "apps/RunConfig.hh"

namespace san::apps {

/** Workload and cost parameters for Tar. */
struct TarParams {
    std::uint64_t totalBytes = 4ull * 1024 * 1024; //!< paper: 4 MB
    std::uint64_t fileBytes = 64 * 1024;           //!< 64 input files
    std::uint64_t headerBytes = 512;               //!< tar header

    /** @{ Cost model. */
    std::uint64_t headerGenInstr = 2500; //!< stat + format header
    std::uint64_t optionParseInstr = 5000;
    std::uint64_t forwardInstrPerChunk = 30; //!< handler redirect
    std::uint64_t handlerCodeBytes = 1536;
    /** @} */
};

/** Run Tar in one mode. checksum = archive bytes at remote node. */
RunStats runTar(Mode mode, const TarParams &params = {});

} // namespace san::apps

#endif // SAN_APPS_TAR_HH
