#include "apps/Tar.hh"

#include <cassert>
#include <deque>
#include <memory>
#include <string>

#include "apps/Cluster.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Per-file argument sent to the tar handler. */
struct TarFileArg {
    std::uint64_t index;
    std::uint64_t offset;
    std::uint64_t bytes;
    net::NodeId archiveNode;
    bool last;
};

} // namespace

RunStats
runTar(Mode mode, const TarParams &params)
{
    // Two hosts: host0 runs tar, host1 is the remote archive target.
    ClusterParams cp;
    cp.hosts = 2;
    Cluster cluster(cp);
    auto &host = cluster.host(0);
    auto &archive = cluster.host(1);
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();
    const unsigned files =
        static_cast<unsigned>(params.totalBytes / params.fileBytes);
    const std::uint64_t archive_bytes =
        params.totalBytes + files * params.headerBytes;

    auto archive_received = std::make_shared<std::uint64_t>(0);

    // Archive node: drain incoming archive data (headers + file
    // contents), touching it as it is written to the output file.
    cluster.sim().spawn([](host::Host &a, std::uint64_t expected,
                           std::shared_ptr<std::uint64_t> got)
                            -> sim::Task {
        while (*got < expected) {
            net::Message m = co_await a.recv();
            *got += m.bytes;
            if (m.bytes > 0) {
                const mem::Addr buf = a.allocBuffer(m.bytes);
                co_await a.cpu().touch(buf, m.bytes,
                                       mem::AccessKind::Store);
            }
        }
    }(archive, archive_bytes, archive_received));

    if (!isActive(mode)) {
        // Host reads every file and relays headers + data to the
        // archive node.
        cluster.sim().spawn(
            [](host::Host &h, net::NodeId st, net::NodeId dst,
               const TarParams &p, unsigned files_n,
               unsigned outstanding) -> sim::Task {
                co_await h.cpu().compute(p.optionParseInstr);
                std::uint64_t pending_id = 0;
                bool have_pending = false;
                for (unsigned f = 0; f < files_n; ++f) {
                    // Keep up to `outstanding` file reads in flight.
                    if (!have_pending) {
                        pending_id = co_await h.postRead(
                            st, f * p.fileBytes, p.fileBytes);
                        have_pending = true;
                    }
                    const std::uint64_t cur = pending_id;
                    have_pending = false;
                    if (outstanding > 1 && f + 1 < files_n) {
                        pending_id = co_await h.postRead(
                            st, (f + 1) * p.fileBytes, p.fileBytes);
                        have_pending = true;
                    }
                    co_await h.awaitIo(cur);
                    // Generate and send the tar header, then relay
                    // the file data to the archive.
                    co_await h.cpu().compute(p.headerGenInstr);
                    co_await h.send(dst, p.headerBytes);
                    const mem::Addr buf = h.allocBuffer(p.fileBytes);
                    co_await h.cpu().touch(buf, p.fileBytes,
                                           mem::AccessKind::Load);
                    co_await h.send(dst, p.fileBytes);
                }
            }(host, storage, archive.id(), params, files,
              outstandingRequests(mode)));
    } else {
        // The switch handler archives one file per argument message:
        // it emits the header, reads the file from disk itself, and
        // forwards every chunk to the archive node. Arguments for
        // later files may interleave with the current file's data
        // stream (two outstanding in "+pref"), so they are stashed.
        auto handler = [&params, storage](active::HandlerContext &ctx)
            -> sim::Task {
            co_await ctx.fetchCode(0x1000, params.handlerCodeBytes);
            struct PendingFile {
                TarFileArg file;
                net::NodeId src;
            };
            std::deque<PendingFile> stashed_args;
            for (;;) {
                PendingFile next;
                if (!stashed_args.empty()) {
                    next = stashed_args.front();
                    stashed_args.pop_front();
                } else {
                    active::StreamChunk arg = co_await ctx.nextChunk();
                    assert(arg.tag == tagArgs);
                    co_await ctx.awaitValid(arg, 0, arg.bytes);
                    next.file = *static_cast<const TarFileArg *>(
                        arg.payload.get());
                    next.src = arg.src;
                    // Free the argument buffer immediately: a held
                    // mapping would collide with file-data chunks in
                    // the direct-mapped ATB.
                    ctx.deallocateOne(arg.address);
                }
                const TarFileArg file = next.file;
                const net::NodeId arg_src = next.src;

                // Header goes into the archive stream first.
                co_await ctx.send(file.archiveNode, params.headerBytes,
                                  std::nullopt, nullptr, host::tagApp);
                // Switch-initiated disk read, data mapped back into
                // this handler's address space.
                const std::uint32_t map_base =
                    static_cast<std::uint32_t>(0x1000000 + file.offset);
                co_await ctx.postRead(
                    storage, file.offset, file.bytes, ctx.owner().id(),
                    net::ActiveHeader{ctx.handlerId(), map_base, 0});
                std::uint64_t moved = 0;
                while (moved < file.bytes) {
                    active::StreamChunk c = co_await ctx.nextChunk();
                    if (c.tag == tagArgs) {
                        co_await ctx.awaitValid(c, 0, c.bytes);
                        PendingFile stash;
                        stash.file = *static_cast<const TarFileArg *>(
                            c.payload.get());
                        stash.src = c.src;
                        stashed_args.push_back(stash);
                        ctx.deallocateOne(c.address);
                        continue;
                    }
                    assert(c.tag == io::tagIoReply);
                    co_await ctx.awaitValid(c, 0, c.bytes);
                    co_await ctx.compute(params.forwardInstrPerChunk);
                    co_await ctx.send(file.archiveNode, c.bytes,
                                      std::nullopt, nullptr,
                                      host::tagApp);
                    moved += c.bytes;
                    ctx.deallocateThrough(c.address + c.bytes);
                }
                // Tell the host this file is archived.
                co_await ctx.send(arg_src, 0, std::nullopt, nullptr,
                                  tagResult);
                if (file.last)
                    break;
            }
        };
        sw.registerHandler(1, "tar", handler);

        cluster.sim().spawn(
            [](host::Host &h, net::NodeId sw_id, net::NodeId dst,
               const TarParams &p, unsigned files_n,
               unsigned outstanding) -> sim::Task {
                co_await h.cpu().compute(p.optionParseInstr);
                unsigned sent = 0, done = 0;
                while (done < files_n) {
                    while (sent < files_n && sent - done < outstanding) {
                        co_await h.cpu().compute(p.headerGenInstr);
                        auto arg = std::make_shared<TarFileArg>();
                        arg->index = sent;
                        arg->offset = sent * p.fileBytes;
                        arg->bytes = p.fileBytes;
                        arg->archiveNode = dst;
                        arg->last = (sent + 1 == files_n);
                        // The argument message carries the actual
                        // 512 B tar header (the paper: host I/O
                        // traffic = one header per file). Args live
                        // in a high address region so the handler's
                        // per-chunk Deallocate_Buffer of the file
                        // stream never frees a stashed arg.
                        co_await h.send(
                            sw_id, p.headerBytes,
                            net::ActiveHeader{
                                1,
                                0xF0000000u + (sent % 8) * 512, 0},
                            arg, tagArgs);
                        ++sent;
                    }
                    net::Message m = co_await h.recv();
                    assert(m.tag == tagResult);
                    ++done;
                }
            }(host, sw.id(), archive.id(), params, files,
              outstandingRequests(mode)));
    }

    RunStats stats = cluster.collect(mode);
    // The measured system is the host running tar; the remote
    // archive target is outside it (as in the paper).
    stats.hosts.resize(1);
    stats.hostIoBytes = host.ioTrafficBytes();
    stats.checksum = std::to_string(*archive_received);
    return stats;
}

} // namespace san::apps
