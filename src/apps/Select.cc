#include "apps/Select.hh"

#include <memory>
#include <string>

#include "apps/Cluster.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Deterministic per-record match decision shared by host & switch. */
bool
recordMatches(std::uint64_t seed, std::uint64_t record_index,
              double selectivity)
{
    std::uint64_t z = seed + record_index * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53 < selectivity;
}

std::uint64_t
matchesIn(const SelectParams &p, std::uint64_t first_record,
          std::uint64_t records)
{
    std::uint64_t m = 0;
    for (std::uint64_t i = 0; i < records; ++i)
        m += recordMatches(p.seed, first_record + i, p.selectivity);
    return m;
}

} // namespace

RunStats
runSelect(Mode mode, const SelectParams &params)
{
    ClusterParams cp = params.cluster;
    cp.hostMem = mem::scaledHostMemoryParams(); // DB-class caches
    Cluster cluster(cp);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();

    auto total_matches = std::make_shared<std::uint64_t>(0);
    const std::uint64_t records_per_chunk = 512 / params.recordBytes;

    if (!isActive(mode)) {
        // Host scans every record of every block it reads.
        // Blocks arrive sequentially; this cursor tracks the global
        // record index across on_block invocations of this run.
        auto cursor = std::make_shared<std::uint64_t>(0);
        auto on_block = [&params, total_matches, cursor](
                            host::Host &h, mem::Addr buf,
                            std::uint64_t bytes) -> sim::Task {
            const std::uint64_t records = bytes / params.recordBytes;
            const std::uint64_t first = *cursor;
            *cursor += records;
            const std::uint64_t m = matchesIn(params, first, records);
            *total_matches += m;
            co_await h.cpu().compute(records * params.checkInstrPerRecord +
                                     m * params.countInstrPerMatch);
            co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
        };
        // Reset the per-run record cursor (static above) by running
        // the whole table exactly once per simulation.
        cluster.sim().spawn(normalHostLoop(
            host, storage, params.tableBytes, params.blockBytes,
            outstandingRequests(mode), on_block));
    } else {
        // Switch-side selection: check records in the data buffers,
        // forward only matches.
        FilterHandler spec;
        spec.fileBytes = params.tableBytes;
        spec.blockBytes = params.blockBytes;
        spec.codeBytes = params.handlerCodeBytes;
        spec.processChunk =
            [&params, records_per_chunk](
                active::HandlerContext &ctx,
                const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            const std::uint64_t first =
                chunk.address / params.recordBytes;
            const std::uint64_t records =
                chunk.bytes / params.recordBytes;
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(
                params.chunkOverheadInstr +
                records * params.checkInstrPerRecord);
            const std::uint64_t m = matchesIn(params, first, records);
            co_return static_cast<std::uint32_t>(
                m * params.recordBytes);
        };
        sw.registerHandler(1, "select", [spec](active::HandlerContext &c) {
            return runFilterHandler(c, spec);
        });

        auto on_reply = [&params, total_matches](
                            host::Host &h,
                            const net::Message &reply) -> sim::Task {
            const std::uint64_t m = reply.bytes / params.recordBytes;
            *total_matches += m;
            co_await h.cpu().compute(m * params.countInstrPerMatch);
            if (reply.bytes > 0) {
                const mem::Addr buf = h.allocBuffer(reply.bytes);
                co_await h.cpu().touch(buf, reply.bytes,
                                       mem::AccessKind::Prefetch);
            }
        };
        ActiveLoop loop;
        loop.storage = storage;
        loop.switchNode = sw.id();
        loop.handlerId = 1;
        loop.fileBytes = params.tableBytes;
        loop.blockBytes = params.blockBytes;
        loop.outstanding = outstandingRequests(mode);
        cluster.sim().spawn(activeHostLoop(host, loop, on_reply));
    }

    RunStats stats = cluster.collect(mode);
    stats.checksum = std::to_string(*total_matches);
    return stats;
}

} // namespace san::apps
