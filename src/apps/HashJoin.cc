#include "apps/HashJoin.hh"

#include <memory>
#include <string>

#include "apps/Cluster.hh"
#include "apps/DetHash.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Memory-layout anchors (model addresses, disjoint regions). */
constexpr mem::Addr bitVectorBase = 0x4000000;   // 128 KB bit-vector
constexpr mem::Addr hashTableBase = 0x8000000;   // R hash table

/** Address of the bit-vector byte a record's hash selects. */
mem::Addr
bitAddr(const HashJoinParams &p, std::uint64_t h)
{
    return bitVectorBase + (h % (p.bitVectorBytes * 8)) / 8;
}

/** Address of the hash-table bucket a record's hash selects. */
mem::Addr
bucketAddr(const HashJoinParams &p, std::uint64_t h)
{
    // Buckets span the in-memory R relation (16 MB working set).
    return hashTableBase + (h % p.rBytes) / 64 * 64;
}

} // namespace

RunStats
runHashJoin(Mode mode, const HashJoinParams &params)
{
    ClusterParams cp;
    cp.hostMem = mem::scaledHostMemoryParams();
    Cluster cluster(cp);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();

    auto survivors = std::make_shared<std::uint64_t>(0);
    const std::uint64_t hash_seed = params.seed;
    const std::uint64_t match_seed = params.seed ^ 0xabcdef;

    // ---- Host-side record batch processing ---------------------------
    // Build phase: hash + insert every R record.
    auto host_build = [&params, hash_seed](
                          host::Host &h, mem::Addr buf,
                          std::uint64_t bytes,
                          std::uint64_t first) -> sim::Task {
        const std::uint64_t records = bytes / params.recordBytes;
        co_await h.cpu().compute(records * (params.hashInstrPerRecord +
                                            params.buildInstrPerRecord));
        co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
        sim::Tick stall = 0;
        auto &mem_sys = h.cpu().memory();
        for (std::uint64_t i = 0; i < records; ++i) {
            const std::uint64_t hv = detHash(hash_seed, first + i);
            stall += mem_sys.dataAccess(bucketAddr(params, hv), 8,
                                        mem::AccessKind::Store,
                                        h.cpu().now() + stall);
        }
        co_await h.cpu().stallFor(stall);
    };

    // Probe phase on matching records only (both modes).
    auto host_probe = [&params](host::Host &h, std::uint64_t matches,
                                std::uint64_t first_hash_idx,
                                std::uint64_t hash_seed_v) -> sim::Task {
        co_await h.cpu().compute(matches * params.probeInstrPerMatch);
        sim::Tick stall = 0;
        auto &mem_sys = h.cpu().memory();
        for (std::uint64_t i = 0; i < matches; ++i) {
            const std::uint64_t hv =
                detHash(hash_seed_v, first_hash_idx + i);
            stall += mem_sys.dataAccess(bucketAddr(params, hv), 64,
                                        mem::AccessKind::Load,
                                        h.cpu().now() + stall);
        }
        co_await h.cpu().stallFor(stall);
    };

    if (!isActive(mode)) {
        auto r_cursor = std::make_shared<std::uint64_t>(0);
        auto s_cursor = std::make_shared<std::uint64_t>(0);

        auto on_r_block = [&params, host_build, hash_seed, r_cursor](
                              host::Host &h, mem::Addr buf,
                              std::uint64_t bytes) -> sim::Task {
            const std::uint64_t first = *r_cursor;
            *r_cursor += bytes / params.recordBytes;
            // Build the hash table...
            co_await host_build(h, buf, bytes, first);
            // ...and set bit-vector bits (normal mode does both).
            const std::uint64_t records = bytes / params.recordBytes;
            co_await h.cpu().compute(records *
                                     params.filterInstrPerRecord);
            sim::Tick stall = 0;
            auto &mem_sys = h.cpu().memory();
            for (std::uint64_t i = 0; i < records; ++i) {
                const std::uint64_t hv = detHash(hash_seed, first + i);
                stall += mem_sys.dataAccess(bitAddr(params, hv), 1,
                                            mem::AccessKind::Store,
                                            h.cpu().now() + stall);
            }
            co_await h.cpu().stallFor(stall);
        };

        auto on_s_block = [&params, host_probe, survivors, hash_seed,
                           match_seed, s_cursor](
                              host::Host &h, mem::Addr buf,
                              std::uint64_t bytes) -> sim::Task {
            const std::uint64_t records = bytes / params.recordBytes;
            const std::uint64_t first = *s_cursor;
            *s_cursor += records;
            co_await h.cpu().compute(
                records * (params.hashInstrPerRecord +
                           params.filterInstrPerRecord));
            co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
            // Bit-vector checks for every record.
            sim::Tick stall = 0;
            auto &mem_sys = h.cpu().memory();
            std::uint64_t matches = 0;
            for (std::uint64_t i = 0; i < records; ++i) {
                const std::uint64_t hv = detHash(hash_seed, first + i);
                stall += mem_sys.dataAccess(bitAddr(params, hv), 1,
                                            mem::AccessKind::Load,
                                            h.cpu().now() + stall);
                matches += detChance(match_seed, first + i,
                                     params.reductionFactor);
            }
            co_await h.cpu().stallFor(stall);
            *survivors += matches;
            co_await host_probe(h, matches, first, hash_seed ^ 0x55);
        };

        cluster.sim().spawn([](Cluster &c, host::Host &h,
                               net::NodeId st,
                               const HashJoinParams &p, unsigned out,
                               BlockFn r_fn, BlockFn s_fn) -> sim::Task {
            co_await normalHostLoop(h, st, p.rBytes, p.blockBytes, out,
                                    std::move(r_fn));
            co_await normalHostLoop(h, st, p.sBytes, p.blockBytes, out,
                                    std::move(s_fn));
            (void)c;
        }(cluster, host, storage, params, outstandingRequests(mode),
          on_r_block, on_s_block));
    } else {
        // ---- Switch handlers ----------------------------------------
        // Handler 1: R streams through; the switch sets bit-vector
        // bits and forwards everything to the host.
        FilterHandler build_spec;
        build_spec.fileBytes = params.rBytes;
        build_spec.blockBytes = params.blockBytes;
        build_spec.codeBytes = params.handlerCodeBytes;
        build_spec.processChunk =
            [&params, hash_seed](active::HandlerContext &ctx,
                                 const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            const std::uint64_t records =
                chunk.bytes / params.recordBytes;
            const std::uint64_t first =
                chunk.address / params.recordBytes;
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(
                params.chunkOverheadInstr +
                records * (params.hashInstrPerRecord +
                           params.filterInstrPerRecord));
            sim::Tick stall = 0;
            auto &mem_sys = ctx.cpu().memory();
            for (std::uint64_t i = 0; i < records; ++i) {
                const std::uint64_t hv = detHash(hash_seed, first + i);
                stall += mem_sys.dataAccess(bitAddr(params, hv), 1,
                                            mem::AccessKind::Store,
                                            ctx.cpu().now() + stall);
            }
            co_await ctx.cpu().stallFor(stall);
            co_return chunk.bytes; // R passes through to the host
        };

        // Handler 2: S is filtered in the switch; only survivors go
        // to the host.
        FilterHandler filter_spec;
        filter_spec.fileBytes = params.sBytes;
        filter_spec.blockBytes = params.blockBytes;
        filter_spec.codeBytes = params.handlerCodeBytes;
        filter_spec.processChunk =
            [&params, hash_seed, match_seed, survivors](
                active::HandlerContext &ctx,
                const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            const std::uint64_t records =
                chunk.bytes / params.recordBytes;
            const std::uint64_t first =
                chunk.address / params.recordBytes;
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(
                params.chunkOverheadInstr +
                records * (params.hashInstrPerRecord +
                           params.filterInstrPerRecord));
            sim::Tick stall = 0;
            auto &mem_sys = ctx.cpu().memory();
            std::uint64_t matches = 0;
            for (std::uint64_t i = 0; i < records; ++i) {
                const std::uint64_t hv = detHash(hash_seed, first + i);
                stall += mem_sys.dataAccess(bitAddr(params, hv), 1,
                                            mem::AccessKind::Load,
                                            ctx.cpu().now() + stall);
                matches += detChance(match_seed, first + i,
                                     params.reductionFactor);
            }
            co_await ctx.cpu().stallFor(stall);
            *survivors += matches;
            co_return static_cast<std::uint32_t>(
                matches * params.recordBytes);
        };

        sw.registerHandler(1, "hj-build",
                           [build_spec](active::HandlerContext &c) {
                               return runFilterHandler(c, build_spec);
                           });
        sw.registerHandler(2, "hj-filter",
                           [filter_spec](active::HandlerContext &c) {
                               return runFilterHandler(c, filter_spec);
                           });

        // ---- Host side ----------------------------------------------
        auto r_cursor = std::make_shared<std::uint64_t>(0);
        auto on_r_reply = [&params, host_build, r_cursor](
                              host::Host &h,
                              const net::Message &reply) -> sim::Task {
            const std::uint64_t first = *r_cursor;
            *r_cursor += reply.bytes / params.recordBytes;
            if (reply.bytes > 0) {
                const mem::Addr buf = h.allocBuffer(reply.bytes);
                co_await host_build(h, buf, reply.bytes, first);
            }
        };

        auto probe_cursor = std::make_shared<std::uint64_t>(0);
        auto on_s_reply = [&params, host_probe, probe_cursor, hash_seed](
                              host::Host &h,
                              const net::Message &reply) -> sim::Task {
            const std::uint64_t matches =
                reply.bytes / params.recordBytes;
            if (reply.bytes > 0) {
                const mem::Addr buf = h.allocBuffer(reply.bytes);
                co_await h.cpu().touch(buf, reply.bytes,
                                       mem::AccessKind::Load);
            }
            const std::uint64_t first = *probe_cursor;
            *probe_cursor += matches;
            co_await host_probe(h, matches, first, hash_seed ^ 0x55);
        };

        cluster.sim().spawn(
            [](host::Host &h, net::NodeId st, net::NodeId sw_id,
               const HashJoinParams &p, unsigned out, ReplyFn r_fn,
               ReplyFn s_fn) -> sim::Task {
                ActiveLoop r_loop;
                r_loop.storage = st;
                r_loop.switchNode = sw_id;
                r_loop.handlerId = 1;
                r_loop.fileBytes = p.rBytes;
                r_loop.blockBytes = p.blockBytes;
                r_loop.outstanding = out;
                co_await activeHostLoop(h, r_loop, std::move(r_fn));

                ActiveLoop s_loop;
                s_loop.storage = st;
                s_loop.switchNode = sw_id;
                s_loop.handlerId = 2;
                s_loop.fileBytes = p.sBytes;
                s_loop.blockBytes = p.blockBytes;
                s_loop.outstanding = out;
                s_loop.diskOffset = p.rBytes;
                co_await activeHostLoop(h, s_loop, std::move(s_fn));
            }(host, storage, sw.id(), params, outstandingRequests(mode),
              on_r_reply, on_s_reply));
    }

    RunStats stats = cluster.collect(mode);
    stats.checksum = std::to_string(*survivors);
    return stats;
}

} // namespace san::apps
