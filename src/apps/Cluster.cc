#include "apps/Cluster.hh"

#include <cassert>

namespace san::apps {

Cluster::Cluster(const ClusterParams &params)
    : params_(params), fabric_(sim_, params.link, params.adapter)
{
    assert(params.hosts + params.storageNodes <= params.switchPorts);
    sw_ = &fabric_.addSwitch<active::ActiveSwitch>(
        net::SwitchParams{params.switchPorts}, params.active);

    unsigned port = 0;
    for (unsigned i = 0; i < params.hosts; ++i) {
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), fabric_, params.hostMem,
            params.os));
        fabric_.connect(*sw_, port++, hosts_.back()->hca());
    }
    for (unsigned i = 0; i < params.storageNodes; ++i) {
        auto &tca = fabric_.addAdapter("tca" + std::to_string(i));
        storage_.push_back(
            std::make_unique<io::StorageNode>(sim_, tca, params.storage));
        fabric_.connect(*sw_, port++, tca);
    }
    fabric_.computeRoutes();
    for (auto &h : hosts_)
        h->start();
    for (auto &s : storage_)
        s->start();
}

RunStats
Cluster::collect(Mode mode)
{
    const sim::Tick end = sim_.run();
    RunStats stats;
    stats.mode = mode;
    stats.execTime = end;
    for (auto &h : hosts_) {
        stats.hosts.push_back(h->cpu().breakdown(end));
        stats.hostIoBytes += h->ioTrafficBytes();
    }
    if (isActive(mode))
        for (unsigned i = 0; i < sw_->cpuCount(); ++i)
            stats.switchCpus.push_back(sw_->cpu(i).breakdown(end));
    return stats;
}

} // namespace san::apps
