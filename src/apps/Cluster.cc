#include "apps/Cluster.hh"

#include <cassert>

#include "fault/FaultPlan.hh"
#include "obs/Hooks.hh"
#include "obs/Metrics.hh"

namespace san::apps {

ClusterObserver &
clusterObserver()
{
    static ClusterObserver observer;
    return observer;
}

Cluster::Cluster(const ClusterParams &params)
    : params_(params), fabric_(sim_, params.link, params.adapter)
{
    assert(params.hosts + params.storageNodes <= params.switchPorts);
    sim_.setTracer(obs::globalTracer());
    sim_.events().setObserver(&fingerprint_);
    sw_ = &fabric_.addSwitch<active::ActiveSwitch>(
        net::SwitchParams{params.switchPorts}, params.active);

    unsigned port = 0;
    for (unsigned i = 0; i < params.hosts; ++i) {
        hosts_.push_back(std::make_unique<host::Host>(
            sim_, "host" + std::to_string(i), fabric_, params.hostMem,
            params.os));
        fabric_.connect(*sw_, port++, hosts_.back()->hca());
    }
    for (unsigned i = 0; i < params.storageNodes; ++i) {
        auto &tca = fabric_.addAdapter("tca" + std::to_string(i));
        storage_.push_back(
            std::make_unique<io::StorageNode>(sim_, tca, params.storage));
        fabric_.connect(*sw_, port++, tca);
    }
    fabric_.computeRoutes();
    for (auto &h : hosts_)
        h->start();
    for (auto &s : storage_)
        s->start();

    // Threaded run: shard one-component-per-logical-process (the
    // single switch plus every adapter — a one-switch cluster has no
    // coarser cut that parallelizes anything). The server/demux
    // tasks started above are safe to start unsharded: they suspend
    // on their receive channels without scheduling events, and
    // resume on whichever shard pushes.
    if (params.threads > 1) {
        assert(obs::globalSampler() == nullptr &&
               "--metrics-csv requires --threads 1");
        plan_ = fabric_.planShards(1 + fabric_.adapters().size());
        fabric_.applyShardPlan(plan_);
        shardedFp_.attach(sim_);
        if (obs::Telemetry *tel = obs::globalTelemetry())
            tel->enableShards(plan_.shards);
    }

    // When a sampler is installed (bench --metrics-csv), point it at
    // this cluster: re-register every component's gauges (the
    // previous cluster is gone) and chain it in front of the
    // fingerprint observer. Without a sampler this is all skipped
    // and runs pay nothing.
    if (obs::IntervalSampler *sampler = obs::globalSampler()) {
        sampler->registry().clear();
        // Kernel first: queue depth / horizon / ladder occupancy
        // columns lead every timeline.
        obs::registerKernelGauges(sampler->registry(), sim_.events());
        for (auto &h : hosts_)
            h->registerMetrics(sampler->registry());
        sw_->registerMetrics(sampler->registry());
        for (unsigned i = 0; i < storageCount(); ++i)
            storage_[i]->registerMetrics(
                sampler->registry(), "storage" + std::to_string(i));
        for (const auto &link : fabric_.links())
            link->registerMetrics(sampler->registry());
        // Recovery timelines, only meaningful under a fault plan.
        if (fault::globalPlan() != nullptr) {
            obs::MetricsRegistry &m = sampler->registry();
            m.add("fault.injected", obs::GaugeKind::Rate, [] {
                return static_cast<double>(
                    fault::globalPlan()->injected());
            });
            m.add("net.retransmits", obs::GaugeKind::Rate, [this] {
                std::uint64_t n = 0;
                for (const auto &a : fabric_.adapters())
                    if (const auto *rel = a->reliable())
                        n += rel->retransmits();
                if (const auto *rel = sw_->reliable())
                    n += rel->retransmits();
                return static_cast<double>(n);
            });
            m.add("switch.failovers", obs::GaugeKind::Rate, [this] {
                return static_cast<double>(sw_->handlerFailovers());
            });
            m.add("io.retries", obs::GaugeKind::Rate, [this] {
                std::uint64_t n = 0;
                for (const auto &s : storage_)
                    n += s->ioRetries();
                return static_cast<double>(n);
            });
        }
        sampler->attach(sim_.events());
    }
}

std::size_t
Cluster::hostShard(unsigned i)
{
    if (!sim_.sharded())
        return 0;
    return plan_.adapterShard[fabric_.adapterIndex(
        hosts_.at(i)->hca())];
}

void
Cluster::spawnOnHost(unsigned i, sim::Task task)
{
    sim::ShardGuard guard(sim_, hostShard(i));
    sim_.spawn(std::move(task));
}

RunStats
Cluster::collect(Mode mode)
{
    const sim::Tick end = params_.threads > 1
                              ? sim_.runSharded(params_.threads)
                              : sim_.run();
    if (obs::IntervalSampler *sampler = obs::globalSampler())
        sampler->finishRun(end);
    RunStats stats;
    stats.mode = mode;
    stats.execTime = end;
    stats.eventsExecuted = sim_.executedEvents();
    for (auto &h : hosts_) {
        stats.hosts.push_back(h->cpu().breakdown(end));
        stats.hostIoBytes += h->ioTrafficBytes();
    }
    if (isActive(mode)) {
        for (unsigned i = 0; i < sw_->cpuCount(); ++i)
            stats.switchCpus.push_back(sw_->cpu(i).breakdown(end));
        const sim::Tick cycle =
            sim::Frequency(params_.active.cpuHz).period();
        for (const auto &[id, p] : sw_->handlerProfiles()) {
            HandlerCpuProfile out;
            out.id = p.id;
            out.name = p.name;
            out.invocations = p.invocations;
            out.chunks = p.chunks;
            out.bytes = p.bytes;
            out.busyTicks = p.busyTicks;
            out.stallTicks = p.stallTicks;
            out.busyCycles = p.busyTicks / cycle;
            out.cyclesPerByte =
                p.bytes > 0 ? static_cast<double>(out.busyCycles) /
                                  static_cast<double>(p.bytes)
                            : 0.0;
            stats.handlerProfiles.push_back(std::move(out));
        }
    }

    // Recovery counters, only when a fault plan drove the run. They
    // are NOT folded into the fingerprint: the event stream already
    // captures fault timing, and keeping them out lets a fault-free
    // plan ("none:0") reproduce the no-plan fingerprint modulo the
    // protocol's own control traffic.
    if (const fault::FaultPlan *plan = fault::globalPlan()) {
        FaultStats &f = stats.faults;
        f.active = true;
        f.injected = plan->injected();
        const auto fold = [&f](const fault::ReliableChannel *rel) {
            if (rel == nullptr)
                return;
            f.retransmits += rel->retransmits();
            f.timeouts += rel->timeouts();
            f.crcDrops += rel->crcDrops();
            f.dupDrops += rel->dupDrops();
            f.flowAborts += rel->aborts();
        };
        for (const auto &a : fabric_.adapters())
            fold(a->reliable());
        fold(sw_->reliable());
        f.failovers = sw_->handlerFailovers();
        for (const auto &s : storage_) {
            f.ioRetries += s->ioRetries();
            f.ioErrors += s->ioErrors();
        }
        for (const auto &link : fabric_.links())
            f.creditsLost += link->creditsLost();
    }

    // Sharded run: the legacy-queue observer saw nothing; seed the
    // stat fold with the deterministic per-shard stream merge
    // instead (DESIGN.md §14).
    if (sim_.sharded())
        shardedFp_.combineInto(fingerprint_);

    // Fold the end-of-run stat values on top of the per-event stream
    // so a run with identical timing but different results still
    // yields a different fingerprint.
    fingerprint_.foldStat("execTime", static_cast<double>(end));
    fingerprint_.foldStat("hostIoBytes",
                          static_cast<double>(stats.hostIoBytes));
    for (const auto &h : stats.hosts) {
        fingerprint_.foldStat("host.busy", static_cast<double>(h.busy));
        fingerprint_.foldStat("host.stall",
                              static_cast<double>(h.stall));
    }
    for (const auto &s : stats.switchCpus) {
        fingerprint_.foldStat("sp.busy", static_cast<double>(s.busy));
        fingerprint_.foldStat("sp.stall", static_cast<double>(s.stall));
    }
    for (const auto &p : stats.handlerProfiles) {
        fingerprint_.foldStat("handler.busy",
                              static_cast<double>(p.busyTicks));
        fingerprint_.foldStat("handler.bytes",
                              static_cast<double>(p.bytes));
    }
    stats.fingerprint = fingerprint_.value();

    // Fold the lineage records into their histograms now that the run
    // is quiescent. Like FaultStats, never fingerprinted: telemetry
    // observes the event stream without perturbing it.
    if (obs::Telemetry *tel = obs::globalTelemetry())
        stats.telemetry = tel->finishRun();

    if (clusterObserver())
        clusterObserver()(*this, mode);
    return stats;
}

} // namespace san::apps
