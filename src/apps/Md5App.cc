#include "apps/Md5App.hh"

#include <memory>
#include <vector>

#include "apps/Cluster.hh"
#include "apps/DetHash.hh"
#include "apps/Md5.hh"
#include "apps/StreamCommon.hh"
#include "io/IoRequest.hh"

namespace san::apps {

namespace {

/** Deterministic pseudo-random input (same in every mode). */
std::vector<std::uint8_t>
makeInput(const Md5Params &p)
{
    std::vector<std::uint8_t> data(p.fileBytes);
    for (std::uint64_t i = 0; i < p.fileBytes; i += 8) {
        const std::uint64_t v = detHash(p.seed, i / 8);
        for (unsigned b = 0; b < 8 && i + b < p.fileBytes; ++b)
            data[i + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    return data;
}

/** Bytes of the file assigned to chain k (blocks dealt round-robin). */
std::uint64_t
shareOf(const Md5Params &p, unsigned k)
{
    std::uint64_t share = 0;
    const std::uint64_t blocks =
        (p.fileBytes + p.blockBytes - 1) / p.blockBytes;
    for (std::uint64_t b = 0; b < blocks; ++b) {
        if (b % p.switchCpus == k) {
            const std::uint64_t off = b * p.blockBytes;
            share += std::min<std::uint64_t>(p.blockBytes,
                                             p.fileBytes - off);
        }
    }
    return share;
}

} // namespace

RunStats
runMd5(Mode mode, const Md5Params &params)
{
    ClusterParams cp;
    cp.active.cpus = isActive(mode) ? params.switchCpus : 1;
    Cluster cluster(cp);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    const net::NodeId storage = cluster.storage().id();

    const std::vector<std::uint8_t> input = makeInput(params);

    if (!isActive(mode)) {
        auto on_block = [&params](host::Host &h, mem::Addr buf,
                                  std::uint64_t bytes) -> sim::Task {
            co_await h.cpu().compute(bytes *
                                     params.digestInstrPerByte);
            co_await h.cpu().touch(buf, bytes, mem::AccessKind::Load);
        };
        cluster.sim().spawn(
            [](host::Host &h, net::NodeId st, const Md5Params &p,
               unsigned out, BlockFn fn) -> sim::Task {
                co_await normalHostLoop(h, st, p.fileBytes, p.blockBytes,
                                        out, std::move(fn));
                co_await h.cpu().compute(p.finalizeInstr);
            }(host, storage, params, outstandingRequests(mode),
              on_block));
    } else {
        // One handler instance per switch CPU, each digesting its
        // chain of blocks.
        auto handler = [params](active::HandlerContext &ctx)
            -> sim::Task {
            active::StreamChunk arg = co_await ctx.nextChunk();
            const net::NodeId reply_to = arg.src;
            co_await ctx.awaitValid(arg, 0, arg.bytes);
            co_await ctx.fetchCode(0x1000, params.handlerCodeBytes);
            ctx.deallocateOne(arg.address);

            const std::uint64_t share = shareOf(params, ctx.cpuIndex());
            std::uint64_t consumed = 0, in_block = 0;
            while (consumed < share) {
                active::StreamChunk c = co_await ctx.nextChunk();
                co_await ctx.awaitValid(c, 0, c.bytes);
                co_await ctx.compute(params.chunkOverheadInstr +
                                     c.bytes *
                                         params.digestInstrPerByte);
                consumed += c.bytes;
                in_block += c.bytes;
                ctx.deallocateThrough(c.address + c.bytes);
                if (in_block >= params.blockBytes || consumed >= share) {
                    in_block = 0;
                    co_await ctx.send(reply_to, 0, std::nullopt,
                                      nullptr, tagResult);
                }
            }
            co_await ctx.compute(params.finalizeInstr);
            co_await ctx.send(reply_to, 16, std::nullopt, nullptr,
                              tagData);
        };
        sw.registerHandler(1, "md5", handler);

        cluster.sim().spawn(
            [](host::Host &h, net::NodeId st, net::NodeId sw_id,
               const Md5Params &p, unsigned outstanding) -> sim::Task {
                // Invoke one handler instance per chain.
                for (unsigned k = 0; k < p.switchCpus; ++k)
                    co_await h.send(
                        sw_id, 64,
                        net::ActiveHeader{
                            1, static_cast<std::uint32_t>(
                                   0xF000000 + k * 512),
                            static_cast<std::uint8_t>(k)},
                        nullptr, tagArgs);

                const std::uint64_t blocks =
                    (p.fileBytes + p.blockBytes - 1) / p.blockBytes;
                std::uint64_t posted = 0, acked = 0;
                auto post = [&]() -> sim::Task {
                    const std::uint64_t off = posted * p.blockBytes;
                    const std::uint64_t len = std::min<std::uint64_t>(
                        p.blockBytes, p.fileBytes - off);
                    co_await h.postReadTo(
                        st, off, len, sw_id,
                        net::ActiveHeader{
                            1, static_cast<std::uint32_t>(off),
                            static_cast<std::uint8_t>(posted %
                                                      p.switchCpus)});
                    ++posted;
                };
                // Each chain keeps its own window of outstanding
                // blocks; the aggregate stream feeds all K CPUs.
                const std::uint64_t window =
                    static_cast<std::uint64_t>(outstanding) *
                    p.switchCpus;
                while (posted < blocks && posted < window)
                    co_await post();
                unsigned digests = 0;
                while (acked < blocks || digests < p.switchCpus) {
                    net::Message m = co_await h.recv();
                    if (m.tag == tagResult) {
                        ++acked;
                        if (posted < blocks)
                            co_await post();
                    } else {
                        ++digests;
                    }
                }
                // Digest-of-digests on the host.
                co_await h.cpu().compute(p.switchCpus * 16 *
                                             p.digestInstrPerByte +
                                         p.finalizeInstr);
            }(host, storage, sw.id(), params,
              outstandingRequests(mode)));
    }

    RunStats stats = cluster.collect(mode);
    stats.checksum =
        isActive(mode)
            ? toHex(md5Interleaved(input, params.switchCpus,
                                   params.blockBytes))
            : toHex(md5(input));
    return stats;
}

} // namespace san::apps
