/**
 * @file
 * End-to-end reliable delivery for SAN endpoints.
 *
 * A ReliableChannel is the recovery engine one endpoint (an HCA/TCA
 * adapter, or the active switch itself) runs when a fault plan is
 * installed. It implements a per-flow go-back-N protocol:
 *
 *  Sender, per (this endpoint -> dst) flow
 *  ---------------------------------------
 *   - every data packet is stamped with a per-flow sequence number
 *     and a 32-bit FNV checksum, then held in a bounded send window;
 *     packets beyond the window queue in a backlog;
 *   - a cumulative ACK slides the window and releases the backlog;
 *   - a NACK(seq) — or a retransmit timeout with bounded exponential
 *     backoff — retransmits every unacknowledged packet from seq on;
 *   - after maxRetries consecutive timeouts the flow is abandoned
 *     (counted in aborts(); the simulation never wedges on a fault
 *     the protocol cannot recover from).
 *
 *  Receiver, per (src -> this endpoint) flow
 *  -----------------------------------------
 *   - a packet whose checksum fails (a link bit error hit it) is
 *     dropped and NACKed — at most one NACK per expected sequence
 *     number, so a burst of in-flight packets behind a corrupt one
 *     triggers exactly one go-back-N, not a retransmission storm;
 *   - in-order packets are delivered, advancing the cumulative ACK;
 *   - duplicates (flowSeq below expected: a spurious retransmission)
 *     are dropped and re-ACKed — the upper layer sees every payload
 *     exactly once;
 *   - out-of-order packets (a gap where the corrupt packet was) are
 *     dropped; the sender's go-back-N resends them in order.
 *
 * Control packets (ACK/NACK) are header-only, travel the normal
 * fabric paths, consume credits and serialization time like any
 * packet, and are themselves protected by the checksum: a corrupted
 * ACK is ignored and the retransmit timer recovers.
 */

#ifndef SAN_FAULT_RELIABLE_HH
#define SAN_FAULT_RELIABLE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "fault/FaultPlan.hh"
#include "net/Packet.hh"
#include "sim/Simulation.hh"

namespace san::fault {

/** Message tag carried by ACK/NACK control packets. */
inline constexpr std::uint32_t tagControl = 0xfa017c71u;

/** One endpoint's reliable-delivery engine. */
class ReliableChannel
{
  public:
    /** Raw transmit: hand one packet to the wire/crossbar. */
    using Forward = std::function<void(net::Packet)>;

    ReliableChannel(sim::Simulation &sim, std::string name,
                    net::NodeId self, const RecoveryParams &params,
                    Forward forward)
        : sim_(sim), name_(std::move(name)), self_(self),
          params_(params), forward_(std::move(forward))
    {}

    ReliableChannel(const ReliableChannel &) = delete;
    ReliableChannel &operator=(const ReliableChannel &) = delete;

    /**
     * Send one data packet reliably: stamp flowSeq + checksum, hold
     * it in the send window (or backlog), and forward it.
     */
    void send(net::Packet pkt);

    /**
     * Inspect one arrival. Returns true when the packet was consumed
     * by the protocol (control packet, checksum failure, duplicate,
     * out-of-order) — the caller must not process it further. Returns
     * false for an in-order, verified data packet, which has been
     * ACKed and should be delivered to the upper layer.
     */
    bool onArrival(const net::Arrival &arrival);

    const std::string &name() const { return name_; }

    /** @{ Recovery counters (see DESIGN.md "Fault model"). */
    std::uint64_t retransmits() const { return retransmits_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t crcDrops() const { return crcDrops_; }
    std::uint64_t dupDrops() const { return dupDrops_; }
    std::uint64_t oooDrops() const { return oooDrops_; }
    std::uint64_t controlDrops() const { return controlDrops_; }
    std::uint64_t acksSent() const { return acksSent_; }
    std::uint64_t nacksSent() const { return nacksSent_; }
    std::uint64_t aborts() const { return aborts_; }
    /** @} */

  private:
    struct TxFlow {
        std::uint32_t nextSeq = 0;
        std::deque<net::Packet> window;  //!< sent, unacknowledged
        std::deque<net::Packet> backlog; //!< waiting for window room
        sim::Tick rto = 0;               //!< current timeout (0: unset)
        unsigned retries = 0;            //!< consecutive timeouts
        std::uint64_t timerGen = 0;      //!< cancels stale timers
        bool dead = false;               //!< gave up; best-effort now
    };

    struct RxFlow {
        std::uint32_t expected = 0;
        bool nacked = false; //!< already NACKed this expected seq
    };

    static bool
    verified(const net::Packet &pkt)
    {
        return pkt.checksum == net::packetChecksum(pkt);
    }

    void sendControl(net::PacketKind kind, net::NodeId dst,
                     std::uint32_t seq);
    void onAck(net::NodeId from, std::uint32_t seq);
    void onNack(net::NodeId from, std::uint32_t seq);
    void retransmitFrom(TxFlow &flow, std::uint32_t seq);
    void armTimer(net::NodeId dst, TxFlow &flow);
    void onTimer(net::NodeId dst, std::uint64_t gen);
    void instant(const char *what);

    sim::Simulation &sim_;
    std::string name_;
    net::NodeId self_;
    RecoveryParams params_;
    Forward forward_;

    std::map<net::NodeId, TxFlow> tx_;
    std::map<net::NodeId, RxFlow> rx_;

    std::uint64_t retransmits_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t crcDrops_ = 0;
    std::uint64_t dupDrops_ = 0;
    std::uint64_t oooDrops_ = 0;
    std::uint64_t controlDrops_ = 0;
    std::uint64_t acksSent_ = 0;
    std::uint64_t nacksSent_ = 0;
    std::uint64_t aborts_ = 0;
};

} // namespace san::fault

#endif // SAN_FAULT_RELIABLE_HH
