/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is the single description of every fault a run may
 * suffer: rate-driven faults ("--fault-spec KIND:RATE[:SEED]") and
 * scheduled one-shot faults ("--fault-at TICK:KIND:TARGET").
 * Components obtain a FaultSite per (kind, component-name) pair; each
 * site draws from its own xoshiro256** stream seeded from the plan
 * seed, the fault kind and an FNV-1a hash of the site name, so
 *
 *  - fault schedules are reproducible: the same plan produces the
 *    same injections, event for event;
 *  - fault randomness is independent of workload randomness: adding
 *    or removing a fault kind never perturbs another site's stream;
 *  - determinism survives topology growth: a site's stream depends
 *    only on its own name, not on construction order.
 *
 * Installing a plan also arms the recovery protocol (end-to-end
 * checksums, ACK/NACK retransmit, handler failover, I/O retries; see
 * fault/Reliable.hh). When no plan is installed (the default), every
 * hook is a null-pointer check and runs are byte-identical to a build
 * without this subsystem.
 */

#ifndef SAN_FAULT_FAULT_PLAN_HH
#define SAN_FAULT_FAULT_PLAN_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/Random.hh"
#include "sim/Types.hh"

namespace san::fault {

/** Everything that can go wrong. */
enum class FaultKind {
    None = 0,     //!< no injection; arms the recovery protocol only
    LinkBitError, //!< per-bit corruption on a link (CRC fail on arrival)
    CreditLoss,   //!< a returned link credit is lost in flight
    HandlerCrash, //!< a switch-CPU handler crashes at invocation
    DiskSpike,    //!< one chunk read suffers a long media retry
    DiskTimeout,  //!< one chunk read times out and must be re-issued
    BackendDown,  //!< a load-balancer backend leaves the pool
    BackendUp,    //!< a load-balancer backend (re)joins the pool
};

inline constexpr unsigned faultKindCount = 8;

/** Canonical spelling used by flags, logs and stats. */
const char *faultKindName(FaultKind kind);

/** Parse a kind name; std::nullopt if unknown. */
std::optional<FaultKind> faultKindFromName(const std::string &name);

/** One rate-driven fault class ("--fault-spec"). */
struct FaultSpec {
    FaultKind kind = FaultKind::None;
    /** Interpretation is per-kind: bit-error rate for LinkBitError,
     * per-event probability for the others. */
    double rate = 0.0;
    /** Per-spec seed override (the optional :SEED suffix). */
    std::uint64_t seed = 0;
    bool seeded = false;
};

/** One scheduled fault ("--fault-at TICK:KIND:TARGET"). */
struct FaultEvent {
    sim::Tick at = 0;        //!< earliest tick the fault may fire
    FaultKind kind = FaultKind::None;
    std::string target;      //!< component name / handler id
    /**
     * Accessed through std::atomic_ref in sharded runs: only the
     * shard owning @c target ever *writes* it (a fault fires at the
     * component it names), but other shards' eventDue scans *read*
     * it while deciding whether their kind is still pending. Relaxed
     * is enough — a stale false only costs a redundant rescan, never
     * a different result.
     */
    bool consumed = false;
};

/** Recovery-protocol tuning knobs (defaults fit the paper fabric). */
struct RecoveryParams {
    unsigned sendWindow = 64;           //!< unacked packets per flow
    sim::Tick rtoInitial = sim::us(500); //!< first retransmit timeout
    sim::Tick rtoMax = sim::ms(8);      //!< backoff cap
    unsigned maxRetries = 16;           //!< per-flow timeout cap
    unsigned maxFailovers = 3;          //!< handler relaunch attempts
    sim::Tick failoverLatency = sim::us(50); //!< watchdog + relaunch
    sim::Tick creditSyncDelay = sim::us(20); //!< lost-credit resync
    sim::Tick diskSpikeDelay = sim::ms(30);  //!< media retry penalty
    sim::Tick diskTimeout = sim::ms(25);     //!< request timeout
    unsigned diskMaxRetries = 4;        //!< re-issues before error
};

class FaultPlan;

/**
 * One component's injection point for one fault kind. Owned by the
 * plan; components hold raw pointers (the plan must outlive them).
 */
class FaultSite
{
  public:
    /** Bernoulli draw at the site's configured rate. */
    bool fire() { return fire(rate_); }

    /**
     * Bernoulli draw at an explicit probability (per-packet
     * corruption probability derived from a bit-error rate, for
     * example). Always consumes exactly one stream value, so the
     * schedule is independent of the probability argument.
     */
    bool fire(double probability);

    FaultKind kind() const { return kind_; }
    double rate() const { return rate_; }
    const std::string &name() const { return name_; }
    /** Faults this site has injected. */
    std::uint64_t injected() const { return injected_; }

  private:
    friend class FaultPlan;

    FaultSite(FaultPlan &plan, FaultKind kind, std::string name,
              double rate, std::uint64_t seed)
        : plan_(plan), kind_(kind), name_(std::move(name)), rate_(rate),
          rng_(seed)
    {}

    FaultPlan &plan_;
    FaultKind kind_;
    std::string name_;
    double rate_;
    sim::Random rng_;
    std::uint64_t injected_ = 0;
};

/** The complete fault schedule of one run. */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t base_seed = defaultSeed)
        : baseSeed_(base_seed)
    {}

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    static constexpr std::uint64_t defaultSeed = 0x5eedfa017ull;

    /**
     * Parse "KIND:RATE[:SEED]" (e.g. "link-ber:1e-6",
     * "handler-crash:0.5:42"). On failure returns std::nullopt and
     * stores a message in @p error.
     */
    static std::optional<FaultSpec> parseSpec(const std::string &text,
                                              std::string *error);

    /**
     * Parse "TICK:KIND:TARGET" (tick in picoseconds; e.g.
     * "0:handler-crash:1", "5000000:link-ber:host0.hca->switch0").
     */
    static std::optional<FaultEvent> parseAt(const std::string &text,
                                             std::string *error);

    void addSpec(const FaultSpec &spec);
    void addEvent(FaultEvent event);

    /** The configured rate for @p kind, or nullopt if absent. */
    std::optional<double> rateOf(FaultKind kind) const;

    /**
     * The injection site for (@p kind, @p name). Returns nullptr when
     * the plan has no spec of that kind — the component then only
     * checks one-shot events. Sites are created on first request and
     * live as long as the plan.
     */
    FaultSite *site(FaultKind kind, const std::string &name);

    /** True if any "--fault-at" event of @p kind is still pending. */
    bool
    eventPending(FaultKind kind) const
    {
        return (pendingKinds_.load(std::memory_order_relaxed) &
                kindBit(kind)) != 0;
    }

    /**
     * Consume the first unconsumed event of (@p kind, @p target)
     * whose tick has been reached. Counts as an injection.
     */
    bool eventDue(FaultKind kind, const std::string &target,
                  sim::Tick now);

    /** Total faults injected (sites + consumed events). */
    std::uint64_t
    injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }
    /** Faults injected of one kind. */
    std::uint64_t
    injectedOf(FaultKind kind) const
    {
        return injectedByKind_[static_cast<unsigned>(kind)].load(
            std::memory_order_relaxed);
    }

    std::uint64_t baseSeed() const { return baseSeed_; }

    RecoveryParams &recovery() { return recovery_; }
    const RecoveryParams &recovery() const { return recovery_; }

    /** One line per spec/event, for logs and reports. */
    std::string describe() const;

  private:
    friend class FaultSite;

    static std::uint64_t
    kindBit(FaultKind kind)
    {
        return 1ull << static_cast<unsigned>(kind);
    }

    void
    countInjection(FaultKind kind)
    {
        injected_.fetch_add(1, std::memory_order_relaxed);
        injectedByKind_[static_cast<unsigned>(kind)].fetch_add(
            1, std::memory_order_relaxed);
    }

    std::uint64_t siteSeed(FaultKind kind, const std::string &name) const;

    std::uint64_t baseSeed_;
    RecoveryParams recovery_{};
    std::vector<FaultSpec> specs_;
    std::vector<FaultEvent> events_;
    // Shard-shared state. Each counter is a commutative tally and
    // each event's consumed flag is written only by the shard owning
    // its target, so relaxed atomics keep sharded runs both race-free
    // and deterministic (DESIGN.md §14).
    std::atomic<std::uint64_t> pendingKinds_{0};
    std::map<std::pair<unsigned, std::string>,
             std::unique_ptr<FaultSite>>
        sites_;
    std::atomic<std::uint64_t> injected_{0};
    std::atomic<std::uint64_t> injectedByKind_[faultKindCount]{};
};

/**
 * The plan newly built components should inject from, or nullptr
 * (the default: no faults, no recovery overhead, byte-identical
 * runs). Owned by whoever installed it (bench::init() or a test).
 */
FaultPlan *&globalPlan();

} // namespace san::fault

#endif // SAN_FAULT_FAULT_PLAN_HH
