#include "fault/Reliable.hh"

#include <algorithm>

#include "obs/Telemetry.hh"
#include "sim/Log.hh"

namespace san::fault {

void
ReliableChannel::instant(const char *what)
{
    if (auto *tr = sim_.tracer())
        tr->instant(name_, what, sim_.now());
}

void
ReliableChannel::send(net::Packet pkt)
{
    TxFlow &flow = tx_[pkt.dst];
    pkt.kind = net::PacketKind::Data;
    pkt.corrupt = false;
    pkt.flowSeq = flow.nextSeq++;
    pkt.checksum = net::packetChecksum(pkt);
    if (flow.dead) {
        // The flow exhausted its retries earlier; deliver best-effort
        // so the rest of the run keeps moving.
        forward_(std::move(pkt));
        return;
    }
    if (flow.window.size() >= params_.sendWindow) {
        flow.backlog.push_back(std::move(pkt));
        return;
    }
    const bool was_idle = flow.window.empty();
    flow.window.push_back(pkt);
    forward_(std::move(pkt));
    if (was_idle)
        armTimer(flow.window.back().dst, flow);
}

void
ReliableChannel::sendControl(net::PacketKind kind, net::NodeId dst,
                             std::uint32_t seq)
{
    net::Packet pkt;
    pkt.src = self_;
    pkt.dst = dst;
    pkt.payloadBytes = 0;
    pkt.kind = kind;
    pkt.flowSeq = seq;
    pkt.tag = tagControl;
    pkt.checksum = net::packetChecksum(pkt);
    if (auto *tel = obs::globalTelemetry())
        pkt.telemetry = tel->sample(pkt.src, pkt.dst,
                                    obs::FlowClass::Control,
                                    sim_.now());
    if (kind == net::PacketKind::Ack)
        ++acksSent_;
    else
        ++nacksSent_;
    forward_(std::move(pkt));
}

bool
ReliableChannel::onArrival(const net::Arrival &arrival)
{
    const net::Packet &pkt = arrival.pkt;
    if (pkt.kind == net::PacketKind::Ack ||
        pkt.kind == net::PacketKind::Nack) {
        if (!verified(pkt)) {
            // A bit error hit a control packet; the retransmit timer
            // is the backstop.
            ++controlDrops_;
            instant("control-drop");
            return true;
        }
        if (pkt.kind == net::PacketKind::Ack)
            onAck(pkt.src, pkt.flowSeq);
        else
            onNack(pkt.src, pkt.flowSeq);
        return true;
    }

    RxFlow &flow = rx_[pkt.src];
    if (!verified(pkt)) {
        ++crcDrops_;
        instant("crc-drop");
        // NACK once per expected seq: everything the sender has in
        // flight behind the corrupt packet will arrive out-of-order
        // and be dropped silently; one go-back-N covers them all.
        if (!flow.nacked) {
            flow.nacked = true;
            sendControl(net::PacketKind::Nack, pkt.src, flow.expected);
        }
        return true;
    }
    if (pkt.flowSeq == flow.expected) {
        ++flow.expected;
        flow.nacked = false;
        sendControl(net::PacketKind::Ack, pkt.src, flow.expected);
        return false; // deliver to the upper layer
    }
    if (pkt.flowSeq < flow.expected) {
        // Spurious retransmission (our ACK was lost or late): the
        // payload was already delivered, so dedup keeps delivery
        // exactly-once. Re-ACK to resync the sender.
        ++dupDrops_;
        instant("dup-drop");
        sendControl(net::PacketKind::Ack, pkt.src, flow.expected);
        return true;
    }
    // Gap: a corrupt or dropped packet precedes this one. Go-back-N
    // will resend the whole window in order.
    ++oooDrops_;
    if (!flow.nacked) {
        flow.nacked = true;
        sendControl(net::PacketKind::Nack, pkt.src, flow.expected);
    }
    return true;
}

void
ReliableChannel::onAck(net::NodeId from, std::uint32_t seq)
{
    auto it = tx_.find(from);
    if (it == tx_.end())
        return;
    TxFlow &flow = it->second;
    bool progressed = false;
    while (!flow.window.empty() && flow.window.front().flowSeq < seq) {
        flow.window.pop_front();
        progressed = true;
    }
    if (!progressed)
        return;
    flow.retries = 0;
    flow.rto = params_.rtoInitial;
    while (flow.window.size() < params_.sendWindow &&
           !flow.backlog.empty()) {
        flow.window.push_back(flow.backlog.front());
        forward_(std::move(flow.backlog.front()));
        flow.backlog.pop_front();
    }
    if (flow.window.empty())
        ++flow.timerGen; // cancel the pending timer
    else
        armTimer(from, flow);
}

void
ReliableChannel::onNack(net::NodeId from, std::uint32_t seq)
{
    auto it = tx_.find(from);
    if (it == tx_.end())
        return;
    TxFlow &flow = it->second;
    // A NACK also acknowledges everything before the requested seq.
    while (!flow.window.empty() && flow.window.front().flowSeq < seq)
        flow.window.pop_front();
    retransmitFrom(flow, seq);
    if (!flow.window.empty())
        armTimer(from, flow);
}

void
ReliableChannel::retransmitFrom(TxFlow &flow, std::uint32_t seq)
{
    for (const net::Packet &pkt : flow.window) {
        if (pkt.flowSeq < seq)
            continue;
        ++retransmits_;
        instant("retransmit");
        // The window copy shares the original's lineage record, so
        // the retransmit count accumulates on the packet's history.
        if (pkt.telemetry)
            pkt.telemetry->noteRetransmit();
        forward_(pkt); // the stored copy is clean (never corrupted)
    }
}

void
ReliableChannel::armTimer(net::NodeId dst, TxFlow &flow)
{
    if (flow.rto == 0)
        flow.rto = params_.rtoInitial;
    const std::uint64_t gen = ++flow.timerGen;
    sim_.events().after(flow.rto,
                        [this, dst, gen] { onTimer(dst, gen); });
}

void
ReliableChannel::onTimer(net::NodeId dst, std::uint64_t gen)
{
    auto it = tx_.find(dst);
    if (it == tx_.end())
        return;
    TxFlow &flow = it->second;
    if (gen != flow.timerGen || flow.window.empty() || flow.dead)
        return; // stale timer, or nothing outstanding anymore
    ++timeouts_;
    instant("timeout");
    ++flow.retries;
    if (flow.retries > params_.maxRetries) {
        // Give up so the simulation cannot wedge: drop the flow to
        // best-effort and count the abort loudly.
        ++aborts_;
        flow.dead = true;
        sim::logAt(sim::LogLevel::Warn, name_, sim_.now(),
                   "reliable flow to node ", dst, " aborted after ",
                   params_.maxRetries, " timeouts");
        for (const net::Packet &pkt : flow.window)
            forward_(pkt);
        while (!flow.backlog.empty()) {
            forward_(flow.backlog.front());
            flow.backlog.pop_front();
        }
        flow.window.clear();
        return;
    }
    retransmitFrom(flow, flow.window.front().flowSeq);
    flow.rto = std::min<sim::Tick>(flow.rto * 2, params_.rtoMax);
    armTimer(dst, flow);
}

} // namespace san::fault
