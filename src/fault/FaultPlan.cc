#include "fault/FaultPlan.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace san::fault {

FaultPlan *&
globalPlan()
{
    static FaultPlan *plan = nullptr;
    return plan;
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::LinkBitError: return "link-ber";
      case FaultKind::CreditLoss: return "credit-loss";
      case FaultKind::HandlerCrash: return "handler-crash";
      case FaultKind::DiskSpike: return "disk-spike";
      case FaultKind::DiskTimeout: return "disk-timeout";
      case FaultKind::BackendDown: return "backend-down";
      case FaultKind::BackendUp: return "backend-up";
    }
    return "?";
}

std::optional<FaultKind>
faultKindFromName(const std::string &name)
{
    for (unsigned i = 0; i < faultKindCount; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

bool
FaultSite::fire(double probability)
{
    // One draw per call regardless of probability: the stream
    // position depends only on how often the site is consulted.
    const bool hit = rng_.real() < probability;
    if (hit) {
        ++injected_;
        plan_.countInjection(kind_);
    }
    return hit;
}

namespace {

/** Split on ':' into at most @p max_parts pieces (last keeps ':'). */
std::vector<std::string>
splitColon(const std::string &text, std::size_t max_parts)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (parts.size() + 1 < max_parts) {
        const std::size_t colon = text.find(':', start);
        if (colon == std::string::npos)
            break;
        parts.push_back(text.substr(start, colon - start));
        start = colon + 1;
    }
    parts.push_back(text.substr(start));
    return parts;
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

/** FNV-1a over the site name: stable across runs and platforms. */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

std::optional<FaultSpec>
FaultPlan::parseSpec(const std::string &text, std::string *error)
{
    const auto parts = splitColon(text, 3);
    FaultSpec spec;
    const auto kind = faultKindFromName(parts[0]);
    if (!kind) {
        if (error)
            *error = "unknown fault kind '" + parts[0] +
                     "' (expected one of none, link-ber, credit-loss, "
                     "handler-crash, disk-spike, disk-timeout, "
                     "backend-down, backend-up)";
        return std::nullopt;
    }
    spec.kind = *kind;
    if (spec.kind != FaultKind::None) {
        if (parts.size() < 2 || !parseDouble(parts[1], &spec.rate) ||
            spec.rate < 0.0 || spec.rate > 1.0) {
            if (error)
                *error = "fault spec '" + text +
                         "' needs KIND:RATE with RATE in [0, 1]";
            return std::nullopt;
        }
    }
    if (parts.size() == 3) {
        if (!parseU64(parts[2], &spec.seed)) {
            if (error)
                *error = "fault spec '" + text + "' has a bad seed";
            return std::nullopt;
        }
        spec.seeded = true;
    }
    return spec;
}

std::optional<FaultEvent>
FaultPlan::parseAt(const std::string &text, std::string *error)
{
    const auto parts = splitColon(text, 3);
    if (parts.size() != 3) {
        if (error)
            *error = "fault event '" + text +
                     "' must be TICK:KIND:TARGET";
        return std::nullopt;
    }
    FaultEvent ev;
    if (!parseU64(parts[0], &ev.at)) {
        if (error)
            *error = "fault event '" + text +
                     "' has a bad tick (integer picoseconds)";
        return std::nullopt;
    }
    const auto kind = faultKindFromName(parts[1]);
    if (!kind || *kind == FaultKind::None) {
        if (error)
            *error = "fault event '" + text + "' has unknown kind '" +
                     parts[1] + "'";
        return std::nullopt;
    }
    ev.kind = *kind;
    ev.target = parts[2];
    if (ev.target.empty()) {
        if (error)
            *error = "fault event '" + text + "' has an empty target";
        return std::nullopt;
    }
    return ev;
}

void
FaultPlan::addSpec(const FaultSpec &spec)
{
    specs_.push_back(spec);
}

void
FaultPlan::addEvent(FaultEvent event)
{
    pendingKinds_.fetch_or(kindBit(event.kind),
                           std::memory_order_relaxed);
    events_.push_back(std::move(event));
}

std::optional<double>
FaultPlan::rateOf(FaultKind kind) const
{
    for (const FaultSpec &spec : specs_)
        if (spec.kind == kind)
            return spec.rate;
    return std::nullopt;
}

std::uint64_t
FaultPlan::siteSeed(FaultKind kind, const std::string &name) const
{
    std::uint64_t seed = baseSeed_;
    for (const FaultSpec &spec : specs_)
        if (spec.kind == kind && spec.seeded)
            seed = spec.seed;
    // Mix in the kind and the site name so every site draws from an
    // independent stream even under one shared seed.
    return seed ^ (0x9e3779b97f4a7c15ull *
                   (static_cast<std::uint64_t>(kind) + 1)) ^
           fnv1a(name);
}

FaultSite *
FaultPlan::site(FaultKind kind, const std::string &name)
{
    if (!rateOf(kind))
        return nullptr;
    const auto key =
        std::make_pair(static_cast<unsigned>(kind), name);
    auto it = sites_.find(key);
    if (it == sites_.end()) {
        auto site = std::unique_ptr<FaultSite>(new FaultSite(
            *this, kind, name, *rateOf(kind), siteSeed(kind, name)));
        it = sites_.emplace(key, std::move(site)).first;
    }
    return it->second.get();
}

bool
FaultPlan::eventDue(FaultKind kind, const std::string &target,
                    sim::Tick now)
{
    if (!eventPending(kind))
        return false;
    bool still_pending = false;
    bool fired = false;
    for (FaultEvent &ev : events_) {
        // consumed is written only by the shard owning ev.target;
        // relaxed cross-shard reads at worst see a stale false and
        // rescan (FaultPlan.hh).
        std::atomic_ref<bool> consumed(ev.consumed);
        if (ev.kind != kind ||
            consumed.load(std::memory_order_relaxed))
            continue;
        if (!fired && ev.target == target && now >= ev.at) {
            consumed.store(true, std::memory_order_relaxed);
            fired = true;
            countInjection(kind);
            continue;
        }
        still_pending = true;
    }
    if (!still_pending)
        pendingKinds_.fetch_and(~kindBit(kind),
                                std::memory_order_relaxed);
    return fired;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream oss;
    for (const FaultSpec &spec : specs_) {
        oss << "spec " << faultKindName(spec.kind) << " rate "
            << spec.rate;
        if (spec.seeded)
            oss << " seed " << spec.seed;
        oss << '\n';
    }
    for (const FaultEvent &ev : events_) {
        const bool consumed =
            std::atomic_ref<bool>(const_cast<bool &>(ev.consumed))
                .load(std::memory_order_relaxed);
        oss << "at " << ev.at << " " << faultKindName(ev.kind) << " -> "
            << ev.target << (consumed ? " (consumed)" : "") << '\n';
    }
    return oss.str();
}

} // namespace san::fault
