/**
 * @file
 * Experiment reporting: renders the paper's two figure styles as
 * text tables.
 *
 *  - Overview figure (e.g. Fig 3/5/7/9/11/13): execution time
 *    normalized to "normal", host utilization, host I/O traffic
 *    normalized to "normal", for the four configurations.
 *  - Breakdown figure (e.g. Fig 4/6/8/10/12/14): busy / cache-stall
 *    / idle fractions for host CPUs ("n-HP", "n+p-HP", "a-HP",
 *    "a+p-HP") and switch CPUs ("a-SP", "a+p-SP").
 */

#ifndef SAN_HARNESS_REPORT_HH
#define SAN_HARNESS_REPORT_HH

#include <array>
#include <iosfwd>
#include <string>

#include "apps/RunConfig.hh"

namespace san::harness {

/** Results of a benchmark across the four modes, in allModes order. */
using ModeResults = std::array<apps::RunStats, 4>;

/** Print the 3-metric overview table (the paper's first figure). */
void printOverview(std::ostream &os, const std::string &title,
                   const ModeResults &results);

/** Print the execution-time breakdown table (the second figure). */
void printBreakdown(std::ostream &os, const std::string &title,
                    const ModeResults &results);

/**
 * Print the per-handler switch-CPU profile of the active modes:
 * invocations, chunks, bytes, busy cycles and cycles/byte per
 * handler program. Prints nothing when no run used handlers.
 */
void printHandlerProfile(std::ostream &os, const std::string &title,
                         const ModeResults &results);

/**
 * Print the per-packet latency-lineage report: one table per mode
 * that ran with telemetry, with per-(flow class, stage) sample
 * counts and p50/p90/p99/p99.9 in integer nanoseconds, a per-hop
 * residency table, the top-K flows by volume and the K worst-latency
 * flows. All numbers are integers derived from tick histograms, so
 * the output is byte-stable across repeats and compilers (a golden
 * test holds it to that). Prints nothing when no mode has telemetry.
 */
void printLatencyReport(std::ostream &os, const std::string &title,
                        const ModeResults &results);

/**
 * Print one run's folded telemetry under @p label — the table body
 * printLatencyReport() emits per mode. Benches that run their own
 * mode sets (e.g. handler placements on a multi-switch fabric)
 * reuse this directly instead of shaping results into ModeResults.
 * Prints nothing when @p t is inactive.
 */
void printTelemetryStats(std::ostream &os, const std::string &label,
                         const obs::TelemetryStats &t);

/** Consistency check: every mode computed the same answer. */
bool checksumsAgree(const ModeResults &results);

/** One line per mode: raw execution time and checksum. */
void printRaw(std::ostream &os, const ModeResults &results);

} // namespace san::harness

#endif // SAN_HARNESS_REPORT_HH
