#include "harness/StatsReport.hh"

#include <ostream>

#include "fault/FaultPlan.hh"
#include "fault/Reliable.hh"
#include "lb/LoadBalancer.hh"
#include "obs/Telemetry.hh"

namespace san::harness {

namespace {

/**
 * Sum one reliable-delivery counter over every endpoint engine in the
 * cluster (host HCAs, storage TCAs, the switch itself).
 */
template <typename Getter>
std::uint64_t
sumReliable(apps::Cluster &cluster, Getter get)
{
    std::uint64_t total = 0;
    for (unsigned i = 0; i < cluster.hostCount(); ++i)
        if (const auto *rel = cluster.host(i).hca().reliable())
            total += get(*rel);
    for (unsigned i = 0; i < cluster.storageCount(); ++i)
        if (const auto *rel = cluster.storage(i).tca().reliable())
            total += get(*rel);
    if (const auto *rel = cluster.sw().reliable())
        total += get(*rel);
    return total;
}

void
dumpCache(std::ostream &os, const std::string &prefix, mem::Cache &c)
{
    os << prefix << ".hits " << c.hits() << '\n'
       << prefix << ".misses " << c.misses() << '\n'
       << prefix << ".missRate " << c.missRate() << '\n'
       << prefix << ".writebacks " << c.writebacks() << '\n';
    if (c.params().classifyMisses) {
        os << prefix << ".coldMisses " << c.coldMisses() << '\n'
           << prefix << ".capacityMisses " << c.capacityMisses() << '\n'
           << prefix << ".conflictMisses " << c.conflictMisses() << '\n';
    }
}

void
dumpTlb(std::ostream &os, const std::string &prefix, mem::Tlb &t)
{
    os << prefix << ".hits " << t.hits() << '\n'
       << prefix << ".misses " << t.misses() << '\n';
}

void
dumpCacheJson(obs::JsonWriter &json, mem::Cache &c)
{
    json.beginObject();
    json.kv("hits", c.hits());
    json.kv("misses", c.misses());
    json.kv("missRate", c.missRate());
    json.kv("writebacks", c.writebacks());
    if (c.params().classifyMisses) {
        json.kv("coldMisses", c.coldMisses());
        json.kv("capacityMisses", c.capacityMisses());
        json.kv("conflictMisses", c.conflictMisses());
    }
    json.endObject();
}

void
dumpTlbJson(obs::JsonWriter &json, mem::Tlb &t)
{
    json.beginObject();
    json.kv("hits", t.hits());
    json.kv("misses", t.misses());
    json.endObject();
}

/** One latency histogram as {samples, minPs, maxPs, p50Ps ...}. */
void
dumpLatencyHistJson(obs::JsonWriter &json,
                    const obs::LatencyHistogram &h)
{
    json.beginObject();
    json.kv("samples", h.samples());
    json.kv("minPs", h.min());
    json.kv("maxPs", h.max());
    json.kv("p50Ps", h.percentile(5000));
    json.kv("p90Ps", h.percentile(9000));
    json.kv("p99Ps", h.percentile(9900));
    json.kv("p999Ps", h.percentile(9990));
    json.endObject();
}

} // namespace

void
dumpMemoryStats(std::ostream &os, const std::string &prefix,
                mem::MemorySystem &ms)
{
    dumpCache(os, prefix + ".l1i", ms.l1i());
    dumpCache(os, prefix + ".l1d", ms.l1d());
    if (ms.l2())
        dumpCache(os, prefix + ".l2", *ms.l2());
    dumpTlb(os, prefix + ".itlb", ms.itlb());
    dumpTlb(os, prefix + ".dtlb", ms.dtlb());
    os << prefix << ".dram.pageHits " << ms.dram().pageHits() << '\n'
       << prefix << ".dram.pageMisses " << ms.dram().pageMisses() << '\n'
       << prefix << ".dram.bytes " << ms.dram().bytesTransferred()
       << '\n'
       << prefix << ".stallTicks " << ms.stallTicks() << '\n';
}

void
dumpClusterStats(std::ostream &os, apps::Cluster &cluster)
{
    for (unsigned i = 0; i < cluster.hostCount(); ++i) {
        auto &h = cluster.host(i);
        const std::string prefix = h.name();
        os << prefix << ".cpu.busyTicks " << h.cpu().busyTicks() << '\n'
           << prefix << ".cpu.stallTicks " << h.cpu().stallTicks()
           << '\n';
        dumpMemoryStats(os, prefix + ".mem", h.cpu().memory());
        os << prefix << ".hca.bytesSent " << h.hca().bytesSent() << '\n'
           << prefix << ".hca.bytesReceived " << h.hca().bytesReceived()
           << '\n'
           << prefix << ".hca.messagesSent " << h.hca().messagesSent()
           << '\n'
           << prefix << ".hca.messagesReceived "
           << h.hca().messagesReceived() << '\n';
    }

    auto &sw = cluster.sw();
    os << sw.name() << ".packetsRouted " << sw.packetsRouted() << '\n'
       << sw.name() << ".packetsLocal " << sw.packetsLocal() << '\n'
       << sw.name() << ".handlersInvoked " << sw.handlersInvoked()
       << '\n'
       << sw.name() << ".chunksStaged " << sw.chunksStaged() << '\n'
       << sw.name() << ".dispatchStalls " << sw.dispatchStalls() << '\n';
    // Emitted only when nonzero so fault-free reports stay
    // byte-identical to the pre-fault-subsystem goldens.
    if (sw.droppedPackets() != 0)
        os << sw.name() << ".droppedPackets " << sw.droppedPackets()
           << '\n';
    // Queueing-policy counters appear only for non-default policies:
    // the stock central output queue keeps seed-golden reports
    // byte-identical.
    if (!sw.policy().isPassthrough()) {
        const auto &pc = sw.policy().counters();
        const std::string prefix = sw.name() + ".policy";
        os << prefix << ".name " << sw.policy().name() << '\n'
           << prefix << ".admitted " << pc.admitted << '\n'
           << prefix << ".forwarded " << pc.forwarded << '\n'
           << prefix << ".holBlocked " << pc.holBlocked << '\n'
           << prefix << ".grants " << pc.grants << '\n'
           << prefix << ".arbRounds " << pc.arbRounds << '\n'
           << prefix << ".peakOccupancy " << pc.peakOccupancy << '\n'
           << prefix << ".maxGrantWaitRounds "
           << sw.policy().maxGrantWaitRounds() << '\n';
    }
    os << sw.name() << ".buffers.allocations "
       << sw.buffers().allocations() << '\n'
       << sw.name() << ".buffers.peakInUse " << sw.buffers().peakInUse()
       << '\n'
       << sw.name() << ".buffers.allocationFailures "
       << sw.buffers().allocationFailures() << '\n';
    for (unsigned i = 0; i < sw.cpuCount(); ++i) {
        const std::string prefix =
            sw.name() + ".sp" + std::to_string(i);
        os << prefix << ".busyTicks " << sw.cpu(i).busyTicks() << '\n'
           << prefix << ".stallTicks " << sw.cpu(i).stallTicks() << '\n'
           << prefix << ".atb.mappings " << sw.atb(i).mappings() << '\n'
           << prefix << ".atb.conflicts " << sw.atb(i).conflicts()
           << '\n';
        dumpMemoryStats(os, prefix + ".mem", sw.cpu(i).memory());
    }
    for (const auto &[id, p] : sw.handlerProfiles()) {
        const std::string prefix = sw.name() + ".handler." + p.name;
        os << prefix << ".invocations " << p.invocations << '\n'
           << prefix << ".chunks " << p.chunks << '\n'
           << prefix << ".bytes " << p.bytes << '\n'
           << prefix << ".busyTicks " << p.busyTicks << '\n'
           << prefix << ".stallTicks " << p.stallTicks << '\n';
    }

    for (unsigned i = 0; i < cluster.storageCount(); ++i) {
        auto &s = cluster.storage(i);
        const std::string prefix = "storage" + std::to_string(i);
        os << prefix << ".requestsServed " << s.requestsServed() << '\n'
           << prefix << ".disk.bytesRead " << s.disks().bytesRead()
           << '\n'
           << prefix << ".disk.seeks " << s.disks().seeks() << '\n'
           << prefix << ".scsi.bytes " << s.bus().bytesTransferred()
           << '\n'
           << prefix << ".scsi.transactions " << s.bus().transactions()
           << '\n';
        if (s.ioRetries() != 0 || s.ioErrors() != 0 ||
            s.ioSpikes() != 0)
            os << prefix << ".io.retries " << s.ioRetries() << '\n'
               << prefix << ".io.errors " << s.ioErrors() << '\n'
               << prefix << ".io.spikes " << s.ioSpikes() << '\n';
    }

    // The whole section appears only under a fault plan, keeping
    // fault-free reports byte-identical to the seed goldens.
    if (const fault::FaultPlan *plan = fault::globalPlan()) {
        const auto sum = [&cluster](auto get) {
            return sumReliable(cluster, get);
        };
        os << "fault.injected " << plan->injected() << '\n'
           << "net.retransmits "
           << sum([](const fault::ReliableChannel &r) {
                  return r.retransmits();
              })
           << '\n'
           << "net.timeouts "
           << sum([](const fault::ReliableChannel &r) {
                  return r.timeouts();
              })
           << '\n'
           << "net.crcDrops "
           << sum([](const fault::ReliableChannel &r) {
                  return r.crcDrops();
              })
           << '\n'
           << "net.dupDrops "
           << sum([](const fault::ReliableChannel &r) {
                  return r.dupDrops();
              })
           << '\n'
           << "switch.failovers " << cluster.sw().handlerFailovers()
           << '\n';
    }

    // The lb section appears only while a balancer drives the run,
    // keeping every other workload's report byte-identical.
    if (const lb::LoadBalancer *bal = lb::globalBalancer()) {
        const apps::LbStats &c = bal->counters();
        os << "lb.lookups " << c.lookups << '\n'
           << "lb.hotHits " << c.hotHits << '\n'
           << "lb.tableHits " << c.tableHits << '\n'
           << "lb.misses " << c.misses << '\n'
           << "lb.inserts " << c.inserts << '\n'
           << "lb.insertFailures " << c.insertFailures << '\n'
           << "lb.removes " << c.removes << '\n'
           << "lb.forwarded " << c.forwarded << '\n'
           << "lb.punts " << c.punts << '\n'
           << "lb.migrations " << c.migrations << '\n'
           << "lb.peakFlows " << c.peakFlows << '\n'
           << "lb.flowsLive " << bal->table().live() << '\n'
           << "lb.tableCapacity " << bal->table().capacity() << '\n'
           << "lb.tableBytes " << bal->table().memoryBytes() << '\n'
           << "lb.hotBytes " << lb::ConnTable::hotBytes() << '\n'
           << "lb.backendsAlive " << bal->maglev().aliveCount() << '\n';
        if (c.backendDownEvents != 0 || c.backendUpEvents != 0)
            os << "lb.backendDownEvents " << c.backendDownEvents << '\n'
               << "lb.backendUpEvents " << c.backendUpEvents << '\n';
        for (unsigned b = 0; b < c.backendPackets.size(); ++b)
            os << "lb.backend" << b << ".packets "
               << c.backendPackets[b] << '\n';
    }
}

void
dumpMemoryStatsJson(obs::JsonWriter &json, mem::MemorySystem &ms)
{
    json.beginObject();
    json.key("l1i");
    dumpCacheJson(json, ms.l1i());
    json.key("l1d");
    dumpCacheJson(json, ms.l1d());
    if (ms.l2()) {
        json.key("l2");
        dumpCacheJson(json, *ms.l2());
    }
    json.key("itlb");
    dumpTlbJson(json, ms.itlb());
    json.key("dtlb");
    dumpTlbJson(json, ms.dtlb());
    json.key("dram").beginObject();
    json.kv("pageHits", ms.dram().pageHits());
    json.kv("pageMisses", ms.dram().pageMisses());
    json.kv("bytes", ms.dram().bytesTransferred());
    json.endObject();
    json.kv("stallTicks", ms.stallTicks());
    json.endObject();
}

void
dumpClusterStatsJson(obs::JsonWriter &json, apps::Cluster &cluster)
{
    json.beginObject();
    json.kv("execTimePs", cluster.sim().now());
    json.kv("fingerprint", cluster.fingerprint().value());

    json.key("hosts").beginArray();
    for (unsigned i = 0; i < cluster.hostCount(); ++i) {
        auto &h = cluster.host(i);
        json.beginObject();
        json.kv("name", h.name());
        json.key("cpu").beginObject();
        json.kv("busyTicks", h.cpu().busyTicks());
        json.kv("stallTicks", h.cpu().stallTicks());
        json.endObject();
        json.key("mem");
        dumpMemoryStatsJson(json, h.cpu().memory());
        json.key("hca").beginObject();
        json.kv("bytesSent", h.hca().bytesSent());
        json.kv("bytesReceived", h.hca().bytesReceived());
        json.kv("messagesSent", h.hca().messagesSent());
        json.kv("messagesReceived", h.hca().messagesReceived());
        json.endObject();
        json.endObject();
    }
    json.endArray();

    auto &sw = cluster.sw();
    json.key("switch").beginObject();
    json.kv("name", sw.name());
    json.kv("packetsRouted", sw.packetsRouted());
    json.kv("packetsLocal", sw.packetsLocal());
    json.kv("handlersInvoked", sw.handlersInvoked());
    json.kv("chunksStaged", sw.chunksStaged());
    json.kv("dispatchStalls", sw.dispatchStalls());
    // Key only present when packets were dropped, so fault-free runs
    // stay byte-identical to the seed goldens.
    if (sw.droppedPackets() != 0)
        json.kv("droppedPackets", sw.droppedPackets());
    // Object only present under non-default queueing policies so the
    // seed goldens stay byte-identical.
    if (!sw.policy().isPassthrough()) {
        const auto &pc = sw.policy().counters();
        json.key("policy").beginObject();
        json.kv("name", sw.policy().name());
        json.kv("admitted", pc.admitted);
        json.kv("forwarded", pc.forwarded);
        json.kv("holBlocked", pc.holBlocked);
        json.kv("grants", pc.grants);
        json.kv("arbRounds", pc.arbRounds);
        json.kv("peakOccupancy", pc.peakOccupancy);
        json.kv("maxGrantWaitRounds",
                sw.policy().maxGrantWaitRounds());
        json.endObject();
    }
    json.key("buffers").beginObject();
    json.kv("allocations", sw.buffers().allocations());
    json.kv("peakInUse", sw.buffers().peakInUse());
    json.kv("allocationFailures", sw.buffers().allocationFailures());
    json.endObject();
    json.key("cpus").beginArray();
    for (unsigned i = 0; i < sw.cpuCount(); ++i) {
        json.beginObject();
        json.kv("busyTicks", sw.cpu(i).busyTicks());
        json.kv("stallTicks", sw.cpu(i).stallTicks());
        json.key("atb").beginObject();
        json.kv("mappings", sw.atb(i).mappings());
        json.kv("conflicts", sw.atb(i).conflicts());
        json.endObject();
        json.key("mem");
        dumpMemoryStatsJson(json, sw.cpu(i).memory());
        json.endObject();
    }
    json.endArray();
    const sim::Tick sp_cycle =
        sim::Frequency(sw.config().cpuHz).period();
    json.key("handlers").beginArray();
    for (const auto &[id, p] : sw.handlerProfiles()) {
        const std::uint64_t cycles = p.busyTicks / sp_cycle;
        json.beginObject();
        json.kv("id", static_cast<std::uint64_t>(p.id));
        json.kv("name", p.name);
        json.kv("invocations", p.invocations);
        json.kv("chunks", p.chunks);
        json.kv("bytes", p.bytes);
        json.kv("busyTicks", p.busyTicks);
        json.kv("stallTicks", p.stallTicks);
        json.kv("busyCycles", cycles);
        json.kv("cyclesPerByte",
                p.bytes > 0 ? static_cast<double>(cycles) /
                                  static_cast<double>(p.bytes)
                            : 0.0);
        json.endObject();
    }
    json.endArray();
    json.endObject();

    json.key("storage").beginArray();
    for (unsigned i = 0; i < cluster.storageCount(); ++i) {
        auto &s = cluster.storage(i);
        json.beginObject();
        json.kv("requestsServed", s.requestsServed());
        json.key("disk").beginObject();
        json.kv("bytesRead", s.disks().bytesRead());
        json.kv("seeks", s.disks().seeks());
        json.endObject();
        json.key("scsi").beginObject();
        json.kv("bytes", s.bus().bytesTransferred());
        json.kv("transactions", s.bus().transactions());
        json.endObject();
        json.endObject();
    }
    json.endArray();

    // The fault object only exists under a fault plan, keeping
    // fault-free stats JSON byte-identical to the seed goldens.
    if (const fault::FaultPlan *plan = fault::globalPlan()) {
        const auto sum = [&cluster](auto get) {
            return sumReliable(cluster, get);
        };
        json.key("fault").beginObject();
        json.kv("injected", plan->injected());
        for (unsigned k = 1; k < fault::faultKindCount; ++k) {
            const auto kind = static_cast<fault::FaultKind>(k);
            if (plan->injectedOf(kind) != 0)
                json.kv(std::string("injected.") +
                            fault::faultKindName(kind),
                        plan->injectedOf(kind));
        }
        json.key("net").beginObject();
        json.kv("retransmits",
                sum([](const fault::ReliableChannel &r) {
                    return r.retransmits();
                }));
        json.kv("timeouts", sum([](const fault::ReliableChannel &r) {
                    return r.timeouts();
                }));
        json.kv("crcDrops", sum([](const fault::ReliableChannel &r) {
                    return r.crcDrops();
                }));
        json.kv("dupDrops", sum([](const fault::ReliableChannel &r) {
                    return r.dupDrops();
                }));
        json.kv("oooDrops", sum([](const fault::ReliableChannel &r) {
                    return r.oooDrops();
                }));
        json.kv("controlDrops",
                sum([](const fault::ReliableChannel &r) {
                    return r.controlDrops();
                }));
        json.kv("acksSent", sum([](const fault::ReliableChannel &r) {
                    return r.acksSent();
                }));
        json.kv("nacksSent", sum([](const fault::ReliableChannel &r) {
                    return r.nacksSent();
                }));
        json.kv("flowAborts", sum([](const fault::ReliableChannel &r) {
                    return r.aborts();
                }));
        json.endObject();
        json.key("switch").beginObject();
        json.kv("failovers", cluster.sw().handlerFailovers());
        json.kv("droppedPackets", cluster.sw().droppedPackets());
        json.endObject();
        json.key("io").beginObject();
        std::uint64_t io_retries = 0, io_errors = 0, io_spikes = 0;
        for (unsigned i = 0; i < cluster.storageCount(); ++i) {
            io_retries += cluster.storage(i).ioRetries();
            io_errors += cluster.storage(i).ioErrors();
            io_spikes += cluster.storage(i).ioSpikes();
        }
        json.kv("retries", io_retries);
        json.kv("errors", io_errors);
        json.kv("spikes", io_spikes);
        json.endObject();
        json.key("links").beginObject();
        std::uint64_t corrupted = 0, credits_lost = 0;
        for (const auto &link : cluster.fabric().links()) {
            corrupted += link->packetsCorrupted();
            credits_lost += link->creditsLost();
        }
        json.kv("packetsCorrupted", corrupted);
        json.kv("creditsLost", credits_lost);
        json.endObject();
        json.endObject();
    }

    // The telemetry object only exists when --telemetry armed the
    // collector, keeping plain stats JSON byte-identical to the seed
    // goldens. The fold ran in Cluster::collect just before the
    // observer fired, so lastRun() describes this run.
    if (const obs::Telemetry *tel = obs::globalTelemetry()) {
        const obs::TelemetryStats &t = tel->lastRun();
        json.key("telemetry").beginObject();
        json.kv("sampleRate", t.sampleRate);
        json.kv("recordsSampled", t.recordsSampled);
        json.kv("recordsDelivered", t.recordsDelivered);
        json.kv("recordsInFlight", t.recordsInFlight);
        json.kv("retransmitsSampled", t.retransmitsSampled);
        json.kv("stampsDropped", t.stampsDropped);
        json.kv("packetsObserved", t.packetsObserved);
        json.kv("bytesObserved", t.bytesObserved);
        // Only populated (flow class, stage) cells appear: keys stay
        // stable across repeats because the fold is deterministic.
        json.key("stages").beginObject();
        for (std::size_t fc = 0; fc < obs::kFlowClassCount; ++fc) {
            for (std::size_t s = 0; s < obs::kStageCount; ++s) {
                const auto &h =
                    t.stageHist(static_cast<obs::FlowClass>(fc),
                                static_cast<obs::Stage>(s));
                if (h.samples() == 0)
                    continue;
                json.key(std::string(obs::flowClassName(
                             static_cast<obs::FlowClass>(fc))) +
                         "." +
                         obs::stageName(static_cast<obs::Stage>(s)));
                dumpLatencyHistJson(json, h);
            }
        }
        json.endObject();
        json.key("hops").beginObject();
        for (std::size_t fc = 0; fc < obs::kFlowClassCount; ++fc) {
            for (std::size_t hi = 0; hi < obs::kMaxTelemetryHops;
                 ++hi) {
                for (std::size_t s = 0; s < obs::kHopStageCount;
                     ++s) {
                    const auto &h = t.hopHist(
                        static_cast<obs::FlowClass>(fc), hi,
                        static_cast<obs::HopStage>(s));
                    if (h.samples() == 0)
                        continue;
                    json.key(
                        std::string(obs::flowClassName(
                            static_cast<obs::FlowClass>(fc))) +
                        ".hop" + std::to_string(hi) + "." +
                        obs::hopStageName(
                            static_cast<obs::HopStage>(s)));
                    dumpLatencyHistJson(json, h);
                }
            }
        }
        json.endObject();
        json.key("topByVolume").beginArray();
        for (const auto &f : t.topByVolume) {
            json.beginObject();
            json.kv("src", static_cast<std::uint64_t>(f.src));
            json.kv("dst", static_cast<std::uint64_t>(f.dst));
            json.kv("bytes", f.bytes);
            json.kv("maxError", f.error);
            json.endObject();
        }
        json.endArray();
        json.key("worstLatency").beginArray();
        for (const auto &f : t.worstLatency) {
            json.beginObject();
            json.kv("src", static_cast<std::uint64_t>(f.src));
            json.kv("dst", static_cast<std::uint64_t>(f.dst));
            json.kv("samples", f.samples);
            json.kv("worstPs", f.worst);
            json.kv("meanPs", f.mean);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }

    // The lb object only exists while a balancer drives the run,
    // keeping every other workload's stats JSON byte-identical.
    if (const lb::LoadBalancer *bal = lb::globalBalancer()) {
        const apps::LbStats &c = bal->counters();
        json.key("lb").beginObject();
        json.kv("lookups", c.lookups);
        json.kv("hotHits", c.hotHits);
        json.kv("tableHits", c.tableHits);
        json.kv("misses", c.misses);
        json.kv("inserts", c.inserts);
        json.kv("insertFailures", c.insertFailures);
        json.kv("removes", c.removes);
        json.kv("forwarded", c.forwarded);
        json.kv("punts", c.punts);
        json.kv("migrations", c.migrations);
        json.kv("peakFlows", c.peakFlows);
        json.kv("flowsLive", bal->table().live());
        json.kv("tableCapacity", bal->table().capacity());
        json.kv("tableBytes", bal->table().memoryBytes());
        json.kv("hotBytes", lb::ConnTable::hotBytes());
        json.kv("backendsAlive",
                static_cast<std::uint64_t>(bal->maglev().aliveCount()));
        if (c.backendDownEvents != 0 || c.backendUpEvents != 0) {
            json.kv("backendDownEvents", c.backendDownEvents);
            json.kv("backendUpEvents", c.backendUpEvents);
        }
        json.key("backendPackets").beginArray();
        for (const std::uint64_t n : c.backendPackets)
            json.value(n);
        json.endArray();
        json.endObject();
    }

    json.endObject();
}

} // namespace san::harness
