#include "harness/StatsReport.hh"

#include <ostream>

namespace san::harness {

namespace {

void
dumpCache(std::ostream &os, const std::string &prefix, mem::Cache &c)
{
    os << prefix << ".hits " << c.hits() << '\n'
       << prefix << ".misses " << c.misses() << '\n'
       << prefix << ".missRate " << c.missRate() << '\n'
       << prefix << ".writebacks " << c.writebacks() << '\n';
    if (c.params().classifyMisses) {
        os << prefix << ".coldMisses " << c.coldMisses() << '\n'
           << prefix << ".capacityMisses " << c.capacityMisses() << '\n'
           << prefix << ".conflictMisses " << c.conflictMisses() << '\n';
    }
}

void
dumpTlb(std::ostream &os, const std::string &prefix, mem::Tlb &t)
{
    os << prefix << ".hits " << t.hits() << '\n'
       << prefix << ".misses " << t.misses() << '\n';
}

} // namespace

void
dumpMemoryStats(std::ostream &os, const std::string &prefix,
                mem::MemorySystem &ms)
{
    dumpCache(os, prefix + ".l1i", ms.l1i());
    dumpCache(os, prefix + ".l1d", ms.l1d());
    if (ms.l2())
        dumpCache(os, prefix + ".l2", *ms.l2());
    dumpTlb(os, prefix + ".itlb", ms.itlb());
    dumpTlb(os, prefix + ".dtlb", ms.dtlb());
    os << prefix << ".dram.pageHits " << ms.dram().pageHits() << '\n'
       << prefix << ".dram.pageMisses " << ms.dram().pageMisses() << '\n'
       << prefix << ".dram.bytes " << ms.dram().bytesTransferred()
       << '\n'
       << prefix << ".stallTicks " << ms.stallTicks() << '\n';
}

void
dumpClusterStats(std::ostream &os, apps::Cluster &cluster)
{
    for (unsigned i = 0; i < cluster.hostCount(); ++i) {
        auto &h = cluster.host(i);
        const std::string prefix = h.name();
        os << prefix << ".cpu.busyTicks " << h.cpu().busyTicks() << '\n'
           << prefix << ".cpu.stallTicks " << h.cpu().stallTicks()
           << '\n';
        dumpMemoryStats(os, prefix + ".mem", h.cpu().memory());
        os << prefix << ".hca.bytesSent " << h.hca().bytesSent() << '\n'
           << prefix << ".hca.bytesReceived " << h.hca().bytesReceived()
           << '\n'
           << prefix << ".hca.messagesSent " << h.hca().messagesSent()
           << '\n'
           << prefix << ".hca.messagesReceived "
           << h.hca().messagesReceived() << '\n';
    }

    auto &sw = cluster.sw();
    os << sw.name() << ".packetsRouted " << sw.packetsRouted() << '\n'
       << sw.name() << ".packetsLocal " << sw.packetsLocal() << '\n'
       << sw.name() << ".handlersInvoked " << sw.handlersInvoked()
       << '\n'
       << sw.name() << ".chunksStaged " << sw.chunksStaged() << '\n'
       << sw.name() << ".dispatchStalls " << sw.dispatchStalls() << '\n'
       << sw.name() << ".buffers.allocations "
       << sw.buffers().allocations() << '\n'
       << sw.name() << ".buffers.peakInUse " << sw.buffers().peakInUse()
       << '\n'
       << sw.name() << ".buffers.allocationFailures "
       << sw.buffers().allocationFailures() << '\n';
    for (unsigned i = 0; i < sw.cpuCount(); ++i) {
        const std::string prefix =
            sw.name() + ".sp" + std::to_string(i);
        os << prefix << ".busyTicks " << sw.cpu(i).busyTicks() << '\n'
           << prefix << ".stallTicks " << sw.cpu(i).stallTicks() << '\n'
           << prefix << ".atb.mappings " << sw.atb(i).mappings() << '\n'
           << prefix << ".atb.conflicts " << sw.atb(i).conflicts()
           << '\n';
        dumpMemoryStats(os, prefix + ".mem", sw.cpu(i).memory());
    }

    for (unsigned i = 0; i < cluster.storageCount(); ++i) {
        auto &s = cluster.storage(i);
        const std::string prefix = "storage" + std::to_string(i);
        os << prefix << ".requestsServed " << s.requestsServed() << '\n'
           << prefix << ".disk.bytesRead " << s.disks().bytesRead()
           << '\n'
           << prefix << ".disk.seeks " << s.disks().seeks() << '\n'
           << prefix << ".scsi.bytes " << s.bus().bytesTransferred()
           << '\n'
           << prefix << ".scsi.transactions " << s.bus().transactions()
           << '\n';
    }
}

} // namespace san::harness
