/**
 * @file
 * Component-level statistics dump: caches, TLBs, DRAM, switch,
 * buffers, ATBs, disks and adapters of a cluster, in a stable
 * `component.stat value` format. Benches print this under --stats;
 * it also serves as the simulator's debugging x-ray.
 */

#ifndef SAN_HARNESS_STATS_REPORT_HH
#define SAN_HARNESS_STATS_REPORT_HH

#include <iosfwd>

#include "apps/Cluster.hh"
#include "obs/Json.hh"

namespace san::harness {

/** Dump every component's counters for one cluster. */
void dumpClusterStats(std::ostream &os, apps::Cluster &cluster);

/** Dump one memory system's cache/TLB/DRAM counters. */
void dumpMemoryStats(std::ostream &os, const std::string &prefix,
                     mem::MemorySystem &ms);

/**
 * Emit one cluster's stats as a JSON object value on @p json:
 * caches, TLBs, RDRAM, switch, ATBs, buffers, disks and adapters,
 * plus the simulated end time and the run fingerprint. This is the
 * machine-readable twin of dumpClusterStats: byte-stable output,
 * compared against golden files by tests/golden_stats_test.
 */
void dumpClusterStatsJson(obs::JsonWriter &json, apps::Cluster &cluster);

/** One memory system as a JSON object value. */
void dumpMemoryStatsJson(obs::JsonWriter &json, mem::MemorySystem &ms);

} // namespace san::harness

#endif // SAN_HARNESS_STATS_REPORT_HH
