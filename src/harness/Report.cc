#include "harness/Report.hh"

#include <iomanip>
#include <ostream>

namespace san::harness {

using apps::allModes;
using apps::modeName;
using apps::RunStats;

void
printOverview(std::ostream &os, const std::string &title,
              const ModeResults &results)
{
    const double base_time =
        static_cast<double>(results[0].execTime);
    const double base_io =
        static_cast<double>(results[0].hostIoBytes);

    os << "== " << title << " ==\n";
    os << std::left << std::setw(14) << "config" << std::right
       << std::setw(12) << "exec(norm)" << std::setw(12) << "host-util"
       << std::setw(12) << "io(norm)" << std::setw(14) << "exec(ms)"
       << std::setw(14) << "io(bytes)" << '\n';
    os << std::fixed;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStats &r = results[i];
        os << std::left << std::setw(14) << modeName(allModes[i])
           << std::right << std::setprecision(3) << std::setw(12)
           << (base_time > 0 ? r.execTime / base_time : 0.0)
           << std::setw(12) << r.hostUtilization() << std::setw(12)
           << (base_io > 0 ? r.hostIoBytes / base_io : 0.0)
           << std::setw(14) << std::setprecision(3)
           << san::sim::toMillis(r.execTime) << std::setw(14)
           << r.hostIoBytes << '\n';
    }
    os.unsetf(std::ios::fixed);
}

namespace {

void
printBar(std::ostream &os, const std::string &label,
         const cpu::TimeBreakdown &bd)
{
    const double total = static_cast<double>(bd.total);
    auto frac = [&](san::sim::Tick t) {
        return total > 0 ? static_cast<double>(t) / total : 0.0;
    };
    os << std::left << std::setw(14) << label << std::right
       << std::fixed << std::setprecision(3) << std::setw(10)
       << frac(bd.busy) << std::setw(10) << frac(bd.stall)
       << std::setw(10) << frac(bd.idle()) << '\n';
    os.unsetf(std::ios::fixed);
}

} // namespace

void
printBreakdown(std::ostream &os, const std::string &title,
               const ModeResults &results)
{
    static const char *host_labels[4] = {"n-HP", "n+p-HP", "a-HP",
                                         "a+p-HP"};
    static const char *sp_labels[4] = {"", "", "a-SP", "a+p-SP"};

    os << "== " << title << " (breakdown) ==\n";
    os << std::left << std::setw(14) << "cpu" << std::right
       << std::setw(10) << "busy" << std::setw(10) << "stall"
       << std::setw(10) << "idle" << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunStats &r = results[i];
        for (std::size_t h = 0; h < r.hosts.size(); ++h) {
            std::string label = host_labels[i];
            if (r.hosts.size() > 1)
                label += "#" + std::to_string(h);
            printBar(os, label, r.hosts[h]);
        }
        for (std::size_t s = 0; s < r.switchCpus.size(); ++s) {
            std::string label = sp_labels[i];
            if (r.switchCpus.size() > 1)
                label += "#" + std::to_string(s);
            printBar(os, label, r.switchCpus[s]);
        }
    }
}

void
printHandlerProfile(std::ostream &os, const std::string &title,
                    const ModeResults &results)
{
    bool any = false;
    for (const RunStats &r : results)
        any = any || !r.handlerProfiles.empty();
    if (!any)
        return;

    os << "== " << title << " (handler profile) ==\n";
    os << std::left << std::setw(14) << "config" << std::setw(12)
       << "handler" << std::right << std::setw(8) << "inst"
       << std::setw(10) << "chunks" << std::setw(14) << "bytes"
       << std::setw(14) << "busy-cycles" << std::setw(12) << "cyc/byte"
       << '\n';
    for (std::size_t i = 0; i < results.size(); ++i) {
        for (const auto &p : results[i].handlerProfiles) {
            os << std::left << std::setw(14) << modeName(allModes[i])
               << std::setw(12) << p.name << std::right << std::setw(8)
               << p.invocations << std::setw(10) << p.chunks
               << std::setw(14) << p.bytes << std::setw(14)
               << p.busyCycles << std::fixed << std::setprecision(2)
               << std::setw(12) << p.cyclesPerByte << '\n';
            os.unsetf(std::ios::fixed);
        }
    }
}

namespace {

/** Integer nanoseconds (truncated) — byte-stable across compilers. */
std::uint64_t
toNs(san::sim::Tick t)
{
    return t / 1000;
}

void
printLatencyRow(std::ostream &os, const std::string &label,
                const obs::LatencyHistogram &h)
{
    os << std::left << std::setw(26) << label << std::right
       << std::setw(10) << h.samples() << std::setw(12)
       << toNs(h.percentile(5000)) << std::setw(12)
       << toNs(h.percentile(9000)) << std::setw(12)
       << toNs(h.percentile(9900)) << std::setw(12)
       << toNs(h.percentile(9990)) << std::setw(12) << toNs(h.max())
       << '\n';
}

} // namespace

void
printTelemetryStats(std::ostream &os, const std::string &label,
                    const obs::TelemetryStats &t)
{
    if (!t.active)
        return;
    os << "-- " << label << ": sampleRate " << t.sampleRate
       << ", sampled " << t.recordsSampled << ", delivered "
       << t.recordsDelivered << ", inFlight " << t.recordsInFlight
       << ", retransmits " << t.retransmitsSampled
       << ", stampsDropped " << t.stampsDropped << " --\n";
    os << std::left << std::setw(26) << "class.stage" << std::right
       << std::setw(10) << "samples" << std::setw(12) << "p50(ns)"
       << std::setw(12) << "p90(ns)" << std::setw(12) << "p99(ns)"
       << std::setw(12) << "p99.9(ns)" << std::setw(12)
       << "max(ns)" << '\n';
    for (std::size_t fc = 0; fc < obs::kFlowClassCount; ++fc) {
        for (std::size_t s = 0; s < obs::kStageCount; ++s) {
            const auto &h =
                t.stageHist(static_cast<obs::FlowClass>(fc),
                            static_cast<obs::Stage>(s));
            if (h.samples() == 0)
                continue;
            printLatencyRow(
                os,
                std::string(obs::flowClassName(
                    static_cast<obs::FlowClass>(fc))) +
                    "." + obs::stageName(static_cast<obs::Stage>(s)),
                h);
        }
    }
    for (std::size_t fc = 0; fc < obs::kFlowClassCount; ++fc) {
        for (std::size_t hi = 0; hi < obs::kMaxTelemetryHops; ++hi) {
            for (std::size_t s = 0; s < obs::kHopStageCount; ++s) {
                const auto &h =
                    t.hopHist(static_cast<obs::FlowClass>(fc), hi,
                              static_cast<obs::HopStage>(s));
                if (h.samples() == 0)
                    continue;
                printLatencyRow(
                    os,
                    std::string(obs::flowClassName(
                        static_cast<obs::FlowClass>(fc))) +
                        ".hop" + std::to_string(hi) + "." +
                        obs::hopStageName(
                            static_cast<obs::HopStage>(s)),
                    h);
            }
        }
    }
    if (!t.topByVolume.empty()) {
        os << "top flows by volume:\n";
        for (const auto &f : t.topByVolume)
            os << "  " << f.src << "->" << f.dst << " bytes "
               << f.bytes << " maxError " << f.error << '\n';
    }
    if (!t.worstLatency.empty()) {
        os << "worst sampled end-to-end latency:\n";
        for (const auto &f : t.worstLatency)
            os << "  " << f.src << "->" << f.dst << " samples "
               << f.samples << " worst(ns) " << toNs(f.worst)
               << " mean(ns) " << toNs(f.mean) << '\n';
    }
}

void
printLatencyReport(std::ostream &os, const std::string &title,
                   const ModeResults &results)
{
    bool any = false;
    for (const RunStats &r : results)
        any = any || r.telemetry.active;
    if (!any)
        return;

    os << "== " << title << " (latency lineage) ==\n";
    for (std::size_t i = 0; i < results.size(); ++i)
        printTelemetryStats(os, modeName(allModes[i]),
                            results[i].telemetry);
}

bool
checksumsAgree(const ModeResults &results)
{
    for (const RunStats &r : results)
        if (r.checksum != results[0].checksum)
            return false;
    return true;
}

void
printRaw(std::ostream &os, const ModeResults &results)
{
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << modeName(allModes[i]) << ": exec="
           << san::sim::toMillis(results[i].execTime)
           << " ms, checksum=" << results[i].checksum << '\n';
    }
}

} // namespace san::harness
