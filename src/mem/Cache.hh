/**
 * @file
 * Set-associative write-back cache model with LRU replacement and
 * cold/capacity/conflict miss classification.
 *
 * The cache tracks tags only (the simulator never stores data in
 * caches); timing is composed by MemorySystem.
 */

#ifndef SAN_MEM_CACHE_HH
#define SAN_MEM_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace san::mem {

using Addr = std::uint64_t;

/** Why an access missed. */
enum class MissClass { None, Cold, Capacity, Conflict };

/** Geometry and behaviour of one cache level. */
struct CacheParams {
    std::string name = "cache";
    std::uint64_t size = 32 * 1024;     //!< total bytes
    unsigned assoc = 2;                 //!< ways per set
    unsigned lineSize = 64;             //!< bytes per line
    bool classifyMisses = false;        //!< keep FA shadow for class.
};

/** Result of a single cache access. */
struct CacheAccess {
    bool hit = false;
    MissClass missClass = MissClass::None;
    bool writeback = false;             //!< a dirty line was evicted
};

/** A single level of set-associative write-back cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access one line. @p addr may be any byte address; the line
     * containing it is accessed.
     */
    CacheAccess access(Addr addr, bool write);

    /** Probe without disturbing state. */
    bool contains(Addr addr) const;

    /** Drop every line (losing dirty data; model-level reset). */
    void invalidateAll();

    const CacheParams &params() const { return params_; }
    std::uint64_t numLines() const { return numLines_; }

    /** @{ Statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t coldMisses() const { return cold_; }
    std::uint64_t capacityMisses() const { return capacity_; }
    std::uint64_t conflictMisses() const { return conflict_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double
    missRate() const
    {
        const auto total = hits_ + misses_;
        return total ? static_cast<double>(misses_) / total : 0.0;
    }
    /** @} */

  private:
    struct Line {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr a) const { return a / params_.lineSize; }
    std::size_t setIndex(Addr line) const { return line % numSets_; }

    MissClass classify(Addr line);
    void shadowTouch(Addr line);

    CacheParams params_;
    std::size_t numSets_;
    std::uint64_t numLines_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t useClock_ = 0;

    // Miss classification state: set of ever-seen lines (cold) and a
    // fully-associative LRU shadow of equal capacity (capacity vs
    // conflict).
    std::unordered_set<Addr> seen_;
    std::list<Addr> shadowLru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> shadowMap_;

    std::uint64_t hits_ = 0, misses_ = 0;
    std::uint64_t cold_ = 0, capacity_ = 0, conflict_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace san::mem

#endif // SAN_MEM_CACHE_HH
