/**
 * @file
 * A composed memory hierarchy: L1I + L1D (+ optional unified L2) +
 * TLBs + RDRAM, returning stall time for CPU timing models.
 */

#ifndef SAN_MEM_MEMORY_SYSTEM_HH
#define SAN_MEM_MEMORY_SYSTEM_HH

#include <optional>
#include <string>

#include "mem/Cache.hh"
#include "mem/Rdram.hh"
#include "mem/Tlb.hh"
#include "sim/Types.hh"

namespace san::mem {

/** How the CPU touches memory. */
enum class AccessKind {
    Load,     //!< stalls for the full miss latency
    Store,    //!< overlapped up to the outstanding-miss depth
    Prefetch, //!< overlapped like stores
};

/** Parameters of a complete per-CPU memory system. */
struct MemorySystemParams {
    std::string name = "mem";
    CacheParams l1i{"l1i", 32 * 1024, 2, 128, false};
    CacheParams l1d{"l1d", 32 * 1024, 2, 128, false};
    std::optional<CacheParams> l2 =
        CacheParams{"l2", 512 * 1024, 2, 128, false};
    unsigned tlbEntries = 64;
    unsigned pageSize = 4096;
    sim::Tick l2HitLatency = sim::ns(10);
    /** Extra fixed cost of a TLB fill beyond its page-table load. */
    sim::Tick tlbWalkOverhead = sim::ns(10);
    /**
     * Load/store misses to up to this many distinct lines overlap
     * (the paper: stores/prefetches don't stall until 4 outstanding).
     */
    unsigned overlapDepth = 4;
    RdramParams dram;
};

/**
 * Paper §4 host memory system: 32 KB 2-way L1s, 512 KB 2-way unified
 * L2 with 128 B lines, 64-entry TLBs, RDRAM.
 */
MemorySystemParams hostMemoryParams();

/**
 * Paper §4 host memory system scaled down by 8x for the database
 * workloads (8 KB L1D, 64 KB L2; same lines/associativity).
 */
MemorySystemParams scaledHostMemoryParams();

/**
 * Paper §4 switch-CPU memory system: 4 KB 2-way I$ (64 B lines),
 * 1 KB 2-way D$ (32 B lines), no L2, one outstanding request.
 */
MemorySystemParams switchMemoryParams();

/**
 * One CPU's memory hierarchy. Calls are synchronous: the caller
 * passes the current tick and receives stall time to charge.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemParams &params);

    /**
     * Touch the byte range [addr, addr+bytes) with kind @p kind.
     * @return stall ticks beyond base execution.
     */
    sim::Tick dataAccess(Addr addr, std::uint64_t bytes, AccessKind kind,
                         sim::Tick now);

    /** Instruction-side access for a code footprint of @p bytes. */
    sim::Tick instFetch(Addr pc, std::uint64_t bytes, sim::Tick now);

    /** @{ Component access for tests and stats. */
    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }
    Cache *l2() { return l2_ ? &*l2_ : nullptr; }
    Tlb &dtlb() { return dtlb_; }
    Tlb &itlb() { return itlb_; }
    Rdram &dram() { return dram_; }
    /** @} */

    /** Total stall ticks returned so far (data + inst + TLB). */
    sim::Tick stallTicks() const { return stall_; }
    const MemorySystemParams &params() const { return params_; }

  private:
    /** Latency of filling one line into L1 from L2/DRAM. */
    sim::Tick fillLatency(Addr line_addr, bool write, sim::Tick now,
                          Cache &l1);

    /** Page-table walk: one dependent memory load. */
    sim::Tick walk(Addr vaddr, sim::Tick now);

    MemorySystemParams params_;
    Cache l1i_, l1d_;
    std::optional<Cache> l2_;
    Tlb itlb_, dtlb_;
    Rdram dram_;
    sim::Tick stall_ = 0;
};

} // namespace san::mem

#endif // SAN_MEM_MEMORY_SYSTEM_HH
