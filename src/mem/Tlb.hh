/**
 * @file
 * Fully-associative TLB with LRU replacement (64 entries in the
 * modelled system).
 */

#ifndef SAN_MEM_TLB_HH
#define SAN_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/Cache.hh"

namespace san::mem {

/** Fully-associative translation lookaside buffer. */
class Tlb
{
  public:
    Tlb(unsigned entries, unsigned page_size)
        : entries_(entries), pageSize_(page_size)
    {}

    /** @retval true the page was resident (TLB hit). */
    bool
    access(Addr addr)
    {
        const Addr vpn = addr / pageSize_;
        auto it = map_.find(vpn);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            return true;
        }
        ++misses_;
        lru_.push_front(vpn);
        map_[vpn] = lru_.begin();
        if (lru_.size() > entries_) {
            map_.erase(lru_.back());
            lru_.pop_back();
        }
        return false;
    }

    void
    flush()
    {
        lru_.clear();
        map_.clear();
    }

    unsigned entries() const { return entries_; }
    unsigned pageSize() const { return pageSize_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    unsigned entries_;
    unsigned pageSize_;
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    std::uint64_t hits_ = 0, misses_ = 0;
};

} // namespace san::mem

#endif // SAN_MEM_TLB_HH
