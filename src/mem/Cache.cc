#include "mem/Cache.hh"

#include <algorithm>
#include <cassert>

namespace san::mem {

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    assert(params_.lineSize > 0 && params_.assoc > 0);
    numLines_ = params_.size / params_.lineSize;
    assert(numLines_ >= params_.assoc);
    numSets_ = numLines_ / params_.assoc;
    assert(numSets_ > 0);
    sets_.assign(numSets_, std::vector<Line>(params_.assoc));
}

CacheAccess
Cache::access(Addr addr, bool write)
{
    const Addr line = lineAddr(addr);
    auto &set = sets_[setIndex(line)];
    ++useClock_;

    for (auto &way : set) {
        if (way.valid && way.tag == line) {
            way.lastUse = useClock_;
            way.dirty |= write;
            ++hits_;
            if (params_.classifyMisses)
                shadowTouch(line);
            return CacheAccess{true, MissClass::None, false};
        }
    }

    // Miss: classify, then fill via LRU replacement.
    ++misses_;
    MissClass mc = MissClass::Capacity;
    if (params_.classifyMisses) {
        mc = classify(line);
        switch (mc) {
          case MissClass::Cold: ++cold_; break;
          case MissClass::Capacity: ++capacity_; break;
          case MissClass::Conflict: ++conflict_; break;
          case MissClass::None: break;
        }
        shadowTouch(line);
    }

    Line *victim = &set[0];
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lastUse < victim->lastUse)
            victim = &way;
    }

    const bool writeback = victim->valid && victim->dirty;
    writebacks_ += writeback;
    victim->tag = line;
    victim->valid = true;
    victim->dirty = write;
    victim->lastUse = useClock_;
    return CacheAccess{false, mc, writeback};
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const auto &set = sets_[setIndex(line)];
    return std::any_of(set.begin(), set.end(), [&](const Line &way) {
        return way.valid && way.tag == line;
    });
}

void
Cache::invalidateAll()
{
    for (auto &set : sets_)
        for (auto &way : set)
            way = Line{};
}

MissClass
Cache::classify(Addr line)
{
    if (!seen_.contains(line)) {
        seen_.insert(line);
        return MissClass::Cold;
    }
    // Present in a fully-associative cache of the same capacity?
    // Then only the mapping caused the miss: conflict. Otherwise the
    // working set simply exceeds capacity.
    return shadowMap_.contains(line) ? MissClass::Conflict
                                     : MissClass::Capacity;
}

void
Cache::shadowTouch(Addr line)
{
    auto it = shadowMap_.find(line);
    if (it != shadowMap_.end()) {
        shadowLru_.erase(it->second);
        shadowMap_.erase(it);
    }
    shadowLru_.push_front(line);
    shadowMap_[line] = shadowLru_.begin();
    if (shadowLru_.size() > numLines_) {
        shadowMap_.erase(shadowLru_.back());
        shadowLru_.pop_back();
    }
}

} // namespace san::mem
