/**
 * @file
 * RDRAM timing model: open-page banks plus channel bandwidth.
 *
 * Parameters follow the paper: 1.6 GB/s peak, 100 ns page-hit
 * latency, 122 ns page-miss latency, for both host and switch memory
 * systems.
 */

#ifndef SAN_MEM_RDRAM_HH
#define SAN_MEM_RDRAM_HH

#include <cstdint>
#include <vector>

#include "mem/Cache.hh"
#include "sim/Types.hh"

namespace san::mem {

/** RDRAM device/channel parameters. */
struct RdramParams {
    double bandwidthBytesPerSec = 1.6e9;
    sim::Tick pageHitLatency = sim::ns(100);
    sim::Tick pageMissLatency = sim::ns(122);
    unsigned banks = 32;
    unsigned pageBytes = 2048;
};

/** Result of one DRAM access. */
struct DramAccess {
    sim::Tick start;     //!< when the channel accepted the request
    sim::Tick complete;  //!< when the last byte arrived
    bool pageHit;
};

/**
 * One RDRAM channel with per-bank open pages and a serial data bus.
 *
 * The model is queue-free: callers pass the current time and receive
 * the completion time; channel occupancy is tracked so back-to-back
 * accesses serialize at peak bandwidth.
 */
class Rdram
{
  public:
    explicit Rdram(const RdramParams &params = {})
        : params_(params),
          psPerByte_(sim::bytesPerSec(params.bandwidthBytesPerSec)),
          openPage_(params.banks, ~std::uint64_t(0))
    {}

    /** Access @p bytes at @p addr starting no earlier than @p now. */
    DramAccess
    access(Addr addr, unsigned bytes, sim::Tick now)
    {
        const std::uint64_t page = addr / params_.pageBytes;
        const unsigned bank = page % params_.banks;
        const bool hit = openPage_[bank] == page;
        openPage_[bank] = page;
        hit ? ++pageHits_ : ++pageMisses_;

        const sim::Tick start = std::max(now, channelFree_);
        const sim::Tick lat =
            hit ? params_.pageHitLatency : params_.pageMissLatency;
        const sim::Tick xfer = sim::transferTime(bytes, psPerByte_);
        channelFree_ = start + xfer;
        bytesTransferred_ += bytes;
        return DramAccess{start, start + lat + xfer, hit};
    }

    const RdramParams &params() const { return params_; }
    std::uint64_t pageHits() const { return pageHits_; }
    std::uint64_t pageMisses() const { return pageMisses_; }
    std::uint64_t bytesTransferred() const { return bytesTransferred_; }

  private:
    RdramParams params_;
    sim::PsPerByte psPerByte_;
    std::vector<std::uint64_t> openPage_;
    sim::Tick channelFree_ = 0;
    std::uint64_t pageHits_ = 0, pageMisses_ = 0;
    std::uint64_t bytesTransferred_ = 0;
};

} // namespace san::mem

#endif // SAN_MEM_RDRAM_HH
