#include "mem/MemorySystem.hh"

#include <algorithm>

namespace san::mem {

MemorySystemParams
hostMemoryParams()
{
    MemorySystemParams p;
    p.name = "host-mem";
    p.l1i = CacheParams{"l1i", 32 * 1024, 2, 128, false};
    p.l1d = CacheParams{"l1d", 32 * 1024, 2, 128, true};
    p.l2 = CacheParams{"l2", 512 * 1024, 2, 128, true};
    return p;
}

MemorySystemParams
scaledHostMemoryParams()
{
    MemorySystemParams p = hostMemoryParams();
    p.name = "host-mem-scaled";
    p.l1d.size = 8 * 1024;
    p.l2->size = 64 * 1024;
    return p;
}

MemorySystemParams
switchMemoryParams()
{
    MemorySystemParams p;
    p.name = "switch-mem";
    p.l1i = CacheParams{"icache", 4 * 1024, 2, 64, false};
    p.l1d = CacheParams{"dcache", 1 * 1024, 2, 32, true};
    p.l2 = std::nullopt;
    p.overlapDepth = 1; // one outstanding request
    return p;
}

MemorySystem::MemorySystem(const MemorySystemParams &params)
    : params_(params),
      l1i_(params.l1i),
      l1d_(params.l1d),
      itlb_(params.tlbEntries, params.pageSize),
      dtlb_(params.tlbEntries, params.pageSize),
      dram_(params.dram)
{
    if (params.l2)
        l2_.emplace(*params.l2);
}

sim::Tick
MemorySystem::fillLatency(Addr line_addr, bool write, sim::Tick now,
                          Cache &l1)
{
    if (l2_) {
        auto l2res = l2_->access(line_addr, write);
        if (l2res.hit)
            return params_.l2HitLatency;
        if (l2res.writeback) {
            // Dirty victim consumes DRAM bandwidth but the CPU does
            // not wait for it.
            dram_.access(line_addr ^ 0x40000000, l2_->params().lineSize,
                         now);
        }
        auto dres = dram_.access(line_addr, l2_->params().lineSize, now);
        return params_.l2HitLatency + (dres.complete - now);
    }
    auto dres = dram_.access(line_addr, l1.params().lineSize, now);
    return dres.complete - now;
}

sim::Tick
MemorySystem::walk(Addr vaddr, sim::Tick now)
{
    // Model the fill as one dependent load of a page-table entry at a
    // synthetic physical address derived from the page number.
    const Addr pte = 0x7000000000ull + (vaddr / params_.pageSize) * 8;
    sim::Tick lat = params_.tlbWalkOverhead;
    auto res = l1d_.access(pte, false);
    if (!res.hit)
        lat += fillLatency(pte, false, now, l1d_);
    return lat;
}

sim::Tick
MemorySystem::dataAccess(Addr addr, std::uint64_t bytes, AccessKind kind,
                         sim::Tick now)
{
    if (bytes == 0)
        return 0;

    const unsigned line = params_.l1d.lineSize;
    const Addr first = addr / line;
    const Addr last = (addr + bytes - 1) / line;
    const unsigned depth =
        kind == AccessKind::Load ? 1 : std::max(1u, params_.overlapDepth);

    sim::Tick stall = 0;
    Addr prev_page = ~Addr(0);
    for (Addr la = first; la <= last; ++la) {
        const Addr byte_addr = la * line;
        const Addr page = byte_addr / params_.pageSize;
        if (page != prev_page) {
            prev_page = page;
            if (!dtlb_.access(byte_addr))
                stall += walk(byte_addr, now + stall);
        }
        auto res = l1d_.access(byte_addr, kind == AccessKind::Store);
        if (res.hit)
            continue;
        if (res.writeback)
            dram_.access(byte_addr ^ 0x20000000, line, now + stall);
        const sim::Tick lat = fillLatency(
            byte_addr, kind == AccessKind::Store, now + stall, l1d_);
        // Loads stall for the full latency; stores and prefetches
        // overlap up to `depth` outstanding line misses, so on
        // average each contributes 1/depth of its latency.
        stall += lat / depth;
    }
    stall_ += stall;
    return stall;
}

sim::Tick
MemorySystem::instFetch(Addr pc, std::uint64_t bytes, sim::Tick now)
{
    if (bytes == 0)
        return 0;
    const unsigned line = params_.l1i.lineSize;
    const Addr first = pc / line;
    const Addr last = (pc + bytes - 1) / line;
    sim::Tick stall = 0;
    Addr prev_page = ~Addr(0);
    for (Addr la = first; la <= last; ++la) {
        const Addr byte_addr = la * line;
        const Addr page = byte_addr / params_.pageSize;
        if (page != prev_page) {
            prev_page = page;
            if (!itlb_.access(byte_addr))
                stall += walk(byte_addr, now + stall);
        }
        auto res = l1i_.access(byte_addr, false);
        if (!res.hit)
            stall += fillLatency(byte_addr, false, now + stall, l1i_);
    }
    stall_ += stall;
    return stall;
}

} // namespace san::mem
