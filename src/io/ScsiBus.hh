/**
 * @file
 * Ultra-320 SCSI bus occupancy model.
 *
 * The bus charges an arbitration + selection overhead per transaction
 * and carries data at 320 MB/s peak. Like the other occupancy models
 * it serializes overlapping users without requiring events.
 */

#ifndef SAN_IO_SCSI_BUS_HH
#define SAN_IO_SCSI_BUS_HH

#include <cstdint>

#include "sim/Types.hh"

namespace san::io {

/** Bus parameters (Ultra-320 defaults). */
struct ScsiParams {
    double bandwidthBytesPerSec = 320e6;
    /** Arbitration + selection phases per transaction. */
    sim::Tick transactionOverhead = sim::us(1);
};

/** The shared storage bus between disks and the TCA. */
class ScsiBus
{
  public:
    explicit ScsiBus(const ScsiParams &params = {})
        : params_(params),
          psPerByte_(sim::bytesPerSec(params.bandwidthBytesPerSec))
    {}

    /**
     * Transfer @p bytes ready at @p ready; @p new_transaction charges
     * the arbitration/selection overhead.
     * @return completion time of the transfer.
     */
    sim::Tick
    transfer(std::uint64_t bytes, sim::Tick ready, bool new_transaction)
    {
        sim::Tick start = std::max(ready, busyUntil_);
        if (new_transaction) {
            start += params_.transactionOverhead;
            ++transactions_;
        }
        const sim::Tick done =
            start + sim::transferTime(bytes, psPerByte_);
        busyUntil_ = done;
        bytes_ += bytes;
        return done;
    }

    const ScsiParams &params() const { return params_; }
    std::uint64_t bytesTransferred() const { return bytes_; }
    std::uint64_t transactions() const { return transactions_; }

  private:
    ScsiParams params_;
    sim::PsPerByte psPerByte_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace san::io

#endif // SAN_IO_SCSI_BUS_HH
