/**
 * @file
 * A storage node: TCA + Ultra-320 SCSI bus + striped disks.
 *
 * The node's server task pops read-request messages from its TCA and
 * streams the requested bytes back as MTU chunk messages, pacing each
 * chunk through the disk and bus occupancy models so that end-to-end
 * storage bandwidth (not the 1 GB/s link) bounds delivery.
 */

#ifndef SAN_IO_STORAGE_NODE_HH
#define SAN_IO_STORAGE_NODE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "fault/FaultPlan.hh"
#include "io/Disk.hh"
#include "io/IoRequest.hh"
#include "io/ScsiBus.hh"
#include "net/Adapter.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"
#include "sim/Task.hh"

namespace san::io {

/** Storage node configuration (paper defaults). */
struct StorageParams {
    unsigned disks = 2;
    DiskParams disk{};          //!< 2 x 50 MB/s = 100 MB/s aggregate
    ScsiParams scsi{};          //!< Ultra-320
};

/**
 * An active-disk device processor (the paper's §6 "two-level active
 * I/O system": if active I/O devices become prevalent, they can be
 * used *within* the active switch system). When installed, every
 * chunk runs through the device filter before leaving the TCA; the
 * filter returns the bytes that survive plus the instructions the
 * embedded device core spends deciding.
 */
struct DeviceFilter {
    /** (surviving bytes, device instructions) for one raw chunk. */
    using Fn = std::function<std::pair<std::uint32_t, std::uint64_t>(
        std::uint64_t offset, std::uint32_t bytes)>;

    Fn process;
    /** Embedded device core clock (active-disk class, not a host). */
    std::uint64_t cpuHz = 200'000'000;
};

/** The I/O subsystem behind one TCA. */
class StorageNode
{
  public:
    /**
     * @p tca must outlive this node; its receive queue is consumed by
     * the server (started by start()).
     */
    StorageNode(sim::Simulation &sim, net::Adapter &tca,
                const StorageParams &params = {});

    /** Spawn the request server task. Call once after fabric wiring. */
    void start();

    net::NodeId id() const { return tca_.id(); }
    net::Adapter &tca() { return tca_; }
    DiskArray &disks() { return disks_; }
    ScsiBus &bus() { return bus_; }

    /**
     * Install an active-disk device processor: chunks are filtered
     * at the device before consuming any fabric bandwidth.
     */
    void setDeviceFilter(DeviceFilter filter);
    bool hasDeviceFilter() const { return static_cast<bool>(filter_.process); }

    std::uint64_t requestsServed() const { return requests_; }
    /** Requests accepted but not yet fully streamed back. */
    unsigned outstanding() const { return inflight_; }
    /** Chunk reads re-issued after an injected timeout. */
    std::uint64_t ioRetries() const { return retries_; }
    /** Chunks that exhausted the retry budget (status Error). */
    std::uint64_t ioErrors() const { return errors_; }
    /** Chunk reads delayed by an injected latency spike. */
    std::uint64_t ioSpikes() const { return spikes_; }
    /** Busy time of the embedded device core (if installed). */
    sim::Tick deviceBusyTicks() const { return deviceBusy_; }
    /** Bytes dropped at the device, never entering the fabric. */
    std::uint64_t bytesFilteredAtDevice() const { return filtered_; }

    /**
     * Register the node's timeline under @p prefix: outstanding I/Os,
     * requests per interval, mean spindle busy fraction, and bytes per
     * interval off the media and over the SCSI bus.
     */
    void registerMetrics(obs::MetricsRegistry &m,
                         const std::string &prefix) const;

  private:
    sim::Task serve();
    sim::Task handleRequest(IoRequest req);

    /** Disk occupancy for one chunk, with fault injection+recovery:
     * spikes delay, timeouts re-issue up to the retry cap. Sets
     * @p error when the budget is exhausted. */
    sim::Tick readChunkFaulted(std::uint64_t offset, std::uint32_t bytes,
                               bool *error);

    sim::Simulation &sim_;
    net::Adapter &tca_;
    StorageParams params_;
    DiskArray disks_;
    ScsiBus bus_;
    std::uint64_t requests_ = 0;
    unsigned inflight_ = 0;

    DeviceFilter filter_{};
    sim::Tick devicePeriod_ = 0;   //!< ps per device instruction
    sim::Tick deviceFree_ = 0;     //!< device core occupancy
    sim::Tick deviceBusy_ = 0;
    std::uint64_t filtered_ = 0;

    fault::FaultPlan *plan_ = nullptr; //!< null: no faults, no cost
    fault::FaultSite *spikeSite_ = nullptr;
    fault::FaultSite *timeoutSite_ = nullptr;
    std::uint64_t retries_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t spikes_ = 0;
};

/** Build the payload for a read-request message. */
net::PayloadPtr makeRequestPayload(const IoRequest &req);

/** Extract the IoRequest from a request message payload. */
const IoRequest &requestOf(const net::Message &msg);

/** Extract the IoReply tag from a data chunk message payload. */
const IoReply &replyOf(const net::Message &msg);

} // namespace san::io

#endif // SAN_IO_STORAGE_NODE_HH
