/**
 * @file
 * Disk timing models.
 *
 * The paper's disk model has exactly three timing parameters: seek
 * time, rotation speed and peak bandwidth, with sequential access
 * assumed for the large-file workloads. Disk and DiskArray are
 * occupancy models (like the RDRAM channel): callers pass the current
 * time and get back when their bytes are available, so pipelined
 * stages overlap naturally.
 */

#ifndef SAN_IO_DISK_HH
#define SAN_IO_DISK_HH

#include <cstdint>
#include <vector>

#include "sim/Types.hh"

namespace san::io {

/** Timing parameters of one spindle. */
struct DiskParams {
    sim::Tick seekTime = sim::ms(5);       //!< average seek
    double rotationRpm = 10000;            //!< spindle speed
    double bandwidthBytesPerSec = 50e6;    //!< media transfer rate

    /** Average rotational latency: half a revolution. */
    sim::Tick
    rotationalLatency() const
    {
        const double half_rev_seconds = 30.0 / rotationRpm;
        return static_cast<sim::Tick>(half_rev_seconds * 1e12);
    }
};

/** One disk with sequential-access detection. */
class Disk
{
  public:
    explicit Disk(const DiskParams &params = {})
        : params_(params),
          psPerByte_(sim::bytesPerSec(params.bandwidthBytesPerSec))
    {}

    /**
     * Read @p bytes at byte offset @p offset, issued at @p now.
     * @return the time the last byte is off the platter.
     */
    sim::Tick
    read(std::uint64_t offset, std::uint64_t bytes, sim::Tick now)
    {
        sim::Tick start = std::max(now, busyUntil_);
        if (first_) {
            // Heads start positioned for the first request: the
            // paper's workloads are sequential large-file scans with
            // no initial positioning penalty.
            first_ = false;
        } else if (offset != nextSequential_) {
            start += params_.seekTime + params_.rotationalLatency();
            ++seeks_;
        }
        const sim::Tick done =
            start + sim::transferTime(bytes, psPerByte_);
        busyTicks_ += done - start;
        busyUntil_ = done;
        nextSequential_ = offset + bytes;
        bytesRead_ += bytes;
        return done;
    }

    const DiskParams &params() const { return params_; }
    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t seeks() const { return seeks_; }
    /** Cumulative mechanism occupancy (transfer time) in ticks. */
    sim::Tick busyTicks() const { return busyTicks_; }

  private:
    DiskParams params_;
    sim::PsPerByte psPerByte_;
    sim::Tick busyUntil_ = 0;
    sim::Tick busyTicks_ = 0;
    bool first_ = true;
    std::uint64_t nextSequential_ = 0;
    std::uint64_t seeks_ = 0;
    std::uint64_t bytesRead_ = 0;
};

/**
 * A stripe set over N identical disks.
 *
 * Chunk reads round-robin across spindles, so aggregate sequential
 * bandwidth is N x per-disk bandwidth (the paper: two disks, 100 MB/s
 * total). Striping granularity is the caller's chunk size.
 */
class DiskArray
{
  public:
    DiskArray(unsigned disks, const DiskParams &params = {})
    {
        for (unsigned i = 0; i < disks; ++i)
            disks_.emplace_back(params);
    }

    /** Read one chunk; consecutive chunks hit consecutive disks. */
    sim::Tick
    readChunk(std::uint64_t offset, std::uint64_t bytes, sim::Tick now)
    {
        Disk &d = disks_[next_];
        next_ = (next_ + 1) % disks_.size();
        // Each spindle sees its own (still sequential) sub-stream.
        return d.read(offset / disks_.size(), bytes, now);
    }

    unsigned disks() const { return static_cast<unsigned>(disks_.size()); }

    std::uint64_t
    bytesRead() const
    {
        std::uint64_t total = 0;
        for (const auto &d : disks_)
            total += d.bytesRead();
        return total;
    }

    std::uint64_t
    seeks() const
    {
        std::uint64_t total = 0;
        for (const auto &d : disks_)
            total += d.seeks();
        return total;
    }

    /** Summed occupancy across spindles (up to disks() x elapsed). */
    sim::Tick
    busyTicks() const
    {
        sim::Tick total = 0;
        for (const auto &d : disks_)
            total += d.busyTicks();
        return total;
    }

  private:
    std::vector<Disk> disks_;
    std::size_t next_ = 0;
};

} // namespace san::io

#endif // SAN_IO_DISK_HH
