/**
 * @file
 * Wire-level request/reply records of the storage protocol.
 *
 * A read request is a small message whose payload carries an
 * IoRequest; the storage node streams the data back as MTU-sized
 * chunk messages, each tagged with an IoReply. Replies can be
 * directed at any node — including an active switch handler (the
 * request's replyActive header), which is how active-case data flows
 * into switch data buffers, and how Tar redirects archive output past
 * the host entirely.
 */

#ifndef SAN_IO_IO_REQUEST_HH
#define SAN_IO_IO_REQUEST_HH

#include <cstdint>
#include <optional>

#include "net/Packet.hh"

namespace san::io {

/** Size on the wire of a read-request message (command descriptor). */
inline constexpr std::uint32_t requestMessageBytes = 64;

/** @{ Message tags of the storage protocol. */
inline constexpr std::uint32_t tagIoRequest = 1;
inline constexpr std::uint32_t tagIoReply = 2;
/** @} */

/** A read command sent to a storage node. */
struct IoRequest {
    std::uint64_t requestId = 0;
    std::uint64_t offset = 0;            //!< byte offset on the volume
    std::uint64_t bytes = 0;             //!< transfer length
    net::NodeId replyTo = net::invalidNode;
    /** If set, replies are active messages with this header. */
    std::optional<net::ActiveHeader> replyActive;
};

/** Completion status of one storage chunk. */
enum class IoStatus : std::uint8_t {
    Ok = 0,
    /** The storage node exhausted its retry budget on this chunk
     * (injected disk timeouts); the data did not come back. */
    Error = 1,
};

/** Tag carried by each data chunk coming back from storage. */
struct IoReply {
    std::uint64_t requestId = 0;
    std::uint64_t offset = 0;            //!< offset of this chunk
    std::uint32_t bytes = 0;             //!< chunk payload size
    bool last = false;                   //!< final chunk of request
    IoStatus status = IoStatus::Ok;
};

} // namespace san::io

#endif // SAN_IO_IO_REQUEST_HH
