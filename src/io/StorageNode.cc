#include "io/StorageNode.hh"

#include <cassert>
#include <vector>

#include "sim/Log.hh"

namespace san::io {

StorageNode::StorageNode(sim::Simulation &sim, net::Adapter &tca,
                         const StorageParams &params)
    : sim_(sim), tca_(tca), params_(params),
      disks_(params.disks, params.disk), bus_(params.scsi)
{
    if (fault::FaultPlan *plan = fault::globalPlan()) {
        plan_ = plan;
        spikeSite_ =
            plan->site(fault::FaultKind::DiskSpike, tca_.name());
        timeoutSite_ =
            plan->site(fault::FaultKind::DiskTimeout, tca_.name());
    }
}

void
StorageNode::setDeviceFilter(DeviceFilter filter)
{
    filter_ = std::move(filter);
    devicePeriod_ = sim::Frequency(filter_.cpuHz).period();
}

void
StorageNode::start()
{
    sim_.spawn(serve());
}

sim::Task
StorageNode::serve()
{
    for (;;) {
        net::Message msg = co_await tca_.recvQueue().pop();
        IoRequest req = requestOf(msg);
        ++requests_;
        // Each request streams independently; disk/bus occupancy
        // models serialize contention between concurrent requests.
        sim_.spawn(handleRequest(req));
    }
}

void
StorageNode::registerMetrics(obs::MetricsRegistry &m,
                             const std::string &prefix) const
{
    m.add(prefix + ".outstanding", obs::GaugeKind::Gauge,
          [this] { return static_cast<double>(inflight_); });
    m.add(prefix + ".requests", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(requests_); });
    // Per-spindle busy time sums across the array; divide by the
    // spindle count so the gauge stays a 0..1 fraction.
    m.add(prefix + ".disk.busy", obs::GaugeKind::TimeShare, [this] {
        return static_cast<double>(disks_.busyTicks()) /
               static_cast<double>(disks_.disks());
    });
    m.add(prefix + ".disk.bytes", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(disks_.bytesRead()); });
    m.add(prefix + ".scsi.bytes", obs::GaugeKind::Rate, [this] {
        return static_cast<double>(bus_.bytesTransferred());
    });
}

sim::Tick
StorageNode::readChunkFaulted(std::uint64_t offset, std::uint32_t bytes,
                              bool *error)
{
    sim::Tick off_platter = disks_.readChunk(offset, bytes, sim_.now());
    if (plan_ == nullptr)
        return off_platter;
    const fault::RecoveryParams &rp = plan_->recovery();
    if ((spikeSite_ != nullptr && spikeSite_->fire()) ||
        (plan_->eventPending(fault::FaultKind::DiskSpike) &&
         plan_->eventDue(fault::FaultKind::DiskSpike, tca_.name(),
                         sim_.now()))) {
        // A media retry inside the drive: the data comes back, late.
        ++spikes_;
        off_platter += rp.diskSpikeDelay;
        if (auto *tr = sim_.tracer())
            tr->instant(tca_.name(), "disk-spike", sim_.now());
    }
    unsigned attempts = 0;
    while ((timeoutSite_ != nullptr && timeoutSite_->fire()) ||
           (plan_->eventPending(fault::FaultKind::DiskTimeout) &&
            plan_->eventDue(fault::FaultKind::DiskTimeout, tca_.name(),
                            sim_.now()))) {
        if (attempts >= rp.diskMaxRetries) {
            // Retry budget exhausted: complete the chunk with an
            // error status the requester observes.
            ++errors_;
            *error = true;
            sim::logAt(sim::LogLevel::Warn, tca_.name(), sim_.now(),
                       "chunk read at offset ", offset, " failed after ",
                       attempts, " retries; completing with error");
            break;
        }
        ++attempts;
        ++retries_;
        if (auto *tr = sim_.tracer())
            tr->instant(tca_.name(), "disk-timeout", sim_.now());
        // The command timed out with no data; re-issue it after the
        // timeout window. Occupancy restarts from the timeout expiry.
        off_platter =
            disks_.readChunk(offset, bytes, off_platter + rp.diskTimeout);
    }
    return off_platter;
}

sim::Task
StorageNode::handleRequest(IoRequest req)
{
    ++inflight_;
    // Reserve the disk and bus schedules for every chunk up front
    // (at issue time), so the disk stage of chunk i+1 overlaps the
    // bus stage of chunk i: the pipeline runs at min(disk, bus)
    // aggregate bandwidth rather than their series combination.
    const unsigned chunk = tca_.mtu();
    struct Slot {
        std::uint64_t offset;
        std::uint32_t bytes;    //!< bytes leaving the TCA
        std::uint32_t rawBytes; //!< bytes read off the media
        sim::Tick atTca;
        bool error = false;     //!< read failed past the retry cap
    };
    std::vector<Slot> schedule;
    schedule.reserve(static_cast<std::size_t>(
        (req.bytes + chunk - 1) / chunk));
    std::uint64_t planned = 0;
    bool first = true;
    while (planned < req.bytes) {
        const std::uint32_t n = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, req.bytes - planned));
        bool chunk_error = false;
        const sim::Tick off_platter =
            readChunkFaulted(req.offset + planned, n, &chunk_error);
        sim::Tick at_tca = bus_.transfer(n, off_platter, first);
        first = false;
        std::uint32_t out_bytes = n;
        if (filter_.process) {
            // The device core inspects the chunk before it leaves
            // the TCA. Its occupancy is reserved here, in the same
            // globally-ordered pass as the disk and bus schedules,
            // so concurrent requests keep their delivery order.
            auto [kept, instr] =
                filter_.process(req.offset + planned, n);
            const sim::Tick work = instr * devicePeriod_;
            const sim::Tick start = std::max(at_tca, deviceFree_);
            deviceFree_ = start + work;
            deviceBusy_ += work;
            at_tca = deviceFree_;
            filtered_ += n - kept;
            out_bytes = kept;
        }
        schedule.push_back(Slot{req.offset + planned, out_bytes, n,
                                at_tca, chunk_error});
        planned += n;
    }

    std::uint64_t sent = 0;
    for (const Slot &slot : schedule) {
        if (slot.atTca > sim_.now())
            co_await sim::Delay{slot.atTca - sim_.now()};
        auto reply = std::make_shared<IoReply>();
        reply->requestId = req.requestId;
        reply->offset = slot.offset;
        reply->bytes = slot.bytes;
        if (slot.error)
            reply->status = IoStatus::Error;
        sent += slot.rawBytes;
        reply->last = (sent >= req.bytes);
        // For active replies the TCA advances the mapped address with
        // the file offset, so the handler sees a flat file image.
        std::optional<net::ActiveHeader> hdr = req.replyActive;
        if (hdr)
            hdr->address += static_cast<std::uint32_t>(
                slot.offset - req.offset);
        const std::uint32_t msg_bytes = reply->bytes;
        tca_.sendMessage(req.replyTo, msg_bytes, hdr,
                         std::move(reply), tagIoReply);
    }
    --inflight_;
}

net::PayloadPtr
makeRequestPayload(const IoRequest &req)
{
    return std::make_shared<IoRequest>(req);
}

const IoRequest &
requestOf(const net::Message &msg)
{
    assert(msg.payload && "request message without IoRequest payload");
    return *static_cast<const IoRequest *>(msg.payload.get());
}

const IoReply &
replyOf(const net::Message &msg)
{
    assert(msg.payload && "data chunk without IoReply payload");
    return *static_cast<const IoReply *>(msg.payload.get());
}

} // namespace san::io
