/**
 * @file
 * Address Translation Buffer (ATB).
 *
 * Each switch CPU has a 16-entry direct-mapped ATB translating the
 * flat memory-mapped addresses a handler uses into (buffer ID,
 * offset) pairs. It also drives logical deallocation: given an end
 * address, it hands the DBA every buffer whose mapped range lies
 * entirely below it, so programmers free buffer space by data object,
 * not by hardware buffer boundary.
 */

#ifndef SAN_ACTIVE_ATB_HH
#define SAN_ACTIVE_ATB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/Metrics.hh"

namespace san::active {

/** One switch CPU's address translation buffer. */
class Atb
{
  public:
    Atb(unsigned entries = 16, unsigned buf_bytes = 512)
        : bufBytes_(buf_bytes), entries_(entries)
    {}

    unsigned entries() const { return static_cast<unsigned>(entries_.size()); }
    unsigned bufBytes() const { return bufBytes_; }

    /** Index of the direct-mapped slot for a mapping base address. */
    std::size_t
    slotOf(std::uint32_t base) const
    {
        return (base / bufBytes_) % entries_.size();
    }

    /**
     * Install base -> bufId. @retval false the slot is occupied by a
     * different live mapping (a conflict the dispatch unit must wait
     * out).
     */
    bool
    map(std::uint32_t base, unsigned buf_id)
    {
        Entry &e = entries_[slotOf(base)];
        if (e.valid) {
            ++conflicts_;
            return false;
        }
        e = Entry{true, base, buf_id};
        ++mappings_;
        return true;
    }

    /** Translate an address into (bufId, offset) if mapped. */
    std::optional<std::pair<unsigned, std::uint32_t>>
    translate(std::uint32_t addr) const
    {
        const std::uint32_t base = addr - (addr % bufBytes_);
        const Entry &e = entries_[slotOf(base)];
        if (!e.valid || e.base != base)
            return std::nullopt;
        return std::pair{e.bufId, addr - base};
    }

    /**
     * Remove every mapping whose buffer lies entirely below
     * @p end_addr and return the freed buffer IDs (for the DBA).
     */
    std::vector<unsigned>
    releaseBelow(std::uint32_t end_addr)
    {
        std::vector<unsigned> freed;
        for (Entry &e : entries_) {
            if (e.valid && e.base + bufBytes_ <= end_addr) {
                freed.push_back(e.bufId);
                e.valid = false;
            }
        }
        return freed;
    }

    /** Remove one specific mapping (send-and-free path). */
    bool
    release(std::uint32_t base)
    {
        Entry &e = entries_[slotOf(base)];
        if (!e.valid || e.base != base)
            return false;
        e.valid = false;
        return true;
    }

    unsigned
    liveMappings() const
    {
        unsigned n = 0;
        for (const Entry &e : entries_)
            n += e.valid;
        return n;
    }

    std::uint64_t mappings() const { return mappings_; }
    std::uint64_t conflicts() const { return conflicts_; }

    /** Map attempts that found their direct-mapped slot free. */
    double
    hitRate() const
    {
        const std::uint64_t tries = mappings_ + conflicts_;
        return tries > 0
                   ? static_cast<double>(mappings_) /
                         static_cast<double>(tries)
                   : 1.0;
    }

    /**
     * Register this ATB's timeline under @p prefix: live mappings
     * (occupancy), map-conflicts per interval, and the cumulative
     * hit rate of the direct-mapped slots.
     */
    void
    registerMetrics(obs::MetricsRegistry &m,
                    const std::string &prefix) const
    {
        m.add(prefix + ".live", obs::GaugeKind::Gauge,
              [this] { return static_cast<double>(liveMappings()); });
        m.add(prefix + ".conflicts", obs::GaugeKind::Rate,
              [this] { return static_cast<double>(conflicts_); });
        m.add(prefix + ".hitRate", obs::GaugeKind::Gauge,
              [this] { return hitRate(); });
    }

  private:
    struct Entry {
        bool valid = false;
        std::uint32_t base = 0;
        unsigned bufId = 0;
    };

    unsigned bufBytes_;
    std::vector<Entry> entries_;
    std::uint64_t mappings_ = 0;
    std::uint64_t conflicts_ = 0;
};

} // namespace san::active

#endif // SAN_ACTIVE_ATB_HH
