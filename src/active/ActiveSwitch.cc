#include "active/ActiveSwitch.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "io/IoRequest.hh"
#include "io/StorageNode.hh"
#include "sim/Log.hh"

namespace san::active {

std::uint64_t ActiveSwitch::nextMessageId_ = (1ull << 48);

// ---------------------------------------------------------------------
// HandlerContext
// ---------------------------------------------------------------------

HandlerContext::HandlerContext(ActiveSwitch &sw, unsigned cpu_index,
                               std::uint8_t handler_id,
                               std::uint8_t cpu_id)
    : sw_(sw), cpuIndex_(cpu_index), handlerId_(handler_id),
      cpuId_(cpu_id),
      input_(std::make_unique<sim::Channel<StreamChunk>>(sw.sim()))
{}

sim::Simulation &
HandlerContext::sim()
{
    return sw_.sim();
}

cpu::SwitchCpu &
HandlerContext::cpu()
{
    return sw_.cpu(cpuIndex_);
}

sim::ValueTask<StreamChunk>
HandlerContext::nextChunk()
{
    StreamChunk chunk = co_await input_->pop();
    HandlerProfile &prof = sw_.profiles_[handlerId_];
    ++prof.chunks;
    prof.bytes += chunk.bytes;
    liveTelemetry_ = chunk.telemetry;
    co_return chunk;
}

std::size_t
HandlerContext::pendingChunks()
{
    return input_->size();
}

sim::Task
HandlerContext::awaitValid(const StreamChunk &chunk, std::uint32_t offset,
                           std::uint32_t len)
{
    const sim::Tick ready =
        sw_.buffers().validAt(chunk.bufId, offset, len);
    const sim::Tick now = sw_.sim().now();
    if (ready > now)
        co_await sim::Delay{ready - now};
}

sim::Delay
HandlerContext::compute(std::uint64_t instructions)
{
    const sim::Delay d = cpu().compute(instructions);
    sw_.profiles_[handlerId_].busyTicks += d.ticks;
    if (liveTelemetry_)
        liveTelemetry_->noteHandlerTicks(d.ticks);
    return d;
}

sim::Delay
HandlerContext::access(mem::Addr addr, std::uint64_t bytes,
                       mem::AccessKind kind)
{
    const sim::Delay d = cpu().touch(addr, bytes, kind);
    sw_.profiles_[handlerId_].stallTicks += d.ticks;
    if (liveTelemetry_)
        liveTelemetry_->noteHandlerTicks(d.ticks);
    return d;
}

sim::Delay
HandlerContext::fetchCode(mem::Addr pc, std::uint64_t bytes)
{
    const sim::Delay d = cpu().fetchCode(pc, bytes);
    sw_.profiles_[handlerId_].stallTicks += d.ticks;
    if (liveTelemetry_)
        liveTelemetry_->noteHandlerTicks(d.ticks);
    return d;
}

void
HandlerContext::deallocateThrough(std::uint32_t end_addr)
{
    auto freed = sw_.atb(cpuIndex_).releaseBelow(end_addr);
    for (unsigned id : freed)
        sw_.releaseBuffer(id);
    if (!freed.empty())
        sw_.retryPending();
}

void
HandlerContext::deallocateOne(std::uint32_t base)
{
    auto xlate = sw_.atb(cpuIndex_).translate(base);
    if (!xlate)
        return;
    sw_.atb(cpuIndex_).release(base);
    sw_.releaseBuffer(xlate->first);
    sw_.retryPending();
}

sim::Task
HandlerContext::send(net::NodeId dst, std::uint64_t bytes,
                     std::optional<net::ActiveHeader> active,
                     net::PayloadPtr payload, std::uint32_t tag)
{
    // Compose the header and hand the buffer to the Send unit.
    sw_.profiles_[handlerId_].busyTicks += sw_.config().sendLatency;
    if (liveTelemetry_)
        liveTelemetry_->noteHandlerTicks(sw_.config().sendLatency);
    co_await cpu().busyFor(sw_.config().sendLatency);
    sw_.sendUnit(dst, bytes, active, std::move(payload), tag);
}

sim::Task
HandlerContext::postRead(net::NodeId storage, std::uint64_t offset,
                         std::uint64_t bytes, net::NodeId reply_to,
                         std::optional<net::ActiveHeader> reply_active)
{
    // The small run-time kernel on the switch validates and posts
    // the request (the paper's "modest kernel support").
    sw_.profiles_[handlerId_].busyTicks += sim::us(1);
    if (liveTelemetry_)
        liveTelemetry_->noteHandlerTicks(sim::us(1));
    co_await cpu().busyFor(sim::us(1));
    io::IoRequest req;
    req.requestId = ActiveSwitch::nextMessageId_++;
    req.offset = offset;
    req.bytes = bytes;
    req.replyTo = reply_to;
    req.replyActive = reply_active;
    sw_.sendUnit(storage, io::requestMessageBytes, std::nullopt,
                 io::makeRequestPayload(req), io::tagIoRequest);
}

// ---------------------------------------------------------------------
// ActiveSwitch
// ---------------------------------------------------------------------

ActiveSwitch::ActiveSwitch(sim::Simulation &sim, std::string name,
                           net::NodeId id,
                           const net::SwitchParams &params,
                           const ActiveConfig &config)
    : net::Switch(sim, std::move(name), id, params), config_(config),
      pool_(config.buffers), jumpTable_(net::maxHandlerId + 1),
      bufOwner_(config.buffers.count)
{
    assert(config_.cpus >= 1 && config_.cpus <= 4);
    for (unsigned i = 0; i < config_.cpus; ++i) {
        atbs_.emplace_back(config_.atbEntries, config_.buffers.bytes);
        auto mem_params = config_.cpuMem;
        mem_params.name = this->name() + ".sp" + std::to_string(i);
        cpus_.push_back(std::make_unique<cpu::SwitchCpu>(
            sim, mem_params.name, mem_params, config_.cpuHz));
        cpuLoad_.push_back(0);
    }
    if (fault::FaultPlan *plan = fault::globalPlan()) {
        plan_ = plan;
        crashSite_ =
            plan->site(fault::FaultKind::HandlerCrash, this->name());
        rel_ = std::make_unique<fault::ReliableChannel>(
            sim, this->name(), id, plan->recovery(),
            [this](net::Packet pkt) { inject(std::move(pkt)); });
    }
}

void
ActiveSwitch::registerHandler(std::uint8_t handler_id, std::string name,
                              HandlerFn fn)
{
    assert(handler_id <= net::maxHandlerId);
    HandlerProfile &prof = profiles_[handler_id];
    prof.id = handler_id;
    prof.name = name;
    jumpTable_[handler_id] = JumpEntry{std::move(name), std::move(fn)};
}

void
ActiveSwitch::registerMetrics(obs::MetricsRegistry &m) const
{
    // Transit-path gauges first: the active hardware rides on top of
    // whatever queueing policy the crossbar runs (non-default
    // policies only; see Switch::registerMetrics).
    net::Switch::registerMetrics(m);
    const std::string &n = name();
    m.add(n + ".dispatchQueue", obs::GaugeKind::Gauge,
          [this] { return static_cast<double>(pending_.size()); });
    m.add(n + ".chunksStaged", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(staged_); });
    m.add(n + ".dispatchStalls", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(dispatchStalls_); });
    pool_.registerMetrics(m, n + ".buffers");
    for (unsigned i = 0; i < config_.cpus; ++i) {
        const std::string cpu_prefix = n + ".sp" + std::to_string(i);
        cpus_[i]->registerMetrics(m, cpu_prefix);
        atbs_[i].registerMetrics(m, cpu_prefix + ".atb");
    }
}

void
ActiveSwitch::deliverLocal(net::Arrival &&arrival)
{
    // Control packets are consumed inside the recovery protocol —
    // that is their delivery point. Data packets count as delivered
    // only once staged (tryStage), past the corrupt/duplicate filter.
    if (arrival.pkt.telemetry &&
        arrival.pkt.kind != net::PacketKind::Data)
        arrival.pkt.telemetry->noteDelivered(sim_.now());

    // Recovery protocol first: it consumes ACK/NACK control packets
    // addressed to the switch, corrupted packets and duplicates, so a
    // handler sees every chunk exactly once.
    if (rel_ && rel_->onArrival(arrival))
        return;
    if (!arrival.pkt.active) {
        sim::logAt(sim::LogLevel::Warn, name(), sim_.now(),
                   "non-active packet addressed to switch; dropped");
        return;
    }
    // The Dispatch unit decodes the header and consults the jump
    // table in parallel with the payload copy into a data buffer.
    // The arrival moves into the event slot; dispatch() takes it by
    // value so a stalled arrival moves on into the pending queue.
    if (auto *tr = sim_.tracer())
        tr->span(name(), "dispatch", sim_.now(),
                 sim_.now() + config_.dispatchLatency);
    sim_.events().after(config_.dispatchLatency,
                        [this, a = std::move(arrival)]() mutable {
                            dispatch(std::move(a));
                        });
}

void
ActiveSwitch::dispatch(net::Arrival arrival)
{
    // Arrivals must stay ordered within one handler instance's
    // stream, so if that instance already has packets waiting for
    // buffers, queue behind them.
    const InstanceKey key{arrival.pkt.activeHdr.handlerId,
                          arrival.pkt.activeHdr.cpuId};
    for (const net::Arrival &waiting : pending_) {
        const InstanceKey wkey{waiting.pkt.activeHdr.handlerId,
                               waiting.pkt.activeHdr.cpuId};
        if (wkey == key) {
            ++dispatchStalls_;
            if (auto *tr = sim_.tracer())
                tr->instant(name(), "dispatch-stall", sim_.now());
            pending_.push_back(std::move(arrival));
            return;
        }
    }
    if (!tryStage(arrival)) {
        ++dispatchStalls_;
        if (auto *tr = sim_.tracer())
            tr->instant(name(), "dispatch-stall", sim_.now());
        pending_.push_back(std::move(arrival));
    }
}

void
ActiveSwitch::retryPending()
{
    // Streams are independent: a stalled instance (out of buffers or
    // ATB slots) must not block other instances' packets — only
    // per-instance order is preserved.
    std::vector<InstanceKey> blocked;
    for (auto it = pending_.begin(); it != pending_.end();) {
        const InstanceKey key{it->pkt.activeHdr.handlerId,
                              it->pkt.activeHdr.cpuId};
        if (std::find(blocked.begin(), blocked.end(), key) !=
            blocked.end()) {
            ++it;
            continue;
        }
        if (tryStage(*it)) {
            it = pending_.erase(it);
        } else {
            blocked.push_back(key);
            ++it;
        }
    }
}

bool
ActiveSwitch::tryStage(const net::Arrival &arrival)
{
    const net::Packet &pkt = arrival.pkt;
    const std::uint8_t hid = pkt.activeHdr.handlerId;
    if (!jumpTable_[hid]) {
        ++dropped_;
        const std::uint64_t bit = 1ull << (hid & 63u);
        if (!(warnedHandlers_ & bit)) {
            warnedHandlers_ |= bit;
            sim::logAt(sim::LogLevel::Warn, name(), sim_.now(),
                       "no handler registered for id ",
                       static_cast<int>(hid),
                       "; dropping its packets (warned once per id, "
                       "counted in droppedPackets)");
        }
        return true; // drop rather than wedge the pending queue
    }

    Instance &inst = instanceFor(pkt);

    // Fair share: one stream's backlog must not monopolize the
    // buffer pool and starve the other switch CPUs' streams.
    if (inst.heldBuffers >= bufferQuota())
        return false;

    auto buf = pool_.allocate();
    if (!buf)
        return false;

    const std::uint32_t chunk_addr =
        pkt.activeHdr.address +
        pkt.seq * static_cast<std::uint32_t>(pool_.params().bytes);
    if (!atb(inst.cpuIndex).map(chunk_addr, *buf)) {
        pool_.release(*buf);
        return false;
    }

    // Payload streams in at the wire rate; recover it from the
    // arrival timestamps so any link speed works.
    if (pkt.payloadBytes > 0) {
        const double ps_per_byte =
            static_cast<double>(arrival.end - arrival.start) /
            static_cast<double>(pkt.wireBytes());
        const sim::Tick payload_first =
            arrival.start +
            static_cast<sim::Tick>(net::headerBytes * ps_per_byte);
        pool_.fill(*buf, payload_first, pkt.payloadBytes, ps_per_byte);
    } else {
        pool_.fillLocal(*buf, 0, sim_.now());
    }

    bufOwner_[*buf] = InstanceKey{pkt.activeHdr.handlerId,
                                  pkt.activeHdr.cpuId};
    ++inst.heldBuffers;

    StreamChunk chunk;
    chunk.address = chunk_addr;
    chunk.bytes = pkt.payloadBytes;
    chunk.bufId = *buf;
    chunk.src = pkt.src;
    chunk.tag = pkt.tag;
    chunk.payload = pkt.payload;
    chunk.lastOfMessage = pkt.last;
    chunk.messageBytes = pkt.messageBytes;
    if (pkt.telemetry) {
        // Staged into a data buffer = delivered to the active layer;
        // handler CPU time charged later accrues via the chunk copy.
        const sim::Tick now = sim_.now();
        pkt.telemetry->noteDelivered(now);
        chunk.telemetry = pkt.telemetry;
        if (auto *tr = sim_.tracer()) {
            tr->span(name(), "stage", now, now);
            tr->flowEnd(name(), "lineage", pkt.telemetry->uid, now);
        }
    }
    inst.ctx->input_->push(std::move(chunk));
    ++staged_;
    return true;
}

ActiveSwitch::Instance &
ActiveSwitch::instanceFor(const net::Packet &pkt)
{
    const InstanceKey key{pkt.activeHdr.handlerId, pkt.activeHdr.cpuId};
    auto it = instances_.find(key);
    if (it != instances_.end())
        return it->second;

    const unsigned cpu_index = pickCpu(pkt.activeHdr.cpuId);
    Instance inst;
    inst.handlerId = key.first;
    inst.cpuId = key.second;
    inst.cpuIndex = cpu_index;
    inst.ctx = std::make_unique<HandlerContext>(
        *this, cpu_index, key.first, key.second);
    auto [pos, inserted] = instances_.emplace(key, std::move(inst));
    assert(inserted);
    ++cpuLoad_[cpu_index];
    ++invoked_;
    ++profiles_[key.first].invocations;
    if (auto *tr = sim_.tracer())
        tr->asyncBegin(name() + ".sp" + std::to_string(cpu_index),
                       jumpTable_[key.first]->name.c_str(),
                       (std::uint64_t(key.first) << 8) | key.second,
                       sim_.now());
    sim_.spawn(runInstance(key, jumpTable_[key.first]->fn));
    return pos->second;
}

unsigned
ActiveSwitch::pickCpu(std::uint8_t cpu_id)
{
    if (cpuCount() > 1)
        return cpu_id % cpuCount();
    return 0;
}

bool
ActiveSwitch::crashAtLaunch(const InstanceKey &key)
{
    if (crashSite_ != nullptr && crashSite_->fire())
        return true;
    return plan_ != nullptr &&
           plan_->eventPending(fault::FaultKind::HandlerCrash) &&
           plan_->eventDue(fault::FaultKind::HandlerCrash,
                           std::to_string(key.first), sim_.now());
}

sim::Task
ActiveSwitch::runInstance(InstanceKey key, HandlerFn fn)
{
    // Crash injection happens at instance launch (the handler faults
    // in its prologue, before consuming any stream state): the
    // dispatch unit's watchdog notices the dead instance and
    // relaunches it on the next switch CPU. Chunks staged meanwhile
    // queue in the instance channel, so no stream data is lost.
    if (plan_ != nullptr) {
        unsigned crashes = 0;
        while (crashes < plan_->recovery().maxFailovers &&
               crashAtLaunch(key)) {
            ++crashes;
            ++failovers_;
            Instance &inst = instances_.at(key);
            sim::logAt(sim::LogLevel::Warn, name(), sim_.now(),
                       "handler ", static_cast<int>(key.first),
                       " crashed on sp", inst.cpuIndex,
                       "; failing over (attempt ", crashes, ")");
            if (auto *tr = sim_.tracer()) {
                tr->instant(name() + ".sp" +
                                std::to_string(inst.cpuIndex),
                            "handler-crash", sim_.now());
                tr->asyncEnd(name() + ".sp" +
                                 std::to_string(inst.cpuIndex),
                             jumpTable_[key.first]->name.c_str(),
                             (std::uint64_t(key.first) << 8) |
                                 key.second,
                             sim_.now());
            }
            --cpuLoad_[inst.cpuIndex];
            inst.cpuIndex = (inst.cpuIndex + 1) % cpuCount();
            inst.ctx->cpuIndex_ = inst.cpuIndex;
            ++cpuLoad_[inst.cpuIndex];
            co_await sim::Delay{plan_->recovery().failoverLatency};
            if (auto *tr = sim_.tracer())
                tr->asyncBegin(name() + ".sp" +
                                   std::to_string(inst.cpuIndex),
                               jumpTable_[key.first]->name.c_str(),
                               (std::uint64_t(key.first) << 8) |
                                   key.second,
                               sim_.now());
        }
    }
    // The instance entry outlives the handler body (std::map nodes
    // are stable); it is reaped here once the handler returns.
    co_await fn(*instances_.at(key).ctx);
    auto it = instances_.find(key);
    assert(it != instances_.end());
    --cpuLoad_[it->second.cpuIndex];
    if (auto *tr = sim_.tracer())
        tr->asyncEnd(name() + ".sp" +
                         std::to_string(it->second.cpuIndex),
                     jumpTable_[key.first]->name.c_str(),
                     (std::uint64_t(key.first) << 8) | key.second,
                     sim_.now());
    instances_.erase(it);
}

void
ActiveSwitch::releaseBuffer(unsigned buf_id)
{
    if (bufOwner_[buf_id]) {
        auto it = instances_.find(*bufOwner_[buf_id]);
        if (it != instances_.end() && it->second.heldBuffers > 0)
            --it->second.heldBuffers;
        bufOwner_[buf_id].reset();
    }
    pool_.release(buf_id);
}

unsigned
ActiveSwitch::bufferQuota() const
{
    const unsigned live =
        std::max<unsigned>(1, static_cast<unsigned>(instances_.size()));
    return std::max(2u, pool_.params().count / live);
}

void
ActiveSwitch::sendUnit(net::NodeId dst, std::uint64_t bytes,
                       std::optional<net::ActiveHeader> active,
                       net::PayloadPtr payload, std::uint32_t tag)
{
    const std::uint64_t id = nextMessageId_++;
    const unsigned mtu = pool_.params().bytes;
    std::uint64_t remaining = bytes;
    std::uint32_t seq = 0;
    do {
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(remaining, mtu));
        remaining -= chunk;
        net::Packet pkt;
        pkt.src = this->id();
        pkt.dst = dst;
        pkt.payloadBytes = chunk;
        pkt.active = active.has_value();
        if (active)
            pkt.activeHdr = *active;
        pkt.messageId = id;
        pkt.tag = tag;
        pkt.seq = seq++;
        pkt.last = (remaining == 0);
        pkt.messageBytes = bytes;
        if (pkt.last)
            pkt.payload = payload;
        if (auto *tel = obs::globalTelemetry())
            pkt.telemetry = tel->sample(pkt.src, pkt.dst,
                                        pkt.active
                                            ? obs::FlowClass::Active
                                            : obs::FlowClass::Data,
                                        sim_.now());
        if (rel_)
            rel_->send(std::move(pkt));
        else
            inject(std::move(pkt));
    } while (remaining > 0);
}

} // namespace san::active
