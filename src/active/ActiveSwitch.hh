/**
 * @file
 * The active switch: a conventional SAN switch augmented with the
 * paper's "active" hardware — a Dispatch unit, a jump table of
 * handler entry points, per-CPU ATBs, the on-chip data buffer pool
 * with its administrator, a Send unit, and one to four embedded
 * switch processors.
 *
 * Programming model (paper §2): any message whose destination is the
 * switch itself is an active message. Its 6-bit handler ID selects a
 * handler; the Dispatch unit allocates a data buffer for each
 * arriving packet, maps it into the target CPU's ATB at the address
 * carried in the active header, and either starts a new handler
 * instance on a switch CPU or feeds the stream of an already-running
 * one. Handlers access their input through memory-mapped reads
 * (stalling on not-yet-valid lines), explicitly deallocate consumed
 * buffers, and emit results through the Send unit.
 */

#ifndef SAN_ACTIVE_ACTIVE_SWITCH_HH
#define SAN_ACTIVE_ACTIVE_SWITCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "active/Atb.hh"
#include "active/DataBuffer.hh"
#include "cpu/Cpu.hh"
#include "fault/FaultPlan.hh"
#include "fault/Reliable.hh"
#include "net/Switch.hh"
#include "sim/Simulation.hh"
#include "sim/Sync.hh"

namespace san::active {

class ActiveSwitch;
class HandlerContext;

/** One arriving piece of an active message, staged in a buffer. */
struct StreamChunk {
    std::uint32_t address = 0;  //!< mapped base address of this chunk
    std::uint32_t bytes = 0;
    unsigned bufId = 0;
    net::NodeId src = net::invalidNode;
    std::uint32_t tag = 0;
    net::PayloadPtr payload;    //!< rides the last packet of a message
    bool lastOfMessage = false;
    std::uint64_t messageBytes = 0;
    /** Lineage record of the packet that carried this chunk (null
     * unless telemetry sampled it): handler CPU time charged while
     * this chunk is the live input accrues to it. */
    std::shared_ptr<obs::TelemetryRecord> telemetry;
};

/** A handler body: a coroutine over its context. */
using HandlerFn = std::function<sim::Task(HandlerContext &)>;

/**
 * Cumulative switch-CPU cost of one handler program, across every
 * instance it ran. All busy time a handler charges flows through
 * HandlerContext (compute / send / postRead), so summing busyTicks
 * over all profiles reproduces the switch CPUs' busy counters.
 */
struct HandlerProfile {
    std::uint8_t id = 0;
    std::string name;
    std::uint64_t invocations = 0; //!< instances started
    std::uint64_t chunks = 0;      //!< stream chunks consumed
    std::uint64_t bytes = 0;       //!< payload bytes consumed
    sim::Tick busyTicks = 0;       //!< switch-CPU busy time charged
    sim::Tick stallTicks = 0;      //!< switch-CPU stall time charged
};

/** Active hardware configuration. */
struct ActiveConfig {
    unsigned cpus = 1;               //!< 1..4 embedded processors
    std::uint64_t cpuHz = 500'000'000; //!< embedded core clock
    DataBufferParams buffers{};      //!< 16 x 512 B
    unsigned atbEntries = 16;
    /** Dispatch unit: header decode + jump table lookup. */
    sim::Tick dispatchLatency = sim::ns(40);
    /** Send unit: handing one message to the crossbar. */
    sim::Tick sendLatency = sim::ns(20);
    mem::MemorySystemParams cpuMem = mem::switchMemoryParams();
};

/**
 * Execution context handed to a running handler. All handler
 * interaction with the switch hardware goes through this API.
 */
class HandlerContext
{
  public:
    HandlerContext(ActiveSwitch &sw, unsigned cpu_index,
                   std::uint8_t handler_id, std::uint8_t cpu_id);

    /** The switch this handler runs inside. */
    ActiveSwitch &owner() { return sw_; }
    sim::Simulation &sim();
    /** Index of the embedded CPU executing this instance. */
    unsigned cpuIndex() const { return cpuIndex_; }
    std::uint8_t handlerId() const { return handlerId_; }
    cpu::SwitchCpu &cpu();

    /** Await the next chunk of this instance's input stream. */
    sim::ValueTask<StreamChunk> nextChunk();

    /** Chunks queued right now (non-blocking peek at backlog). */
    std::size_t pendingChunks();

    /**
     * Memory-mapped read of [offset, offset+len) of @p chunk:
     * stalls (idle) until the lines are valid. Valid-bit hardware:
     * overlapping compute with the arriving copy is the point.
     */
    sim::Task awaitValid(const StreamChunk &chunk, std::uint32_t offset,
                         std::uint32_t len);

    /** Busy-execute instructions on this instance's switch CPU. */
    sim::Delay compute(std::uint64_t instructions);

    /** Touch switch-local memory (bit-vector, DFA...) via the D$. */
    sim::Delay access(mem::Addr addr, std::uint64_t bytes,
                      mem::AccessKind kind);

    /** Instruction-side footprint of this handler's code. */
    sim::Delay fetchCode(mem::Addr pc, std::uint64_t bytes);

    /**
     * Deallocate_Buffer(end): release every buffer mapped wholly
     * below @p end_addr, as the paper's macro does.
     */
    void deallocateThrough(std::uint32_t end_addr);

    /** Release exactly the buffer mapped at @p base (arguments and
     * other out-of-stream objects). */
    void deallocateOne(std::uint32_t base);

    /**
     * Emit a message via the Send unit. Charges the send-unit
     * latency; packets are injected into the crossbar toward @p dst.
     */
    sim::Task send(net::NodeId dst, std::uint64_t bytes,
                   std::optional<net::ActiveHeader> active = std::nullopt,
                   net::PayloadPtr payload = nullptr,
                   std::uint32_t tag = 0);

    /**
     * Initiate a disk read from the switch (Tar-style): requires the
     * small run-time kernel, modelled as a fixed kernel cost.
     */
    sim::Task postRead(net::NodeId storage, std::uint64_t offset,
                       std::uint64_t bytes, net::NodeId reply_to,
                       std::optional<net::ActiveHeader> reply_active);

  private:
    friend class ActiveSwitch;

    ActiveSwitch &sw_;
    unsigned cpuIndex_;
    std::uint8_t handlerId_;
    std::uint8_t cpuId_;
    std::unique_ptr<sim::Channel<StreamChunk>> input_;
    /** Lineage of the most recent chunk: CPU time charged between
     * chunks accrues to the packet that triggered it. */
    std::shared_ptr<obs::TelemetryRecord> liveTelemetry_;
};

/** A SAN switch with the active hardware attached. */
class ActiveSwitch : public net::Switch
{
  public:
    ActiveSwitch(sim::Simulation &sim, std::string name, net::NodeId id,
                 const net::SwitchParams &params,
                 const ActiveConfig &config = {});

    /** Install a handler program under @p handler_id (jump table). */
    void registerHandler(std::uint8_t handler_id, std::string name,
                         HandlerFn fn);

    const ActiveConfig &config() const { return config_; }
    unsigned cpuCount() const
    {
        return static_cast<unsigned>(cpus_.size());
    }
    cpu::SwitchCpu &cpu(unsigned i) { return *cpus_.at(i); }
    Atb &atb(unsigned cpu_index) { return atbs_.at(cpu_index); }
    DataBufferPool &buffers() { return pool_; }

    /** Active messages dispatched / chunks staged (stats). */
    std::uint64_t handlersInvoked() const { return invoked_; }
    std::uint64_t chunksStaged() const { return staged_; }
    std::uint64_t dispatchStalls() const { return dispatchStalls_; }
    /** Packets dropped for want of a registered handler. */
    std::uint64_t droppedPackets() const { return dropped_; }
    /** Crashed handler instances recovered by relaunching. */
    std::uint64_t handlerFailovers() const { return failovers_; }

    /**
     * The switch's recovery engine, armed iff a fault plan was
     * installed at construction; nullptr otherwise.
     */
    const fault::ReliableChannel *reliable() const { return rel_.get(); }
    /** Packets waiting on a free buffer / ATB slot right now. */
    std::size_t pendingDepth() const { return pending_.size(); }

    /** Per-handler switch-CPU profiles, keyed by handler ID. */
    const std::map<std::uint8_t, HandlerProfile> &
    handlerProfiles() const
    {
        return profiles_;
    }

    /**
     * Register the active hardware's timeline under the switch name:
     * dispatch-queue depth, chunks staged and dispatch stalls per
     * interval, buffer-pool occupancy, and per-CPU busy / stall /
     * idle plus ATB state. Chains the base switch's transit-path
     * (queueing policy) gauges in front: the active hardware composes
     * with any crossbar policy — handler replies and retransmits
     * injected by the Send unit contend through it like transit
     * traffic.
     */
    void registerMetrics(obs::MetricsRegistry &m) const;

    /** Fair-share cap on buffers held by one handler instance. */
    unsigned bufferQuota() const;

  protected:
    void deliverLocal(net::Arrival &&arrival) override;

  private:
    friend class HandlerContext;

    struct Instance {
        std::uint8_t handlerId;
        std::uint8_t cpuId;
        unsigned cpuIndex;
        std::unique_ptr<HandlerContext> ctx;
        unsigned heldBuffers = 0; //!< fair-share accounting
        bool done = false;
    };

    using InstanceKey = std::pair<std::uint8_t, std::uint8_t>;

    /** Stage one packet into a buffer + ATB + instance stream. */
    void dispatch(net::Arrival arrival);
    bool tryStage(const net::Arrival &arrival);
    void retryPending();
    Instance &instanceFor(const net::Packet &pkt);
    unsigned pickCpu(std::uint8_t cpu_id);
    sim::Task runInstance(InstanceKey key, HandlerFn fn);

    /** Send-unit segmentation (mirrors Adapter::sendMessage). */
    void sendUnit(net::NodeId dst, std::uint64_t bytes,
                  std::optional<net::ActiveHeader> active,
                  net::PayloadPtr payload, std::uint32_t tag);

    /** An injected crash hits this instance launch? */
    bool crashAtLaunch(const InstanceKey &key);

    /** Release one data buffer, crediting its owning instance. */
    void releaseBuffer(unsigned buf_id);

    ActiveConfig config_;
    DataBufferPool pool_;
    std::vector<Atb> atbs_;
    std::vector<std::unique_ptr<cpu::SwitchCpu>> cpus_;
    std::vector<unsigned> cpuLoad_; //!< live instances per CPU

    struct JumpEntry {
        std::string name;
        HandlerFn fn;
    };
    std::vector<std::optional<JumpEntry>> jumpTable_;
    std::map<std::uint8_t, HandlerProfile> profiles_;

    std::map<InstanceKey, Instance> instances_;
    std::deque<net::Arrival> pending_; //!< waiting for buffer/ATB slot
    /** Owning instance of each data buffer (or none). */
    std::vector<std::optional<InstanceKey>> bufOwner_;

    std::uint64_t invoked_ = 0;
    std::uint64_t staged_ = 0;
    std::uint64_t dispatchStalls_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t failovers_ = 0;
    /** Handler ids already warned about (one bit per 6-bit id). */
    std::uint64_t warnedHandlers_ = 0;

    fault::FaultPlan *plan_ = nullptr;   //!< null: no faults, no cost
    fault::FaultSite *crashSite_ = nullptr;
    std::unique_ptr<fault::ReliableChannel> rel_;

    static std::uint64_t nextMessageId_;
};

} // namespace san::active

#endif // SAN_ACTIVE_ACTIVE_SWITCH_HH
