/**
 * @file
 * On-chip data buffers: the central staging area of the active
 * switch.
 *
 * The paper's switch has 16 independently-managed 512 B buffers (one
 * MTU each) with cache-line-granularity valid bits. Incoming data
 * streams into a buffer as it arrives off the wire; a handler
 * touching a line that is not yet valid stalls until it is. Because
 * arrival timing is known when the packet header is seen (virtual
 * cut-through), valid times are computed analytically per line.
 */

#ifndef SAN_ACTIVE_DATA_BUFFER_HH
#define SAN_ACTIVE_DATA_BUFFER_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/Metrics.hh"
#include "sim/Types.hh"

namespace san::active {

/** Geometry of the buffer pool (paper defaults). */
struct DataBufferParams {
    unsigned count = 16;     //!< number of buffers
    unsigned bytes = 512;    //!< one network MTU each
    unsigned lineBytes = 32; //!< valid-bit granularity (D$ line)
};

/**
 * The pool of data buffers plus the data buffer administrator (DBA)
 * responsible for allocation and release.
 */
class DataBufferPool
{
  public:
    explicit DataBufferPool(const DataBufferParams &params = {})
        : params_(params), buffers_(params.count)
    {
        for (unsigned i = 0; i < params.count; ++i)
            freeList_.push_back(params.count - 1 - i);
    }

    const DataBufferParams &params() const { return params_; }

    /** Grab a free buffer, if any. */
    std::optional<unsigned>
    allocate()
    {
        if (freeList_.empty()) {
            ++allocationFailures_;
            return std::nullopt;
        }
        const unsigned id = freeList_.back();
        freeList_.pop_back();
        buffers_[id].inUse = true;
        ++allocations_;
        inUse_ = params_.count - static_cast<unsigned>(freeList_.size());
        peakInUse_ = std::max(peakInUse_, inUse_);
        return id;
    }

    /**
     * Record an incoming fill: @p bytes streaming into buffer @p id
     * starting at @p first_byte, at @p ps_per_byte wire rate. Line i
     * becomes valid when its last byte is in.
     */
    void
    fill(unsigned id, sim::Tick first_byte, std::uint32_t bytes,
         sim::PsPerByte ps_per_byte)
    {
        assert(id < params_.count && buffers_[id].inUse);
        assert(bytes <= params_.bytes);
        Buffer &b = buffers_[id];
        b.validBytes = bytes;
        b.lineValidAt.assign(
            (bytes + params_.lineBytes - 1) / params_.lineBytes, 0);
        for (std::size_t i = 0; i < b.lineValidAt.size(); ++i) {
            const std::uint32_t line_end = std::min<std::uint32_t>(
                static_cast<std::uint32_t>((i + 1) * params_.lineBytes),
                bytes);
            b.lineValidAt[i] =
                first_byte + sim::transferTime(line_end, ps_per_byte);
        }
    }

    /** Mark a locally-composed buffer fully valid immediately. */
    void
    fillLocal(unsigned id, std::uint32_t bytes, sim::Tick now)
    {
        assert(id < params_.count && buffers_[id].inUse);
        Buffer &b = buffers_[id];
        b.validBytes = bytes;
        b.lineValidAt.assign(
            (bytes + params_.lineBytes - 1) / params_.lineBytes, now);
    }

    /**
     * When does the byte range [offset, offset+len) become valid?
     * Accessing it before then stalls the switch CPU.
     */
    sim::Tick
    validAt(unsigned id, std::uint32_t offset, std::uint32_t len) const
    {
        assert(id < params_.count && buffers_[id].inUse);
        const Buffer &b = buffers_[id];
        if (len == 0)
            return 0;
        assert(offset + len <= b.validBytes && "read past filled data");
        const std::size_t last_line =
            (offset + len - 1) / params_.lineBytes;
        return b.lineValidAt[last_line];
    }

    /** Release a buffer back to the DBA free list. */
    void
    release(unsigned id)
    {
        assert(id < params_.count && buffers_[id].inUse);
        buffers_[id] = Buffer{};
        freeList_.push_back(id);
        ++releases_;
        inUse_ = params_.count - static_cast<unsigned>(freeList_.size());
    }

    unsigned freeCount() const
    {
        return static_cast<unsigned>(freeList_.size());
    }
    unsigned inUse() const { return inUse_; }
    unsigned peakInUse() const { return peakInUse_; }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t releases() const { return releases_; }
    std::uint64_t allocationFailures() const { return allocationFailures_; }

    /**
     * Register the pool's occupancy timeline under @p prefix: live
     * buffers (gauge) plus allocations and allocation failures per
     * interval — the buffer-pressure view of the paper's §5 stalls.
     */
    void
    registerMetrics(obs::MetricsRegistry &m,
                    const std::string &prefix) const
    {
        m.add(prefix + ".inUse", obs::GaugeKind::Gauge,
              [this] { return static_cast<double>(inUse_); });
        m.add(prefix + ".allocations", obs::GaugeKind::Rate,
              [this] { return static_cast<double>(allocations_); });
        m.add(prefix + ".allocationFailures", obs::GaugeKind::Rate, [this] {
            return static_cast<double>(allocationFailures_);
        });
    }

  private:
    struct Buffer {
        bool inUse = false;
        std::uint32_t validBytes = 0;
        std::vector<sim::Tick> lineValidAt;
    };

    DataBufferParams params_;
    std::vector<Buffer> buffers_;
    std::vector<unsigned> freeList_;
    unsigned inUse_ = 0;
    unsigned peakInUse_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t releases_ = 0;
    std::uint64_t allocationFailures_ = 0;
};

} // namespace san::active

#endif // SAN_ACTIVE_DATA_BUFFER_HH
