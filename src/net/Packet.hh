/**
 * @file
 * SAN packet format.
 *
 * Packets follow the paper's InfiniBand-style Raw format: a 128-bit
 * header, of which 64 bits form the *active header* carrying a 6-bit
 * handler ID, a 32-bit mapped address, and (for multi-processor
 * switches) a switch-CPU id. Payloads are at most one MTU (512 B).
 */

#ifndef SAN_NET_PACKET_HH
#define SAN_NET_PACKET_HH

#include <cstdint>
#include <memory>

#include "obs/Telemetry.hh"
#include "sim/Types.hh"

namespace san::net {

/** Globally unique endpoint/switch address within a fabric. */
using NodeId = std::uint32_t;

inline constexpr NodeId invalidNode = ~NodeId(0);

/** Bytes of packet header on the wire (128 bits). */
inline constexpr unsigned headerBytes = 16;

/** Default maximum transfer unit (payload bytes per packet). */
inline constexpr unsigned defaultMtu = 512;

/** The 64-bit active portion of the header. */
struct ActiveHeader {
    std::uint8_t handlerId = 0;  //!< 6 significant bits
    std::uint32_t address = 0;   //!< data-buffer mapping address
    std::uint8_t cpuId = 0;      //!< target switch CPU (multi-CPU)
};

/** Maximum handler id representable in the 6-bit header field. */
inline constexpr std::uint8_t maxHandlerId = 63;

/**
 * Opaque application payload carried alongside the timing model.
 * Most packets carry none (timing only); semantic tests attach real
 * data (reduction vectors, matched lines, record keys...).
 */
using PayloadPtr = std::shared_ptr<const void>;

/**
 * Link-level packet classes of the recovery protocol (fault/). Data
 * packets carry application traffic; Ack/Nack are header-only
 * control packets of the reliable-delivery layer, emitted only when a
 * fault plan is installed.
 */
enum class PacketKind : std::uint8_t { Data = 0, Ack = 1, Nack = 2 };

/** One packet on the wire. */
struct Packet {
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint32_t payloadBytes = 0;

    bool active = false;         //!< destination is a switch handler
    ActiveHeader activeHdr{};

    std::uint64_t messageId = 0; //!< groups packets of one message
    std::uint32_t seq = 0;       //!< packet index within the message
    bool last = true;            //!< final packet of its message
    std::uint64_t messageBytes = 0; //!< total payload of the message
    std::uint32_t tag = 0;       //!< protocol discriminator

    PayloadPtr payload;          //!< set only on the last packet

    /** @{ Reliable-delivery fields (see fault/Reliable.hh). All four
     * stay at their defaults — and cost nothing — unless a fault plan
     * is installed. */
    PacketKind kind = PacketKind::Data;
    std::uint32_t flowSeq = 0;   //!< per-(src,dst) sequence number
    std::uint32_t checksum = 0;  //!< FNV-1a over the header fields
    /** A link bit error hit this packet in flight. The CRC check at
     * the consuming endpoint — not the cut-through switches, which
     * forward the header before the payload has arrived — detects it
     * and triggers retransmission. */
    bool corrupt = false;
    /** @} */

    /**
     * In-band telemetry record, null unless --telemetry sampled this
     * packet at birth. Shared (not per-copy) on purpose: the clean
     * copy the reliable channel retransmits stamps the same lineage,
     * so retransmit counts and the extra hops accumulate. Not part
     * of the wire image: excluded from packetChecksum(), carries no
     * bytes, and never influences timing.
     */
    std::shared_ptr<obs::TelemetryRecord> telemetry;

    std::uint32_t
    wireBytes() const
    {
        return payloadBytes + headerBytes;
    }
};

/**
 * 32-bit FNV-1a over the packet's identifying header fields: the
 * modelled equivalent of the invariant CRC an HCA/TCA verifies on
 * arrival. Payload contents are not modelled, so in-flight corruption
 * is carried by Packet::corrupt and folded in here.
 */
inline std::uint32_t
packetChecksum(const Packet &pkt)
{
    std::uint32_t h = 0x811c9dc5u;
    auto fold = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (i * 8));
            h *= 0x01000193u;
        }
    };
    fold(pkt.src);
    fold(pkt.dst);
    fold(pkt.payloadBytes);
    fold(pkt.messageId);
    fold(pkt.seq);
    fold(pkt.tag);
    fold(pkt.flowSeq);
    fold(static_cast<std::uint64_t>(pkt.kind));
    fold(pkt.corrupt ? 0x0ddba11u : 0u);
    return h;
}

/** Delivery record: a packet plus its first/last byte times. */
struct Arrival {
    Packet pkt;
    sim::Tick start = 0; //!< first byte on the receiving wire
    sim::Tick end = 0;   //!< last byte received
};

} // namespace san::net

#endif // SAN_NET_PACKET_HH
