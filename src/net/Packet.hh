/**
 * @file
 * SAN packet format.
 *
 * Packets follow the paper's InfiniBand-style Raw format: a 128-bit
 * header, of which 64 bits form the *active header* carrying a 6-bit
 * handler ID, a 32-bit mapped address, and (for multi-processor
 * switches) a switch-CPU id. Payloads are at most one MTU (512 B).
 */

#ifndef SAN_NET_PACKET_HH
#define SAN_NET_PACKET_HH

#include <cstdint>
#include <memory>

#include "sim/Types.hh"

namespace san::net {

/** Globally unique endpoint/switch address within a fabric. */
using NodeId = std::uint32_t;

inline constexpr NodeId invalidNode = ~NodeId(0);

/** Bytes of packet header on the wire (128 bits). */
inline constexpr unsigned headerBytes = 16;

/** Default maximum transfer unit (payload bytes per packet). */
inline constexpr unsigned defaultMtu = 512;

/** The 64-bit active portion of the header. */
struct ActiveHeader {
    std::uint8_t handlerId = 0;  //!< 6 significant bits
    std::uint32_t address = 0;   //!< data-buffer mapping address
    std::uint8_t cpuId = 0;      //!< target switch CPU (multi-CPU)
};

/** Maximum handler id representable in the 6-bit header field. */
inline constexpr std::uint8_t maxHandlerId = 63;

/**
 * Opaque application payload carried alongside the timing model.
 * Most packets carry none (timing only); semantic tests attach real
 * data (reduction vectors, matched lines, record keys...).
 */
using PayloadPtr = std::shared_ptr<const void>;

/** One packet on the wire. */
struct Packet {
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint32_t payloadBytes = 0;

    bool active = false;         //!< destination is a switch handler
    ActiveHeader activeHdr{};

    std::uint64_t messageId = 0; //!< groups packets of one message
    std::uint32_t seq = 0;       //!< packet index within the message
    bool last = true;            //!< final packet of its message
    std::uint64_t messageBytes = 0; //!< total payload of the message
    std::uint32_t tag = 0;       //!< protocol discriminator

    PayloadPtr payload;          //!< set only on the last packet

    std::uint32_t
    wireBytes() const
    {
        return payloadBytes + headerBytes;
    }
};

/** Delivery record: a packet plus its first/last byte times. */
struct Arrival {
    Packet pkt;
    sim::Tick start = 0; //!< first byte on the receiving wire
    sim::Tick end = 0;   //!< last byte received
};

} // namespace san::net

#endif // SAN_NET_PACKET_HH
