/**
 * @file
 * Destination-indexed routing table: NodeId -> output port in O(1).
 *
 * The pre-fabric switch kept its routes in a pair of parallel vectors
 * scanned with std::find — O(#destinations) per packet per hop, which
 * turns quadratic the moment a multi-switch fabric routes thousands
 * of endpoints through hundreds of switches. This replaces the scan
 * with a small open-addressed hash table: power-of-two capacity,
 * linear probing, invalidNode as the empty sentinel. Everything is
 * deterministic — insertion order never changes a lookup result, the
 * probe sequence is a pure function of the key — so swapping the
 * structure in leaves every fingerprint and golden byte-identical.
 */

#ifndef SAN_NET_ROUTE_TABLE_HH
#define SAN_NET_ROUTE_TABLE_HH

#include <cstdint>
#include <vector>

#include "net/Packet.hh"

namespace san::net {

/** Open-addressed NodeId -> port map (the switch routing table). */
class RouteTable
{
  public:
    RouteTable() = default;

    /** Install or overwrite the port for @p dst. */
    void
    set(NodeId dst, unsigned port)
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        Slot &s = probe(dst);
        if (s.dst == invalidNode) {
            // Grow before the load factor makes probes cluster; the
            // rehash keeps lookups O(1) at any table size.
            if ((used_ + 1) * 4 > slots_.size() * 3) {
                rehash(slots_.size() * 2);
                Slot &fresh = probe(dst);
                fresh.dst = dst;
                fresh.port = port;
                ++used_;
                return;
            }
            s.dst = dst;
            ++used_;
        }
        s.port = port;
    }

    /** The port routed toward @p dst, or nullptr when absent. */
    const unsigned *
    find(NodeId dst) const
    {
        if (slots_.empty())
            return nullptr;
        const Slot &s = const_cast<RouteTable *>(this)->probe(dst);
        return s.dst == invalidNode ? nullptr : &s.port;
    }

    std::size_t size() const { return used_; }

  private:
    struct Slot {
        NodeId dst = invalidNode;
        unsigned port = 0;
    };

    static constexpr std::size_t kMinCapacity = 16;

    /** splitmix64-style avalanche: adjacent NodeIds (the common case
     * — a fabric numbers nodes densely) spread across the table. */
    static std::size_t
    hashOf(NodeId dst)
    {
        std::uint64_t x = dst + 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }

    /** First slot holding @p dst, or the empty slot that would. */
    Slot &
    probe(NodeId dst)
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashOf(dst) & mask;
        while (slots_[i].dst != invalidNode && slots_[i].dst != dst)
            i = (i + 1) & mask;
        return slots_[i];
    }

    void
    rehash(std::size_t capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(capacity, Slot{});
        for (const Slot &s : old) {
            if (s.dst == invalidNode)
                continue;
            Slot &fresh = probe(s.dst);
            fresh.dst = s.dst;
            fresh.port = s.port;
        }
    }

    std::vector<Slot> slots_;
    std::size_t used_ = 0;
};

} // namespace san::net

#endif // SAN_NET_ROUTE_TABLE_HH
