#include "net/Topology.hh"

#include <stdexcept>

namespace san::net {

std::size_t
fatTreeHostCount(unsigned k)
{
    return static_cast<std::size_t>(k) * k * k / 4;
}

std::size_t
fatTreeSwitchCount(unsigned k)
{
    // k pods x (k/2 edge + k/2 agg) + (k/2)^2 cores = 5k^2/4.
    return static_cast<std::size_t>(k) * k + (static_cast<std::size_t>(k) / 2) * (k / 2);
}

std::size_t
fatTreeLinkCount(unsigned k)
{
    // Wired pairs: k^3/4 host-edge + k^3/4 edge-agg + k^3/4
    // agg-core; two unidirectional Links per pair.
    return 2 * 3 * (static_cast<std::size_t>(k) * k * k / 4);
}

std::size_t
dragonflyGroupCount(const DragonflyParams &p)
{
    return static_cast<std::size_t>(p.routersPerGroup) *
               p.globalPerRouter +
           1;
}

std::size_t
dragonflyHostCount(const DragonflyParams &p)
{
    return dragonflyGroupCount(p) * p.routersPerGroup *
           p.hostsPerRouter;
}

std::size_t
dragonflySwitchCount(const DragonflyParams &p)
{
    return dragonflyGroupCount(p) * p.routersPerGroup;
}

std::size_t
dragonflyLinkCount(const DragonflyParams &p)
{
    const std::size_t g = dragonflyGroupCount(p);
    const std::size_t a = p.routersPerGroup;
    const std::size_t pairs = g * a * p.hostsPerRouter // host-router
                              + g * (a * (a - 1) / 2)  // local
                              + g * (g - 1) / 2;       // global
    return 2 * pairs;
}

void
validateFatTree(const FatTreeParams &p)
{
    if (p.k < 2 || p.k % 2 != 0)
        throw std::invalid_argument(
            "fat-tree arity k must be even and >= 2, got " +
            std::to_string(p.k));
}

void
validateDragonfly(const DragonflyParams &p)
{
    if (p.routersPerGroup < 1 || p.hostsPerRouter < 1 ||
        p.globalPerRouter < 1)
        throw std::invalid_argument(
            "dragonfly needs a >= 1, p >= 1, h >= 1, got a=" +
            std::to_string(p.routersPerGroup) +
            " p=" + std::to_string(p.hostsPerRouter) +
            " h=" + std::to_string(p.globalPerRouter));
    // One global channel per router-slot pair: a*h channels serve
    // the g-1 = a*h peer groups exactly when the config is balanced.
    // (Balanced is the only shape the builder wires.)
}

} // namespace san::net
