/**
 * @file
 * Switch queueing/arbitration policies.
 *
 * The paper's switch is the IBM Switch-3 central-output-queue design:
 * one FIFO per output port fed straight from the routing stage. That
 * organization is ideal when buffering is unbounded, but any real
 * shared memory is finite, and under a hotspot the shared pool fills
 * with cells for the hot output and head-of-line-blocks every other
 * flow. This file makes the queueing organization a strategy object
 * on net::Switch — the transit-path analogue of the event kernel's
 * BasicEventQueue<Scheduler> policy template — with three policies:
 *
 *  - CentralOutputPolicy (default): the paper's central output queue.
 *    With an unbounded shared memory it is a pure passthrough that
 *    reproduces the pre-policy switch byte-for-byte (same events in
 *    the same order, so run fingerprints are unchanged). With a
 *    finite `sharedCapacityCells` it models the real Switch-3: cells
 *    beyond the shared capacity stay in input staging with their link
 *    credit withheld — the HOL-blocking baseline.
 *  - VoqIslipPolicy: per-input virtual output queues with iSLIP
 *    request/grant/accept arbitration (Tiny Tera lineage). Grant and
 *    accept pointers advance only on first-iteration accepts, which
 *    desynchronizes the arbiters and gives round-robin policies their
 *    starvation-freedom guarantee.
 *  - CrosspointPolicy: a buffered crossbar (CICQ) with a small
 *    dedicated buffer per (input, output) crosspoint and a per-output
 *    selection discipline.
 *
 * Invariants every policy must keep (tests/net_arbitration_fuzz_test
 * enforces them):
 *
 *  - Conservation: every cell handed to ingress() is eventually
 *    forwarded exactly once; nothing is dropped or duplicated.
 *  - Per-flow order: cells of one (source, destination) flow leave in
 *    the order they arrived. Each flow maps to one (input, output)
 *    pair and every per-pair buffer is a FIFO, so disciplines only
 *    reorder *across* flows.
 *  - Credit-return point: a cell's input-link credit is returned when
 *    the policy accepts the cell into its buffers, not before. A cell
 *    that cannot be buffered waits in input staging with the credit
 *    withheld — that is how backpressure propagates upstream.
 *  - Uncontended latency: a lone cell through an idle switch is
 *    forwarded at its ingress tick under every policy, so one-hop
 *    latency tests hold regardless of the configured policy.
 */

#ifndef SAN_NET_SWITCH_POLICY_HH
#define SAN_NET_SWITCH_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/Packet.hh"
#include "obs/Metrics.hh"
#include "sim/Types.hh"

namespace san::sim {
class Simulation;
}

namespace san::net {

class Switch;

/** Which queueing organization a switch runs. */
enum class SwitchPolicyKind : std::uint8_t {
    CentralOutput, //!< paper's Switch-3 shared-memory output queue
    Voq,           //!< per-input virtual output queues + iSLIP
    Crosspoint,    //!< buffered crossbar (CICQ)
};

/**
 * How an arbitrated policy picks among competing inputs. Only the
 * policies with a real selection step honour it: the central output
 * queue is a single FIFO per output, so arrival order is the only
 * order it can serve.
 */
enum class ServiceOrder : std::uint8_t {
    Fifo,         //!< round-robin across inputs (iSLIP proper)
    OldestFirst,  //!< oldest head-of-queue cell first
    LongestFirst, //!< longest queue first
};

/** Per-switch queueing policy configuration (part of SwitchParams). */
struct SwitchPolicyConfig {
    SwitchPolicyKind kind = SwitchPolicyKind::CentralOutput;
    ServiceOrder order = ServiceOrder::Fifo;
    /** Central policy: shared-memory cells; 0 = unbounded (the
     * paper's idealization, and the byte-identical default). */
    unsigned sharedCapacityCells = 0;
    /** VOQ policy: cells per (input, output) virtual queue. */
    unsigned voqCapacityCells = 1024;
    /** Crosspoint policy: cells per crosspoint buffer. */
    unsigned crosspointCapacityCells = 8;
};

const char *policyKindName(SwitchPolicyKind kind);
const char *serviceOrderName(ServiceOrder order);

/**
 * Parse a policy spec string: `kind[:order]` where kind is one of
 * `central`, `fifo` (central with a 64-cell shared memory — the
 * classic bounded FIFO output queue), `voq`, `crosspoint` (alias
 * `xpoint`), and order is `fifo`, `oldest` or `longest`. Used by the
 * SAN_FORCE_SWITCH_POLICY build/env override and by the bench CLIs.
 */
std::optional<SwitchPolicyConfig> parsePolicySpec(std::string_view spec);

/** Cumulative policy counters (exported via metrics and stats). */
struct SwitchPolicyCounters {
    std::uint64_t admitted = 0;   //!< cells accepted into buffers
    std::uint64_t forwarded = 0;  //!< cells handed to an output link
    std::uint64_t holBlocked = 0; //!< cells parked in input staging
    std::uint64_t grants = 0;     //!< arbiter grants issued
    std::uint64_t arbRounds = 0;  //!< arbitration rounds executed
    std::uint64_t peakOccupancy = 0;
};

/**
 * Strategy object owning a switch's transit buffering, arbitration
 * and egress scheduling. The switch hands every transit cell (and
 * every locally injected packet) to ingress() after the routing
 * stage; from then on the policy owns the cell until it calls
 * forward(). Local deliveries (packets addressed to the switch) never
 * enter the policy: they are consumed at the routing stage exactly as
 * before.
 */
class QueueingPolicy
{
  public:
    explicit QueueingPolicy(Switch &sw);
    virtual ~QueueingPolicy() = default;

    QueueingPolicy(const QueueingPolicy &) = delete;
    QueueingPolicy &operator=(const QueueingPolicy &) = delete;

    virtual const char *name() const = 0;

    /**
     * True for the zero-state default: the unbounded central output
     * queue, which adds no events, no gauges and no stats keys, so
     * default runs stay byte-identical to the pre-policy simulator.
     */
    virtual bool isPassthrough() const { return false; }

    /**
     * One cell leaves the routing stage. @p in_port is the arrival
     * port, or localPort() for packets injected by the switch itself
     * (Send unit, retransmits); @p out_port is the routed output.
     * The policy decides when the input credit goes back and when
     * the cell reaches the output link.
     */
    virtual void ingress(unsigned in_port, unsigned out_port,
                         Arrival &&arrival) = 0;

    /** Cells buffered inside the policy right now. */
    virtual std::size_t occupancy() const = 0;

    /** Cells held in input staging with their credit withheld. */
    virtual std::size_t stagedCells() const { return 0; }

    /**
     * Largest number of arbitration rounds any input spent eligible
     * (free, with buffered cells) but unserved. Bounded for the
     * round-robin VOQ arbiter — the starvation-freedom property the
     * fuzz suite asserts. Zero for policies without rounds.
     */
    virtual std::uint64_t maxGrantWaitRounds() const { return 0; }

    const SwitchPolicyCounters &counters() const { return counters_; }

    /** Cells / wire bytes forwarded that arrived on @p in_port. */
    std::uint64_t forwardedFrom(unsigned in_port) const;
    std::uint64_t forwardedBytesFrom(unsigned in_port) const;

    /**
     * Register this policy's gauges under @p prefix: occupancy and
     * staging depth, plus forward/grant/HOL-block rates. Also calls
     * registerDetailMetrics() so structured policies expose their
     * per-port buffer occupancies.
     */
    void registerMetrics(obs::MetricsRegistry &m,
                         const std::string &prefix) const;

    /**
     * Per-port buffer gauges, named after the owning switch: the VOQ
     * policy registers `<switch>.voq.in<i>` (cells buffered per
     * input) and the crosspoint policy `<switch>.xpoint.out<o>`
     * (cells per output column), so --metrics-csv timelines show
     * *where* a structured fabric's backlog sits, not just its
     * total. Default: nothing (central policies have only the shared
     * occupancy already registered).
     */
    virtual void
    registerDetailMetrics(obs::MetricsRegistry &m) const
    {
        (void)m;
    }

    /**
     * Called by Switch::attachPort once @p port's links exist.
     * Installs the policy's credit observer on the new output link
     * (policies are built before any wiring, so constructors cannot).
     */
    void portAttached(unsigned port);

  protected:
    /** A buffered cell: the packet plus arbitration bookkeeping. */
    struct Cell {
        Packet pkt;
        sim::Tick enqueuedAt = 0; //!< ingress tick (OldestFirst key)
        unsigned in = 0;          //!< arrival port (or localPort())
        unsigned out = 0;         //!< routed output port
    };

    /** Ports on the switch (outputs, and real inputs). */
    unsigned portCount() const;
    /** Inputs including the local injection port (portCount() + 1). */
    unsigned inputCount() const;
    /** The virtual input index of locally injected packets. */
    unsigned localPort() const { return portCount(); }

    /**
     * Return the input link credit of a cell accepted from
     * @p in_port. No-op for localPort(): injections consume no link
     * credit.
     */
    void creditReturn(unsigned in_port);

    /** Hand a cell that arrived on @p in_port to output @p out_port's
     * link, updating the forward counters. */
    void forward(unsigned in_port, unsigned out_port, Packet &&pkt);

    /** Serialization time of @p pkt on output @p out_port's link. */
    sim::Tick serialization(unsigned out_port, const Packet &pkt) const;

    /**
     * Output @p out_port's link can put a cell on the wire right now
     * (a transmit credit is available). Paced policies check this
     * before granting so a credit-starved downstream hop backpressures
     * into the policy's buffers instead of the link's internal queue.
     */
    bool outputReady(unsigned out_port) const;

    /**
     * Ask the output links (including ones wired later) to call
     * @p fn whenever one of their credits comes back: the wakeup a
     * paced policy needs to resume a grant loop that stalled on
     * downstream backpressure.
     */
    void observeOutputCredits(std::function<void()> fn);

    sim::Simulation &simulation() const;

    Switch &sw_;
    SwitchPolicyCounters counters_;

  private:
    std::vector<std::uint64_t> fwdFrom_;      //!< per-input cells
    std::vector<std::uint64_t> fwdBytesFrom_; //!< per-input wire bytes
    std::function<void()> creditObserver_;    //!< set on output links
};

/** Build the policy object @p cfg describes, bound to @p sw. */
std::unique_ptr<QueueingPolicy>
makeQueueingPolicy(Switch &sw, const SwitchPolicyConfig &cfg);

} // namespace san::net

#endif // SAN_NET_SWITCH_POLICY_HH
