/**
 * @file
 * An N-port SAN switch (the non-active baseline).
 *
 * Modelled after the central-output-queue organization of the IBM
 * Switch-3 the paper references: packets arriving on an input port
 * are routed after a fixed routing latency (100 ns) and then handed
 * to the switch's queueing policy (see net/SwitchPolicy.hh), which
 * owns buffering, arbitration and the credit-return point. The
 * default policy is the paper's central output queue and reproduces
 * the pre-policy switch byte-for-byte; per-input VOQ + iSLIP and
 * crosspoint-buffered organizations are selectable per switch (or
 * forced repo-wide with SAN_FORCE_SWITCH_POLICY). Packets addressed
 * to the switch itself never enter the policy: they are handed to
 * deliverLocal(), which the active switch overrides.
 */

#ifndef SAN_NET_SWITCH_HH
#define SAN_NET_SWITCH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/Link.hh"
#include "net/Packet.hh"
#include "net/RouteTable.hh"
#include "net/SwitchPolicy.hh"
#include "sim/Simulation.hh"

namespace san::net {

/** Switch configuration. */
struct SwitchParams {
    unsigned ports = 8;
    sim::Tick routingLatency = sim::ns(100); //!< paper: 100 ns
    /** Queueing/arbitration organization; default is the paper's
     * central output queue (fingerprint-identical passthrough). */
    SwitchPolicyConfig policy{};
};

/** A conventional cut-through SAN switch. */
class Switch
{
  public:
    Switch(sim::Simulation &sim, std::string name, NodeId id,
           const SwitchParams &params);
    virtual ~Switch() = default;

    Switch(const Switch &) = delete;
    Switch &operator=(const Switch &) = delete;

    NodeId id() const { return id_; }
    const std::string &name() const { return name_; }
    const SwitchParams &params() const { return params_; }
    sim::Simulation &sim() { return sim_; }

    /**
     * Wire port @p port: @p out carries traffic away from this
     * switch, @p in delivers traffic to it (its sink is captured).
     * @throws std::out_of_range for a port beyond params().ports and
     * std::logic_error if the port is already wired — silent
     * re-wiring would leave the old links' sinks dangling.
     */
    void attachPort(unsigned port, Link &out, Link &in);

    /**
     * Install/overwrite the route for destination @p dst.
     * @throws std::out_of_range for a port beyond params().ports.
     */
    void setRoute(NodeId dst, unsigned port);

    /** Look up the output port for @p dst (asserts it exists). */
    unsigned route(NodeId dst) const;
    bool hasRoute(NodeId dst) const;
    /** Destinations this switch has a route for. */
    std::size_t routeCount() const { return routes_.size(); }

    /**
     * Inject a locally-generated packet (management traffic; the
     * active switch's Send unit and retransmit engine use this).
     * Uses the routing table, then egresses through the queueing
     * policy like any transit cell.
     */
    void inject(Packet pkt);

    /** The queueing policy owning this switch's transit buffers. */
    QueueingPolicy &policy() { return *policy_; }
    const QueueingPolicy &policy() const { return *policy_; }

    /** The out/in links of @p port (nullptr while unwired). */
    Link *outLink(unsigned port) const { return ports_[port].out; }
    Link *inLink(unsigned port) const { return ports_[port].in; }

    /**
     * Register the switch's transit-path gauges. Only non-default
     * policies add columns (occupancy, staging, grant/HOL rates):
     * the stock central queue keeps metrics timelines byte-identical
     * to the pre-policy harness.
     */
    void registerMetrics(obs::MetricsRegistry &m) const;

    std::uint64_t packetsRouted() const { return routed_; }
    std::uint64_t packetsLocal() const { return local_; }

  protected:
    /**
     * A packet addressed to this switch arrived (already past the
     * routing stage). The base switch has no consumer: it counts and
     * drops, which keeps management traffic harmless. The arrival is
     * handed over by value so the active switch can move it into its
     * dispatch pipeline without copying the packet.
     */
    virtual void deliverLocal(Arrival &&arrival);

    sim::Simulation &sim_;

  private:
    void receive(unsigned port, Arrival &&arrival);

    std::string name_;
    NodeId id_;
    SwitchParams params_;

    struct PortWiring {
        Link *out = nullptr;
        Link *in = nullptr;
    };
    std::vector<PortWiring> ports_;
    RouteTable routes_; //!< dst -> port, O(1) at any fabric size

    /** Built last: policies read params_/ports_ via the switch. */
    std::unique_ptr<QueueingPolicy> policy_;

    std::uint64_t routed_ = 0;
    std::uint64_t local_ = 0;
};

} // namespace san::net

#endif // SAN_NET_SWITCH_HH
