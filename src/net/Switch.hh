/**
 * @file
 * An N-port output-queued SAN switch (the non-active baseline).
 *
 * Modelled after the central-output-queue organization of the IBM
 * Switch-3 the paper references: packets arriving on an input port
 * are routed after a fixed routing latency (100 ns) into the queue of
 * their output port, which drains at link rate. Credits on each
 * incoming link are returned once the packet leaves input staging.
 * Packets addressed to the switch itself are handed to
 * deliverLocal(), which the active switch overrides.
 */

#ifndef SAN_NET_SWITCH_HH
#define SAN_NET_SWITCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/Link.hh"
#include "net/Packet.hh"
#include "sim/Simulation.hh"

namespace san::net {

/** Switch configuration. */
struct SwitchParams {
    unsigned ports = 8;
    sim::Tick routingLatency = sim::ns(100); //!< paper: 100 ns
};

/** A conventional cut-through SAN switch. */
class Switch
{
  public:
    Switch(sim::Simulation &sim, std::string name, NodeId id,
           const SwitchParams &params);
    virtual ~Switch() = default;

    Switch(const Switch &) = delete;
    Switch &operator=(const Switch &) = delete;

    NodeId id() const { return id_; }
    const std::string &name() const { return name_; }
    const SwitchParams &params() const { return params_; }
    sim::Simulation &sim() { return sim_; }

    /**
     * Wire port @p port: @p out carries traffic away from this
     * switch, @p in delivers traffic to it (its sink is captured).
     */
    void attachPort(unsigned port, Link &out, Link &in);

    /** Install/overwrite the route for destination @p dst. */
    void setRoute(NodeId dst, unsigned port);

    /** Look up the output port for @p dst (asserts it exists). */
    unsigned route(NodeId dst) const;
    bool hasRoute(NodeId dst) const;

    /**
     * Inject a locally-generated packet (management traffic; the
     * active switch's Send unit uses this). Uses the routing table.
     */
    void inject(Packet pkt);

    std::uint64_t packetsRouted() const { return routed_; }
    std::uint64_t packetsLocal() const { return local_; }

  protected:
    /**
     * A packet addressed to this switch arrived (already past the
     * routing stage). The base switch has no consumer: it counts and
     * drops, which keeps management traffic harmless. The arrival is
     * handed over by value so the active switch can move it into its
     * dispatch pipeline without copying the packet.
     */
    virtual void deliverLocal(Arrival &&arrival);

    sim::Simulation &sim_;

  private:
    void receive(unsigned port, Arrival &&arrival);

    std::string name_;
    NodeId id_;
    SwitchParams params_;

    struct PortWiring {
        Link *out = nullptr;
        Link *in = nullptr;
    };
    std::vector<PortWiring> ports_;
    std::vector<NodeId> routeDst_;   // parallel arrays: small tables
    std::vector<unsigned> routePort_;

    std::uint64_t routed_ = 0;
    std::uint64_t local_ = 0;
};

} // namespace san::net

#endif // SAN_NET_SWITCH_HH
