/**
 * @file
 * Synthetic hotspot/incast traffic for the switch policy lab.
 *
 * Two patterns, both classic switch-evaluation workloads:
 *
 *  - Incast (N-to-1): every sender streams messages at one hot
 *    receiver. The hot output link is the bottleneck under any
 *    policy; what differs is queueing delay and fairness across
 *    senders.
 *  - Permutation-with-hotspot: senders exchange messages in a ring
 *    (a permutation a non-blocking switch carries at full rate)
 *    while also interleaving a fraction of hot messages at a node
 *    that only receives. The hot backlog is what separates the
 *    policies: a finite central output queue lets it head-of-line
 *    block the permutation traffic, VOQs absorb it per input and
 *    keep the ring at line rate.
 *
 * The generator is deterministic (fixed interleave, fixed spacing,
 * no PRNG), so per-policy reports are byte-stable and golden-testable.
 */

#ifndef SAN_NET_TRAFFIC_HH
#define SAN_NET_TRAFFIC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/Adapter.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace san::net {

/** Traffic pattern configuration. */
struct TrafficParams {
    enum class Pattern { Incast, PermutationHotspot };

    Pattern pattern = Pattern::PermutationHotspot;
    /** Index (into the host vector) of the hot receiver. It only
     * receives: its own sends would contend with the hot backlog and
     * blur the comparison. */
    unsigned hotspot = 0;
    std::uint32_t messageBytes = 4096;
    unsigned permMessages = 48; //!< ring messages per sender
    unsigned hotMessages = 24;  //!< hot messages per sender
    /** Every k-th posted message goes to the hotspot (until the
     * sender's hot budget is spent). */
    unsigned hotInterleave = 3;
    /** Gap between message posts per sender; 0 = one message wire
     * time at 1 GB/s, i.e. each sender offers its full link rate. */
    sim::Tick spacing = 0;
    unsigned mtu = defaultMtu; //!< for the default spacing estimate
};

/** End-of-run traffic summary (all values deterministic). */
struct TrafficReport {
    std::uint64_t deliveredBytes = 0;
    std::uint64_t deliveredMessages = 0;
    std::uint64_t permBytes = 0;
    std::uint64_t hotBytes = 0;
    sim::Tick firstPostAt = 0;
    sim::Tick lastDeliveryAt = 0;
    /** When the last permutation (non-hot) message completed; equals
     * lastDeliveryAt for pure incast. */
    sim::Tick permDoneAt = 0;
    /** Payload bytes (hot + perm) delivered by permDoneAt. */
    std::uint64_t bytesAtPermDone = 0;
    /** Aggregate goodput over the permutation window, GB/s. */
    double aggregateGBps = 0.0;
    /** Permutation-only goodput over the same window, GB/s. */
    double permGoodputGBps = 0.0;
    double permLatencyMeanNs = 0.0;
    double permLatencyMaxNs = 0.0;
    /** Jain index over per-sender goodput (1.0 = perfectly fair). */
    double jainFairness = 1.0;
};

/**
 * Drives one pattern over a set of fabric endpoints. Construct after
 * wiring and computeRoutes(), call start() before Simulation::run(),
 * and report() after it returns.
 */
class TrafficGen
{
  public:
    TrafficGen(sim::Simulation &sim, std::vector<Adapter *> hosts,
               const TrafficParams &params);

    /** Schedule every send and spawn the receive drains. */
    void start();

    /** Summarize the run (call after Simulation::run()). */
    TrafficReport report() const;

  private:
    struct MessageMeta {
        sim::Tick postedAt = 0;
        unsigned senderSlot = 0; //!< index into senders_
        bool hot = false;
    };
    struct Delivery {
        sim::Tick at = 0;
        std::uint64_t bytes = 0;
        sim::Tick postedAt = 0;
        unsigned senderSlot = 0;
        bool hot = false;
    };

    void post(unsigned sender_slot, unsigned msg_index);
    sim::Task drain(Adapter &host, unsigned expected);
    void onDelivery(const Message &msg);

    sim::Simulation &sim_;
    std::vector<Adapter *> hosts_;
    TrafficParams params_;
    std::vector<unsigned> senders_; //!< host indices that send
    std::unordered_map<std::uint32_t, MessageMeta> meta_; //!< by tag
    std::vector<Delivery> deliveries_;
    std::uint32_t nextTag_ = 1;
    sim::Tick firstPostAt_ = 0;
    bool started_ = false;
};

} // namespace san::net

#endif // SAN_NET_TRAFFIC_HH
