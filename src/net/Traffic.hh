/**
 * @file
 * Synthetic hotspot/incast traffic for the switch policy lab.
 *
 * Two patterns, both classic switch-evaluation workloads:
 *
 *  - Incast (N-to-1): every sender streams messages at one hot
 *    receiver. The hot output link is the bottleneck under any
 *    policy; what differs is queueing delay and fairness across
 *    senders.
 *  - Permutation-with-hotspot: senders exchange messages in a ring
 *    (a permutation a non-blocking switch carries at full rate)
 *    while also interleaving a fraction of hot messages at a node
 *    that only receives. The hot backlog is what separates the
 *    policies: a finite central output queue lets it head-of-line
 *    block the permutation traffic, VOQs absorb it per input and
 *    keep the ring at line rate.
 *
 * The generator is deterministic (fixed interleave, fixed spacing,
 * no PRNG), so per-policy reports are byte-stable and golden-testable.
 */

#ifndef SAN_NET_TRAFFIC_HH
#define SAN_NET_TRAFFIC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/Adapter.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace san::net {

/** Traffic pattern configuration. */
struct TrafficParams {
    enum class Pattern { Incast, PermutationHotspot };

    Pattern pattern = Pattern::PermutationHotspot;
    /** Index (into the host vector) of the hot receiver. It only
     * receives: its own sends would contend with the hot backlog and
     * blur the comparison. */
    unsigned hotspot = 0;
    std::uint32_t messageBytes = 4096;
    unsigned permMessages = 48; //!< ring messages per sender
    unsigned hotMessages = 24;  //!< hot messages per sender
    /** Every k-th posted message goes to the hotspot (until the
     * sender's hot budget is spent). */
    unsigned hotInterleave = 3;
    /** Gap between message posts per sender; 0 = one message wire
     * time at 1 GB/s, i.e. each sender offers its full link rate. */
    sim::Tick spacing = 0;
    unsigned mtu = defaultMtu; //!< for the default spacing estimate
};

/** End-of-run traffic summary (all values deterministic). */
struct TrafficReport {
    std::uint64_t deliveredBytes = 0;
    std::uint64_t deliveredMessages = 0;
    std::uint64_t permBytes = 0;
    std::uint64_t hotBytes = 0;
    sim::Tick firstPostAt = 0;
    sim::Tick lastDeliveryAt = 0;
    /** When the last permutation (non-hot) message completed; equals
     * lastDeliveryAt for pure incast. */
    sim::Tick permDoneAt = 0;
    /** Payload bytes (hot + perm) delivered by permDoneAt. */
    std::uint64_t bytesAtPermDone = 0;
    /** Aggregate goodput over the permutation window, GB/s. */
    double aggregateGBps = 0.0;
    /** Permutation-only goodput over the same window, GB/s. */
    double permGoodputGBps = 0.0;
    double permLatencyMeanNs = 0.0;
    double permLatencyMaxNs = 0.0;
    /** Jain index over per-sender goodput (1.0 = perfectly fair). */
    double jainFairness = 1.0;
};

/**
 * Drives one pattern over a set of fabric endpoints. Construct after
 * wiring and computeRoutes(), call start() before Simulation::run(),
 * and report() after it returns.
 */
class TrafficGen
{
  public:
    TrafficGen(sim::Simulation &sim, std::vector<Adapter *> hosts,
               const TrafficParams &params);

    /** Schedule every send and spawn the receive drains. */
    void start();

    /** Summarize the run (call after Simulation::run()). */
    TrafficReport report() const;

  private:
    struct MessageMeta {
        sim::Tick postedAt = 0;
        unsigned senderSlot = 0; //!< index into senders_
        bool hot = false;
    };
    struct Delivery {
        sim::Tick at = 0;
        std::uint64_t bytes = 0;
        sim::Tick postedAt = 0;
        unsigned senderSlot = 0;
        bool hot = false;
    };

    void post(unsigned sender_slot, unsigned msg_index);
    sim::Task drain(Adapter &host, unsigned expected);
    void onDelivery(const Message &msg);

    sim::Simulation &sim_;
    std::vector<Adapter *> hosts_;
    TrafficParams params_;
    std::vector<unsigned> senders_; //!< host indices that send
    std::unordered_map<std::uint32_t, MessageMeta> meta_; //!< by tag
    std::vector<Delivery> deliveries_;
    std::uint32_t nextTag_ = 1;
    sim::Tick firstPostAt_ = 0;
    bool started_ = false;
};

//
// ---- Fabric-wide traffic (multi-switch topologies) ----
//

/** splitmix64 finalizer: the deterministic mixer behind the fabric
 * traffic patterns (and stylistically the same one the run
 * fingerprint folds with). */
constexpr std::uint64_t
detMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Fabric-wide pattern configuration. */
struct FabricTrafficParams {
    enum class Pattern {
        /** Every message picks a fresh pseudo-random destination
         * (never self) — the benign all-to-all a multipath fabric
         * should carry near line rate. */
        Uniform,
        /** A fixed seeded permutation that always crosses groups:
         * host i targets the same intra-group rank in group
         * (g + 1 + seed mod (groups-1)) mod groups. The classic
         * adversarial pattern — every byte traverses the
         * aggregation/core (fat-tree) or a single global channel
         * (dragonfly). */
        Permutation,
        /** Pseudo-random destination within the sender's own group
         * (pod): edge/local-switch traffic that never needs the
         * upper stages. */
        GroupLocal,
    };

    Pattern pattern = Pattern::Uniform;
    std::uint64_t seed = 1;
    std::uint32_t messageBytes = 2048;
    unsigned messagesPerHost = 8;
    /** Gap between message posts per sender; 0 = one message wire
     * time at 1 GB/s (each sender offers its full link rate). */
    sim::Tick spacing = 0;
    unsigned mtu = defaultMtu;
};

/** End-of-run fabric traffic summary (all values deterministic). */
struct FabricTrafficReport {
    std::uint64_t postedMessages = 0;
    std::uint64_t deliveredMessages = 0;
    std::uint64_t deliveredBytes = 0;
    std::uint64_t intraGroupMessages = 0;
    std::uint64_t interGroupMessages = 0;
    sim::Tick firstPostAt = 0;
    sim::Tick lastDeliveryAt = 0;
    /** Delivered payload over the whole run window, GB/s. */
    double aggregateGBps = 0.0;
    double latencyMeanNs = 0.0;
    double latencyMaxNs = 0.0;
};

/**
 * Drives one fabric-wide pattern over a topology's hosts. The
 * destination of every (host, message) pair is a pure function of
 * (pattern, seed, host, message) — see destination() — so runs are
 * deterministic and tests can pin exact destination sets. Construct
 * after wiring and computeRoutes(), call start() before
 * Simulation::run(), and report() after it returns.
 */
class FabricTrafficGen
{
  public:
    /** @p hostGroup gives each host's group (pod); pass an empty
     * vector to treat the fabric as one group. */
    FabricTrafficGen(sim::Simulation &sim,
                     std::vector<Adapter *> hosts,
                     std::vector<unsigned> hostGroup,
                     const FabricTrafficParams &params);

    /** The host index that host @p host's message @p round targets.
     * Pure, total, never @p host itself. */
    unsigned destination(unsigned host, unsigned round) const;

    /** Schedule every send and spawn the receive drains. One-shot. */
    void start();

    /** Summarize the run (call after Simulation::run()). */
    FabricTrafficReport report() const;

  private:
    struct MessageMeta {
        sim::Tick postedAt = 0;
        bool intraGroup = false;
    };

    void post(unsigned host, unsigned round);
    sim::Task drain(Adapter &host, unsigned expected);

    sim::Simulation &sim_;
    std::vector<Adapter *> hosts_;
    std::vector<unsigned> hostGroup_;
    FabricTrafficParams params_;
    unsigned groups_ = 1;
    std::vector<std::vector<unsigned>> groupMembers_;
    std::vector<unsigned> groupRank_; //!< host -> index in its group
    std::unordered_map<std::uint32_t, MessageMeta> meta_; //!< by tag
    std::uint32_t nextTag_ = 1;
    std::uint64_t posted_ = 0;
    std::uint64_t deliveredMessages_ = 0;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t intra_ = 0;
    std::uint64_t inter_ = 0;
    sim::Tick firstPostAt_ = 0;
    sim::Tick lastDeliveryAt_ = 0;
    double latSumNs_ = 0.0;
    double latMaxNs_ = 0.0;
    bool started_ = false;
};

//
// ---- Deterministic flow-churn traffic (load-balancer workloads) ----
//

/**
 * An L4 connection identity. Generated, never parsed: the simulator
 * carries no real headers, so the tuple exists purely to be hashed
 * into a connection signature (apps::detTupleHash over w0()/w1()).
 */
struct FiveTuple {
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint8_t proto = 0;

    /** Packed src/dst IP word. */
    constexpr std::uint64_t
    w0() const
    {
        return (static_cast<std::uint64_t>(srcIp) << 32) | dstIp;
    }
    /** Packed ports + protocol word. */
    constexpr std::uint64_t
    w1() const
    {
        return (static_cast<std::uint64_t>(srcPort) << 24) |
               (static_cast<std::uint64_t>(dstPort) << 8) | proto;
    }
};

/** One Galois step of the x^64+x^63+x^61+x^60+1 maximal LFSR. */
constexpr std::uint64_t
lfsrStep(std::uint64_t s)
{
    return (s >> 1) ^ (-(s & 1ull) & 0xd800000000000000ull);
}

/**
 * The 5-tuple of flow @p flowIndex under @p seed. Pure function of
 * its arguments — sender pumps, the lb handler and the tests all
 * rederive identical tuples from the flow id alone, so no tuple ever
 * has to travel in a payload. Deliberately NOT DetHash (net cannot
 * depend on apps); a golden-ratio spread plus a few LFSR steps is
 * plenty for distinct, well-mixed endpoint identities.
 */
constexpr FiveTuple
lfsrTuple(std::uint64_t seed, std::uint64_t flowIndex)
{
    std::uint64_t s =
        (seed ^ (flowIndex * 0x9e3779b97f4a7c15ull)) | 1ull;
    s = lfsrStep(lfsrStep(lfsrStep(s)));
    const std::uint64_t a = s;
    s = lfsrStep(lfsrStep(lfsrStep(s ^ (flowIndex << 1) ^ 0xb5ull)));
    FiveTuple t;
    t.srcIp = static_cast<std::uint32_t>(a >> 32);
    t.dstIp = static_cast<std::uint32_t>(a);
    t.srcPort = static_cast<std::uint16_t>(s >> 48);
    t.dstPort = static_cast<std::uint16_t>(s >> 32);
    t.proto = (s & 1) ? 6 : 17; // TCP / UDP
    return t;
}

/** Connection lifecycle op carried in the low tag bits. */
enum class FlowOp : std::uint32_t {
    Syn = 0,  //!< open: insert into the connection table
    Data = 1, //!< established traffic: lookup and forward
    Fin = 2,  //!< close: forward, then retire the entry
};

/**
 * Pack (flow id, op) into a message tag. Flow ids use 30 bits. The
 * id is biased by one so no flow tag lands on the reserved io tags
 * (Host::demux consumes tag io::tagIoReply == 2, which flow 0's FIN
 * would otherwise collide with).
 */
constexpr std::uint32_t
flowTag(std::uint64_t flowId, FlowOp op)
{
    return static_cast<std::uint32_t>((flowId + 1) << 2) |
           static_cast<std::uint32_t>(op);
}

constexpr std::uint64_t
flowTagId(std::uint32_t tag)
{
    return (tag >> 2) - 1;
}

constexpr FlowOp
flowTagOp(std::uint32_t tag)
{
    return static_cast<FlowOp>(tag & 3u);
}

/** Flow-churn generator configuration. */
struct FlowChurnParams {
    /** Base concurrent connections (opened up-front, ids 0..flows). */
    std::uint64_t flows = 4096;
    /** Established data packets per base flow (rounds over the set). */
    unsigned dataRounds = 1;
    std::uint32_t packetBytes = 64;
    /** Tuple seed: lfsrTuple(seed, flowId) is the flow's identity. */
    std::uint64_t seed = 1;
    /** Per-sender mid-run close+reopen pairs (connection churn). */
    unsigned churnOpens = 0;
    /** Stride through a sender's flows when picking churn victims. */
    unsigned closeEvery = 4;
    /** Every k-th data packet is followed by one for an orphan flow
     * that was never opened (table miss -> host punt); 0 = none. */
    unsigned orphanEvery = 0;
    /** Gap between posts per sender; 0 = one packet wire time. */
    sim::Tick spacing = 0;
    unsigned mtu = defaultMtu;
    /** Destination node: the active switch itself (handler packets
     * terminate there) or the lb host (the software baseline). */
    NodeId dst = invalidNode;
    /** Address packets to an ActiveSwitch handler (in-switch mode)
     * instead of plain sends (host-only baseline). */
    bool active = false;
    std::uint8_t handlerId = 0;
    /** Handler instances: packets of flow f target CPU f % cpus. */
    unsigned handlerCpus = 1;
};

/** Generator-side tally (exact expectations for conservation tests). */
struct FlowChurnCounts {
    std::uint64_t posted = 0;
    std::uint64_t opens = 0;
    std::uint64_t data = 0;
    std::uint64_t closes = 0;
    std::uint64_t orphans = 0; //!< subset of data: never-opened flows
    /** Peak generator-side open connections (opens minus closes). */
    std::uint64_t peakOpen = 0;
};

/**
 * Deterministic connection churn against a load balancer. Each
 * sender owns the flows f with f % senders == slot and runs one pump
 * coroutine through three phases — open every owned flow, stream
 * dataRounds rounds over them (interleaving orphan packets), then
 * churn (close a victim, open a replacement) — pacing one post per
 * `spacing` ticks. Pumps never pre-schedule per-message events, so
 * million-flow runs cost O(senders) live coroutines, not O(posts)
 * heap entries.
 *
 * Flow ids partition the 30-bit tag space: base flows count from 0,
 * churn replacements carry bit 28, orphans bit 29 (both salted with
 * the sender slot), so every id maps back to its origin.
 */
class FlowChurnGen
{
  public:
    FlowChurnGen(sim::Simulation &sim, std::vector<Adapter *> senders,
                 const FlowChurnParams &params);

    /** Spawn one pump per sender. One-shot. */
    void start();

    const FlowChurnCounts &counts() const { return counts_; }
    const FlowChurnParams &params() const { return params_; }

    static constexpr std::uint64_t churnIdBit = 1ull << 28;
    static constexpr std::uint64_t orphanIdBit = 1ull << 29;

    std::uint64_t
    churnFlowId(unsigned slot, unsigned n) const
    {
        return churnIdBit | (static_cast<std::uint64_t>(slot) << 20) | n;
    }
    std::uint64_t
    orphanFlowId(unsigned slot, unsigned n) const
    {
        return orphanIdBit | (static_cast<std::uint64_t>(slot) << 20) | n;
    }

  private:
    sim::Task pump(unsigned slot);
    void post(unsigned slot, std::uint64_t flowId, FlowOp op);

    sim::Simulation &sim_;
    std::vector<Adapter *> senders_;
    FlowChurnParams params_;
    FlowChurnCounts counts_;
    std::uint64_t open_ = 0; //!< current generator-side open flows
    std::vector<std::uint32_t> addrClock_; //!< per-sender ATB cursor
    bool started_ = false;
};

} // namespace san::net

#endif // SAN_NET_TRAFFIC_HH
