#include "net/Traffic.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace san::net {

TrafficGen::TrafficGen(sim::Simulation &sim, std::vector<Adapter *> hosts,
                       const TrafficParams &params)
    : sim_(sim), hosts_(std::move(hosts)), params_(params)
{
    assert(hosts_.size() >= 2 && "traffic needs at least two hosts");
    assert(params_.hotspot < hosts_.size());
    for (unsigned i = 0; i < hosts_.size(); ++i)
        if (i != params_.hotspot)
            senders_.push_back(i);
    if (params_.spacing == 0) {
        // One message's wire time at the default 1 GB/s (1 byte/ns):
        // each sender offers exactly its link rate.
        const std::uint64_t pkts =
            (params_.messageBytes + params_.mtu - 1) / params_.mtu;
        params_.spacing = sim::ns(params_.messageBytes +
                                  pkts * headerBytes);
    }
    if (params_.pattern == TrafficParams::Pattern::Incast)
        params_.permMessages = 0;
}

void
TrafficGen::post(unsigned sender_slot, unsigned msg_index)
{
    // Deterministic interleave: within a sender's post sequence,
    // every hotInterleave-th message is hot until the hot budget is
    // spent, then the remaining ring messages drain.
    const unsigned total = params_.permMessages + params_.hotMessages;
    unsigned hot_before = 0;
    const unsigned k = std::max(1u, params_.hotInterleave);
    for (unsigned j = 0; j < msg_index; ++j)
        if (hot_before < params_.hotMessages && (j + 1) % k == 0)
            ++hot_before;
    bool hot = hot_before < params_.hotMessages &&
               (msg_index + 1) % k == 0;
    // Pure incast: everything is hot.
    if (params_.permMessages == 0)
        hot = true;
    // Hot budget exhausted but perm budget too? (msg_index always
    // < total, so one of the two has room.)
    const unsigned perm_before = msg_index - hot_before;
    if (!hot && perm_before >= params_.permMessages)
        hot = true;
    assert(msg_index < total);

    const unsigned src = senders_[sender_slot];
    unsigned dst;
    if (hot) {
        dst = params_.hotspot;
    } else {
        // Ring permutation over the senders: slot s -> slot s+1.
        dst = senders_[(sender_slot + 1) % senders_.size()];
    }
    const std::uint32_t tag = nextTag_++;
    meta_[tag] = MessageMeta{sim_.now(), sender_slot, hot};
    hosts_[src]->sendMessage(hosts_[dst]->id(), params_.messageBytes,
                             std::nullopt, nullptr, tag);
}

sim::Task
TrafficGen::drain(Adapter &host, unsigned expected)
{
    for (unsigned i = 0; i < expected; ++i) {
        Message msg = co_await host.recvQueue().pop();
        onDelivery(msg);
    }
}

void
TrafficGen::onDelivery(const Message &msg)
{
    const auto it = meta_.find(msg.tag);
    if (it == meta_.end())
        return; // not ours
    deliveries_.push_back(Delivery{msg.completedAt, msg.bytes,
                                   it->second.postedAt,
                                   it->second.senderSlot,
                                   it->second.hot});
}

void
TrafficGen::start()
{
    assert(!started_ && "start() is one-shot");
    started_ = true;
    firstPostAt_ = sim_.now();

    const unsigned total = params_.permMessages + params_.hotMessages;
    for (unsigned s = 0; s < senders_.size(); ++s) {
        for (unsigned j = 0; j < total; ++j) {
            const sim::Tick at = firstPostAt_ + j * params_.spacing;
            sim_.events().schedule(
                at, [this, s, j] { post(s, j); });
        }
    }

    // Expected deliveries: the hotspot gets every hot message, each
    // sender gets its ring predecessor's perm messages.
    const auto n = static_cast<unsigned>(senders_.size());
    sim_.spawn(drain(*hosts_[params_.hotspot],
                     n * params_.hotMessages));
    for (unsigned s = 0; s < n; ++s)
        sim_.spawn(drain(*hosts_[senders_[s]], params_.permMessages));
}

TrafficReport
TrafficGen::report() const
{
    TrafficReport r;
    r.firstPostAt = firstPostAt_;

    const auto n = static_cast<unsigned>(senders_.size());
    std::vector<std::uint64_t> fairBytes(n, 0);
    std::vector<sim::Tick> fairLast(n, 0);
    double latSum = 0.0;
    std::uint64_t latCount = 0;

    const bool usePermForFairness = params_.permMessages != 0;
    for (const Delivery &d : deliveries_) {
        r.deliveredBytes += d.bytes;
        ++r.deliveredMessages;
        r.lastDeliveryAt = std::max(r.lastDeliveryAt, d.at);
        if (d.hot) {
            r.hotBytes += d.bytes;
        } else {
            r.permBytes += d.bytes;
            r.permDoneAt = std::max(r.permDoneAt, d.at);
        }
        const bool counts = usePermForFairness ? !d.hot : d.hot;
        if (counts) {
            fairBytes[d.senderSlot] += d.bytes;
            fairLast[d.senderSlot] =
                std::max(fairLast[d.senderSlot], d.at);
            latSum += static_cast<double>(d.at - d.postedAt);
            r.permLatencyMaxNs =
                std::max(r.permLatencyMaxNs,
                         static_cast<double>(d.at - d.postedAt) / 1e3);
            ++latCount;
        }
    }
    if (r.permDoneAt == 0)
        r.permDoneAt = r.lastDeliveryAt; // pure incast
    for (const Delivery &d : deliveries_)
        if (d.at <= r.permDoneAt)
            r.bytesAtPermDone += d.bytes;

    const auto window =
        static_cast<double>(r.permDoneAt - r.firstPostAt);
    if (window > 0) {
        // Ticks are picoseconds: bytes/ps * 1e12 / 1e9 = GB/s.
        r.aggregateGBps =
            static_cast<double>(r.bytesAtPermDone) * 1e3 / window;
        r.permGoodputGBps =
            static_cast<double>(usePermForFairness ? r.permBytes
                                                   : r.hotBytes) *
            1e3 / window;
    }
    if (latCount > 0)
        r.permLatencyMeanNs =
            latSum / static_cast<double>(latCount) / 1e3;

    // Jain over per-sender goodput: bytes / (own completion window).
    double sum = 0.0, sumSq = 0.0;
    unsigned live = 0;
    for (unsigned s = 0; s < n; ++s) {
        if (fairBytes[s] == 0)
            continue;
        const auto w =
            static_cast<double>(fairLast[s] - r.firstPostAt);
        if (w <= 0)
            continue;
        const double x = static_cast<double>(fairBytes[s]) / w;
        sum += x;
        sumSq += x * x;
        ++live;
    }
    if (live > 0 && sumSq > 0)
        r.jainFairness = (sum * sum) / (live * sumSq);
    return r;
}

//
// ---- FabricTrafficGen ----
//

FabricTrafficGen::FabricTrafficGen(sim::Simulation &sim,
                                   std::vector<Adapter *> hosts,
                                   std::vector<unsigned> hostGroup,
                                   const FabricTrafficParams &params)
    : sim_(sim), hosts_(std::move(hosts)),
      hostGroup_(std::move(hostGroup)), params_(params)
{
    assert(hosts_.size() >= 2 &&
           "fabric traffic needs at least two hosts");
    if (hostGroup_.empty())
        hostGroup_.assign(hosts_.size(), 0);
    assert(hostGroup_.size() == hosts_.size());

    groups_ = 0;
    for (const unsigned g : hostGroup_)
        groups_ = std::max(groups_, g + 1);
    groupMembers_.resize(groups_);
    groupRank_.resize(hosts_.size());
    for (unsigned i = 0; i < hosts_.size(); ++i) {
        groupRank_[i] =
            static_cast<unsigned>(groupMembers_[hostGroup_[i]].size());
        groupMembers_[hostGroup_[i]].push_back(i);
    }

    if (params_.spacing == 0) {
        const std::uint64_t pkts =
            (params_.messageBytes + params_.mtu - 1) / params_.mtu;
        params_.spacing =
            sim::ns(params_.messageBytes + pkts * headerBytes);
    }
}

unsigned
FabricTrafficGen::destination(unsigned host, unsigned round) const
{
    const auto n = static_cast<unsigned>(hosts_.size());
    const std::uint64_t r = detMix64(
        params_.seed ^
        detMix64((static_cast<std::uint64_t>(host) << 32) | round));

    switch (params_.pattern) {
    case FabricTrafficParams::Pattern::Uniform: {
        unsigned d = static_cast<unsigned>(r % (n - 1));
        return d >= host ? d + 1 : d; // skip self
    }
    case FabricTrafficParams::Pattern::Permutation: {
        // round is deliberately unused: the permutation is fixed for
        // the whole run, the sustained adversarial load.
        if (groups_ <= 1) {
            const unsigned off =
                1 + static_cast<unsigned>(params_.seed % (n - 1));
            return (host + off) % n;
        }
        const unsigned g = hostGroup_[host];
        const unsigned hop =
            1 + static_cast<unsigned>(
                    params_.seed % (groups_ > 1 ? groups_ - 1 : 1));
        const auto &target = groupMembers_[(g + hop) % groups_];
        return target[groupRank_[host] % target.size()];
    }
    case FabricTrafficParams::Pattern::GroupLocal: {
        const auto &mem = groupMembers_[hostGroup_[host]];
        if (mem.size() <= 1) { // degenerate group: fall back
            unsigned d = static_cast<unsigned>(r % (n - 1));
            return d >= host ? d + 1 : d;
        }
        unsigned idx = static_cast<unsigned>(r % (mem.size() - 1));
        if (idx >= groupRank_[host])
            ++idx; // skip self within the group
        return mem[idx];
    }
    }
    return (host + 1) % n; // unreachable
}

void
FabricTrafficGen::post(unsigned host, unsigned round)
{
    const unsigned dst = destination(host, round);
    const std::uint32_t tag = nextTag_++;
    meta_[tag] = MessageMeta{sim_.now(),
                             hostGroup_[host] == hostGroup_[dst]};
    hosts_[host]->sendMessage(hosts_[dst]->id(), params_.messageBytes,
                              std::nullopt, nullptr, tag);
    ++posted_;
}

sim::Task
FabricTrafficGen::drain(Adapter &host, unsigned expected)
{
    for (unsigned i = 0; i < expected; ++i) {
        Message msg = co_await host.recvQueue().pop();
        const auto it = meta_.find(msg.tag);
        if (it == meta_.end())
            continue; // not ours
        ++deliveredMessages_;
        deliveredBytes_ += msg.bytes;
        lastDeliveryAt_ = std::max(lastDeliveryAt_, msg.completedAt);
        if (it->second.intraGroup)
            ++intra_;
        else
            ++inter_;
        const double ns =
            static_cast<double>(msg.completedAt -
                                it->second.postedAt) /
            1e3;
        latSumNs_ += ns;
        latMaxNs_ = std::max(latMaxNs_, ns);
    }
}

void
FabricTrafficGen::start()
{
    assert(!started_ && "start() is one-shot");
    started_ = true;
    firstPostAt_ = sim_.now();

    // The destination map is pure, so per-host delivery expectations
    // are exact — each drain knows precisely how many messages to
    // absorb and the run ends when the last one lands.
    std::vector<unsigned> expected(hosts_.size(), 0);
    for (unsigned h = 0; h < hosts_.size(); ++h)
        for (unsigned j = 0; j < params_.messagesPerHost; ++j)
            ++expected[destination(h, j)];

    for (unsigned h = 0; h < hosts_.size(); ++h)
        for (unsigned j = 0; j < params_.messagesPerHost; ++j)
            sim_.events().schedule(
                firstPostAt_ + j * params_.spacing,
                [this, h, j] { post(h, j); });

    for (unsigned h = 0; h < hosts_.size(); ++h)
        if (expected[h] > 0)
            sim_.spawn(drain(*hosts_[h], expected[h]));
}

FabricTrafficReport
FabricTrafficGen::report() const
{
    FabricTrafficReport r;
    r.postedMessages = posted_;
    r.deliveredMessages = deliveredMessages_;
    r.deliveredBytes = deliveredBytes_;
    r.intraGroupMessages = intra_;
    r.interGroupMessages = inter_;
    r.firstPostAt = firstPostAt_;
    r.lastDeliveryAt = lastDeliveryAt_;
    const auto window =
        static_cast<double>(lastDeliveryAt_ - firstPostAt_);
    if (window > 0)
        r.aggregateGBps =
            static_cast<double>(deliveredBytes_) * 1e3 / window;
    if (deliveredMessages_ > 0)
        r.latencyMeanNs =
            latSumNs_ / static_cast<double>(deliveredMessages_);
    r.latencyMaxNs = latMaxNs_;
    return r;
}

//
// ---- FlowChurnGen ----
//

FlowChurnGen::FlowChurnGen(sim::Simulation &sim,
                           std::vector<Adapter *> senders,
                           const FlowChurnParams &params)
    : sim_(sim), senders_(std::move(senders)), params_(params),
      addrClock_(senders_.size(), 0)
{
    assert(!senders_.empty() && "flow churn needs a sender");
    assert(params_.dst != invalidNode);
    assert(params_.handlerCpus >= 1);
    if (params_.spacing == 0) {
        const std::uint64_t pkts =
            (params_.packetBytes + params_.mtu - 1) / params_.mtu;
        params_.spacing =
            sim::ns(params_.packetBytes + pkts * headerBytes);
    }
}

void
FlowChurnGen::post(unsigned slot, std::uint64_t flowId, FlowOp op)
{
    std::optional<ActiveHeader> hdr;
    if (params_.active) {
        ActiveHeader h;
        h.handlerId = params_.handlerId;
        h.cpuId = static_cast<std::uint8_t>(flowId %
                                            params_.handlerCpus);
        // Per-sender ATB window: 4096 rotating chunk addresses. The
        // handler frees each chunk after one packet, so at most the
        // switch's buffer quota is ever mapped — reuse is safe.
        h.address = (static_cast<std::uint32_t>(slot) + 1) * 0x01000000u +
                    (addrClock_[slot]++ & 0xFFFu) * 512u;
        hdr = h;
    }
    senders_[slot]->sendMessage(params_.dst, params_.packetBytes, hdr,
                                nullptr, flowTag(flowId, op));
    ++counts_.posted;
    switch (op) {
    case FlowOp::Syn:
        ++counts_.opens;
        ++open_;
        counts_.peakOpen = std::max(counts_.peakOpen, open_);
        break;
    case FlowOp::Data:
        ++counts_.data;
        break;
    case FlowOp::Fin:
        ++counts_.closes;
        if (open_ > 0)
            --open_;
        break;
    }
}

sim::Task
FlowChurnGen::pump(unsigned slot)
{
    const auto nsend = static_cast<std::uint64_t>(senders_.size());
    const std::uint64_t owned =
        params_.flows > slot ? (params_.flows - slot - 1) / nsend + 1
                             : 0;
    const auto baseFlow = [&](std::uint64_t i) {
        return i * nsend + slot;
    };

    // Phase 1: open every owned flow.
    for (std::uint64_t i = 0; i < owned; ++i) {
        post(slot, baseFlow(i), FlowOp::Syn);
        co_await sim::Delay{params_.spacing};
    }

    // Phase 2: data rounds, orphan packets interleaved.
    unsigned orphans = 0;
    for (unsigned r = 0; r < params_.dataRounds; ++r) {
        for (std::uint64_t i = 0; i < owned; ++i) {
            post(slot, baseFlow(i), FlowOp::Data);
            co_await sim::Delay{params_.spacing};
            if (params_.orphanEvery != 0 &&
                (i + 1) % params_.orphanEvery == 0) {
                post(slot, orphanFlowId(slot, orphans), FlowOp::Data);
                ++counts_.orphans;
                ++orphans;
                co_await sim::Delay{params_.spacing};
            }
        }
    }

    // Phase 3: churn — retire a victim, open a replacement, and
    // prove the replacement works with one data packet.
    const std::uint64_t stride = std::max(1u, params_.closeEvery);
    for (unsigned n = 0; n < params_.churnOpens; ++n) {
        const std::uint64_t victim = n * stride;
        if (owned > 0 && victim < owned) {
            post(slot, baseFlow(victim), FlowOp::Fin);
            co_await sim::Delay{params_.spacing};
        }
        post(slot, churnFlowId(slot, n), FlowOp::Syn);
        co_await sim::Delay{params_.spacing};
        post(slot, churnFlowId(slot, n), FlowOp::Data);
        co_await sim::Delay{params_.spacing};
    }
}

void
FlowChurnGen::start()
{
    assert(!started_ && "start() is one-shot");
    started_ = true;
    for (unsigned s = 0; s < senders_.size(); ++s)
        sim_.spawn(pump(s));
}

} // namespace san::net
