#include "net/Switch.hh"

#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "sim/Log.hh"

namespace san::net {

namespace {

/** The stock configuration the SAN_FORCE_SWITCH_POLICY override may
 * replace. Explicitly configured policies always win: a test that
 * asks for a bounded FIFO keeps it even under a forced-VOQ matrix. */
bool
isStockPolicy(const SwitchPolicyConfig &cfg)
{
    return cfg.kind == SwitchPolicyKind::CentralOutput &&
           cfg.sharedCapacityCells == 0;
}

SwitchPolicyConfig
resolvePolicy(const SwitchPolicyConfig &cfg, const std::string &name)
{
    if (!isStockPolicy(cfg))
        return cfg;
#ifdef SAN_FORCE_SWITCH_POLICY
    // Build-time mirror of the env override (mirrors how
    // -DSAN_FORCE_HEAP_KERNEL pins the event kernel).
    if (auto forced = parsePolicySpec(SAN_FORCE_SWITCH_POLICY))
        return *forced;
#endif
    if (const char *env = std::getenv("SAN_FORCE_SWITCH_POLICY")) {
        if (auto forced = parsePolicySpec(env))
            return *forced;
        sim::logAt(sim::LogLevel::Warn, name, 0,
                   "ignoring unparseable SAN_FORCE_SWITCH_POLICY: ",
                   env);
    }
    return cfg;
}

} // namespace

Switch::Switch(sim::Simulation &sim, std::string name, NodeId id,
               const SwitchParams &params)
    : sim_(sim), name_(std::move(name)), id_(id), params_(params),
      ports_(params.ports)
{
    params_.policy = resolvePolicy(params.policy, name_);
    policy_ = makeQueueingPolicy(*this, params_.policy);
}

void
Switch::attachPort(unsigned port, Link &out, Link &in)
{
    if (port >= ports_.size())
        throw std::out_of_range(name_ + ": attachPort(" +
                                std::to_string(port) + ") beyond " +
                                std::to_string(ports_.size()) +
                                " ports");
    if (ports_[port].out != nullptr || ports_[port].in != nullptr)
        throw std::logic_error(name_ + ": port " +
                               std::to_string(port) +
                               " is already wired");
    ports_[port].out = &out;
    ports_[port].in = &in;
    in.setSink([this, port](Arrival &&arrival) {
        receive(port, std::move(arrival));
    });
    policy_->portAttached(port);
}

void
Switch::setRoute(NodeId dst, unsigned port)
{
    if (port >= ports_.size())
        throw std::out_of_range(name_ + ": setRoute to port " +
                                std::to_string(port) + " beyond " +
                                std::to_string(ports_.size()) +
                                " ports");
    routes_.set(dst, port);
}

bool
Switch::hasRoute(NodeId dst) const
{
    return routes_.find(dst) != nullptr;
}

unsigned
Switch::route(NodeId dst) const
{
    const unsigned *port = routes_.find(dst);
    assert(port != nullptr && "no route to destination");
    return *port;
}

void
Switch::inject(Packet pkt)
{
    const unsigned port = route(pkt.dst);
    // Local injections enter the policy on the virtual local input
    // port: the Send unit contends for outputs like any input would.
    const sim::Tick now = sim_.now();
    if (auto *tel = obs::globalTelemetry())
        tel->countPacket(pkt.src, pkt.dst, pkt.wireBytes());
    if (pkt.telemetry)
        pkt.telemetry->noteSwitchIngress(id_, now);
    policy_->ingress(params_.ports, port,
                     Arrival{std::move(pkt), now, now});
}

void
Switch::receive(unsigned port, Arrival &&arrival)
{
    // Route after the fixed routing latency. Local deliveries drain
    // input staging right here (credit back, then dispatch); transit
    // cells are handed to the queueing policy, which owns the
    // credit-return point from there on. The arrival is moved into
    // the event slot and moved out on forward, never copied.
    sim_.events().after(
        params_.routingLatency,
        [this, port, a = std::move(arrival)]() mutable {
            if (auto *tel = obs::globalTelemetry())
                tel->countPacket(a.pkt.src, a.pkt.dst,
                                 a.pkt.wireBytes());
            if (a.pkt.dst == id_) {
                ports_[port].in->returnCredit();
                ++local_;
                // Terminal hop: locally-delivered packets get the
                // same ingress stamp transit cells do, so the final
                // (handler) hop shows up in the latency lineage.
                // noteDelivered() closes it.
                if (a.pkt.telemetry)
                    a.pkt.telemetry->noteSwitchIngress(id_,
                                                       sim_.now());
                deliverLocal(std::move(a));
                return;
            }
            ++routed_;
            if (a.pkt.telemetry)
                a.pkt.telemetry->noteSwitchIngress(id_, sim_.now());
            const unsigned out_port = route(a.pkt.dst);
            policy_->ingress(port, out_port, std::move(a));
        });
}

void
Switch::registerMetrics(obs::MetricsRegistry &m) const
{
    if (!policy_->isPassthrough())
        policy_->registerMetrics(m, name_ + ".policy");
}

void
Switch::deliverLocal(Arrival &&arrival)
{
    sim::logAt(sim::LogLevel::Warn, name_, sim_.now(),
               "dropping local packet from node ", arrival.pkt.src,
               " (non-active switch)");
}

} // namespace san::net
