#include "net/Switch.hh"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/Log.hh"

namespace san::net {

Switch::Switch(sim::Simulation &sim, std::string name, NodeId id,
               const SwitchParams &params)
    : sim_(sim), name_(std::move(name)), id_(id), params_(params),
      ports_(params.ports)
{}

void
Switch::attachPort(unsigned port, Link &out, Link &in)
{
    assert(port < ports_.size());
    ports_[port].out = &out;
    ports_[port].in = &in;
    in.setSink([this, port](Arrival &&arrival) {
        receive(port, std::move(arrival));
    });
}

void
Switch::setRoute(NodeId dst, unsigned port)
{
    assert(port < ports_.size());
    auto it = std::find(routeDst_.begin(), routeDst_.end(), dst);
    if (it != routeDst_.end()) {
        routePort_[it - routeDst_.begin()] = port;
    } else {
        routeDst_.push_back(dst);
        routePort_.push_back(port);
    }
}

bool
Switch::hasRoute(NodeId dst) const
{
    return std::find(routeDst_.begin(), routeDst_.end(), dst) !=
           routeDst_.end();
}

unsigned
Switch::route(NodeId dst) const
{
    auto it = std::find(routeDst_.begin(), routeDst_.end(), dst);
    assert(it != routeDst_.end() && "no route to destination");
    return routePort_[it - routeDst_.begin()];
}

void
Switch::inject(Packet pkt)
{
    const unsigned port = route(pkt.dst);
    assert(ports_[port].out && "injecting on unwired port");
    ports_[port].out->send(std::move(pkt));
}

void
Switch::receive(unsigned port, Arrival &&arrival)
{
    Link *in = ports_[port].in;
    // Route after the fixed routing latency; the credit goes back
    // when the packet leaves input staging for the output queue (or
    // the local data buffers). The arrival is moved into the event
    // slot and moved out on forward, never copied.
    sim_.events().after(
        params_.routingLatency,
        [this, in, a = std::move(arrival)]() mutable {
            in->returnCredit();
            if (a.pkt.dst == id_) {
                ++local_;
                deliverLocal(std::move(a));
                return;
            }
            ++routed_;
            const unsigned out_port = route(a.pkt.dst);
            assert(ports_[out_port].out && "routing to unwired port");
            ports_[out_port].out->send(std::move(a.pkt));
        });
}

void
Switch::deliverLocal(Arrival &&arrival)
{
    sim::logAt(sim::LogLevel::Warn, name_, sim_.now(),
               "dropping local packet from node ", arrival.pkt.src,
               " (non-active switch)");
}

} // namespace san::net
