/**
 * @file
 * A unidirectional SAN link with credit-based flow control.
 *
 * The sender enqueues packets; each consumes one credit and occupies
 * the wire for its serialization time (wire bytes / bandwidth). The
 * receiver returns the credit when it has drained the packet from its
 * input staging, as in InfiniBand's per-link credit scheme.
 */

#ifndef SAN_NET_LINK_HH
#define SAN_NET_LINK_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "fault/FaultPlan.hh"
#include "net/Packet.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace san::net {

/** Link configuration. */
struct LinkParams {
    double bandwidthBytesPerSec = 1e9;  //!< paper: 1 GB/s per direction
    sim::Tick propagation = sim::ns(5); //!< cable flight time
    unsigned credits = 16;              //!< receiver buffer slots
};

/** One direction of a SAN cable. */
class Link
{
  public:
    /**
     * Receives each delivered packet. The arrival is handed over as
     * an rvalue so receivers forward or stage the ~100-byte Packet
     * (and its payload refcount) with a move instead of a copy;
     * read-only sinks may still bind a `const Arrival &` parameter.
     */
    using Sink = std::function<void(Arrival &&)>;

    Link(sim::Simulation &sim, std::string name, const LinkParams &params)
        : sim_(sim), name_(std::move(name)), params_(params),
          psPerByte_(sim::bytesPerSec(params.bandwidthBytesPerSec)),
          credits_(params.credits)
    {
        if (fault::FaultPlan *plan = fault::globalPlan()) {
            plan_ = plan;
            berSite_ = plan->site(fault::FaultKind::LinkBitError, name_);
            creditSite_ = plan->site(fault::FaultKind::CreditLoss, name_);
        }
    }

    Link(const Link &) = delete;
    Link &operator=(const Link &) = delete;

    /** Attach the receiving component. Must be set before traffic. */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /**
     * Notify @p fn every time a transmit credit comes back to this
     * link's sender. Paced switch policies (VOQ, crosspoint, bounded
     * central memory) install this on their output links: a grant
     * loop that stalled because the downstream hop withheld credits
     * resumes on the returned credit instead of polling. Unset (the
     * default, and the passthrough policy's state) it costs one
     * branch per credit return, so default-policy runs schedule
     * exactly the same events as before the policy layer existed.
     */
    void
    setCreditObserver(std::function<void()> fn)
    {
        creditObserver_ = std::move(fn);
    }

    /**
     * Mark this link as a shard boundary: the sender lives on shard
     * @p src, the receiver on shard @p dst. Deliveries and credit
     * returns then cross via Simulation::crossSchedule instead of
     * direct scheduling. Set by net::Fabric::applyShardPlan; only
     * meaningful once the simulation is sharded.
     */
    void
    setCrossShard(std::size_t src, std::size_t dst)
    {
        assert(src != dst && "not a boundary link");
        assert(params_.propagation >= 1 &&
               "boundary links need nonzero flight time for lookahead");
        cross_ = true;
        srcShard_ = src;
        dstShard_ = dst;
    }

    /** Queue a packet for transmission. Never blocks the caller. */
    void
    send(Packet pkt)
    {
        if (pkt.telemetry)
            pkt.telemetry->noteTxEnqueue(sim_.now());
        queue_.push_back(std::move(pkt));
        pump();
    }

    /**
     * Return one receiver credit (the receiver drained a packet from
     * its input staging).
     *
     * Cross-shard links model the credit-update flit explicitly: the
     * receiver's shard posts it back to the sender's shard, arriving
     * one propagation delay later (which also keeps the timestamp
     * within the conservative lookahead bound). Same-shard links
     * keep the historical zero-delay return, so unsharded runs are
     * bit-identical.
     */
    void
    returnCredit()
    {
        if (cross_) {
            sim_.crossSchedule(srcShard_,
                               sim_.now() + params_.propagation,
                               [this] { creditReturned(); });
            return;
        }
        creditReturned();
    }

  private:
    void
    creditReturned()
    {
        // A credit return for a packet that was never charged (or
        // charged twice) would silently inflate the pool past the
        // receiver's real buffer capacity.
        assert(credits_ < params_.credits &&
               "Link::returnCredit: credit underflow (double return?)");
        if (plan_ != nullptr && creditLost()) {
            // The credit update flit was lost. Model the periodic
            // link-level flow-control sync that rebuilds the count.
            ++creditsLost_;
            if (auto *tr = sim_.tracer())
                tr->instant(name_, "credit-loss", sim_.now());
            sim_.events().after(plan_->recovery().creditSyncDelay,
                                [this] {
                                    ++credits_;
                                    pump();
                                    if (creditObserver_)
                                        creditObserver_();
                                });
            return;
        }
        ++credits_;
        pump();
        if (creditObserver_)
            creditObserver_();
    }

  public:
    const std::string &name() const { return name_; }
    const LinkParams &params() const { return params_; }
    std::size_t queued() const { return queue_.size(); }
    unsigned credits() const { return credits_; }
    std::uint64_t packetsSent() const { return packets_; }
    std::uint64_t bytesSent() const { return bytes_; }
    /** Packets corrupted in flight by injected bit errors. */
    std::uint64_t packetsCorrupted() const { return corrupted_; }
    /** Credit-update flits lost to injected faults. */
    std::uint64_t creditsLost() const { return creditsLost_; }
    /** Cumulative wire occupancy (serialization time) in ticks. */
    sim::Tick busyTicks() const { return busyTicks_; }

    /** Serialization time of one packet on this link. */
    sim::Tick
    serialization(const Packet &pkt) const
    {
        return sim::transferTime(pkt.wireBytes(), psPerByte_);
    }

    /**
     * Register this link's timeline gauges: bytes per interval, wire
     * utilization (serialization time / elapsed), send-queue depth,
     * and credits remaining, all named after the link. The credits
     * gauge makes credit-starved backlogs diagnosable: a link with
     * .queued > 0 and .credits == 0 is blocked on the receiver, not
     * on the wire.
     */
    void
    registerMetrics(obs::MetricsRegistry &m) const
    {
        m.add(name_ + ".bytes", obs::GaugeKind::Rate,
              [this] { return static_cast<double>(bytes_); });
        m.add(name_ + ".util", obs::GaugeKind::TimeShare,
              [this] { return static_cast<double>(busyTicks_); });
        m.add(name_ + ".queued", obs::GaugeKind::Gauge,
              [this] { return static_cast<double>(queue_.size()); });
        m.add(name_ + ".credits", obs::GaugeKind::Gauge,
              [this] { return static_cast<double>(credits_); });
    }

  private:
    void
    pump()
    {
        while (!queue_.empty() && credits_ > 0) {
            const sim::Tick now = sim_.now();
            const sim::Tick start = std::max(now, wireFree_);
            Packet pkt = std::move(queue_.front());
            queue_.pop_front();
            --credits_;
            const sim::Tick ser = serialization(pkt);
            wireFree_ = start + ser;
            ++packets_;
            bytes_ += pkt.wireBytes();
            busyTicks_ += ser;
            // Fault checks and trace instants happen at the actual
            // transmission tick `start`, not the enqueue tick: under
            // wire backlog the two differ, and a one-shot
            // --fault-at TICK fault must hit the packet that is on
            // the wire at TICK (with timestamps to match).
            if (plan_ != nullptr && bitErrorHits(pkt, start)) {
                // Flip Packet::corrupt instead of any header field:
                // routing stays deterministic (cut-through forwards
                // the header before any CRC could run) and the
                // consuming endpoint's checksum verification fails.
                pkt.corrupt = true;
                ++corrupted_;
                if (auto *tr = sim_.tracer())
                    tr->instant(name_, "bit-error", start);
            }
            const sim::Tick first = start + params_.propagation;
            const sim::Tick end = first + ser;
            if (auto *tr = sim_.tracer())
                tr->span(name_, "packet", start, end);
            if (pkt.telemetry) {
                // Queue + credit-stall wait ends at the transmission
                // tick; the stamp lands at `start` for the same
                // reason the fault checks above do.
                pkt.telemetry->noteTxStart(start);
                if (auto *tr = sim_.tracer()) {
                    // The flow point sits inside this link's
                    // "packet" span, which anchors the arrow chain.
                    if (!pkt.telemetry->flowTraced) {
                        pkt.telemetry->flowTraced = true;
                        tr->flowBegin(name_, "lineage",
                                      pkt.telemetry->uid, start);
                    } else {
                        tr->flowStep(name_, "lineage",
                                     pkt.telemetry->uid, start);
                    }
                }
            }
            // Virtual cut-through: the receiver sees the packet as
            // soon as the header is in, and may begin routing or
            // processing while the payload is still streaming.
            // Arrival.start/.end describe the payload timing.
            const sim::Tick header_in =
                first + sim::transferTime(headerBytes, psPerByte_);
            if (cross_) {
                // Boundary link: the delivery executes on the
                // receiver's shard. header_in >= start + propagation
                // >= now + lookahead, so the stamp is always safe to
                // hand over at the next barrier.
                sim_.crossSchedule(
                    dstShard_, header_in,
                    [this, p = std::move(pkt), first, end]() mutable {
                        sink_(Arrival{std::move(p), first, end});
                    });
            } else {
                sim_.events().schedule(
                    header_in,
                    [this, p = std::move(pkt), first, end]() mutable {
                        sink_(Arrival{std::move(p), first, end});
                    });
            }
        }
    }

    /**
     * One injected bit error hits @p pkt on this transmission?
     * @p start is the tick the packet's first bit goes on the wire
     * (>= now() under backlog) — one-shot fault events trigger
     * against it, not against the enqueue time.
     */
    bool
    bitErrorHits(const Packet &pkt, sim::Tick start)
    {
        if (berSite_ != nullptr) {
            // Per-packet corruption probability: wire bits times the
            // configured bit-error rate (linear approximation of
            // 1-(1-ber)^bits; plain multiply keeps gcc and clang
            // bit-identical).
            const double p = std::min(
                1.0, static_cast<double>(pkt.wireBytes()) * 8.0 *
                         berSite_->rate());
            if (berSite_->fire(p))
                return true;
        }
        return plan_->eventPending(fault::FaultKind::LinkBitError) &&
               plan_->eventDue(fault::FaultKind::LinkBitError, name_,
                               start);
    }

    /** The credit flit being returned right now is lost? */
    bool
    creditLost()
    {
        if (creditSite_ != nullptr && creditSite_->fire())
            return true;
        return plan_->eventPending(fault::FaultKind::CreditLoss) &&
               plan_->eventDue(fault::FaultKind::CreditLoss, name_,
                               sim_.now());
    }

    sim::Simulation &sim_;
    std::string name_;
    LinkParams params_;
    sim::PsPerByte psPerByte_;
    Sink sink_;
    std::function<void()> creditObserver_; //!< sender-side wakeup
    std::deque<Packet> queue_;
    unsigned credits_;
    sim::Tick wireFree_ = 0;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    sim::Tick busyTicks_ = 0;

    // Shard-boundary marking (sharded runs only; see setCrossShard).
    bool cross_ = false;
    std::size_t srcShard_ = 0;
    std::size_t dstShard_ = 0;

    fault::FaultPlan *plan_ = nullptr;    //!< null: no faults, no cost
    fault::FaultSite *berSite_ = nullptr;
    fault::FaultSite *creditSite_ = nullptr;
    std::uint64_t corrupted_ = 0;
    std::uint64_t creditsLost_ = 0;
};

} // namespace san::net

#endif // SAN_NET_LINK_HH
