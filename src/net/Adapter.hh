/**
 * @file
 * Channel adapters: the fabric endpoints.
 *
 * An Adapter is the common model for the paper's HCA (host channel
 * adapter, integrated into the memory controller) and TCA (target
 * channel adapter, fronting I/O devices). It exposes a queue-pair
 * style interface: sendMessage() segments a message into MTU-sized
 * packets and posts them; received packets are reassembled in order
 * and completed messages appear on the receive channel.
 */

#ifndef SAN_NET_ADAPTER_HH
#define SAN_NET_ADAPTER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "fault/Reliable.hh"
#include "net/Link.hh"
#include "net/Packet.hh"
#include "sim/Simulation.hh"
#include "sim/Sync.hh"

namespace san::net {

/** A fully reassembled message as seen by the receiving endpoint. */
struct Message {
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    std::uint64_t bytes = 0;
    bool active = false;
    ActiveHeader activeHdr{};
    std::uint32_t tag = 0;      //!< protocol discriminator
    PayloadPtr payload;
    sim::Tick firstArrival = 0; //!< first byte of first packet
    sim::Tick completedAt = 0;  //!< last byte of last packet
};

/** Endpoint adapter configuration. */
struct AdapterParams {
    unsigned mtu = defaultMtu;
};

/** An HCA/TCA endpoint on the fabric. */
class Adapter
{
  public:
    Adapter(sim::Simulation &sim, std::string name, NodeId id,
            const AdapterParams &params = {});

    Adapter(const Adapter &) = delete;
    Adapter &operator=(const Adapter &) = delete;

    NodeId id() const { return id_; }
    const std::string &name() const { return name_; }
    unsigned mtu() const { return params_.mtu; }

    /** Wire this endpoint to its switch-facing links. */
    void attach(Link &out, Link &in);

    /**
     * Post a message of @p bytes payload to @p dst. If @p active is
     * set the message targets a switch handler. The optional payload
     * pointer rides on the last packet.
     */
    void sendMessage(NodeId dst, std::uint64_t bytes,
                     std::optional<ActiveHeader> active = std::nullopt,
                     PayloadPtr payload = nullptr, std::uint32_t tag = 0);

    /** Completed inbound messages, in arrival order. */
    sim::Channel<Message> &recvQueue() { return recv_; }

    std::uint64_t bytesSent() const { return bytesOut_; }
    std::uint64_t bytesReceived() const { return bytesIn_; }
    std::uint64_t messagesSent() const { return msgsOut_; }
    std::uint64_t messagesReceived() const { return msgsIn_; }

    /**
     * The recovery engine, armed iff a fault plan was installed when
     * this adapter attached to the fabric; nullptr otherwise.
     */
    const fault::ReliableChannel *reliable() const { return rel_.get(); }

  private:
    void receive(Arrival &&arrival);

    sim::Simulation &sim_;
    std::string name_;
    NodeId id_;
    AdapterParams params_;
    Link *out_ = nullptr;
    Link *in_ = nullptr;
    std::unique_ptr<fault::ReliableChannel> rel_;
    sim::Channel<Message> recv_;

    struct Partial {
        Message msg;
        std::uint64_t received = 0;
    };
    std::unordered_map<std::uint64_t, Partial> partial_;

    std::uint64_t bytesOut_ = 0, bytesIn_ = 0;
    std::uint64_t msgsOut_ = 0, msgsIn_ = 0;

    static std::uint64_t nextMessageId_;
};

} // namespace san::net

#endif // SAN_NET_ADAPTER_HH
