#include "net/Adapter.hh"

#include <cassert>
#include <utility>

namespace san::net {

std::uint64_t Adapter::nextMessageId_ = 1;

Adapter::Adapter(sim::Simulation &sim, std::string name, NodeId id,
                 const AdapterParams &params)
    : sim_(sim), name_(std::move(name)), id_(id), params_(params),
      recv_(sim)
{}

void
Adapter::attach(Link &out, Link &in)
{
    out_ = &out;
    in_ = &in;
    in.setSink(
        [this](Arrival &&arrival) { receive(std::move(arrival)); });
    if (fault::FaultPlan *plan = fault::globalPlan()) {
        rel_ = std::make_unique<fault::ReliableChannel>(
            sim_, name_, id_, plan->recovery(),
            [this](Packet pkt) { out_->send(std::move(pkt)); });
    }
}

void
Adapter::sendMessage(NodeId dst, std::uint64_t bytes,
                     std::optional<ActiveHeader> active,
                     PayloadPtr payload, std::uint32_t tag)
{
    assert(out_ && "adapter not attached to the fabric");
    const std::uint64_t id = nextMessageId_++;
    // Zero-byte messages (pure notifications) still occupy one
    // header-only packet.
    std::uint64_t remaining = bytes;
    std::uint32_t seq = 0;
    do {
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(remaining, params_.mtu));
        remaining -= chunk;
        Packet pkt;
        pkt.src = id_;
        pkt.dst = dst;
        pkt.payloadBytes = chunk;
        pkt.active = active.has_value();
        if (active)
            pkt.activeHdr = *active;
        pkt.messageId = id;
        pkt.tag = tag;
        pkt.seq = seq++;
        pkt.last = (remaining == 0);
        pkt.messageBytes = bytes;
        if (pkt.last)
            pkt.payload = payload;
        if (auto *tel = obs::globalTelemetry())
            pkt.telemetry = tel->sample(pkt.src, pkt.dst,
                                        pkt.active
                                            ? obs::FlowClass::Active
                                            : obs::FlowClass::Data,
                                        sim_.now());
        bytesOut_ += chunk;
        if (rel_)
            rel_->send(std::move(pkt));
        else
            out_->send(std::move(pkt));
    } while (remaining > 0);
    ++msgsOut_;
}

void
Adapter::receive(Arrival &&arrival)
{
    assert(in_);
    // Endpoints drain their staging immediately (DMA into host
    // memory), so the credit is returned right away.
    in_->returnCredit();

    // Control packets are consumed (delivered) inside the recovery
    // protocol below; data packets count as delivered only once they
    // clear it — a corrupt copy that gets dropped must not stamp the
    // lineage, its clean retransmission will.
    if (arrival.pkt.telemetry &&
        arrival.pkt.kind != PacketKind::Data)
        arrival.pkt.telemetry->noteDelivered(sim_.now());

    // Recovery protocol first: control packets, corrupted packets and
    // duplicates never reach reassembly (exactly-once delivery).
    if (rel_ && rel_->onArrival(arrival))
        return;

    Packet &pkt = arrival.pkt;
    bytesIn_ += pkt.payloadBytes;
    if (pkt.telemetry) {
        // Delivered when the last byte has DMA'd in, matching the
        // completion time reassembly reports.
        pkt.telemetry->noteDelivered(arrival.end);
        if (auto *tr = sim_.tracer()) {
            tr->span(name_, "deliver", arrival.end, arrival.end);
            tr->flowEnd(name_, "lineage", pkt.telemetry->uid,
                        arrival.end);
        }
    }

    auto &part = partial_[pkt.messageId];
    if (part.received == 0) {
        part.msg.src = pkt.src;
        part.msg.dst = pkt.dst;
        part.msg.bytes = pkt.messageBytes;
        part.msg.active = pkt.active;
        part.msg.activeHdr = pkt.activeHdr;
        part.msg.tag = pkt.tag;
        part.msg.firstArrival = arrival.start;
    }
    part.received += pkt.payloadBytes;
    if (pkt.last) {
        part.msg.completedAt = arrival.end;
        part.msg.payload = std::move(pkt.payload);
        Message done = std::move(part.msg);
        partial_.erase(pkt.messageId);
        ++msgsIn_;
        // The cut-through sink fires at header time; an endpoint only
        // sees the message once its last byte has DMA'd in.
        if (arrival.end > sim_.now()) {
            sim_.events().schedule(
                arrival.end, [this, m = std::move(done)]() mutable {
                    recv_.push(std::move(m));
                });
        } else {
            recv_.push(std::move(done));
        }
    }
}

} // namespace san::net
