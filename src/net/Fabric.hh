/**
 * @file
 * Fabric: owns switches, adapters and links, wires topologies and
 * computes shortest-path routing tables.
 */

#ifndef SAN_NET_FABRIC_HH
#define SAN_NET_FABRIC_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/Adapter.hh"
#include "net/Link.hh"
#include "net/Packet.hh"
#include "net/Switch.hh"
#include "sim/Simulation.hh"

namespace san::net {

/**
 * Equal-cost tie-breaking rule of computeRoutes(). Both rules are
 * deterministic; they differ in how multipath topologies (fat-tree,
 * dragonfly) spread destinations over their redundant shortest paths.
 */
enum class RouteSpread {
    /** Always take the lowest-numbered output port among the
     * shortest-path candidates. Single-path topologies (chains,
     * trees) are unaffected; on a multipath fabric every destination
     * funnels through the same uplinks. The default, and the rule
     * the tie-break determinism test pins. */
    LowestPort,
    /** ECMP-style: candidate ports sorted ascending, destination d
     * takes candidate d mod #candidates. Deterministic per (switch,
     * destination) and independent of wiring order; the topology
     * builders use it so a fat-tree actually load-balances its core.
     */
    DestinationMod,
};

/**
 * A deterministic partition of a fabric's components into logical-
 * process shards for the parallel kernel (sim/Pdes.hh). Computed by
 * Fabric::planShards from the topology alone — never from the
 * thread count — so the same build always yields the same cut, and
 * N-thread fingerprints are stable across N.
 */
struct ShardPlan {
    std::size_t shards = 1;
    /** Shard of each switch, by creation index. */
    std::vector<std::size_t> switchShard;
    /** Shard of each adapter, by creation index. */
    std::vector<std::size_t> adapterShard;
    /**
     * Conservative lookahead: the minimum propagation latency over
     * all boundary (shard-crossing) links. maxTick when no link
     * crosses (degenerate single-shard plan).
     */
    sim::Tick lookahead = sim::maxTick;
    /** Number of links whose endpoints land on different shards. */
    std::size_t boundaryLinks = 0;
};

/**
 * A complete SAN: the container for every network component of one
 * simulated system.
 */
class Fabric
{
  public:
    explicit Fabric(sim::Simulation &sim, const LinkParams &link_params = {},
                    const AdapterParams &adapter_params = {});

    /**
     * Create a switch of type @p S (Switch or a subclass such as
     * ActiveSwitch). Extra constructor arguments follow the params.
     */
    template <typename S = Switch, typename... Extra>
    S &
    addSwitch(const SwitchParams &params, Extra &&...extra)
    {
        const NodeId id = nextNode_++;
        auto sw = std::make_unique<S>(
            sim_, "switch" + std::to_string(switches_.size()), id, params,
            std::forward<Extra>(extra)...);
        S &ref = *sw;
        switchAdj_.emplace_back(params.ports,
                                std::pair<int, int>{-1, -1});
        // Index cached at creation: connect/connectSwitches resolve
        // a switch in O(1), so wiring an n-switch fabric is linear.
        switchIndexOf_.emplace(&ref, switches_.size());
        switches_.push_back(std::move(sw));
        return ref;
    }

    /** Create an endpoint adapter (HCA or TCA). */
    Adapter &addAdapter(const std::string &name);

    /** Wire @p adapter to @p port of @p sw with a pair of links. */
    void connect(Switch &sw, unsigned port, Adapter &adapter);

    /** Wire two switches together. */
    void connectSwitches(Switch &a, unsigned port_a, Switch &b,
                         unsigned port_b);

    /**
     * Populate every switch's routing table (call after wiring).
     * Shortest paths come from a per-anchor BFS; equal-cost ties
     * break per @p spread. Idempotent: recomputing overwrites every
     * route with the same values.
     */
    void computeRoutes(RouteSpread spread = RouteSpread::LowestPort);

    /**
     * Partition the component graph into (up to) @p shards logical
     * processes. Switches are cut into contiguous creation-order
     * blocks and each adapter follows its home switch, so the
     * hot intra-node traffic (adapter <-> home switch) stays
     * shard-local and only inter-switch cables cross. Asking for
     * more shards than there are switches spreads every component —
     * switches first, then adapters — across its own block instead
     * (the degenerate one-component-per-shard mode the stress test
     * exercises). The result depends only on the topology and
     * @p shards, never on the thread count.
     */
    ShardPlan planShards(std::size_t shards) const;

    /**
     * Put the simulation into sharded mode per @p plan: enables
     * sharding on the Simulation (shard count + lookahead) and marks
     * every boundary link cross-shard. Call after wiring and
     * computeRoutes(), before any event is scheduled.
     */
    void applyShardPlan(const ShardPlan &plan);

    /** Creation index of @p adapter (for ShardPlan lookups). */
    std::size_t adapterIndex(const Adapter &adapter) const;

    sim::Simulation &sim() { return sim_; }
    const LinkParams &linkParams() const { return linkParams_; }
    unsigned mtu() const { return adapterParams_.mtu; }
    const std::vector<std::unique_ptr<Switch>> &switches() const
    {
        return switches_;
    }
    const std::vector<std::unique_ptr<Adapter>> &adapters() const
    {
        return adapters_;
    }
    const std::vector<std::unique_ptr<Link>> &links() const
    {
        return links_;
    }

  private:
    std::size_t switchIndex(const Switch &sw) const;
    Link &newLink(const std::string &name);

    sim::Simulation &sim_;
    LinkParams linkParams_;
    AdapterParams adapterParams_;
    NodeId nextNode_ = 0;

    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::unique_ptr<Adapter>> adapters_;
    std::vector<std::unique_ptr<Link>> links_;

    /** Per switch, per port: (neighbor switch index, its port), or
     * (-1,-1) when unused / endpoint-facing. */
    std::vector<std::vector<std::pair<int, int>>> switchAdj_;
    /** Per adapter: (home switch index, port). */
    std::vector<std::pair<int, unsigned>> adapterHome_;
    /** Per link (parallel to links_): sender and receiver, each a
     * switch or an adapter. Filled by connect/connectSwitches; the
     * shard planner walks it to find boundary links. */
    struct LinkEnds {
        bool srcIsSwitch;
        std::size_t src;
        bool dstIsSwitch;
        std::size_t dst;
    };
    std::vector<LinkEnds> linkEnds_;
    /** @{ Creation-time indices: wiring never scans the owner
     * vectors (a 1k-switch fat-tree builds in linear time). */
    std::unordered_map<const Switch *, std::size_t> switchIndexOf_;
    std::unordered_map<const Adapter *, std::size_t> adapterIndexOf_;
    /** @} */
};

} // namespace san::net

#endif // SAN_NET_FABRIC_HH
