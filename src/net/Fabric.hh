/**
 * @file
 * Fabric: owns switches, adapters and links, wires topologies and
 * computes shortest-path routing tables.
 */

#ifndef SAN_NET_FABRIC_HH
#define SAN_NET_FABRIC_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/Adapter.hh"
#include "net/Link.hh"
#include "net/Packet.hh"
#include "net/Switch.hh"
#include "sim/Simulation.hh"

namespace san::net {

/**
 * Equal-cost tie-breaking rule of computeRoutes(). Both rules are
 * deterministic; they differ in how multipath topologies (fat-tree,
 * dragonfly) spread destinations over their redundant shortest paths.
 */
enum class RouteSpread {
    /** Always take the lowest-numbered output port among the
     * shortest-path candidates. Single-path topologies (chains,
     * trees) are unaffected; on a multipath fabric every destination
     * funnels through the same uplinks. The default, and the rule
     * the tie-break determinism test pins. */
    LowestPort,
    /** ECMP-style: candidate ports sorted ascending, destination d
     * takes candidate d mod #candidates. Deterministic per (switch,
     * destination) and independent of wiring order; the topology
     * builders use it so a fat-tree actually load-balances its core.
     */
    DestinationMod,
};

/**
 * A complete SAN: the container for every network component of one
 * simulated system.
 */
class Fabric
{
  public:
    explicit Fabric(sim::Simulation &sim, const LinkParams &link_params = {},
                    const AdapterParams &adapter_params = {});

    /**
     * Create a switch of type @p S (Switch or a subclass such as
     * ActiveSwitch). Extra constructor arguments follow the params.
     */
    template <typename S = Switch, typename... Extra>
    S &
    addSwitch(const SwitchParams &params, Extra &&...extra)
    {
        const NodeId id = nextNode_++;
        auto sw = std::make_unique<S>(
            sim_, "switch" + std::to_string(switches_.size()), id, params,
            std::forward<Extra>(extra)...);
        S &ref = *sw;
        switchAdj_.emplace_back(params.ports,
                                std::pair<int, int>{-1, -1});
        // Index cached at creation: connect/connectSwitches resolve
        // a switch in O(1), so wiring an n-switch fabric is linear.
        switchIndexOf_.emplace(&ref, switches_.size());
        switches_.push_back(std::move(sw));
        return ref;
    }

    /** Create an endpoint adapter (HCA or TCA). */
    Adapter &addAdapter(const std::string &name);

    /** Wire @p adapter to @p port of @p sw with a pair of links. */
    void connect(Switch &sw, unsigned port, Adapter &adapter);

    /** Wire two switches together. */
    void connectSwitches(Switch &a, unsigned port_a, Switch &b,
                         unsigned port_b);

    /**
     * Populate every switch's routing table (call after wiring).
     * Shortest paths come from a per-anchor BFS; equal-cost ties
     * break per @p spread. Idempotent: recomputing overwrites every
     * route with the same values.
     */
    void computeRoutes(RouteSpread spread = RouteSpread::LowestPort);

    sim::Simulation &sim() { return sim_; }
    const LinkParams &linkParams() const { return linkParams_; }
    unsigned mtu() const { return adapterParams_.mtu; }
    const std::vector<std::unique_ptr<Switch>> &switches() const
    {
        return switches_;
    }
    const std::vector<std::unique_ptr<Adapter>> &adapters() const
    {
        return adapters_;
    }
    const std::vector<std::unique_ptr<Link>> &links() const
    {
        return links_;
    }

  private:
    std::size_t switchIndex(const Switch &sw) const;
    Link &newLink(const std::string &name);

    sim::Simulation &sim_;
    LinkParams linkParams_;
    AdapterParams adapterParams_;
    NodeId nextNode_ = 0;

    std::vector<std::unique_ptr<Switch>> switches_;
    std::vector<std::unique_ptr<Adapter>> adapters_;
    std::vector<std::unique_ptr<Link>> links_;

    /** Per switch, per port: (neighbor switch index, its port), or
     * (-1,-1) when unused / endpoint-facing. */
    std::vector<std::vector<std::pair<int, int>>> switchAdj_;
    /** Per adapter: (home switch index, port). */
    std::vector<std::pair<int, unsigned>> adapterHome_;
    /** @{ Creation-time indices: wiring never scans the owner
     * vectors (a 1k-switch fat-tree builds in linear time). */
    std::unordered_map<const Switch *, std::size_t> switchIndexOf_;
    std::unordered_map<const Adapter *, std::size_t> adapterIndexOf_;
    /** @} */
};

} // namespace san::net

#endif // SAN_NET_FABRIC_HH
