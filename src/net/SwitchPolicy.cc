#include "net/SwitchPolicy.hh"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <string>
#include <utility>

#include "net/Switch.hh"
#include "sim/Simulation.hh"

namespace san::net {

namespace {

constexpr sim::Tick kNever = std::numeric_limits<sim::Tick>::max();

} // namespace

// ---------------------------------------------------------------------
// Names and spec parsing
// ---------------------------------------------------------------------

const char *
policyKindName(SwitchPolicyKind kind)
{
    switch (kind) {
    case SwitchPolicyKind::CentralOutput:
        return "central";
    case SwitchPolicyKind::Voq:
        return "voq";
    case SwitchPolicyKind::Crosspoint:
        return "crosspoint";
    }
    return "?";
}

const char *
serviceOrderName(ServiceOrder order)
{
    switch (order) {
    case ServiceOrder::Fifo:
        return "fifo";
    case ServiceOrder::OldestFirst:
        return "oldest";
    case ServiceOrder::LongestFirst:
        return "longest";
    }
    return "?";
}

std::optional<SwitchPolicyConfig>
parsePolicySpec(std::string_view spec)
{
    SwitchPolicyConfig cfg;
    std::string_view kind = spec;
    std::string_view order;
    if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
        kind = spec.substr(0, colon);
        order = spec.substr(colon + 1);
    }
    if (kind == "central") {
        cfg.kind = SwitchPolicyKind::CentralOutput;
    } else if (kind == "fifo") {
        // The classic finite shared-memory FIFO output queue.
        cfg.kind = SwitchPolicyKind::CentralOutput;
        cfg.sharedCapacityCells = 64;
    } else if (kind == "voq") {
        cfg.kind = SwitchPolicyKind::Voq;
    } else if (kind == "crosspoint" || kind == "xpoint") {
        cfg.kind = SwitchPolicyKind::Crosspoint;
    } else {
        return std::nullopt;
    }
    if (!order.empty()) {
        if (order == "fifo")
            cfg.order = ServiceOrder::Fifo;
        else if (order == "oldest")
            cfg.order = ServiceOrder::OldestFirst;
        else if (order == "longest")
            cfg.order = ServiceOrder::LongestFirst;
        else
            return std::nullopt;
    }
    return cfg;
}

// ---------------------------------------------------------------------
// QueueingPolicy base: accessors into the owning switch
// ---------------------------------------------------------------------

QueueingPolicy::QueueingPolicy(Switch &sw)
    : sw_(sw), fwdFrom_(sw.params().ports + 1, 0),
      fwdBytesFrom_(sw.params().ports + 1, 0)
{}

unsigned
QueueingPolicy::portCount() const
{
    return sw_.params().ports;
}

unsigned
QueueingPolicy::inputCount() const
{
    return sw_.params().ports + 1;
}

sim::Simulation &
QueueingPolicy::simulation() const
{
    return sw_.sim();
}

void
QueueingPolicy::creditReturn(unsigned in_port)
{
    if (in_port >= portCount())
        return; // local injection: no link credit was charged
    Link *in = sw_.inLink(in_port);
    assert(in != nullptr && "credit return on unwired port");
    in->returnCredit();
}

void
QueueingPolicy::forward(unsigned in_port, unsigned out_port, Packet &&pkt)
{
    Link *out = sw_.outLink(out_port);
    assert(out != nullptr && "routing to unwired port");
    ++counters_.forwarded;
    fwdFrom_[in_port] += 1;
    fwdBytesFrom_[in_port] += pkt.wireBytes();
    if (pkt.telemetry) {
        // The single egress choke point for every policy: the hop
        // closes here. Passthrough ingress never stamped an
        // admission, which noteEgress resolves to the ingress tick
        // (zero policy wait), matching the pre-policy switch.
        const sim::Tick now = simulation().now();
        pkt.telemetry->noteEgress(now);
        if (auto *tr = simulation().tracer()) {
            // Zero-duration anchor slice so the lineage arrow has a
            // slice to bind to on the switch's track.
            tr->span(sw_.name(), "forward", now, now);
            tr->flowStep(sw_.name(), "lineage", pkt.telemetry->uid,
                         now);
        }
    }
    out->send(std::move(pkt));
}

sim::Tick
QueueingPolicy::serialization(unsigned out_port, const Packet &pkt) const
{
    Link *out = sw_.outLink(out_port);
    assert(out != nullptr);
    return out->serialization(pkt);
}

bool
QueueingPolicy::outputReady(unsigned out_port) const
{
    Link *out = sw_.outLink(out_port);
    return out != nullptr && out->credits() > 0 && out->queued() == 0;
}

void
QueueingPolicy::observeOutputCredits(std::function<void()> fn)
{
    creditObserver_ = std::move(fn);
    for (unsigned p = 0; p < portCount(); ++p)
        if (Link *out = sw_.outLink(p))
            out->setCreditObserver(creditObserver_);
}

void
QueueingPolicy::portAttached(unsigned port)
{
    if (!creditObserver_)
        return;
    if (Link *out = sw_.outLink(port))
        out->setCreditObserver(creditObserver_);
}

std::uint64_t
QueueingPolicy::forwardedFrom(unsigned in_port) const
{
    return fwdFrom_.at(in_port);
}

std::uint64_t
QueueingPolicy::forwardedBytesFrom(unsigned in_port) const
{
    return fwdBytesFrom_.at(in_port);
}

void
QueueingPolicy::registerMetrics(obs::MetricsRegistry &m,
                                const std::string &prefix) const
{
    m.add(prefix + ".occupancy", obs::GaugeKind::Gauge,
          [this] { return static_cast<double>(occupancy()); });
    m.add(prefix + ".staged", obs::GaugeKind::Gauge,
          [this] { return static_cast<double>(stagedCells()); });
    m.add(prefix + ".forwarded", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(counters_.forwarded); });
    m.add(prefix + ".grants", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(counters_.grants); });
    m.add(prefix + ".holBlocked", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(counters_.holBlocked); });
    m.add(prefix + ".arbRounds", obs::GaugeKind::Rate,
          [this] { return static_cast<double>(counters_.arbRounds); });
    registerDetailMetrics(m);
}

namespace {

// ---------------------------------------------------------------------
// Central output queue (the paper's Switch-3)
// ---------------------------------------------------------------------

/**
 * Unbounded: a pure passthrough onto the output link, byte-identical
 * to the pre-policy switch (the link's internal queue *is* the
 * paper's idealized central output queue). Bounded: per-output FIFOs
 * drawing from one shared cell pool; when the pool is full, arriving
 * cells stay in per-input staging with their credit withheld, so one
 * hot output starves every input behind it — classic HOL blocking,
 * kept on purpose as the baseline the other policies beat.
 */
class CentralOutputPolicy final : public QueueingPolicy
{
  public:
    CentralOutputPolicy(Switch &sw, const SwitchPolicyConfig &cfg)
        : QueueingPolicy(sw), cap_(cfg.sharedCapacityCells),
          fifo_(portCount()), staged_(inputCount()),
          busy_(portCount(), false)
    {
        if (cap_ != 0)
            observeOutputCredits([this] { onCredit(); });
    }

    const char *
    name() const override
    {
        return cap_ == 0 ? "central" : "central-bounded";
    }

    bool isPassthrough() const override { return cap_ == 0; }

    void
    ingress(unsigned in, unsigned out, Arrival &&arrival) override
    {
        if (cap_ == 0) {
            // Legacy order exactly: credit first, then forward.
            creditReturn(in);
            forward(in, out, std::move(arrival.pkt));
            return;
        }
        // A cell may only bypass staging when its input has nothing
        // staged: admitting around staged cells would reorder the
        // input's wire stream (and with it some flow).
        if (staged_[in].empty() && occ_ < cap_) {
            admit(Cell{std::move(arrival.pkt), simulation().now(), in,
                       out});
        } else {
            ++counters_.holBlocked;
            staged_[in].push_back(Cell{std::move(arrival.pkt),
                                       simulation().now(), in, out});
        }
    }

    std::size_t occupancy() const override { return occ_; }

    std::size_t
    stagedCells() const override
    {
        std::size_t n = 0;
        for (const auto &q : staged_)
            n += q.size();
        return n;
    }

  private:
    void
    admit(Cell &&c)
    {
        ++counters_.admitted;
        ++occ_;
        counters_.peakOccupancy =
            std::max<std::uint64_t>(counters_.peakOccupancy, occ_);
        creditReturn(c.in);
        if (c.pkt.telemetry)
            c.pkt.telemetry->noteAdmitted(simulation().now());
        const unsigned out = c.out;
        fifo_[out].push_back(std::move(c));
        serve(out);
    }

    void
    serve(unsigned out)
    {
        if (busy_[out] || fifo_[out].empty() || !outputReady(out))
            return;
        busy_[out] = true;
        Cell c = std::move(fifo_[out].front());
        fifo_[out].pop_front();
        ++counters_.grants;
        const sim::Tick ser = serialization(out, c.pkt);
        forward(c.in, out, std::move(c.pkt));
        // The shared-memory slot frees when the cell has fully left
        // the switch, one serialization time later.
        simulation().events().after(ser, [this, out] {
            busy_[out] = false;
            --occ_;
            admitStaged();
            serve(out);
        });
    }

    /** Round-robin the freed shared slots over the staged inputs. */
    void
    admitStaged()
    {
        const unsigned n = inputCount();
        unsigned scanned = 0;
        while (occ_ < cap_ && scanned < n) {
            if (!staged_[rr_].empty()) {
                Cell c = std::move(staged_[rr_].front());
                staged_[rr_].pop_front();
                scanned = 0;
                admit(std::move(c));
            } else {
                ++scanned;
            }
            rr_ = (rr_ + 1) % n;
        }
    }

    void
    onCredit()
    {
        if (occ_ == 0)
            return;
        for (unsigned out = 0; out < portCount(); ++out)
            serve(out);
    }

    const unsigned cap_; //!< 0 = unbounded passthrough
    std::vector<std::deque<Cell>> fifo_;   //!< per output
    std::vector<std::deque<Cell>> staged_; //!< per input, credit held
    std::vector<char> busy_;               //!< per-output server busy
    std::uint64_t occ_ = 0;
    unsigned rr_ = 0; //!< staged-admission round-robin pointer
};

// ---------------------------------------------------------------------
// Virtual output queues + iSLIP
// ---------------------------------------------------------------------

/**
 * One FIFO per (input, output) pair removes HOL blocking entirely: a
 * hot output's backlog piles up in its own VOQs while every other
 * VOQ keeps flowing. Cells are matched to outputs by iSLIP: each
 * free output grants one requesting input (by the configured service
 * order), each input accepts one grant round-robin, iterated until
 * no new matches form. Pointers advance only on first-iteration
 * accepts — the desynchronization that makes round-robin iSLIP
 * starvation-free (a persistent requester is served within one
 * pointer revolution; maxGrantWaitRounds() exposes the observed
 * bound).
 */
class VoqIslipPolicy final : public QueueingPolicy
{
  public:
    VoqIslipPolicy(Switch &sw, const SwitchPolicyConfig &cfg)
        : QueueingPolicy(sw), cap_(std::max(1u, cfg.voqCapacityCells)),
          order_(cfg.order), voq_(inputCount() * portCount()),
          staged_(inputCount()), grantPtr_(portCount(), 0),
          acceptPtr_(inputCount(), 0), inBusyUntil_(inputCount(), 0),
          outBusyUntil_(portCount(), 0), waitRounds_(inputCount(), 0)
    {
        observeOutputCredits([this] { kick(); });
    }

    const char *
    name() const override
    {
        switch (order_) {
        case ServiceOrder::OldestFirst:
            return "voq-oldest";
        case ServiceOrder::LongestFirst:
            return "voq-longest";
        default:
            return "voq-islip";
        }
    }

    void
    ingress(unsigned in, unsigned out, Arrival &&arrival) override
    {
        Cell c{std::move(arrival.pkt), simulation().now(), in, out};
        // Wire order: never admit around cells already staged on
        // this input (see CentralOutputPolicy::ingress).
        if (staged_[in].empty() && voq(in, out).size() < cap_) {
            admit(std::move(c));
        } else {
            ++counters_.holBlocked;
            staged_[in].push_back(std::move(c));
        }
        kick();
    }

    std::size_t occupancy() const override { return occ_; }

    std::size_t
    stagedCells() const override
    {
        std::size_t n = 0;
        for (const auto &q : staged_)
            n += q.size();
        return n;
    }

    std::uint64_t maxGrantWaitRounds() const override { return maxWait_; }

    void
    registerDetailMetrics(obs::MetricsRegistry &m) const override
    {
        // One gauge per input: cells buffered across that input's
        // VOQs (staged cells included — they are that input's
        // backlog too). Shows which ingress a hotspot piles onto.
        for (unsigned i = 0; i < inputCount(); ++i)
            m.add(sw_.name() + ".voq.in" + std::to_string(i),
                  obs::GaugeKind::Gauge, [this, i] {
                      std::size_t n = staged_[i].size();
                      for (unsigned o = 0; o < portCount(); ++o)
                          n += voq_[i * portCount() + o].size();
                      return static_cast<double>(n);
                  });
    }

  private:
    std::deque<Cell> &
    voq(unsigned in, unsigned out)
    {
        return voq_[in * portCount() + out];
    }

    void
    admit(Cell &&c)
    {
        ++counters_.admitted;
        ++occ_;
        counters_.peakOccupancy =
            std::max<std::uint64_t>(counters_.peakOccupancy, occ_);
        creditReturn(c.in);
        if (c.pkt.telemetry)
            c.pkt.telemetry->noteAdmitted(simulation().now());
        const unsigned in = c.in, out = c.out;
        voq(in, out).push_back(std::move(c));
    }

    /** Schedule an arbitration pass this tick unless one is already
     * due now or earlier. postNow keeps same-tick arrivals coalesced
     * into a single pass. */
    void
    kick()
    {
        if (occ_ == 0)
            return;
        scheduleArbAt(simulation().now());
    }

    void
    scheduleArbAt(sim::Tick t)
    {
        if (t >= arbAt_)
            return; // an earlier or equal pass is already scheduled
        arbAt_ = t;
        const sim::Tick now = simulation().now();
        if (t <= now)
            simulation().events().postNow([this] { arbitrate(); });
        else
            simulation().events().schedule(t, [this] { arbitrate(); });
    }

    bool
    inFree(unsigned i, sim::Tick now) const
    {
        return inBusyUntil_[i] <= now;
    }

    bool
    outFree(unsigned o, sim::Tick now) const
    {
        return outBusyUntil_[o] <= now && outputReady(o);
    }

    bool
    hasAnyCell(unsigned i)
    {
        for (unsigned o = 0; o < portCount(); ++o)
            if (!voq(i, o).empty())
                return true;
        return false;
    }

    /** Grant phase: which input does free output @p o grant? */
    int
    pickRequester(unsigned o, sim::Tick now,
                  const std::vector<int> &inMatch)
    {
        const unsigned V = inputCount();
        int best = -1;
        for (unsigned k = 0; k < V; ++k) {
            const unsigned i = (grantPtr_[o] + k) % V;
            if (inMatch[i] >= 0 || !inFree(i, now) || voq(i, o).empty())
                continue;
            if (order_ == ServiceOrder::Fifo)
                return static_cast<int>(i); // first in pointer order
            if (best < 0) {
                best = static_cast<int>(i);
                continue;
            }
            const auto &bq = voq(static_cast<unsigned>(best), o);
            const auto &iq = voq(i, o);
            if (order_ == ServiceOrder::OldestFirst
                    ? iq.front().enqueuedAt < bq.front().enqueuedAt
                    : iq.size() > bq.size())
                best = static_cast<int>(i);
        }
        return best;
    }

    void
    arbitrate()
    {
        arbAt_ = kNever;
        const sim::Tick now = simulation().now();
        const unsigned V = inputCount(), P = portCount();

        bool anyRequest = false;
        for (unsigned i = 0; i < V && !anyRequest; ++i)
            if (inFree(i, now))
                for (unsigned o = 0; o < P; ++o)
                    if (outFree(o, now) && !voq(i, o).empty()) {
                        anyRequest = true;
                        break;
                    }
        if (anyRequest) {
            ++counters_.arbRounds;
            match(now);
        }
        rescheduleIfPending(now);
    }

    void
    match(sim::Tick now)
    {
        const unsigned V = inputCount(), P = portCount();
        std::vector<int> inMatch(V, -1), outMatch(P, -1);
        bool firstIter = true;
        for (;;) {
            // Grant: every free unmatched output offers one input.
            std::vector<int> grantTo(P, -1);
            for (unsigned o = 0; o < P; ++o) {
                if (outMatch[o] >= 0 || !outFree(o, now))
                    continue;
                grantTo[o] = pickRequester(o, now, inMatch);
            }
            // Accept: every free unmatched input takes one grant,
            // round-robin from its accept pointer.
            bool matchedAny = false;
            for (unsigned i = 0; i < V; ++i) {
                if (inMatch[i] >= 0 || !inFree(i, now))
                    continue;
                int got = -1;
                for (unsigned k = 0; k < P; ++k) {
                    const unsigned o = (acceptPtr_[i] + k) % P;
                    if (grantTo[o] == static_cast<int>(i)) {
                        got = static_cast<int>(o);
                        break;
                    }
                }
                if (got < 0)
                    continue;
                inMatch[i] = got;
                outMatch[static_cast<unsigned>(got)] =
                    static_cast<int>(i);
                matchedAny = true;
                if (firstIter) {
                    // iSLIP: pointers move only on first-iteration
                    // accepts — the desynchronization rule.
                    grantPtr_[static_cast<unsigned>(got)] = (i + 1) % V;
                    acceptPtr_[i] =
                        (static_cast<unsigned>(got) + 1) % P;
                }
            }
            if (!matchedAny)
                break;
            firstIter = false;
        }

        // Starvation accounting over the pre-dispatch state.
        for (unsigned i = 0; i < V; ++i) {
            if (!inFree(i, now) || !hasAnyCell(i))
                continue;
            if (inMatch[i] >= 0) {
                maxWait_ = std::max(maxWait_, waitRounds_[i]);
                waitRounds_[i] = 0;
            } else {
                ++waitRounds_[i];
            }
        }

        for (unsigned i = 0; i < V; ++i)
            if (inMatch[i] >= 0)
                serve(i, static_cast<unsigned>(inMatch[i]), now);
    }

    void
    serve(unsigned i, unsigned o, sim::Tick now)
    {
        Cell c = std::move(voq(i, o).front());
        voq(i, o).pop_front();
        --occ_;
        ++counters_.grants;
        const sim::Tick ser = serialization(o, c.pkt);
        inBusyUntil_[i] = now + ser;
        outBusyUntil_[o] = now + ser;
        forward(c.in, o, std::move(c.pkt));
        admitStaged(i);
    }

    /** Freed VOQ space admits staged cells in wire order (head only:
     * admitting past the head would reorder the input stream). */
    void
    admitStaged(unsigned i)
    {
        while (!staged_[i].empty()) {
            Cell &head = staged_[i].front();
            if (voq(i, head.out).size() >= cap_)
                break;
            Cell c = std::move(head);
            staged_[i].pop_front();
            admit(std::move(c));
        }
    }

    void
    rescheduleIfPending(sim::Tick now)
    {
        if (occ_ == 0)
            return;
        // Next chance anything changes on our own clock: the
        // earliest in-flight transmission completing. (A blocked
        // downstream link wakes us through the credit observer
        // instead.)
        sim::Tick next = kNever;
        for (const sim::Tick t : inBusyUntil_)
            if (t > now)
                next = std::min(next, t);
        for (const sim::Tick t : outBusyUntil_)
            if (t > now)
                next = std::min(next, t);
        if (next != kNever)
            scheduleArbAt(next);
    }

    const unsigned cap_;
    const ServiceOrder order_;
    std::vector<std::deque<Cell>> voq_;    //!< (input x output) FIFOs
    std::vector<std::deque<Cell>> staged_; //!< per input, credit held
    std::vector<unsigned> grantPtr_;       //!< per-output iSLIP ptr
    std::vector<unsigned> acceptPtr_;      //!< per-input iSLIP ptr
    std::vector<sim::Tick> inBusyUntil_;
    std::vector<sim::Tick> outBusyUntil_;
    std::vector<std::uint64_t> waitRounds_;
    std::uint64_t occ_ = 0;
    std::uint64_t maxWait_ = 0;
    sim::Tick arbAt_ = kNever; //!< earliest scheduled arbitration
};

// ---------------------------------------------------------------------
// Crosspoint-buffered crossbar (CICQ)
// ---------------------------------------------------------------------

/**
 * A small dedicated buffer at every (input, output) crosspoint
 * decouples inputs from outputs without a centralized arbiter: an
 * arriving cell drops into its crosspoint if there is room, and each
 * output independently serves its column by the configured
 * discipline. Buffering is O(N^2) in ports — the hardware cost that
 * historically kept CICQ switches small.
 */
class CrosspointPolicy final : public QueueingPolicy
{
  public:
    CrosspointPolicy(Switch &sw, const SwitchPolicyConfig &cfg)
        : QueueingPolicy(sw),
          cap_(std::max(1u, cfg.crosspointCapacityCells)),
          order_(cfg.order), xq_(inputCount() * portCount()),
          staged_(inputCount()), busy_(portCount(), false),
          rrPtr_(portCount(), 0)
    {
        observeOutputCredits([this] { onCredit(); });
    }

    const char *
    name() const override
    {
        switch (order_) {
        case ServiceOrder::OldestFirst:
            return "xpoint-oldest";
        case ServiceOrder::LongestFirst:
            return "xpoint-longest";
        default:
            return "xpoint-rr";
        }
    }

    void
    ingress(unsigned in, unsigned out, Arrival &&arrival) override
    {
        Cell c{std::move(arrival.pkt), simulation().now(), in, out};
        // Wire order: never admit around cells already staged on
        // this input (see CentralOutputPolicy::ingress).
        if (staged_[in].empty() && xq(in, out).size() < cap_) {
            admit(std::move(c));
        } else {
            ++counters_.holBlocked;
            staged_[in].push_back(std::move(c));
        }
    }

    std::size_t occupancy() const override { return occ_; }

    std::size_t
    stagedCells() const override
    {
        std::size_t n = 0;
        for (const auto &q : staged_)
            n += q.size();
        return n;
    }

    void
    registerDetailMetrics(obs::MetricsRegistry &m) const override
    {
        // One gauge per output: cells across that output's column of
        // crosspoint buffers. Shows which egress a hotspot drains
        // through.
        for (unsigned o = 0; o < portCount(); ++o)
            m.add(sw_.name() + ".xpoint.out" + std::to_string(o),
                  obs::GaugeKind::Gauge, [this, o] {
                      std::size_t n = 0;
                      for (unsigned i = 0; i < inputCount(); ++i)
                          n += xq_[i * portCount() + o].size();
                      return static_cast<double>(n);
                  });
    }

  private:
    std::deque<Cell> &
    xq(unsigned in, unsigned out)
    {
        return xq_[in * portCount() + out];
    }

    void
    admit(Cell &&c)
    {
        ++counters_.admitted;
        ++occ_;
        counters_.peakOccupancy =
            std::max<std::uint64_t>(counters_.peakOccupancy, occ_);
        creditReturn(c.in);
        if (c.pkt.telemetry)
            c.pkt.telemetry->noteAdmitted(simulation().now());
        const unsigned out = c.out;
        xq(c.in, out).push_back(std::move(c));
        serve(out);
    }

    /** Output @p out picks the next crosspoint in its column. */
    void
    serve(unsigned out)
    {
        if (busy_[out] || !outputReady(out))
            return;
        const unsigned V = inputCount();
        int pick = -1;
        for (unsigned k = 0; k < V; ++k) {
            const unsigned i = (rrPtr_[out] + k) % V;
            if (xq(i, out).empty())
                continue;
            if (order_ == ServiceOrder::Fifo) {
                pick = static_cast<int>(i);
                break;
            }
            if (pick < 0) {
                pick = static_cast<int>(i);
                continue;
            }
            const auto &pq = xq(static_cast<unsigned>(pick), out);
            const auto &iq = xq(i, out);
            if (order_ == ServiceOrder::OldestFirst
                    ? iq.front().enqueuedAt < pq.front().enqueuedAt
                    : iq.size() > pq.size())
                pick = static_cast<int>(i);
        }
        if (pick < 0)
            return;
        const auto in = static_cast<unsigned>(pick);
        rrPtr_[out] = (in + 1) % V;
        Cell c = std::move(xq(in, out).front());
        xq(in, out).pop_front();
        --occ_;
        ++counters_.grants;
        ++counters_.arbRounds;
        busy_[out] = true;
        const sim::Tick ser = serialization(out, c.pkt);
        forward(c.in, out, std::move(c.pkt));
        simulation().events().after(ser, [this, out, in] {
            busy_[out] = false;
            admitStaged(in);
            serve(out);
        });
    }

    void
    admitStaged(unsigned i)
    {
        while (!staged_[i].empty()) {
            Cell &head = staged_[i].front();
            if (xq(i, head.out).size() >= cap_)
                break;
            Cell c = std::move(head);
            staged_[i].pop_front();
            admit(std::move(c));
        }
    }

    void
    onCredit()
    {
        if (occ_ == 0)
            return;
        for (unsigned out = 0; out < portCount(); ++out)
            serve(out);
    }

    const unsigned cap_;
    const ServiceOrder order_;
    std::vector<std::deque<Cell>> xq_; //!< (input x output) buffers
    std::vector<std::deque<Cell>> staged_;
    std::vector<char> busy_;
    std::vector<unsigned> rrPtr_;
    std::uint64_t occ_ = 0;
};

} // namespace

std::unique_ptr<QueueingPolicy>
makeQueueingPolicy(Switch &sw, const SwitchPolicyConfig &cfg)
{
    switch (cfg.kind) {
    case SwitchPolicyKind::Voq:
        return std::make_unique<VoqIslipPolicy>(sw, cfg);
    case SwitchPolicyKind::Crosspoint:
        return std::make_unique<CrosspointPolicy>(sw, cfg);
    case SwitchPolicyKind::CentralOutput:
        break;
    }
    return std::make_unique<CentralOutputPolicy>(sw, cfg);
}

} // namespace san::net
