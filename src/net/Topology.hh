/**
 * @file
 * Multi-switch fabric topology builders: k-ary fat-tree and
 * dragonfly.
 *
 * Both builders are thin, deterministic wiring recipes over the
 * Fabric primitives (addSwitch / addAdapter / connectSwitches /
 * connect / computeRoutes): they create every switch and host in a
 * fixed order, wire a fixed port map, and finish with a
 * DestinationMod route computation so the redundant shortest paths
 * multipath fabrics exist for actually carry spread traffic. The
 * returned Topology records the layer structure (edge / aggregation
 * / core, host group ids) that handler-placement experiments and
 * group-local traffic patterns need.
 *
 * Fat-tree (k even): the classic three-stage Clos of the CODES/ROSS
 * fattree model — k pods, each with k/2 edge and k/2 aggregation
 * k-port switches, (k/2)^2 core switches, k/2 hosts per edge switch:
 * k^3/4 hosts total (k=4 -> 16, k=8 -> 128). Port map, with m = k/2:
 * edge ports [0,m) face hosts, [m,k) face the pod's aggregation
 * switches; aggregation ports [0,m) face edges, port m+j faces core
 * a*m+j (a = the switch's index in its pod); core c's port x faces
 * pod x.
 *
 * Dragonfly (a routers per group, p hosts per router, h global links
 * per router): the balanced a*h+1-group configuration of the
 * Kim/Dally dragonfly — each group a complete local graph, exactly
 * one global link between every pair of groups (consecutive
 * arrangement: the channel between groups G < G' is local channel
 * G'-G-1 of G and g-(G'-G)-1 of G'; channel c lives on router c/h,
 * slot c%h). Router ports: [0,p) hosts, [p,p+a-1) local peers in
 * index order (own index skipped), [p+a-1,p+a-1+h) global. Hosts
 * total a*p*(a*h+1).
 */

#ifndef SAN_NET_TOPOLOGY_HH
#define SAN_NET_TOPOLOGY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "net/Fabric.hh"

namespace san::net {

/** Fat-tree shape. @p k must be even and >= 2. */
struct FatTreeParams {
    unsigned k = 4;
    /** Base switch configuration; ports is overridden to k. */
    SwitchParams switchParams{};
};

/** Dragonfly shape (balanced: groups = a*h + 1). */
struct DragonflyParams {
    unsigned routersPerGroup = 4; //!< a
    unsigned hostsPerRouter = 2;  //!< p
    unsigned globalPerRouter = 1; //!< h
    /** Base switch configuration; ports is overridden to
     * p + (a-1) + h. */
    SwitchParams switchParams{};
};

/** A built multi-switch fabric: hosts plus its layer structure. */
struct Topology {
    enum class Kind { FatTree, Dragonfly };

    Kind kind = Kind::FatTree;
    std::string name;
    unsigned groups = 0; //!< fat-tree pods / dragonfly groups

    std::vector<Adapter *> hosts;
    /** Group (pod) id of hosts[i]; group-local traffic stays here. */
    std::vector<unsigned> hostGroup;

    /** Host-facing switches: fat-tree edge stage / all dragonfly
     * routers, in host order (hosts i*perEdge..(i+1)*perEdge attach
     * to edge[i]). */
    std::vector<Switch *> edge;
    /** Fat-tree aggregation stage (empty for dragonfly). */
    std::vector<Switch *> aggregation;
    /** Fat-tree core stage (empty for dragonfly). */
    std::vector<Switch *> core;

    std::size_t
    switchCount() const
    {
        return edge.size() + aggregation.size() + core.size();
    }
};

/** @{ Closed-form component counts (tests pin the builders to
 * these). Links are unidirectional Link objects: two per wired
 * pair. */
std::size_t fatTreeHostCount(unsigned k);
std::size_t fatTreeSwitchCount(unsigned k);
std::size_t fatTreeLinkCount(unsigned k);
std::size_t dragonflyGroupCount(const DragonflyParams &p);
std::size_t dragonflyHostCount(const DragonflyParams &p);
std::size_t dragonflySwitchCount(const DragonflyParams &p);
std::size_t dragonflyLinkCount(const DragonflyParams &p);
/** @} */

/** @{ Shape validation; throws std::invalid_argument on a bad
 * parameter set. */
void validateFatTree(const FatTreeParams &p);
void validateDragonfly(const DragonflyParams &p);
/** @} */

/**
 * Build a k-ary fat-tree of @p S switches (Switch or a subclass such
 * as ActiveSwitch; @p extra is forwarded to every switch after the
 * params, e.g. one shared ActiveConfig). Creation order — per pod
 * its edge then aggregation switches, then the cores, then hosts pod
 * by pod — fixes every NodeId and name. Routes are computed with
 * RouteSpread::DestinationMod; call fabric.computeRoutes() again to
 * re-pin single-path routing.
 */
template <typename S = Switch, typename... Extra>
Topology
buildFatTree(Fabric &fabric, const FatTreeParams &p,
             const Extra &...extra)
{
    validateFatTree(p);
    const unsigned k = p.k;
    const unsigned m = k / 2;
    SwitchParams sp = p.switchParams;
    sp.ports = k;

    Topology topo;
    topo.kind = Topology::Kind::FatTree;
    topo.name = "fattree k=" + std::to_string(k);
    topo.groups = k;

    for (unsigned pod = 0; pod < k; ++pod) {
        for (unsigned e = 0; e < m; ++e)
            topo.edge.push_back(&fabric.addSwitch<S>(sp, extra...));
        for (unsigned a = 0; a < m; ++a)
            topo.aggregation.push_back(
                &fabric.addSwitch<S>(sp, extra...));
    }
    for (unsigned c = 0; c < m * m; ++c)
        topo.core.push_back(&fabric.addSwitch<S>(sp, extra...));

    for (unsigned pod = 0; pod < k; ++pod) {
        for (unsigned e = 0; e < m; ++e)
            for (unsigned a = 0; a < m; ++a)
                fabric.connectSwitches(*topo.edge[pod * m + e], m + a,
                                       *topo.aggregation[pod * m + a],
                                       e);
        for (unsigned a = 0; a < m; ++a)
            for (unsigned j = 0; j < m; ++j)
                fabric.connectSwitches(*topo.aggregation[pod * m + a],
                                       m + j, *topo.core[a * m + j],
                                       pod);
    }

    for (unsigned pod = 0; pod < k; ++pod)
        for (unsigned e = 0; e < m; ++e)
            for (unsigned hp = 0; hp < m; ++hp) {
                Adapter &host = fabric.addAdapter(
                    "h" + std::to_string(topo.hosts.size()));
                fabric.connect(*topo.edge[pod * m + e], hp, host);
                topo.hosts.push_back(&host);
                topo.hostGroup.push_back(pod);
            }

    fabric.computeRoutes(RouteSpread::DestinationMod);
    return topo;
}

/**
 * Build a balanced dragonfly of @p S switches. Creation order —
 * routers group by group, then hosts group by group — fixes every
 * NodeId and name. Routes are computed with
 * RouteSpread::DestinationMod.
 */
template <typename S = Switch, typename... Extra>
Topology
buildDragonfly(Fabric &fabric, const DragonflyParams &p,
               const Extra &...extra)
{
    validateDragonfly(p);
    const unsigned a = p.routersPerGroup;
    const unsigned ph = p.hostsPerRouter;
    const unsigned h = p.globalPerRouter;
    const unsigned g = a * h + 1;
    SwitchParams sp = p.switchParams;
    sp.ports = ph + (a - 1) + h;

    Topology topo;
    topo.kind = Topology::Kind::Dragonfly;
    topo.name = "dragonfly a=" + std::to_string(a) +
                " p=" + std::to_string(ph) + " h=" + std::to_string(h);
    topo.groups = g;

    for (unsigned gi = 0; gi < g; ++gi)
        for (unsigned r = 0; r < a; ++r)
            topo.edge.push_back(&fabric.addSwitch<S>(sp, extra...));
    const auto router = [&](unsigned gi, unsigned r) -> Switch & {
        return *topo.edge[gi * a + r];
    };

    // Local complete graph: router r's port toward peer q skips its
    // own index, so every router uses ports [p, p+a-1) in q order.
    const auto localPort = [&](unsigned r, unsigned q) {
        return ph + (q < r ? q : q - 1);
    };
    for (unsigned gi = 0; gi < g; ++gi)
        for (unsigned r = 0; r < a; ++r)
            for (unsigned q = r + 1; q < a; ++q)
                fabric.connectSwitches(router(gi, r), localPort(r, q),
                                       router(gi, q), localPort(q, r));

    // One global link per group pair (consecutive arrangement).
    const unsigned gbase = ph + (a - 1);
    for (unsigned gi = 0; gi < g; ++gi)
        for (unsigned gj = gi + 1; gj < g; ++gj) {
            const unsigned ci = gj - gi - 1;
            const unsigned cj = g - (gj - gi) - 1;
            fabric.connectSwitches(router(gi, ci / h),
                                   gbase + ci % h,
                                   router(gj, cj / h),
                                   gbase + cj % h);
        }

    for (unsigned gi = 0; gi < g; ++gi)
        for (unsigned r = 0; r < a; ++r)
            for (unsigned hp = 0; hp < ph; ++hp) {
                Adapter &host = fabric.addAdapter(
                    "h" + std::to_string(topo.hosts.size()));
                fabric.connect(router(gi, r), hp, host);
                topo.hosts.push_back(&host);
                topo.hostGroup.push_back(gi);
            }

    fabric.computeRoutes(RouteSpread::DestinationMod);
    return topo;
}

} // namespace san::net

#endif // SAN_NET_TOPOLOGY_HH
