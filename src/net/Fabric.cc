#include "net/Fabric.hh"

#include <cassert>
#include <queue>

namespace san::net {

Fabric::Fabric(sim::Simulation &sim, const LinkParams &link_params,
               const AdapterParams &adapter_params)
    : sim_(sim), linkParams_(link_params), adapterParams_(adapter_params)
{}

Adapter &
Fabric::addAdapter(const std::string &name)
{
    const NodeId id = nextNode_++;
    adapters_.push_back(
        std::make_unique<Adapter>(sim_, name, id, adapterParams_));
    adapterHome_.emplace_back(-1, 0u);
    return *adapters_.back();
}

Link &
Fabric::newLink(const std::string &name)
{
    links_.push_back(std::make_unique<Link>(sim_, name, linkParams_));
    return *links_.back();
}

std::size_t
Fabric::switchIndex(const Switch &sw) const
{
    for (std::size_t i = 0; i < switches_.size(); ++i)
        if (switches_[i].get() == &sw)
            return i;
    assert(false && "switch not owned by this fabric");
    return 0;
}

void
Fabric::connect(Switch &sw, unsigned port, Adapter &adapter)
{
    Link &to_sw = newLink(adapter.name() + "->" + sw.name());
    Link &to_ep = newLink(sw.name() + "->" + adapter.name());
    sw.attachPort(port, to_ep, to_sw);
    adapter.attach(to_sw, to_ep);

    for (std::size_t i = 0; i < adapters_.size(); ++i) {
        if (adapters_[i].get() == &adapter) {
            adapterHome_[i] = {static_cast<int>(switchIndex(sw)), port};
            return;
        }
    }
    assert(false && "adapter not owned by this fabric");
}

void
Fabric::connectSwitches(Switch &a, unsigned port_a, Switch &b,
                        unsigned port_b)
{
    Link &ab = newLink(a.name() + "->" + b.name());
    Link &ba = newLink(b.name() + "->" + a.name());
    a.attachPort(port_a, ab, ba);
    b.attachPort(port_b, ba, ab);
    const auto ia = static_cast<int>(switchIndex(a));
    const auto ib = static_cast<int>(switchIndex(b));
    switchAdj_[ia][port_a] = {ib, static_cast<int>(port_b)};
    switchAdj_[ib][port_b] = {ia, static_cast<int>(port_a)};
}

void
Fabric::computeRoutes()
{
    const std::size_t n = switches_.size();

    // For each "anchor" switch t, compute, for every other switch,
    // the output port of its first hop toward t (BFS tree rooted at
    // t). Reused for every destination homed at t.
    auto towards = [&](std::size_t t) {
        std::vector<int> port_to_t(n, -1);
        std::vector<int> dist(n, -1);
        std::queue<std::size_t> bfs;
        dist[t] = 0;
        bfs.push(t);
        while (!bfs.empty()) {
            const std::size_t cur = bfs.front();
            bfs.pop();
            for (unsigned p = 0; p < switchAdj_[cur].size(); ++p) {
                const auto [nbr, nbr_port] = switchAdj_[cur][p];
                if (nbr < 0 || dist[nbr] >= 0)
                    continue;
                dist[nbr] = dist[cur] + 1;
                // The neighbour reaches t through its port back to
                // cur.
                port_to_t[nbr] = nbr_port;
                bfs.push(static_cast<std::size_t>(nbr));
            }
        }
        return port_to_t;
    };

    std::vector<std::vector<int>> first_hop(n);
    for (std::size_t t = 0; t < n; ++t)
        first_hop[t] = towards(t);

    // Switch destinations (active messages address switches).
    for (std::size_t t = 0; t < n; ++t) {
        const NodeId dst = switches_[t]->id();
        for (std::size_t i = 0; i < n; ++i) {
            if (i == t)
                continue;
            if (first_hop[t][i] >= 0)
                switches_[i]->setRoute(
                    dst, static_cast<unsigned>(first_hop[t][i]));
        }
    }

    // Adapter destinations.
    for (std::size_t a = 0; a < adapters_.size(); ++a) {
        const auto [home, port] = adapterHome_[a];
        assert(home >= 0 && "adapter never connected");
        const NodeId dst = adapters_[a]->id();
        switches_[home]->setRoute(dst, port);
        for (std::size_t i = 0; i < n; ++i) {
            if (static_cast<int>(i) == home)
                continue;
            if (first_hop[static_cast<std::size_t>(home)][i] >= 0)
                switches_[i]->setRoute(
                    dst,
                    static_cast<unsigned>(
                        first_hop[static_cast<std::size_t>(home)][i]));
        }
    }
}

} // namespace san::net
