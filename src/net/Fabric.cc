#include "net/Fabric.hh"

#include <algorithm>
#include <cassert>
#include <queue>

namespace san::net {

Fabric::Fabric(sim::Simulation &sim, const LinkParams &link_params,
               const AdapterParams &adapter_params)
    : sim_(sim), linkParams_(link_params), adapterParams_(adapter_params)
{}

Adapter &
Fabric::addAdapter(const std::string &name)
{
    const NodeId id = nextNode_++;
    adapters_.push_back(
        std::make_unique<Adapter>(sim_, name, id, adapterParams_));
    adapterIndexOf_.emplace(adapters_.back().get(),
                            adapters_.size() - 1);
    adapterHome_.emplace_back(-1, 0u);
    return *adapters_.back();
}

Link &
Fabric::newLink(const std::string &name)
{
    links_.push_back(std::make_unique<Link>(sim_, name, linkParams_));
    return *links_.back();
}

std::size_t
Fabric::switchIndex(const Switch &sw) const
{
    const auto it = switchIndexOf_.find(&sw);
    assert(it != switchIndexOf_.end() &&
           "switch not owned by this fabric");
    return it->second;
}

std::size_t
Fabric::adapterIndex(const Adapter &adapter) const
{
    const auto it = adapterIndexOf_.find(&adapter);
    assert(it != adapterIndexOf_.end() &&
           "adapter not owned by this fabric");
    return it->second;
}

void
Fabric::connect(Switch &sw, unsigned port, Adapter &adapter)
{
    const std::size_t si = switchIndex(sw);
    const std::size_t ai = adapterIndex(adapter);
    Link &to_sw = newLink(adapter.name() + "->" + sw.name());
    linkEnds_.push_back({false, ai, true, si});
    Link &to_ep = newLink(sw.name() + "->" + adapter.name());
    linkEnds_.push_back({true, si, false, ai});
    sw.attachPort(port, to_ep, to_sw);
    adapter.attach(to_sw, to_ep);

    adapterHome_[ai] = {static_cast<int>(si), port};
}

void
Fabric::connectSwitches(Switch &a, unsigned port_a, Switch &b,
                        unsigned port_b)
{
    const std::size_t ia = switchIndex(a);
    const std::size_t ib = switchIndex(b);
    Link &ab = newLink(a.name() + "->" + b.name());
    linkEnds_.push_back({true, ia, true, ib});
    Link &ba = newLink(b.name() + "->" + a.name());
    linkEnds_.push_back({true, ib, true, ia});
    a.attachPort(port_a, ab, ba);
    b.attachPort(port_b, ba, ab);
    switchAdj_[ia][port_a] = {static_cast<int>(ib),
                              static_cast<int>(port_b)};
    switchAdj_[ib][port_b] = {static_cast<int>(ia),
                              static_cast<int>(port_a)};
}

ShardPlan
Fabric::planShards(std::size_t shards) const
{
    const std::size_t n_sw = switches_.size();
    const std::size_t n_ad = adapters_.size();
    const std::size_t units = n_sw + n_ad;
    assert(units > 0 && "plan an empty fabric?");

    ShardPlan plan;
    plan.shards = std::max<std::size_t>(1, std::min(shards, units));
    plan.switchShard.resize(n_sw);
    plan.adapterShard.resize(n_ad);

    if (plan.shards <= n_sw) {
        // The normal cut: contiguous switch blocks, adapters co-
        // located with their home switch so endpoint traffic never
        // crosses.
        for (std::size_t i = 0; i < n_sw; ++i)
            plan.switchShard[i] = i * plan.shards / n_sw;
        for (std::size_t a = 0; a < n_ad; ++a) {
            const int home = adapterHome_[a].first;
            assert(home >= 0 && "adapter never connected");
            plan.adapterShard[a] =
                plan.switchShard[static_cast<std::size_t>(home)];
        }
    } else {
        // Finer than per-switch: spread all units (switches first,
        // then adapters, in creation order) over the shards. With
        // shards == units this is the one-component-per-shard
        // degenerate mode.
        for (std::size_t i = 0; i < n_sw; ++i)
            plan.switchShard[i] = i * plan.shards / units;
        for (std::size_t a = 0; a < n_ad; ++a)
            plan.adapterShard[a] = (n_sw + a) * plan.shards / units;
    }

    for (std::size_t l = 0; l < links_.size(); ++l) {
        const LinkEnds &e = linkEnds_[l];
        const std::size_t src = e.srcIsSwitch
                                    ? plan.switchShard[e.src]
                                    : plan.adapterShard[e.src];
        const std::size_t dst = e.dstIsSwitch
                                    ? plan.switchShard[e.dst]
                                    : plan.adapterShard[e.dst];
        if (src == dst)
            continue;
        ++plan.boundaryLinks;
        plan.lookahead = std::min(plan.lookahead,
                                  links_[l]->params().propagation);
    }
    return plan;
}

void
Fabric::applyShardPlan(const ShardPlan &plan)
{
    assert(plan.switchShard.size() == switches_.size());
    assert(plan.adapterShard.size() == adapters_.size());
    assert(linkEnds_.size() == links_.size());
    assert(plan.lookahead >= 1 &&
           "a zero-latency boundary link leaves no lookahead");

    sim_.enableSharding(plan.shards, plan.lookahead);
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const LinkEnds &e = linkEnds_[l];
        const std::size_t src = e.srcIsSwitch
                                    ? plan.switchShard[e.src]
                                    : plan.adapterShard[e.src];
        const std::size_t dst = e.dstIsSwitch
                                    ? plan.switchShard[e.dst]
                                    : plan.adapterShard[e.dst];
        if (src != dst)
            links_[l]->setCrossShard(src, dst);
    }
}

void
Fabric::computeRoutes(RouteSpread spread)
{
    const std::size_t n = switches_.size();

    // Adapters grouped by home switch: each anchor's BFS serves the
    // anchor's own NodeId plus every destination homed there.
    std::vector<std::vector<std::size_t>> by_home(n);
    for (std::size_t a = 0; a < adapters_.size(); ++a) {
        const int home = adapterHome_[a].first;
        assert(home >= 0 && "adapter never connected");
        by_home[static_cast<std::size_t>(home)].push_back(a);
    }

    // For each "anchor" switch t: BFS distances over the switch
    // graph, then, per switch, the ascending list of output ports
    // whose neighbour is one hop closer to t — every equal-cost
    // shortest-path candidate, in deterministic port order.
    std::vector<int> dist(n);
    std::vector<std::vector<unsigned>> cand(n);
    auto towards = [&](std::size_t t) {
        std::fill(dist.begin(), dist.end(), -1);
        std::queue<std::size_t> bfs;
        dist[t] = 0;
        bfs.push(t);
        while (!bfs.empty()) {
            const std::size_t cur = bfs.front();
            bfs.pop();
            for (const auto &[nbr, nbr_port] : switchAdj_[cur]) {
                (void)nbr_port;
                if (nbr < 0 || dist[nbr] >= 0)
                    continue;
                dist[nbr] = dist[cur] + 1;
                bfs.push(static_cast<std::size_t>(nbr));
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            cand[i].clear();
            if (i == t || dist[i] < 0)
                continue;
            for (unsigned p = 0; p < switchAdj_[i].size(); ++p) {
                const int nbr = switchAdj_[i][p].first;
                if (nbr >= 0 && dist[nbr] == dist[i] - 1)
                    cand[i].push_back(p);
            }
        }
    };

    // The tie-break: lowest candidate port, or (DestinationMod)
    // dst mod #candidates into the ascending list — a pure function
    // of (switch, destination), so recomputation is idempotent.
    const auto pick = [spread](const std::vector<unsigned> &c,
                               NodeId dst) {
        return spread == RouteSpread::LowestPort
                   ? c.front()
                   : c[dst % c.size()];
    };

    for (std::size_t t = 0; t < n; ++t) {
        towards(t);
        for (std::size_t i = 0; i < n; ++i) {
            if (i == t || cand[i].empty())
                continue;
            switches_[i]->setRoute(switches_[t]->id(),
                                   pick(cand[i], switches_[t]->id()));
            for (const std::size_t a : by_home[t])
                switches_[i]->setRoute(
                    adapters_[a]->id(),
                    pick(cand[i], adapters_[a]->id()));
        }
        for (const std::size_t a : by_home[t])
            switches_[t]->setRoute(adapters_[a]->id(),
                                   adapterHome_[a].second);
    }
}

} // namespace san::net
