#include "host/Host.hh"

#include <cassert>

#include "io/StorageNode.hh"

namespace san::host {

std::uint64_t Host::nextRequestId_ = 1;

Host::Host(sim::Simulation &sim, const std::string &name,
           net::Fabric &fabric, const mem::MemorySystemParams &mem_params,
           const OsCostParams &os_params)
    : sim_(sim), name_(name), osParams_(os_params),
      cpu_(sim, name + ".cpu", mem_params),
      hca_(&fabric.addAdapter(name + ".hca")), appRecv_(sim)
{}

void
Host::start()
{
    sim_.spawn(demux());
}

sim::Task
Host::demux()
{
    for (;;) {
        net::Message msg = co_await hca_->recvQueue().pop();
        if (msg.tag == io::tagIoReply) {
            const io::IoReply &reply = io::replyOf(msg);
            auto it = pending_.find(reply.requestId);
            if (it == pending_.end())
                continue; // unsolicited (e.g. redirected) data
            Pending &p = it->second;
            if (p.received == 0)
                p.firstChunkAt = msg.firstArrival;
            p.received += reply.bytes;
            if (reply.status != io::IoStatus::Ok) {
                p.status = reply.status;
                ++ioErrors_;
                if (auto *tr = sim_.tracer())
                    tr->instant(name_, "io-error", sim_.now());
            }
            // Completion rides the final chunk's flag (not a byte
            // count): an active storage device may filter the stream,
            // delivering fewer bytes than were read from the media.
            if (reply.last) {
                p.complete = true;
                p.completedAt = msg.completedAt;
                if (auto *tr = sim_.tracer())
                    tr->asyncEnd(name_, "io", reply.requestId,
                                 sim_.now());
                if (p.gate)
                    p.gate->open();
            }
        } else {
            appRecv_.push(std::move(msg));
        }
    }
}

sim::ValueTask<std::uint64_t>
Host::postRead(net::NodeId storage, std::uint64_t offset,
               std::uint64_t bytes)
{
    // Normal path: the kernel is on the issue side of every request.
    co_await cpu_.busyFor(osRequestCost(osParams_, bytes));
    const std::uint64_t id = nextRequestId_++;
    Pending &p = pending_[id];
    p.expected = bytes;
    p.gate = std::make_unique<sim::Gate>(sim_);
    io::IoRequest req;
    req.requestId = id;
    req.offset = offset;
    req.bytes = bytes;
    req.replyTo = hca_->id();
    if (auto *tr = sim_.tracer())
        tr->asyncBegin(name_, "io", id, sim_.now());
    hca_->sendMessage(storage, io::requestMessageBytes, std::nullopt,
                      io::makeRequestPayload(req), io::tagIoRequest);
    co_return id;
}

sim::ValueTask<std::uint64_t>
Host::postReadTo(net::NodeId storage, std::uint64_t offset,
                 std::uint64_t bytes, net::NodeId reply_to,
                 std::optional<net::ActiveHeader> active)
{
    // Active path: user-level queue-pair post; the data never enters
    // this host, so no kernel request cost applies.
    co_await cpu_.busyFor(osParams_.qpPost);
    const std::uint64_t id = nextRequestId_++;
    io::IoRequest req;
    req.requestId = id;
    req.offset = offset;
    req.bytes = bytes;
    req.replyTo = reply_to;
    req.replyActive = active;
    if (auto *tr = sim_.tracer())
        tr->instant(name_, "post-read-to", sim_.now());
    hca_->sendMessage(storage, io::requestMessageBytes, std::nullopt,
                      io::makeRequestPayload(req), io::tagIoRequest);
    co_return id;
}

sim::ValueTask<IoCompletion>
Host::awaitIo(std::uint64_t id)
{
    auto it = pending_.find(id);
    assert(it != pending_.end() && "awaiting unknown request");
    Pending &p = it->second;
    if (!p.complete)
        co_await p.gate->wait();
    IoCompletion done;
    done.requestId = id;
    done.bytes = p.received; // may be < requested if device-filtered
    done.firstChunkAt = p.firstChunkAt;
    done.completedAt = p.completedAt;
    done.status = p.status;
    pending_.erase(id);
    co_return done;
}

sim::ValueTask<IoCompletion>
Host::readBlocking(net::NodeId storage, std::uint64_t offset,
                   std::uint64_t bytes)
{
    const std::uint64_t id = co_await postRead(storage, offset, bytes);
    co_return co_await awaitIo(id);
}

sim::Task
Host::send(net::NodeId dst, std::uint64_t bytes,
           std::optional<net::ActiveHeader> active,
           net::PayloadPtr payload, std::uint32_t tag)
{
    co_await cpu_.busyFor(osParams_.qpPost);
    hca_->sendMessage(dst, bytes, active, std::move(payload), tag);
}

sim::ValueTask<net::Message>
Host::recv()
{
    net::Message msg = co_await appRecv_.pop();
    co_await cpu_.busyFor(osParams_.pollCost);
    co_return msg;
}

mem::Addr
Host::allocBuffer(std::uint64_t bytes)
{
    const mem::Addr addr = bufferBrk_;
    // Keep regions page-aligned so TLB behaviour is realistic.
    const std::uint64_t page = cpu_.memory().params().pageSize;
    bufferBrk_ += (bytes + page - 1) / page * page;
    return addr;
}

} // namespace san::host
