/**
 * @file
 * A compute node: host CPU + memory system + HCA + OS model.
 *
 * The Host provides the I/O and messaging API that the benchmark
 * applications are written against:
 *
 *  - readBlocking(): the "normal" path — pay the OS request cost,
 *    post the read, sleep until every chunk has DMA'd in. Prefetched
 *    variants issue several reads and await them individually
 *    (the paper's "+pref" = two outstanding requests).
 *  - postRead()/postReadTo(): queue-pair posts; postReadTo directs
 *    the data at any node, including an active-switch handler.
 *  - send()/appRecv(): user-level messaging between nodes.
 *
 * A demux task sorts inbound messages into I/O completions and
 * application messages.
 */

#ifndef SAN_HOST_HOST_HH
#define SAN_HOST_HOST_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "cpu/Cpu.hh"
#include "host/OsModel.hh"
#include "io/IoRequest.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"
#include "sim/Sync.hh"

namespace san::host {

/** First tag value available to application-level protocols. */
inline constexpr std::uint32_t tagApp = 100;

/** Completion record of one I/O request. */
struct IoCompletion {
    std::uint64_t requestId = 0;
    std::uint64_t bytes = 0;
    sim::Tick firstChunkAt = 0;
    sim::Tick completedAt = 0;
    /** Ok unless the storage node reported a failed chunk (disk
     * timeouts past the retry cap). */
    io::IoStatus status = io::IoStatus::Ok;
};

/** A host node on the SAN. */
class Host
{
  public:
    Host(sim::Simulation &sim, const std::string &name,
         net::Fabric &fabric,
         const mem::MemorySystemParams &mem_params =
             mem::hostMemoryParams(),
         const OsCostParams &os_params = {});

    Host(const Host &) = delete;
    Host &operator=(const Host &) = delete;

    cpu::HostCpu &cpu() { return cpu_; }
    net::Adapter &hca() { return *hca_; }
    net::NodeId id() const { return hca_->id(); }
    const std::string &name() const { return name_; }
    const OsCostParams &osParams() const { return osParams_; }

    /** Spawn the receive demux. Call once after fabric wiring. */
    void start();

    /**
     * Normal-path blocking read: OS request cost, post, wait for all
     * data to land in host memory.
     */
    sim::ValueTask<IoCompletion> readBlocking(net::NodeId storage,
                                              std::uint64_t offset,
                                              std::uint64_t bytes);

    /**
     * Normal-path asynchronous read: pay the OS cost, post, return
     * the request id. Use awaitIo() for completion. This is the
     * building block of the "+pref" (two outstanding requests)
     * configurations.
     */
    sim::ValueTask<std::uint64_t> postRead(net::NodeId storage,
                                           std::uint64_t offset,
                                           std::uint64_t bytes);

    /**
     * Active-path read: a cheap user-level post directing the data
     * at @p reply_to (usually a switch handler via @p active).
     * No completion is tracked here — the consumer of the data
     * signals the application however it chooses.
     */
    sim::ValueTask<std::uint64_t>
    postReadTo(net::NodeId storage, std::uint64_t offset,
               std::uint64_t bytes, net::NodeId reply_to,
               std::optional<net::ActiveHeader> active);

    /** Block until request @p id has fully arrived at this host. */
    sim::ValueTask<IoCompletion> awaitIo(std::uint64_t id);

    /** Post an application message (user-level, cheap). */
    sim::Task send(net::NodeId dst, std::uint64_t bytes,
                   std::optional<net::ActiveHeader> active = std::nullopt,
                   net::PayloadPtr payload = nullptr,
                   std::uint32_t tag = tagApp);

    /** Receive an application message (polling receive). */
    sim::ValueTask<net::Message> recv();

    /** Application messages channel (for custom consumers). */
    sim::Channel<net::Message> &appQueue() { return appRecv_; }

    /**
     * Allocate a fresh I/O buffer region of @p bytes in this host's
     * address space. Fresh regions model DMA landing zones: first
     * touch is a cold miss, as on real non-coherent DMA.
     */
    mem::Addr allocBuffer(std::uint64_t bytes);

    /** Host I/O traffic: total bytes in and out of this node. */
    std::uint64_t
    ioTrafficBytes() const
    {
        return hca_->bytesSent() + hca_->bytesReceived();
    }

    /** I/O requests that completed with an error status. */
    std::uint64_t ioErrors() const { return ioErrors_; }

    /**
     * Register this host's timeline under its name: CPU busy / stall
     * / idle fractions, outstanding I/O requests, and HCA bytes per
     * interval.
     */
    void
    registerMetrics(obs::MetricsRegistry &m) const
    {
        cpu_.registerMetrics(m, name_ + ".cpu");
        m.add(name_ + ".outstandingIo", obs::GaugeKind::Gauge,
              [this] { return static_cast<double>(pending_.size()); });
        m.add(name_ + ".ioBytes", obs::GaugeKind::Rate,
              [this] { return static_cast<double>(ioTrafficBytes()); });
    }

  private:
    sim::Task demux();

    struct Pending {
        std::uint64_t expected = 0;
        std::uint64_t received = 0;
        sim::Tick firstChunkAt = 0;
        sim::Tick completedAt = 0;
        bool complete = false;
        io::IoStatus status = io::IoStatus::Ok;
        std::unique_ptr<sim::Gate> gate;
    };

    sim::Simulation &sim_;
    std::string name_;
    OsCostParams osParams_;
    cpu::HostCpu cpu_;
    net::Adapter *hca_;
    sim::Channel<net::Message> appRecv_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    std::uint64_t ioErrors_ = 0;
    mem::Addr bufferBrk_ = 0x100000000ull; // I/O buffer arena
    static std::uint64_t nextRequestId_;
};

} // namespace san::host

#endif // SAN_HOST_HOST_HH
