/**
 * @file
 * Host operating-system overhead model.
 *
 * As in the paper, I/O-related OS overhead is the one place where
 * costs are charged as fixed latencies rather than simulated in
 * detail: 30 us of fixed cost per request plus 0.27 us/KB for each
 * unbuffered disk request (validated by the authors against Windows
 * 2000 measurements).
 *
 * Active-case I/O posts bypass the kernel data path: the host writes
 * a queue-pair descriptor and rings a doorbell, and the data never
 * returns to host memory, so only a small user-level post cost
 * applies. This is what the paper means by the active switch's
 * "lower overhead to initiate I/O requests".
 */

#ifndef SAN_HOST_OS_MODEL_HH
#define SAN_HOST_OS_MODEL_HH

#include <cstdint>

#include "sim/Types.hh"

namespace san::host {

/** OS overhead parameters (paper §4 defaults). */
struct OsCostParams {
    /** Fixed kernel cost per normal (OS-mediated) disk request. */
    sim::Tick perRequest = sim::us(30);
    /** Per-KB cost of an unbuffered disk request (0.27 us/KB). */
    sim::Tick perKiB = sim::ns(270);
    /** User-level queue-pair post (active-case I/O issue). */
    sim::Tick qpPost = sim::us(2);
    /** Per-message receive-side poll/doorbell cost. */
    sim::Tick pollCost = sim::ns(200);
};

/** Cost of one OS-mediated disk request transferring @p bytes. */
constexpr sim::Tick
osRequestCost(const OsCostParams &p, std::uint64_t bytes)
{
    return p.perRequest + (bytes * p.perKiB) / 1024;
}

} // namespace san::host

#endif // SAN_HOST_OS_MODEL_HH
