/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (tick, callback) pairs ordered by tick, with insertion
 * order breaking ties so simulation is fully deterministic.
 *
 * The hot path is allocation-free in the steady state: callbacks are
 * stored in small-buffer-optimized event slots (detail::SlotArena —
 * captures up to 48 B inline, larger ones in pooled blocks recycled
 * through free lists), and ordering lives in plain 24-byte
 * (tick, seq, slot) records (detail::EventRef) managed by a pluggable
 * scheduler policy:
 *
 *  - detail::HeapScheduler — an explicit binary heap over a
 *    std::vector: O(log n) schedule/pop. This is the PR 4 design,
 *    kept as the baseline the micro-bench and the cross-kernel fuzz
 *    test measure the ladder against.
 *  - detail::LadderScheduler — a hybrid ladder queue: a ring of
 *    near-future tick buckets (power-of-two width, auto-tuned from
 *    the observed scheduling horizon) gives O(1) schedule and
 *    amortized O(1)-ish pop for the dominant short-horizon events
 *    (link serialization, routing latencies, credit returns, channel
 *    wakeups), while far-future events spill into a binary heap and
 *    refill the ring as the window slides over them. This is the
 *    production scheduler (EventQueue).
 *
 * Determinism contract (identical for both policies): events execute
 * in strictly nondecreasing (tick, seq) order, where seq is the
 * global schedule order. A callback scheduling new events mid-step
 * sees them sequenced after every already-pending event at the same
 * tick. This ordering is byte-identical to the pre-ladder kernels, so
 * run fingerprints and golden stats are unchanged; the cross-kernel
 * fuzz test (tests/sim_ladder_fuzz_test.cc) replays random schedules
 * through both policies and asserts the execution orders match
 * exactly.
 */

#ifndef SAN_SIM_EVENT_QUEUE_HH
#define SAN_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/EventSlot.hh"
#include "sim/Types.hh"

namespace san::sim {

namespace detail {

/** Ordering record: the callback lives in the SlotArena, so scheduler
 * data structures move 24 trivially-copyable bytes. */
struct EventRef {
    Tick when;
    std::uint64_t seq;
    std::uint32_t slot;

    bool
    before(const EventRef &o) const
    {
        if (when != o.when)
            return when < o.when;
        return seq < o.seq;
    }
};

/** @{ Binary min-heap primitives over a vector of EventRefs, shared
 * by the heap scheduler, the ladder's spill heap and its drain heap.
 * Hand-rolled sift-up/down: hole-based moves, no swaps. */
inline void
heapPush(std::vector<EventRef> &heap, EventRef e)
{
    heap.push_back(e);
    std::size_t i = heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!e.before(heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = e;
}

inline void
heapPop(std::vector<EventRef> &heap)
{
    const EventRef last = heap.back();
    heap.pop_back();
    const std::size_t n = heap.size();
    if (n == 0)
        return;
    std::size_t i = 0;
    for (;;) {
        std::size_t kid = 2 * i + 1;
        if (kid >= n)
            break;
        if (kid + 1 < n && heap[kid + 1].before(heap[kid]))
            ++kid;
        if (!heap[kid].before(last))
            break;
        heap[i] = heap[kid];
        i = kid;
    }
    heap[i] = last;
}
/** @} */

/**
 * The PR 4 scheduler: one explicit binary heap. O(log n) push/pop,
 * but n is the full pending-event population, and at the depths the
 * large figures reach (fig05 carries ~10k+ pending events) every
 * sift walks a multi-hundred-KB array.
 */
class HeapScheduler
{
  public:
    /** Policy tag used in bench/test reporting. */
    static constexpr const char *policyName = "heap";

    /** Add @p e. @p now is unused (the ladder observes horizons). */
    void push(EventRef e, Tick) { heapPush(heap_, e); }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event (maxTick if none). */
    Tick
    minTick() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /** Remove and return the earliest pending event (queue nonempty). */
    EventRef
    popMin()
    {
        const EventRef e = heap_.front();
        heapPop(heap_);
        return e;
    }

    /** Hand every pending record to @p fn and clear (teardown). */
    template <typename F>
    void
    drainTo(F &&fn)
    {
        for (const EventRef &e : heap_)
            fn(e);
        heap_.clear();
    }

  private:
    std::vector<EventRef> heap_;
};

/**
 * Hybrid ladder queue. Three tiers, partitioned by distance from the
 * currently-draining bucket span:
 *
 *   drain tier   — every pending event with when < curSpanEnd_, split
 *                  into a sorted RUN (the adopted bucket, sorted once,
 *                  popped O(1) from the back) and a small side heap
 *                  holding mid-step schedules into the current span.
 *                  The global minimum always lives in this tier when
 *                  it is nonempty: min(run.back(), side.front()).
 *   bucket ring  — bucketCount buckets of width 2^shift_ ticks each,
 *                  covering [curSpanStart_, windowLimit_). An
 *                  in-window schedule is one append to an unsorted
 *                  vector: O(1). When the window reaches a bucket it
 *                  is adopted: swapped into the run and sorted —
 *                  O(k log k) once per k events, and the sort touches
 *                  a few cache-hot KB instead of sifting a
 *                  multi-hundred-KB heap per event.
 *   spill heap   — events at or beyond windowLimit_. As the window
 *                  slides one bucket per advance, newly in-window
 *                  spill events refill into the ring (amortized one
 *                  comparison per advance plus O(log) per migrated
 *                  event).
 *
 * Epoch advance: when the drain heap empties, the window slides
 * bucket by bucket (refilling from spill) until it finds a nonempty
 * bucket to adopt. When the ring is empty too, the window *jumps* —
 * rebased onto the earliest spill event — instead of crawling over
 * dead spans, and the bucket width retunes from the horizon
 * statistics observed since the last tune.
 *
 * Width auto-tuning: push() accumulates log2 of the scheduling
 * horizon (when - now) of every future-dated event; the width is the
 * power of two that makes the ring span ~2x the GEOMETRIC mean
 * horizon, so the common schedule lands in a bucket rather than the
 * spill heap. The geometric mean matters: an arithmetic mean over a
 * bimodal schedule (mostly short wakeups plus occasional far-future
 * timeouts) is dragged toward the outliers and sizes buckets so wide
 * that every short event degenerates into the drain heap. Zero-delay
 * wakeups (Channel/Gate/Semaphore resumptions) are excluded — they
 * say nothing about where timed events land and would otherwise drag
 * the width to the minimum. Retunes happen only with the drain heap
 * empty (advance/rebase), so re-bucketing never reorders anything;
 * tuning is a pure function of the executed schedule, hence
 * deterministic.
 *
 * Small-queue fallback: bucket bookkeeping cannot beat a depth-3
 * binary heap, and whole-simulator workloads (the paper figures)
 * spend most of their run at 1-20 pending events. When the ring
 * drains with at most smallEnter events left, the scheduler swaps
 * the spill heap in as the side heap — at that moment it IS the
 * plain binary-heap scheduler — and stays there until the population
 * grows past smallExit, when it re-anchors the window at the current
 * tick and re-partitions.
 *
 * Determinism: the three tiers partition pending events by tick range
 * (drain < curSpanEnd_ <= ring < windowLimit_ <= spill), adoption
 * heapifies a bucket under the same (tick, seq) comparator the heaps
 * use, and mid-step schedules into the currently-draining span go
 * straight into the drain heap — so popMin() always returns the
 * global (tick, seq) minimum, exactly as the plain heap does. Tier
 * placement (small mode included) only ever decides cost, never
 * order.
 */
class LadderScheduler
{
  public:
    static constexpr const char *policyName = "ladder";

    /** Ring size; power of two so slot math is a mask. */
    static constexpr std::size_t bucketCount = 256;
    /** Bucket width bounds: 2^4 ps .. 2^36 ps (~69 ms). */
    static constexpr unsigned minShift = 4;
    static constexpr unsigned maxShift = 36;
    /** Horizon samples that arm a width check on the next advance.
     * Deep queues accumulate samples much faster than they rotate the
     * ring, so waiting for a full rotation alone would leave a badly
     * sized ring in place for hundreds of thousands of events. */
    static constexpr std::uint64_t retuneSamples = 8192;
    /** Fewest horizon samples desiredShift() will act on — and the
     * floor the phase-tracking decay must never drop below (a
     * near-empty queue rebases about once per event; halving the
     * sample count every time would freeze the width forever). */
    static constexpr std::uint64_t tuneMinSamples = 64;
    /** @{ Small-queue fallback thresholds. At a handful of pending
     * events a depth-3 binary heap beats any bucket bookkeeping, so
     * when the ring drains with at most smallEnter events left in
     * spill the scheduler swaps the spill heap in as a plain binary
     * heap (O(1) — the containers share comparator and layout) and
     * stops bucketing. Growth past smallExit re-partitions; the gap
     * is hysteresis so a population hovering near the boundary does
     * not thrash between modes. The paper figures spend most of their
     * run at 1-20 pending events, which is exactly this regime. */
    static constexpr std::size_t smallEnter = 64;
    static constexpr std::size_t smallExit = 192;
    /** @} */

    /** Occupancy / behavior counters (obs gauges, tests, benches). */
    struct Stats {
        std::uint64_t bucketPushes = 0; //!< O(1) ring inserts
        std::uint64_t drainPushes = 0;  //!< current-span heap inserts
        std::uint64_t spillPushes = 0;  //!< far-future heap inserts
        std::uint64_t adoptions = 0;    //!< buckets heapified for drain
        std::uint64_t refills = 0;      //!< spill events pulled in-window
        std::uint64_t rebases = 0;      //!< empty-window jumps
        std::uint64_t retunes = 0;      //!< bucket-width changes
        std::uint64_t smallEnters = 0;  //!< drops into pure-heap mode
        std::uint64_t smallExits = 0;   //!< growth-forced re-partitions
    };

    void
    push(EventRef e, Tick now)
    {
        // Observe the scheduling horizon of timed events only; see
        // the class comment for why zero-delay wakeups are excluded
        // and why the accumulator is logarithmic.
        if (e.when > now) {
            horizonLogSum_ += std::bit_width(e.when - now);
            ++horizonCount_;
        }
        ++size_;
        if (smallMode_) {
            // Small-queue fallback: every pending event lives in the
            // side heap, which at these depths is exactly the plain
            // binary-heap scheduler. Leave once the population
            // outgrows it.
            heapPush(side_, e);
            if (size_ > smallExit)
                leaveSmallMode(now);
            return;
        }
        place(e);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    Tick
    minTick() const
    {
        Tick m = maxTick;
        if (!run_.empty())
            m = run_.back().when;
        if (!side_.empty() && side_.front().when < m)
            m = side_.front().when;
        if (m != maxTick)
            return m;
        if (ringCount_ > 0) {
            // First nonempty bucket in window order holds the global
            // minimum (spill events are all >= windowLimit_). O(ring)
            // scan, but only on the cold drained-span path.
            for (std::size_t i = 1; i < bucketCount; ++i) {
                const auto &b =
                    buckets_[(curIdx_ + i) & (bucketCount - 1)];
                if (b.empty())
                    continue;
                Tick min = maxTick;
                for (const EventRef &e : b)
                    min = e.when < min ? e.when : min;
                return min;
            }
        }
        return spill_.empty() ? maxTick : spill_.front().when;
    }

    EventRef
    popMin()
    {
        if (run_.empty() && side_.empty())
            advance();
        // The run's minimum sits at its back; (tick, seq) uniqueness
        // makes before() a strict total order, so the pick between
        // run and side heap is unambiguous.
        if (side_.empty() ||
            (!run_.empty() && run_.back().before(side_.front()))) {
            const EventRef e = run_.back();
            run_.pop_back();
            --size_;
            return e;
        }
        const EventRef e = side_.front();
        heapPop(side_);
        --size_;
        return e;
    }

    template <typename F>
    void
    drainTo(F &&fn)
    {
        for (const EventRef &e : run_)
            fn(e);
        run_.clear();
        for (const EventRef &e : side_)
            fn(e);
        side_.clear();
        for (auto &b : buckets_) {
            for (const EventRef &e : b)
                fn(e);
            b.clear();
        }
        for (const EventRef &e : spill_)
            fn(e);
        spill_.clear();
        size_ = ringCount_ = 0;
    }

    /** @{ Introspection (gauges in src/obs, tests, micro-bench). */
    Tick bucketWidth() const { return Tick(1) << shift_; }
    std::size_t drainEvents() const { return run_.size() + side_.size(); }
    std::size_t bucketedEvents() const { return ringCount_; }
    std::size_t spillEvents() const { return spill_.size(); }
    const Stats &stats() const { return stats_; }
    /** @} */

  private:
    /** a + b, saturating at maxTick: window bounds near the end of
     * representable time cap instead of wrapping. The placement rule
     * stays consistent — a capped windowLimit_ only narrows the ring,
     * so bucket distances never exceed bucketCount - 1. */
    static Tick
    satAdd(Tick a, Tick b)
    {
        return a > maxTick - b ? maxTick : a + b;
    }

    /** File @p e into the tier its tick belongs to. The current span
     * goes to the side heap: the sorted run is never inserted into,
     * only adopted wholesale and popped. */
    void
    place(EventRef e)
    {
        if (e.when < curSpanEnd_) {
            heapPush(side_, e);
            ++stats_.drainPushes;
        } else if (e.when < windowLimit_) {
            const std::size_t dist =
                static_cast<std::size_t>((e.when - curSpanStart_) >>
                                         shift_);
            buckets_[(curIdx_ + dist) & (bucketCount - 1)].push_back(e);
            ++ringCount_;
            ++stats_.bucketPushes;
        } else {
            heapPush(spill_, e);
            ++stats_.spillPushes;
        }
    }

    /** The power-of-two width whose ring spans ~4x the geometric-mean
     * observed horizon (falls back to the current width without
     * samples): width = 2^(avg log2 horizon + 2) / bucketCount. The
     * 4x margin matters because the geometric mean of a linear-
     * uniform delay distribution sits near max/e — a tighter span
     * would push the long tail of perfectly ordinary horizons through
     * the spill heap twice. */
    unsigned
    desiredShift() const
    {
        if (horizonCount_ < tuneMinSamples)
            return shift_;
        const unsigned avg =
            static_cast<unsigned>(horizonLogSum_ / horizonCount_);
        constexpr unsigned ringBits = 6; // log2(bucketCount) - 2
        const unsigned s = avg > ringBits + minShift ? avg - ringBits
                                                     : minShift;
        return s > maxShift ? maxShift : s;
    }

    /**
     * Rebase the window so the current bucket span starts at (the
     * width-aligned floor of) @p start, optionally retuning the
     * width, and re-file every ring/spill event that now falls inside
     * the new window. Only called with the drain heap empty; events
     * earlier than the new span (none in practice) would still be
     * placed correctly, into the drain heap.
     */
    void
    rebuildAt(Tick start)
    {
        const unsigned want = desiredShift();
        if (want != shift_) {
            shift_ = want;
            ++stats_.retunes;
        }
        // Decay the horizon statistics so tuning tracks the current
        // workload phase rather than the whole run — but never below
        // the tuner's sample floor (see tuneMinSamples).
        if (horizonCount_ >= 2 * tuneMinSamples) {
            horizonLogSum_ /= 2;
            horizonCount_ /= 2;
        }
        std::vector<EventRef> pending;
        pending.reserve(side_.size() + ringCount_);
        // Heap order within side_ is irrelevant here: every collected
        // event is re-placed independently. Normal rebases arrive
        // with side_ empty; leaveSmallMode() arrives with *only*
        // side_ populated.
        pending.insert(pending.end(), side_.begin(), side_.end());
        side_.clear();
        if (ringCount_ > 0) {
            for (auto &b : buckets_) {
                pending.insert(pending.end(), b.begin(), b.end());
                b.clear();
            }
            ringCount_ = 0;
        }
        curIdx_ = 0;
        curSpanStart_ = start & ~(bucketWidth() - 1);
        curSpanEnd_ = satAdd(curSpanStart_, bucketWidth());
        windowLimit_ =
            satAdd(curSpanStart_, Tick(bucketCount) << shift_);
        for (const EventRef &e : pending)
            place(e);
        refill();
        // Saturated corner: a window capped at maxTick cannot cover
        // events scheduled at maxTick itself. Feed the earliest one
        // to the drain tier directly so every rebase makes progress;
        // successive rebases pop them in (tick, seq) order.
        if (run_.empty() && side_.empty() && ringCount_ == 0 &&
            !spill_.empty()) {
            const EventRef e = spill_.front();
            heapPop(spill_);
            heapPush(side_, e);
        }
        sinceRebuild_ = 0;
    }

    /** The population outgrew the small-queue fallback: re-anchor the
     * window at the current time and re-partition every pending event
     * out of the side heap. Tier placement never affects execution
     * order, so the transition is invisible to the schedule. */
    void
    leaveSmallMode(Tick now)
    {
        smallMode_ = false;
        ++stats_.smallExits;
        rebuildAt(now);
    }

    /** Pull every spill event that the window now covers into the
     * ring (or the drain heap, for the current span). */
    void
    refill()
    {
        while (!spill_.empty() && spill_.front().when < windowLimit_) {
            const EventRef e = spill_.front();
            heapPop(spill_);
            place(e);
            ++stats_.refills;
        }
    }

    /**
     * The drain tier ran dry but events remain: slide (or jump) the
     * window forward until the next event is in the drain tier.
     */
    void
    advance()
    {
        assert(size_ > 0 && run_.empty() && side_.empty());
        if (ringCount_ == 0) {
            // Ring empty: everything pending sits in the spill heap.
            // A small population drops into the pure-heap fallback —
            // spill_ and side_ are the same comparator and layout, so
            // entry is one vector swap. A large one jumps the window
            // straight onto the earliest spill event (and takes the
            // chance to retune) instead of crawling over dead spans.
            if (spill_.size() <= smallEnter) {
                side_.swap(spill_);
                smallMode_ = true;
                ++stats_.smallEnters;
                return;
            }
            ++stats_.rebases;
            rebuildAt(spill_.front().when);
            assert(!side_.empty());
            return;
        }
        // A full rotation since the last rebuild — or a fresh batch
        // of horizon samples — with a stale width: rebuild in place
        // (re-buckets the ring; O(ring), amortized by the events that
        // earned it). A width still on target re-arms the counters so
        // the check stays off the common path.
        if (sinceRebuild_ >= bucketCount ||
            horizonCount_ >= retuneSamples) {
            if (desiredShift() != shift_) {
                rebuildAt(curSpanEnd_);
                if (!side_.empty())
                    return;
            } else {
                sinceRebuild_ = 0;
                if (horizonCount_ >= 2 * tuneMinSamples) {
                    horizonLogSum_ /= 2;
                    horizonCount_ /= 2;
                }
            }
        }
        // Jump straight to the next nonempty bucket: the scan is a
        // tight empty() loop over the 6 KB ring header array, and the
        // span arithmetic is done once for the whole jump instead of
        // per slid-over bucket. Equivalent to sliding one bucket at a
        // time: a ring event never sits more than bucketCount - 1
        // slots out (place() spills anything past windowLimit_), and
        // batching the refill files every spill event into the same
        // bucket it would have reached incrementally — (curIdx_ +
        // dist) advances in lockstep with curSpanStart_, and refilled
        // events all land strictly behind the adopted bucket (their
        // ticks are >= the pre-jump windowLimit_).
        std::size_t d = 1;
        while (d < bucketCount &&
               buckets_[(curIdx_ + d) & (bucketCount - 1)].empty())
            ++d;
        assert(d < bucketCount && "ringCount_ out of sync with ring");
        const Tick step = Tick(d) << shift_;
        curIdx_ = (curIdx_ + d) & (bucketCount - 1);
        curSpanStart_ = satAdd(curSpanStart_, step);
        curSpanEnd_ = satAdd(curSpanEnd_, step);
        windowLimit_ = satAdd(windowLimit_, step);
        sinceRebuild_ += d;
        refill();
        // Adopt: the whole bucket becomes the sorted run (descending,
        // so the minimum pops O(1) off the back). The swap trades
        // capacities, keeping both vectors allocation-free in the
        // steady state.
        auto &bucket = buckets_[curIdx_];
        ++stats_.adoptions;
        ringCount_ -= bucket.size();
        run_.swap(bucket);
        std::sort(run_.begin(), run_.end(),
                  [](const EventRef &a, const EventRef &b) {
                      return b.before(a);
                  });
    }

    std::vector<EventRef> run_;  //!< adopted bucket, sorted descending
    std::vector<EventRef> side_; //!< heap: mid-step same-span events
    std::array<std::vector<EventRef>, bucketCount> buckets_;
    std::vector<EventRef> spill_;

    unsigned shift_ = 16;     //!< initial width 65536 ps (~65 ns)
    std::size_t curIdx_ = 0;  //!< ring slot being drained
    Tick curSpanStart_ = 0;   //!< first tick of the draining span
    Tick curSpanEnd_ = Tick(1) << 16;
    Tick windowLimit_ = Tick(bucketCount) << 16;

    std::size_t size_ = 0;      //!< all pending events
    std::size_t ringCount_ = 0; //!< pending events in ring buckets
    std::size_t sinceRebuild_ = 0;
    bool smallMode_ = false;    //!< pure-heap fallback active

    std::uint64_t horizonLogSum_ = 0;
    std::uint64_t horizonCount_ = 0;

    Stats stats_;
};

} // namespace detail

/**
 * Deterministic priority queue of timed callbacks, generic over the
 * ordering policy (see the schedulers above). Use the EventQueue
 * alias below; HeapEventQueue exists for the cross-kernel fuzz test
 * and the micro-bench baseline.
 */
template <typename Scheduler>
class BasicEventQueue
{
  public:
    /** Captures up to this size are stored inline in the event slot
     * (no allocation); larger captures use the pooled overflow path. */
    static constexpr std::size_t inlineCaptureBytes =
        detail::SlotArena::inlineBytes;

    /**
     * Observes every executed event. The (tick, sequence-number) pair
     * identifies one event uniquely and deterministically, which makes
     * an observer the natural place to fold a run fingerprint
     * (obs::RunFingerprint) or feed an execution trace.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;
        /** Called once per executed event, before its callback runs. */
        virtual void onEvent(Tick when, std::uint64_t seq) = 0;
    };

    BasicEventQueue() = default;
    BasicEventQueue(const BasicEventQueue &) = delete;
    BasicEventQueue &operator=(const BasicEventQueue &) = delete;

    ~BasicEventQueue()
    {
        sched_.drainTo(
            [this](const detail::EventRef &e) { arena_.recycle(e.slot); });
    }

    /** Install (or clear, with nullptr) the execution observer. */
    void setObserver(Observer *obs) { observer_ = obs; }
    Observer *observer() const { return observer_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule callable @p fn at absolute time @p when (>= now). */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        if (when < now_)
            when = now_;
        const std::uint32_t slot = arena_.emplace(std::forward<F>(fn));
        sched_.push(detail::EventRef{when, nextSeq_++, slot}, now_);
    }

    /** Schedule @p fn @p delta ticks from now. */
    template <typename F>
    void
    after(Tick delta, F &&fn)
    {
        schedule(now_ + delta, std::forward<F>(fn));
    }

    /**
     * Schedule @p fn at the current tick: the zero-delay wakeup the
     * synchronization primitives (Channel, Gate, Semaphore) lean on.
     * Identical ordering to after(0, fn) — the event still takes the
     * next sequence number — but skips the clamp arithmetic and, on
     * the ladder, stays out of the bucket-width horizon statistics.
     */
    template <typename F>
    void
    postNow(F &&fn)
    {
        const std::uint32_t slot = arena_.emplace(std::forward<F>(fn));
        sched_.push(detail::EventRef{now_, nextSeq_++, slot}, now_);
    }

    bool empty() const { return sched_.empty(); }
    std::size_t size() const { return sched_.size(); }

    /** Time of the next pending event (maxTick if none). */
    Tick nextEventTick() const { return sched_.minTick(); }

    /**
     * Execute a single event, advancing time to it.
     * @retval true an event was executed; false the queue was empty.
     */
    bool
    step()
    {
        if (sched_.empty())
            return false;
        // Pop the ordering record before invoking, so a callback that
        // schedules new events sees a consistent queue. The slot
        // itself is chunk-stable and recycled only after the call.
        const detail::EventRef top = sched_.popMin();
        now_ = top.when;
        if (observer_)
            observer_->onEvent(top.when, top.seq);
        arena_.runAndRecycle(top.slot);
        return true;
    }

    /** Run until the queue drains. @return final time. */
    Tick
    run()
    {
        while (step()) {}
        return now_;
    }

    /**
     * Run every event with tick <= @p limit, then advance time to
     * @p limit — whether or not later events remain pending. The
     * contract callers may rely on:
     *
     *  - on return, now() == max(now-at-entry, limit);
     *  - every pending event is strictly later than @p limit;
     *  - a limit already in the past (limit < now()) executes nothing
     *    and leaves time unchanged;
     *  - re-running at the same limit is idempotent.
     *
     * (Historically time only advanced to @p limit once the queue
     * drained, so a caller sampling between windows saw now() stuck
     * at the last executed event — see the runUntil contract tests.)
     */
    Tick
    runUntil(Tick limit)
    {
        while (!sched_.empty() && sched_.minTick() <= limit)
            step();
        if (now_ < limit)
            now_ = limit;
        assert(sched_.minTick() > limit &&
               "runUntil left an event at or before the limit");
        return now_;
    }

    /**
     * Run every event with tick strictly below @p limit, leaving
     * events at or after @p limit pending and time at the last
     * executed event (NOT advanced to @p limit). This is the
     * conservative-window primitive of the sharded kernel: a shard
     * granted the window [floor, horizon) may execute everything it
     * can prove safe — ticks < horizon — but must not let now()
     * overtake events a later cross-shard message could still insert
     * at horizon or beyond.
     */
    Tick
    runUntilBefore(Tick limit)
    {
        while (!sched_.empty() && sched_.minTick() < limit)
            step();
        assert((sched_.empty() || sched_.minTick() >= limit) &&
               "runUntilBefore left an event below the limit");
        return now_;
    }

    /** Total number of events executed so far (for stats/benches). */
    std::uint64_t executedEvents() const { return nextSeq_ - size(); }

    /** The ordering policy (occupancy gauges, tests, benches). */
    const Scheduler &scheduler() const { return sched_; }

    /** @{ Slot-allocator introspection (tests and micro-benches). */
    std::uint64_t overflowAllocs() const { return arena_.overflowAllocs(); }
    std::uint64_t overflowReuses() const { return arena_.overflowReuses(); }
    std::size_t slotChunks() const { return arena_.chunkCount(); }
    /** @} */

  private:
    Scheduler sched_;
    detail::SlotArena arena_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Observer *observer_ = nullptr;
};

/** The production event queue: ladder-queue scheduling. Building
 * with -DSAN_FORCE_HEAP_KERNEL swaps the binary-heap policy back in
 * across the whole simulator — an A/B escape hatch for benchmarking
 * the scheduler on real figure workloads (determinism is identical,
 * so fingerprints match either way). */
#ifdef SAN_FORCE_HEAP_KERNEL
using EventQueue = BasicEventQueue<detail::HeapScheduler>;
#else
using EventQueue = BasicEventQueue<detail::LadderScheduler>;
#endif

/** The PR 4 binary-heap kernel, kept as a measurable baseline (the
 * micro-bench) and a determinism oracle (the cross-kernel fuzz test). */
using HeapEventQueue = BasicEventQueue<detail::HeapScheduler>;

} // namespace san::sim

#endif // SAN_SIM_EVENT_QUEUE_HH
