/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (tick, callback) pairs ordered by tick, with insertion
 * order breaking ties so simulation is fully deterministic.
 */

#ifndef SAN_SIM_EVENT_QUEUE_HH
#define SAN_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/Types.hh"

namespace san::sim {

/** Deterministic priority queue of timed callbacks. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Observes every executed event. The (tick, sequence-number) pair
     * identifies one event uniquely and deterministically, which makes
     * an observer the natural place to fold a run fingerprint
     * (obs::RunFingerprint) or feed an execution trace.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;
        /** Called once per executed event, before its callback runs. */
        virtual void onEvent(Tick when, std::uint64_t seq) = 0;
    };

    /** Install (or clear, with nullptr) the execution observer. */
    void setObserver(Observer *obs) { observer_ = obs; }
    Observer *observer() const { return observer_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            when = now_;
        heap_.push(Entry{when, nextSeq_++, std::move(cb)});
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    after(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the next pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * Execute a single event, advancing time to it.
     * @retval true an event was executed; false the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Moving the callback out before pop keeps the queue
        // consistent if the callback schedules new events.
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        if (observer_)
            observer_->onEvent(top.when, top.seq);
        top.cb();
        return true;
    }

    /** Run until the queue drains. @return final time. */
    Tick
    run()
    {
        while (step()) {}
        return now_;
    }

    /**
     * Run events with tick <= @p limit; time ends clamped to the last
     * executed event (or advances to @p limit if the queue drained).
     */
    Tick
    runUntil(Tick limit)
    {
        while (!heap_.empty() && heap_.top().when <= limit)
            step();
        if (now_ < limit && heap_.empty())
            now_ = limit;
        return now_;
    }

    /** Total number of events executed so far (for stats/benches). */
    std::uint64_t executedEvents() const { return nextSeq_ - heap_.size(); }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Observer *observer_ = nullptr;
};

} // namespace san::sim

#endif // SAN_SIM_EVENT_QUEUE_HH
