/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * Events are (tick, callback) pairs ordered by tick, with insertion
 * order breaking ties so simulation is fully deterministic.
 *
 * The hot path is allocation-free in the steady state: callbacks are
 * stored in small-buffer-optimized event slots (detail::SlotArena —
 * captures up to 48 B inline, larger ones in pooled blocks recycled
 * through free lists), and ordering lives in an explicit binary heap
 * of plain 24-byte (tick, seq, slot) records over a std::vector. The
 * previous design — std::function entries inside std::priority_queue,
 * popped by moving out of the const top() through a const_cast — paid
 * one heap allocation per scheduled event and was formally UB; both
 * are gone.
 *
 * Determinism contract: events execute in strictly nondecreasing
 * (tick, seq) order, where seq is the global schedule order. A
 * callback scheduling new events mid-step sees them sequenced after
 * every already-pending event at the same tick. This ordering is
 * byte-identical to the pre-overhaul kernel, so run fingerprints and
 * golden stats are unchanged.
 */

#ifndef SAN_SIM_EVENT_QUEUE_HH
#define SAN_SIM_EVENT_QUEUE_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/EventSlot.hh"
#include "sim/Types.hh"

namespace san::sim {

/** Deterministic priority queue of timed callbacks. */
class EventQueue
{
  public:
    /** Captures up to this size are stored inline in the event slot
     * (no allocation); larger captures use the pooled overflow path. */
    static constexpr std::size_t inlineCaptureBytes =
        detail::SlotArena::inlineBytes;

    /**
     * Observes every executed event. The (tick, sequence-number) pair
     * identifies one event uniquely and deterministically, which makes
     * an observer the natural place to fold a run fingerprint
     * (obs::RunFingerprint) or feed an execution trace.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;
        /** Called once per executed event, before its callback runs. */
        virtual void onEvent(Tick when, std::uint64_t seq) = 0;
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        for (const HeapEntry &e : heap_)
            arena_.recycle(e.slot);
    }

    /** Install (or clear, with nullptr) the execution observer. */
    void setObserver(Observer *obs) { observer_ = obs; }
    Observer *observer() const { return observer_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule callable @p fn at absolute time @p when (>= now). */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        if (when < now_)
            when = now_;
        const std::uint32_t slot = arena_.emplace(std::forward<F>(fn));
        heapPush(HeapEntry{when, nextSeq_++, slot});
    }

    /** Schedule @p fn @p delta ticks from now. */
    template <typename F>
    void
    after(Tick delta, F &&fn)
    {
        schedule(now_ + delta, std::forward<F>(fn));
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the next pending event (maxTick if none). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /**
     * Execute a single event, advancing time to it.
     * @retval true an event was executed; false the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Pop the heap record before invoking, so a callback that
        // schedules new events sees a consistent queue. The slot
        // itself is chunk-stable and recycled only after the call.
        const HeapEntry top = heap_.front();
        heapPop();
        now_ = top.when;
        if (observer_)
            observer_->onEvent(top.when, top.seq);
        arena_.runAndRecycle(top.slot);
        return true;
    }

    /** Run until the queue drains. @return final time. */
    Tick
    run()
    {
        while (step()) {}
        return now_;
    }

    /**
     * Run every event with tick <= @p limit, then advance time to
     * @p limit — whether or not later events remain pending. The
     * contract callers may rely on:
     *
     *  - on return, now() == max(now-at-entry, limit);
     *  - every pending event is strictly later than @p limit;
     *  - a limit already in the past (limit < now()) executes nothing
     *    and leaves time unchanged;
     *  - re-running at the same limit is idempotent.
     *
     * (Historically time only advanced to @p limit once the queue
     * drained, so a caller sampling between windows saw now() stuck
     * at the last executed event — see the runUntil contract tests.)
     */
    Tick
    runUntil(Tick limit)
    {
        while (!heap_.empty() && heap_.front().when <= limit)
            step();
        if (now_ < limit)
            now_ = limit;
        assert((heap_.empty() || heap_.front().when > limit) &&
               "runUntil left an event at or before the limit");
        return now_;
    }

    /** Total number of events executed so far (for stats/benches). */
    std::uint64_t executedEvents() const { return nextSeq_ - heap_.size(); }

    /** @{ Slot-allocator introspection (tests and micro-benches). */
    std::uint64_t overflowAllocs() const { return arena_.overflowAllocs(); }
    std::uint64_t overflowReuses() const { return arena_.overflowReuses(); }
    std::size_t slotChunks() const { return arena_.chunkCount(); }
    /** @} */

  private:
    /** Heap record: ordering data only; the callback lives in the
     * arena, so sift operations move 24 trivially-copyable bytes. */
    struct HeapEntry {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;

        bool
        before(const HeapEntry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }
    };

    void
    heapPush(HeapEntry e)
    {
        heap_.push_back(e);
        std::size_t i = heap_.size() - 1;
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!e.before(heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = e;
    }

    void
    heapPop()
    {
        const HeapEntry last = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            std::size_t kid = 2 * i + 1;
            if (kid >= n)
                break;
            if (kid + 1 < n && heap_[kid + 1].before(heap_[kid]))
                ++kid;
            if (!heap_[kid].before(last))
                break;
            heap_[i] = heap_[kid];
            i = kid;
        }
        heap_[i] = last;
    }

    std::vector<HeapEntry> heap_;
    detail::SlotArena arena_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    Observer *observer_ = nullptr;
};

} // namespace san::sim

#endif // SAN_SIM_EVENT_QUEUE_HH
