/**
 * @file
 * Abstract tracing interface hardware models report spans through.
 *
 * Components hold only a Simulation reference, so the tracer hangs
 * off the Simulation: a component emits a span with
 *
 *     if (auto *tr = sim_.tracer())
 *         tr->span("host0.hca", "io", start, end);
 *
 * which costs one predictable null check when tracing is disabled.
 * The concrete exporter (obs::ChromeTracer) lives above the sim
 * layer; this interface keeps sim free of any output format.
 *
 * Tracks are named timelines (one per component, usually); spans are
 * closed intervals of simulated time on a track; instants are
 * zero-width markers; async begin/end pairs bracket logically-scoped
 * operations that interleave on one track (handler instances,
 * outstanding I/O requests), matched by id.
 */

#ifndef SAN_SIM_TRACER_HH
#define SAN_SIM_TRACER_HH

#include <cstdint>
#include <string>

#include "sim/Types.hh"

namespace san::sim {

/** Receiver of model-level trace events. */
class Tracer
{
  public:
    virtual ~Tracer() = default;

    /** A closed interval [start, end] of work on @p track. */
    virtual void span(const std::string &track, const char *name,
                      Tick start, Tick end) = 0;

    /** A zero-width marker at @p at. */
    virtual void instant(const std::string &track, const char *name,
                         Tick at) = 0;

    /** @{ An async operation on @p track, matched by @p id. */
    virtual void asyncBegin(const std::string &track, const char *name,
                            std::uint64_t id, Tick at) = 0;
    virtual void asyncEnd(const std::string &track, const char *name,
                          std::uint64_t id, Tick at) = 0;
    /** @} */

    /**
     * A sampled counter value (utilization, occupancy, rate) named
     * @p name on @p track at time @p at. Defaulted to a no-op so
     * exporters that only care about spans need not implement it;
     * obs::ChromeTracer renders these as "ph":"C" counter tracks.
     */
    virtual void
    counter(const std::string &track, const char *name, Tick at,
            double value)
    {
        (void)track;
        (void)name;
        (void)at;
        (void)value;
    }

    /**
     * @{ Flow arrows: a chain of points matched by @p id, drawn by
     * trace viewers as arrows between the slices they land on
     * (flowBegin starts a chain, flowStep continues it, flowEnd
     * terminates it). Used for per-packet latency lineage across
     * adapter -> link -> switch -> handler -> destination tracks.
     * Defaulted to no-ops, like counter(), so span-only exporters
     * need not care.
     */
    virtual void
    flowBegin(const std::string &track, const char *name,
              std::uint64_t id, Tick at)
    {
        (void)track;
        (void)name;
        (void)id;
        (void)at;
    }

    virtual void
    flowStep(const std::string &track, const char *name,
             std::uint64_t id, Tick at)
    {
        (void)track;
        (void)name;
        (void)id;
        (void)at;
    }

    virtual void
    flowEnd(const std::string &track, const char *name,
            std::uint64_t id, Tick at)
    {
        (void)track;
        (void)name;
        (void)id;
        (void)at;
    }
    /** @} */
};

} // namespace san::sim

#endif // SAN_SIM_TRACER_HH
