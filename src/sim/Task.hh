/**
 * @file
 * Coroutine-based simulation processes.
 *
 * A Task is a C++20 coroutine representing one simulated thread of
 * control (a host program, a switch handler, a disk servo loop...).
 * A ValueTask<T> additionally produces a value for its awaiter.
 *
 * Tasks are lazy: they run only once spawned on a Simulation or
 * co_awaited from a running task. Awaiting `Delay{t}` suspends the
 * task for t ticks of simulated time; synchronization objects in
 * Sync.hh provide inter-task communication.
 */

#ifndef SAN_SIM_TASK_HH
#define SAN_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/Types.hh"

namespace san::sim {

class Simulation;
class Task;
template <typename T> class ValueTask;

/** Awaitable: suspend the current task for a fixed number of ticks. */
struct Delay {
    Tick ticks;
};

namespace detail {

struct DelayAwaiter;
template <typename TaskT> struct TaskAwaiter;

/**
 * The kernel's most frequent event: resume a suspended coroutine.
 * Every timed wakeup (Delay) and synchronization wakeup (Channel,
 * Gate, Semaphore) schedules one of these; at 8 bytes it is
 * guaranteed to use the event queue's inline capture storage, so a
 * task switch never allocates.
 */
struct Resume {
    std::coroutine_handle<> handle;
    void operator()() const { handle.resume(); }
};

/** State and await_transforms shared by all task promises. */
struct PromiseBase {
    /** Simulation this task runs on; set at spawn/await time. */
    Simulation *sim = nullptr;
    /** Coroutine to resume when this task completes. */
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto &p = h.promise();
            return p.continuation
                       ? p.continuation
                       : std::coroutine_handle<>(std::noop_coroutine());
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { error = std::current_exception(); }

    /** co_await Delay{t}: resume via the event queue. */
    DelayAwaiter await_transform(Delay d) noexcept;

    /** co_await childTask: run child to completion, then resume. */
    TaskAwaiter<Task> await_transform(Task &&child) noexcept;
    template <typename T>
    TaskAwaiter<ValueTask<T>>
    await_transform(ValueTask<T> &&child) noexcept;

    /** Everything else (channels, gates...) passes through. */
    template <typename A>
    decltype(auto)
    await_transform(A &&awaitable) noexcept
    {
        return std::forward<A>(awaitable);
    }
};

/** Promise of a void Task. */
struct TaskPromise : PromiseBase {
    Task get_return_object();
    void return_void() {}
};

/** Promise of a ValueTask<T>. */
template <typename T>
struct ValuePromise : PromiseBase {
    std::optional<T> value;

    ValueTask<T> get_return_object();
    void return_value(T v) { value = std::move(v); }
};

/** Move-only RAII owner of a coroutine frame. */
template <typename Promise>
class TaskBase
{
  public:
    using promise_type = Promise;
    using Handle = std::coroutine_handle<Promise>;

    TaskBase() = default;
    explicit TaskBase(Handle h) : handle_(h) {}

    TaskBase(TaskBase &&o) noexcept
        : handle_(std::exchange(o.handle_, {}))
    {}

    TaskBase &
    operator=(TaskBase &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    TaskBase(const TaskBase &) = delete;
    TaskBase &operator=(const TaskBase &) = delete;

    ~TaskBase() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return !handle_ || handle_.done(); }
    Handle handle() const { return handle_; }

    /** Release ownership of the coroutine frame to the caller. */
    Handle release() { return std::exchange(handle_, {}); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

} // namespace detail

/** A simulation coroutine with no result value. */
class [[nodiscard]] Task : public detail::TaskBase<detail::TaskPromise>
{
  public:
    using detail::TaskBase<detail::TaskPromise>::TaskBase;
};

/** A simulation coroutine producing a T for its awaiter. */
template <typename T>
class [[nodiscard]] ValueTask
    : public detail::TaskBase<detail::ValuePromise<T>>
{
  public:
    using detail::TaskBase<detail::ValuePromise<T>>::TaskBase;
};

namespace detail {

inline Task
TaskPromise::get_return_object()
{
    return Task(std::coroutine_handle<TaskPromise>::from_promise(*this));
}

template <typename T>
ValueTask<T>
ValuePromise<T>::get_return_object()
{
    return ValueTask<T>(
        std::coroutine_handle<ValuePromise<T>>::from_promise(*this));
}

} // namespace detail

} // namespace san::sim

#endif // SAN_SIM_TASK_HH
