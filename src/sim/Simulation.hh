/**
 * @file
 * The Simulation: owns the event queue and every spawned task.
 */

#ifndef SAN_SIM_SIMULATION_HH
#define SAN_SIM_SIMULATION_HH

#include <cassert>
#include <list>
#include <string>
#include <type_traits>

#include "sim/EventQueue.hh"
#include "sim/Task.hh"
#include "sim/Tracer.hh"
#include "sim/Types.hh"

namespace san::sim {

/**
 * A single simulation run: an event queue plus a registry of detached
 * tasks. Spawned tasks are owned by the simulation and reaped once
 * complete.
 */
class Simulation
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &events() { return events_; }
    Tick now() const { return events_.now(); }

    /**
     * Attach (or clear) a tracer. Hardware models consult tracer()
     * before emitting spans, so a null tracer costs one branch.
     */
    void setTracer(Tracer *tracer) { tracer_ = tracer; }
    Tracer *tracer() const { return tracer_; }

    /**
     * Start a detached task. The simulation owns the coroutine frame
     * until it finishes. Tasks begin executing immediately (at the
     * current simulated time).
     */
    void
    spawn(Task task)
    {
        assert(task.valid());
        reap();
        task.handle().promise().sim = this;
        auto &slot = tasks_.emplace_back(std::move(task));
        slot.handle().resume();
        if (slot.handle().promise().error)
            std::rethrow_exception(slot.handle().promise().error);
    }

    /** Run until no events remain. @return final simulated time. */
    Tick
    run()
    {
        Tick t = events_.run();
        reap();
        return t;
    }

    /** Run events up to and including @p limit ticks. */
    Tick runUntil(Tick limit) { return events_.runUntil(limit); }

    /** Number of live (not yet finished) tasks. */
    std::size_t
    liveTasks() const
    {
        std::size_t n = 0;
        for (const auto &t : tasks_)
            if (!t.done())
                ++n;
        return n;
    }

  private:
    void
    reap()
    {
        for (auto it = tasks_.begin(); it != tasks_.end();) {
            if (it->done()) {
                if (it->handle().promise().error)
                    std::rethrow_exception(it->handle().promise().error);
                it = tasks_.erase(it);
            } else {
                ++it;
            }
        }
    }

    EventQueue events_;
    std::list<Task> tasks_;
    Tracer *tracer_ = nullptr;
};

namespace detail {

/** Awaiter scheduling resumption after a fixed delay. */
struct DelayAwaiter {
    Simulation *sim;
    Tick ticks;

    // Even zero-tick delays go through the event queue so that
    // resumption order is deterministic and stacks stay shallow —
    // but via postNow, so they stay out of the ladder scheduler's
    // bucket-width tuning statistics (a zero horizon says nothing
    // about where timed events land).
    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        static_assert(sizeof(Resume) <= EventQueue::inlineCaptureBytes,
                      "coroutine resumption must stay allocation-free");
        if (ticks == 0)
            sim->events().postNow(Resume{h});
        else
            sim->events().after(ticks, Resume{h});
    }

    void await_resume() const noexcept {}
};

/** Awaiter running a child task to completion. */
template <typename TaskT>
struct TaskAwaiter {
    TaskT child; // keeps the child frame alive across the await
    Simulation *sim;

    bool await_ready() const noexcept { return !child.valid(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        auto &cp = child.handle().promise();
        cp.sim = sim;
        cp.continuation = parent;
        return child.handle(); // symmetric transfer: start the child
    }

    decltype(auto)
    await_resume()
    {
        auto &cp = child.handle().promise();
        if (cp.error)
            std::rethrow_exception(cp.error);
        if constexpr (requires { cp.value; }) {
            assert(cp.value.has_value());
            return std::move(*cp.value);
        }
    }
};

inline DelayAwaiter
PromiseBase::await_transform(Delay d) noexcept
{
    assert(sim && "task must be spawned on a Simulation");
    return DelayAwaiter{sim, d.ticks};
}

inline TaskAwaiter<Task>
PromiseBase::await_transform(Task &&child) noexcept
{
    return TaskAwaiter<Task>{std::move(child), sim};
}

template <typename T>
TaskAwaiter<ValueTask<T>>
PromiseBase::await_transform(ValueTask<T> &&child) noexcept
{
    return TaskAwaiter<ValueTask<T>>{std::move(child), sim};
}

} // namespace detail

} // namespace san::sim

#endif // SAN_SIM_SIMULATION_HH
