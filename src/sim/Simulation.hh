/**
 * @file
 * The Simulation: owns the event queue and every spawned task.
 */

#ifndef SAN_SIM_SIMULATION_HH
#define SAN_SIM_SIMULATION_HH

#include <cassert>
#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "sim/EventQueue.hh"
#include "sim/Pdes.hh"
#include "sim/Task.hh"
#include "sim/Tracer.hh"
#include "sim/Types.hh"

namespace san::sim {

/**
 * A single simulation run: an event queue plus a registry of detached
 * tasks. Spawned tasks are owned by the simulation and reaped once
 * complete.
 *
 * Optionally sharded (enableSharding + runSharded): the run then
 * executes on S per-shard event queues driven by worker threads
 * under the conservative barrier-window protocol of sim/Pdes.hh.
 * Component code stays oblivious — events()/now()/tracer() resolve
 * through the worker's thread-local shard context — and the default
 * single-queue path is untouched (one pointer compare per call), so
 * unsharded runs stay bit-identical to the historical kernel.
 */
class Simulation
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The calling context's event queue: the shard queue inside a
     *  sharded run or ShardGuard, the legacy queue otherwise. */
    EventQueue &
    events()
    {
        const auto &t = pdes::detail::tls();
        if (t.owner == this)
            return *t.queue;
        return events_;
    }

    Tick
    now() const
    {
        const auto &t = pdes::detail::tls();
        if (t.owner == this)
            return t.queue->now();
        return events_.now();
    }

    /**
     * Attach (or clear) a tracer. Hardware models consult tracer()
     * before emitting spans, so a null tracer costs one branch.
     * Sharded runs interpose a per-shard pdes::BufferingTracer so a
     * single-threaded exporter never sees two shards at once.
     */
    void
    setTracer(Tracer *tracer)
    {
        tracer_ = tracer;
        if (pdes_ && tracer != nullptr)
            pdes_->enableTracing();
    }

    Tracer *
    tracer() const
    {
        const auto &t = pdes::detail::tls();
        if (t.owner == this)
            return tracer_ != nullptr ? t.tracer : nullptr;
        return tracer_;
    }

    /**
     * Start a detached task. The simulation owns the coroutine frame
     * until it finishes. Tasks begin executing immediately (at the
     * current simulated time). In a sharded simulation the task is
     * pinned to the calling context's shard (spawn under a
     * ShardGuard at build time, or from the owning worker at run
     * time): its frame joins that shard's registry and its first
     * events land on that shard's queue.
     */
    void
    spawn(Task task)
    {
        assert(task.valid());
        const auto &t = pdes::detail::tls();
        assert((pdes_ == nullptr || t.owner == this) &&
               "sharded spawn requires a shard context (ShardGuard)");
        auto &list = (pdes_ != nullptr && t.owner == this)
                         ? pdes_->taskList(t.shard)
                         : tasks_;
        reap(list);
        task.handle().promise().sim = this;
        auto &slot = list.emplace_back(std::move(task));
        slot.handle().resume();
        if (slot.handle().promise().error)
            std::rethrow_exception(slot.handle().promise().error);
    }

    /** Run until no events remain. @return final simulated time. */
    Tick
    run()
    {
        assert(pdes_ == nullptr &&
               "sharded simulation must use runSharded()");
        Tick t = events_.run();
        reap(tasks_);
        return t;
    }

    /** Run events up to and including @p limit ticks. */
    Tick runUntil(Tick limit) { return events_.runUntil(limit); }

    /** Number of live (not yet finished) tasks. */
    std::size_t
    liveTasks() const
    {
        std::size_t n = 0;
        for (const auto &t : tasks_)
            if (!t.done())
                ++n;
        return n + (pdes_ ? pdes_->liveTasks() : 0);
    }

    /** @{ ------------------------- Sharding ----------------------- */

    /**
     * Partition this simulation into @p shards logical processes
     * with conservative lookahead @p lookahead (the minimum boundary
     * link propagation; net::Fabric::applyShardPlan computes both).
     * Must be called after components are built but before any event
     * has been scheduled on the legacy queue; thereafter every spawn
     * must name a shard (ShardGuard) and the run goes through
     * runSharded().
     */
    void
    enableSharding(std::size_t shards, Tick lookahead)
    {
        assert(pdes_ == nullptr && "sharding already enabled");
        assert(events_.empty() && events_.now() == 0 &&
               "enable sharding before scheduling events");
        pdes_ = std::make_unique<pdes::ShardSet>(this, shards,
                                                 lookahead);
        if (tracer_ != nullptr)
            pdes_->enableTracing();
    }

    bool sharded() const { return pdes_ != nullptr; }

    /** Shard count (1 when unsharded). */
    std::size_t shardCount() const { return pdes_ ? pdes_->shards() : 1; }

    /** The conservative window width. */
    Tick
    lookahead() const
    {
        return pdes_ ? pdes_->lookahead() : maxTick;
    }

    /** Shard @p s's event queue (observers, tests). */
    EventQueue &
    shardQueue(std::size_t s)
    {
        assert(pdes_);
        return pdes_->queue(s);
    }

    /**
     * Post @p fn to run at @p when on shard @p dst. The boundary-link
     * machinery (net::Link in cross-shard mode) is the only expected
     * caller; the timestamp must honor the lookahead contract.
     */
    template <typename Fn>
    void
    crossSchedule(std::size_t dst, Tick when, Fn &&fn)
    {
        assert(pdes_);
        pdes_->post(dst, when, std::function<void()>(std::forward<Fn>(fn)));
    }

    /**
     * Run a sharded simulation to completion on @p threads workers.
     * @return final simulated time (max over shard clocks). Replays
     * buffered traces into the real tracer and reaps every shard's
     * tasks before returning.
     */
    Tick
    runSharded(std::size_t threads)
    {
        assert(pdes_ != nullptr && "enableSharding() first");
        const Tick t = pdes_->run(threads);
        pdes_->reapAll();
        reap(tasks_);
        if (tracer_ != nullptr)
            pdes_->replayTraces(*tracer_);
        return t;
    }

    /** Events executed across the legacy queue and every shard. */
    std::uint64_t
    executedEvents() const
    {
        return events_.executedEvents() +
               (pdes_ ? pdes_->executedEvents() : 0);
    }

    /** @} */

  private:
    friend class ShardGuard;

    void
    reap(std::list<Task> &list)
    {
        for (auto it = list.begin(); it != list.end();) {
            if (it->done()) {
                if (it->handle().promise().error)
                    std::rethrow_exception(it->handle().promise().error);
                it = list.erase(it);
            } else {
                ++it;
            }
        }
    }

    EventQueue events_;
    std::list<Task> tasks_;
    Tracer *tracer_ = nullptr;
    std::unique_ptr<pdes::ShardSet> pdes_;
};

/**
 * Scoped shard context for build-time spawns: everything spawned or
 * scheduled on @p sim while the guard is alive is pinned to
 * @p shard. Safe (a no-op) on unsharded simulations, so call sites
 * guard unconditionally.
 */
class ShardGuard : public pdes::ShardGuard
{
  public:
    ShardGuard(Simulation &sim, std::size_t shard)
        : pdes::ShardGuard(&sim, sim.pdes_.get(), shard)
    {
    }
};

namespace detail {

/** Awaiter scheduling resumption after a fixed delay. */
struct DelayAwaiter {
    Simulation *sim;
    Tick ticks;

    // Even zero-tick delays go through the event queue so that
    // resumption order is deterministic and stacks stay shallow —
    // but via postNow, so they stay out of the ladder scheduler's
    // bucket-width tuning statistics (a zero horizon says nothing
    // about where timed events land).
    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        static_assert(sizeof(Resume) <= EventQueue::inlineCaptureBytes,
                      "coroutine resumption must stay allocation-free");
        if (ticks == 0)
            sim->events().postNow(Resume{h});
        else
            sim->events().after(ticks, Resume{h});
    }

    void await_resume() const noexcept {}
};

/** Awaiter running a child task to completion. */
template <typename TaskT>
struct TaskAwaiter {
    TaskT child; // keeps the child frame alive across the await
    Simulation *sim;

    bool await_ready() const noexcept { return !child.valid(); }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        auto &cp = child.handle().promise();
        cp.sim = sim;
        cp.continuation = parent;
        return child.handle(); // symmetric transfer: start the child
    }

    decltype(auto)
    await_resume()
    {
        auto &cp = child.handle().promise();
        if (cp.error)
            std::rethrow_exception(cp.error);
        if constexpr (requires { cp.value; }) {
            assert(cp.value.has_value());
            return std::move(*cp.value);
        }
    }
};

inline DelayAwaiter
PromiseBase::await_transform(Delay d) noexcept
{
    assert(sim && "task must be spawned on a Simulation");
    return DelayAwaiter{sim, d.ticks};
}

inline TaskAwaiter<Task>
PromiseBase::await_transform(Task &&child) noexcept
{
    return TaskAwaiter<Task>{std::move(child), sim};
}

template <typename T>
TaskAwaiter<ValueTask<T>>
PromiseBase::await_transform(ValueTask<T> &&child) noexcept
{
    return TaskAwaiter<ValueTask<T>>{std::move(child), sim};
}

} // namespace detail

} // namespace san::sim

#endif // SAN_SIM_SIMULATION_HH
