/**
 * @file
 * Fundamental simulation types: the tick clock and unit helpers.
 *
 * The simulator measures time in integer picoseconds. A picosecond
 * base unit lets us represent both a 2 GHz host-CPU cycle (500 ps) and
 * a 500 MHz switch-CPU cycle (2000 ps) exactly, with enough range in
 * 64 bits for ~200 days of simulated time.
 */

#ifndef SAN_SIM_TYPES_HH
#define SAN_SIM_TYPES_HH

#include <cstdint>

namespace san::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no time" / "infinitely far in the future". */
inline constexpr Tick maxTick = ~Tick(0);

/** @{ Unit constructors for ticks. */
constexpr Tick
ps(std::uint64_t v)
{
    return v;
}

constexpr Tick
ns(std::uint64_t v)
{
    return v * 1000;
}

constexpr Tick
us(std::uint64_t v)
{
    return v * 1000 * 1000;
}

constexpr Tick
ms(std::uint64_t v)
{
    return v * 1000ull * 1000 * 1000;
}

constexpr Tick
sec(std::uint64_t v)
{
    return v * 1000ull * 1000 * 1000 * 1000;
}
/** @} */

/** Convert ticks to floating-point seconds/milli/micro for reporting. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-12;
}

constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) * 1e-6;
}

/**
 * A fixed clock frequency, converting between cycles and ticks.
 *
 * Periods are integral picoseconds, so only frequencies that divide
 * 1 THz evenly are representable exactly (2 GHz -> 500 ps, 500 MHz ->
 * 2000 ps, etc.), which covers every clock in the modelled system.
 */
class Frequency
{
  public:
    explicit constexpr Frequency(std::uint64_t hz)
        : hz_(hz), period_(1000ull * 1000 * 1000 * 1000 / hz)
    {}

    constexpr std::uint64_t hz() const { return hz_; }
    constexpr Tick period() const { return period_; }

    /** Ticks taken by @p n cycles at this frequency. */
    constexpr Tick cycles(std::uint64_t n) const { return n * period_; }

    /** Whole cycles elapsed in @p t ticks (rounded up). */
    constexpr std::uint64_t
    cyclesCeil(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

  private:
    std::uint64_t hz_;
    Tick period_;
};

/** @{ Bandwidths are expressed as picoseconds per byte. */
using PsPerByte = double;

/** Picoseconds per byte for a bandwidth given in bytes per second. */
constexpr PsPerByte
bytesPerSec(double bps)
{
    return 1e12 / bps;
}

/** Transfer time of @p bytes at @p cost ps/byte, rounded up. */
constexpr Tick
transferTime(std::uint64_t bytes, PsPerByte cost)
{
    double t = static_cast<double>(bytes) * cost;
    return static_cast<Tick>(t + 0.999999);
}
/** @} */

/** @{ Common size units. */
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * 1024;
inline constexpr std::uint64_t GiB = 1024ull * 1024 * 1024;
/** @} */

} // namespace san::sim

#endif // SAN_SIM_TYPES_HH
