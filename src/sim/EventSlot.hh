/**
 * @file
 * Event-slot storage for the simulation kernel's hot path.
 *
 * Every scheduled callback used to be a std::function, which heap
 * allocates once per event for any capture larger than the library's
 * tiny internal buffer — and the simulator schedules an event for
 * every packet arrival, coroutine resumption and channel wakeup. The
 * SlotArena replaces that with pooled, small-buffer-optimized event
 * slots:
 *
 *  - captures up to SlotArena::inlineBytes (48 B) are constructed
 *    directly inside the slot — no allocation at all. This covers the
 *    kernel's most frequent events (coroutine resumptions and channel
 *    wakeups capture a single coroutine handle);
 *  - larger captures (packet arrivals carry a ~100 B Packet) go to an
 *    overflow pool of power-of-two blocks recycled through per-size
 *    free lists, so steady-state scheduling allocates nothing;
 *  - slots live in fixed 256-slot chunks that never move, so a
 *    callback that schedules new events (growing the arena) cannot
 *    invalidate the slot being executed.
 *
 * The arena stores and runs callbacks; event *ordering* is the
 * EventQueue's job (plain (tick, seq, slot) records managed by a
 * scheduler policy — the ladder queue in production, a binary heap
 * as the measurable baseline — see EventQueue.hh).
 */

#ifndef SAN_SIM_EVENT_SLOT_HH
#define SAN_SIM_EVENT_SLOT_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace san::sim::detail {

/** Type-erased operations on one stored capture. */
struct SlotOps {
    void (*invoke)(void *capture);
    void (*destroy)(void *capture);
};

template <typename Fn>
struct SlotThunks {
    static void invoke(void *p) { (*static_cast<Fn *>(p))(); }
    static void destroy(void *p) { static_cast<Fn *>(p)->~Fn(); }
};

/** One static ops table per callback type (no per-event vtable). */
template <typename Fn>
inline constexpr SlotOps slotOps{&SlotThunks<Fn>::invoke,
                                 &SlotThunks<Fn>::destroy};

/**
 * Chunk-stable arena of event slots with inline small-capture storage
 * and a size-classed overflow pool. Not thread-safe (the simulation
 * kernel is single-threaded by design).
 */
class SlotArena
{
  public:
    /** Captures up to this many bytes live inside the slot itself. */
    static constexpr std::size_t inlineBytes = 48;

    /** Invalid slot id / free-list terminator. */
    static constexpr std::uint32_t npos = ~std::uint32_t(0);

    SlotArena() = default;
    SlotArena(const SlotArena &) = delete;
    SlotArena &operator=(const SlotArena &) = delete;

    /**
     * Destroying the arena frees the pooled overflow blocks. Live
     * captures must have been recycled first (the EventQueue destroys
     * every still-pending event before its arena goes away).
     */
    ~SlotArena()
    {
        for (void *head : overflowFree_) {
            while (head != nullptr) {
                void *next = nullptr;
                std::memcpy(&next, head, sizeof(void *));
                ::operator delete(head);
                head = next;
            }
        }
    }

    /** Store @p fn in a fresh slot; returns its id. */
    template <typename F>
    std::uint32_t
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "overaligned event captures are not supported");
        const std::uint32_t id = allocSlot();
        Slot &s = at(id);
        void *mem;
        if constexpr (sizeof(Fn) <= inlineBytes) {
            s.overflow = nullptr;
            mem = s.storage;
        } else {
            mem = allocOverflow(sizeof(Fn), s.sizeClass);
            s.overflow = mem;
        }
        if constexpr (std::is_nothrow_constructible_v<Fn, F &&>) {
            ::new (mem) Fn(std::forward<F>(fn));
        } else {
            try {
                ::new (mem) Fn(std::forward<F>(fn));
            } catch (...) {
                if (s.overflow != nullptr) {
                    freeOverflow(s.overflow, s.sizeClass);
                    s.overflow = nullptr;
                }
                freeSlot(id);
                throw;
            }
        }
        s.ops = &slotOps<Fn>;
        return id;
    }

    /**
     * Invoke slot @p id's callback, then destroy the capture and
     * recycle the slot (even if the callback throws). The callback may
     * freely emplace() new slots: chunks never move and this slot is
     * only recycled after the call returns.
     */
    void
    runAndRecycle(std::uint32_t id)
    {
        struct Recycler {
            SlotArena *arena;
            std::uint32_t id;
            ~Recycler() { arena->recycle(id); }
        } guard{this, id};
        Slot &s = at(id);
        s.ops->invoke(s.capture());
    }

    /** Destroy slot @p id's capture without running it (queue teardown). */
    void
    recycle(std::uint32_t id)
    {
        Slot &s = at(id);
        s.ops->destroy(s.capture());
        if (s.overflow != nullptr) {
            freeOverflow(s.overflow, s.sizeClass);
            s.overflow = nullptr;
        }
        s.ops = nullptr;
        s.nextFree = freeList_;
        freeList_ = id;
        --live_;
    }

    /** @{ Introspection for tests and the kernel micro-bench. */
    std::uint32_t liveSlots() const { return live_; }
    std::size_t chunkCount() const { return chunks_.size(); }
    /** Overflow blocks obtained from operator new (not the pool). */
    std::uint64_t overflowAllocs() const { return overflowAllocs_; }
    /** Overflow requests served by free-list reuse. */
    std::uint64_t overflowReuses() const { return overflowReuses_; }
    /** @} */

  private:
    struct Slot {
        const SlotOps *ops = nullptr;
        /** Non-null: the capture lives in this pooled block. */
        void *overflow = nullptr;
        std::uint32_t nextFree = npos;
        std::uint8_t sizeClass = 0;
        alignas(std::max_align_t) std::byte storage[inlineBytes];

        void *capture() { return overflow != nullptr ? overflow : storage; }
    };

    static constexpr std::uint32_t slotsPerChunk = 256;
    /** Pool classes 64 B << c; larger captures fall back to plain new. */
    static constexpr unsigned overflowClasses = 8;
    static constexpr std::uint8_t unpooledClass = 0xff;

    Slot &
    at(std::uint32_t id)
    {
        return chunks_[id / slotsPerChunk][id % slotsPerChunk];
    }

    std::uint32_t
    allocSlot()
    {
        ++live_;
        if (freeList_ != npos) {
            const std::uint32_t id = freeList_;
            freeList_ = at(id).nextFree;
            return id;
        }
        if (slotCount_ == chunks_.size() * slotsPerChunk)
            chunks_.push_back(std::make_unique<Slot[]>(slotsPerChunk));
        return slotCount_++;
    }

    void
    freeSlot(std::uint32_t id)
    {
        Slot &s = at(id);
        s.ops = nullptr;
        s.nextFree = freeList_;
        freeList_ = id;
        --live_;
    }

    void *
    allocOverflow(std::size_t bytes, std::uint8_t &cls)
    {
        unsigned c = 0;
        while (c < overflowClasses && (std::size_t{64} << c) < bytes)
            ++c;
        if (c == overflowClasses) {
            cls = unpooledClass;
            ++overflowAllocs_;
            return ::operator new(bytes);
        }
        cls = static_cast<std::uint8_t>(c);
        if (overflowFree_[c] != nullptr) {
            void *p = overflowFree_[c];
            std::memcpy(&overflowFree_[c], p, sizeof(void *));
            ++overflowReuses_;
            return p;
        }
        ++overflowAllocs_;
        return ::operator new(std::size_t{64} << c);
    }

    void
    freeOverflow(void *p, std::uint8_t cls)
    {
        if (cls == unpooledClass) {
            ::operator delete(p);
            return;
        }
        // Free blocks link through their own first bytes.
        std::memcpy(p, &overflowFree_[cls], sizeof(void *));
        overflowFree_[cls] = p;
    }

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t freeList_ = npos;
    std::uint32_t slotCount_ = 0; //!< slots ever handed out (high water)
    std::uint32_t live_ = 0;
    void *overflowFree_[overflowClasses] = {};
    std::uint64_t overflowAllocs_ = 0;
    std::uint64_t overflowReuses_ = 0;
};

} // namespace san::sim::detail

#endif // SAN_SIM_EVENT_SLOT_HH
