/**
 * @file
 * Minimal leveled logging for simulator components.
 *
 * Tracing is off by default; tests and debugging sessions enable it
 * via setLogLevel(). Messages carry the simulated tick when a queue
 * is supplied.
 */

#ifndef SAN_SIM_LOG_HH
#define SAN_SIM_LOG_HH

#include <sstream>
#include <string>

#include "sim/Types.hh"

namespace san::sim {

enum class LogLevel { None = 0, Warn = 1, Info = 2, Trace = 3 };

/** Global log threshold; messages above it are discarded. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Emit one log line (already formatted) at @p level. */
void logLine(LogLevel level, const std::string &component,
             Tick tick, const std::string &message);

/** Build a message from stream-insertable pieces and log it. */
template <typename... Parts>
void
logAt(LogLevel level, const std::string &component, Tick tick,
      const Parts &...parts)
{
    if (level > logLevel())
        return;
    std::ostringstream oss;
    (oss << ... << parts);
    logLine(level, component, tick, oss.str());
}

} // namespace san::sim

#endif // SAN_SIM_LOG_HH
