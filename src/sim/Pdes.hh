/**
 * @file
 * Conservative parallel-DES (PDES) runtime: shard-local event queues
 * synchronized by a barrier window derived from link latency.
 *
 * Model
 * -----
 * The component graph is partitioned into S logical-process *shards*
 * (net::ShardPlan decides the cut; switches and adapters are the
 * units). Each shard owns a full ladder EventQueue and executes its
 * events on exactly one worker thread (shard s runs on worker
 * s % W, so a shard never migrates between threads). Cross-shard
 * interactions — packet arrivals and credit returns on boundary
 * links — become timestamped messages posted into per-(src, dst)
 * channels and delivered at the next synchronization point.
 *
 * Synchronization is a barrier window (bounded-lag / YAWNS style):
 *
 *   round k:  floor_k   = min over shards of next-event tick,
 *                         and over all undelivered message stamps
 *             horizon_k = floor_k + L   (saturating)
 *             every shard executes events with tick < horizon_k
 *
 * where L, the *lookahead*, is the minimum propagation latency over
 * all boundary links. Safety: any event executed in round k has
 * tick >= floor_k, so a cross-shard message it emits is stamped at
 * least floor_k + L = horizon_k and cannot affect this round —
 * delivering it at the round k+1 barrier never violates executed
 * history. horizon_k > floor_k guarantees at least one event runs
 * per round, so the loop always terminates.
 *
 * Determinism
 * -----------
 * S and the partition depend only on the topology — never on the
 * thread count W. The round sequence (floor_0, floor_1, ...) is a
 * pure function of simulation state, and within a round each shard
 * executes its own queue in the usual (tick, seq) order with
 * messages delivered in (src shard, post order) order. Worker
 * threads therefore only decide *which OS thread* runs a shard, not
 * *what* it computes: per-shard event streams — and everything
 * folded from them — are bit-identical across W and across repeat
 * runs. See DESIGN.md §14.
 *
 * Channels are double-buffered plain vectors: workers append to the
 * staging side during the execute phase (each (src, dst) cell is
 * written only by src's worker), and the barrier's completion step —
 * which runs exactly once, on one thread, with every worker parked —
 * swaps staging into the ready side. The barrier provides all
 * happens-before edges, so the hot path takes no locks.
 */

#ifndef SAN_SIM_PDES_HH
#define SAN_SIM_PDES_HH

#include <atomic>
#include <barrier>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Task.hh"
#include "sim/Tracer.hh"
#include "sim/Types.hh"

namespace san::sim {

class Simulation;

namespace pdes {

namespace detail {

/**
 * Thread-local shard context. While a worker executes shard s of a
 * sharded simulation (or build code runs under a ShardGuard), this
 * names the owning Simulation, the shard index, its queue, and its
 * trace buffer; Simulation::events()/now()/tracer() consult it so
 * component code is shard-oblivious. Unsharded runs never set it,
 * so the single-thread path pays one pointer compare.
 */
struct ShardTls {
    const void *owner = nullptr;
    std::size_t shard = 0;
    EventQueue *queue = nullptr;
    Tracer *tracer = nullptr;
};

inline ShardTls &
tls()
{
    thread_local ShardTls t;
    return t;
}

} // namespace detail

/**
 * The shard index the calling thread is currently executing, or
 * SIZE_MAX when outside any sharded run. Shard-safe singletons
 * (obs::Telemetry's per-shard slices) key their thread-local state
 * on this.
 */
inline std::size_t
currentShard()
{
    const auto &t = detail::tls();
    return t.owner != nullptr ? t.shard : SIZE_MAX;
}

/** floor + lookahead without wrapping past the end of time. */
inline Tick
saturatingAdd(Tick a, Tick b)
{
    return a > maxTick - b ? maxTick : a + b;
}

/**
 * Per-shard trace sink: records every call and replays it into the
 * real exporter after the run, one shard at a time, so a non
 * thread-safe tracer (obs::ChromeTracer writes a FILE*) never sees
 * two shards at once. Replay order is deterministic (shard id, then
 * emission order); the exporter sorts by timestamp anyway.
 */
class BufferingTracer : public Tracer
{
  public:
    void
    span(const std::string &track, const char *name, Tick start,
         Tick end) override
    {
        recs_.push_back({Kind::Span, track, name, start, end, 0, 0.0});
    }

    void
    instant(const std::string &track, const char *name, Tick at) override
    {
        recs_.push_back({Kind::Instant, track, name, at, 0, 0, 0.0});
    }

    void
    asyncBegin(const std::string &track, const char *name,
               std::uint64_t id, Tick at) override
    {
        recs_.push_back({Kind::AsyncBegin, track, name, at, 0, id, 0.0});
    }

    void
    asyncEnd(const std::string &track, const char *name,
             std::uint64_t id, Tick at) override
    {
        recs_.push_back({Kind::AsyncEnd, track, name, at, 0, id, 0.0});
    }

    void
    counter(const std::string &track, const char *name, Tick at,
            double value) override
    {
        recs_.push_back({Kind::Counter, track, name, at, 0, 0, value});
    }

    void
    flowBegin(const std::string &track, const char *name,
              std::uint64_t id, Tick at) override
    {
        recs_.push_back({Kind::FlowBegin, track, name, at, 0, id, 0.0});
    }

    void
    flowStep(const std::string &track, const char *name,
             std::uint64_t id, Tick at) override
    {
        recs_.push_back({Kind::FlowStep, track, name, at, 0, id, 0.0});
    }

    void
    flowEnd(const std::string &track, const char *name,
            std::uint64_t id, Tick at) override
    {
        recs_.push_back({Kind::FlowEnd, track, name, at, 0, id, 0.0});
    }

    void
    replayTo(Tracer &out) const
    {
        for (const auto &r : recs_) {
            switch (r.kind) {
              case Kind::Span:
                out.span(r.track, r.name, r.a, r.b);
                break;
              case Kind::Instant:
                out.instant(r.track, r.name, r.a);
                break;
              case Kind::AsyncBegin:
                out.asyncBegin(r.track, r.name, r.id, r.a);
                break;
              case Kind::AsyncEnd:
                out.asyncEnd(r.track, r.name, r.id, r.a);
                break;
              case Kind::Counter:
                out.counter(r.track, r.name, r.a, r.value);
                break;
              case Kind::FlowBegin:
                out.flowBegin(r.track, r.name, r.id, r.a);
                break;
              case Kind::FlowStep:
                out.flowStep(r.track, r.name, r.id, r.a);
                break;
              case Kind::FlowEnd:
                out.flowEnd(r.track, r.name, r.id, r.a);
                break;
            }
        }
    }

    std::size_t recorded() const { return recs_.size(); }

  private:
    enum class Kind : std::uint8_t {
        Span,
        Instant,
        AsyncBegin,
        AsyncEnd,
        Counter,
        FlowBegin,
        FlowStep,
        FlowEnd,
    };
    struct Rec {
        Kind kind;
        std::string track;
        const char *name; // trace names are string literals by contract
        Tick a;
        Tick b;
        std::uint64_t id;
        double value;
    };
    std::vector<Rec> recs_;
};

/**
 * The sharded runtime: S event queues, the (src, dst) message
 * channels, per-shard task registries and trace buffers, and the
 * barrier-window run loop. Owned by Simulation once sharding is
 * enabled; Simulation remains the only public entry point.
 */
class ShardSet
{
  public:
    /** A timestamped cross-shard message (cold path: one per
     *  boundary-link flit, not per event). */
    struct CrossMsg {
        Tick when;
        std::function<void()> fn;
    };

    ShardSet(const void *owner, std::size_t shards, Tick lookahead)
        : owner_(owner), shards_(shards), lookahead_(lookahead),
          staging_(shards * shards), ready_(shards * shards),
          tasks_(shards)
    {
        assert(shards >= 1);
        assert(lookahead >= 1 && "zero lookahead would livelock");
        queues_.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s)
            queues_.push_back(std::make_unique<EventQueue>());
    }

    std::size_t shards() const { return shards_; }
    Tick lookahead() const { return lookahead_; }
    const void *owner() const { return owner_; }

    EventQueue &queue(std::size_t s) { return *queues_.at(s); }
    std::list<Task> &taskList(std::size_t s) { return tasks_.at(s); }

    /** Lazily create per-shard trace buffers (idempotent). */
    void
    enableTracing()
    {
        if (!tracers_.empty())
            return;
        tracers_.reserve(shards_);
        for (std::size_t s = 0; s < shards_; ++s)
            tracers_.push_back(std::make_unique<BufferingTracer>());
    }

    Tracer *
    tracerFor(std::size_t s)
    {
        return tracers_.empty() ? nullptr : tracers_[s].get();
    }

    /** Replay every shard's buffered trace into @p out, in shard
     *  order (called once, after the run, single-threaded). */
    void
    replayTraces(Tracer &out)
    {
        for (auto &t : tracers_) {
            t->replayTo(out);
            *t = BufferingTracer();
        }
    }

    /**
     * Post a message to @p dst, executing @p fn at @p when on the
     * destination shard. Must be called from shard context (worker
     * thread or ShardGuard); the source shard is implicit. The stamp
     * must respect the lookahead contract: when >= caller now + L
     * for true cross-shard traffic.
     */
    void
    post(std::size_t dst, Tick when, std::function<void()> fn)
    {
        const auto &t = detail::tls();
        assert(t.owner == owner_ &&
               "cross-shard post outside shard context");
        assert(dst < shards_);
        staging_[t.shard * shards_ + dst].push_back(
            {when, std::move(fn)});
    }

    /** Total events executed across all shard queues. */
    std::uint64_t
    executedEvents() const
    {
        std::uint64_t n = 0;
        for (const auto &q : queues_)
            n += q->executedEvents();
        return n;
    }

    /**
     * Run every shard to completion on @p threads workers (clamped
     * to S). Returns the final simulated time: the maximum over the
     * shard clocks. Worker exceptions and task errors are rethrown
     * on the calling thread after all workers have joined.
     */
    Tick
    run(std::size_t threads)
    {
        const std::size_t W =
            std::max<std::size_t>(1, std::min(threads, shards_));
        done_ = false;
        failed_.store(false, std::memory_order_relaxed);

        std::barrier bar(static_cast<std::ptrdiff_t>(W),
                         [this]() noexcept { roundBoundary(); });

        std::vector<std::thread> extra;
        extra.reserve(W - 1);
        for (std::size_t w = 1; w < W; ++w)
            extra.emplace_back([this, w, W, &bar] {
                workerLoop(w, W, bar);
            });
        workerLoop(0, W, bar);
        for (auto &th : extra)
            th.join();

        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }

        Tick end = 0;
        for (const auto &q : queues_)
            end = std::max(end, q->now());
        return end;
    }

    /** Reap finished tasks from every shard registry, rethrowing the
     *  first task error (called quiescent, after run()). */
    void
    reapAll()
    {
        for (auto &list : tasks_) {
            for (auto it = list.begin(); it != list.end();) {
                if (it->done()) {
                    if (it->handle().promise().error)
                        std::rethrow_exception(
                            it->handle().promise().error);
                    it = list.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    std::size_t
    liveTasks() const
    {
        std::size_t n = 0;
        for (const auto &list : tasks_)
            for (const auto &t : list)
                if (!t.done())
                    ++n;
        return n;
    }

  private:
    /**
     * The barrier completion step: runs exactly once per round, on
     * exactly one thread, while every worker is parked at the
     * barrier — the quiescent point where cross-shard state may be
     * touched without locks.
     */
    void
    roundBoundary() noexcept
    {
        // Publish staged messages. The ready side was fully drained
        // by the previous execute phase, so swap leaves staging
        // empty for the next one.
        for (std::size_t i = 0; i < staging_.size(); ++i) {
            assert(ready_[i].empty());
            ready_[i].swap(staging_[i]);
        }

        Tick floor = maxTick;
        for (const auto &q : queues_)
            floor = std::min(floor, q->nextEventTick());
        for (const auto &ch : ready_)
            for (const auto &m : ch)
                floor = std::min(floor, m.when);

        if (floor == maxTick ||
            failed_.load(std::memory_order_relaxed)) {
            done_ = true;
            return;
        }
        horizon_ = saturatingAdd(floor, lookahead_);
    }

    template <typename Barrier>
    void
    workerLoop(std::size_t w, std::size_t W, Barrier &bar)
    {
        for (;;) {
            bar.arrive_and_wait();
            if (done_)
                return;
            try {
                for (std::size_t s = w; s < shards_; s += W)
                    executeShard(s);
            } catch (...) {
                std::lock_guard lock(errorMu_);
                if (!error_)
                    error_ = std::current_exception();
                failed_.store(true, std::memory_order_relaxed);
            }
            leaveShard();
        }
    }

    void
    executeShard(std::size_t s)
    {
        auto &t = detail::tls();
        t.owner = owner_;
        t.shard = s;
        t.queue = queues_[s].get();
        t.tracer = tracerFor(s);

        // Deliver this round's messages in deterministic order:
        // source shard ascending, post order within a source. The
        // queue's own seq numbering then fixes execution order.
        for (std::size_t src = 0; src < shards_; ++src) {
            auto &ch = ready_[src * shards_ + s];
            for (auto &m : ch)
                queues_[s]->schedule(m.when, std::move(m.fn));
            ch.clear();
        }
        queues_[s]->runUntilBefore(horizon_);
    }

    void
    leaveShard()
    {
        detail::tls() = detail::ShardTls{};
    }

    const void *owner_;
    std::size_t shards_;
    Tick lookahead_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
    // Channel matrices, indexed [src * S + dst]. staging_ is written
    // by workers during execute; ready_ is consumed by workers and
    // refilled only at the barrier.
    std::vector<std::vector<CrossMsg>> staging_;
    std::vector<std::vector<CrossMsg>> ready_;
    std::vector<std::list<Task>> tasks_;
    std::vector<std::unique_ptr<BufferingTracer>> tracers_;

    // Round state: written in the completion step / under errorMu_,
    // read by workers after the barrier (which supplies the
    // happens-before edges).
    Tick horizon_ = 0;
    bool done_ = false;
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;
    std::mutex errorMu_;
};

/**
 * RAII shard context for build/spawn code on the main thread: while
 * alive, Simulation::events() of the guarded simulation resolves to
 * the shard's queue, so tasks spawned under the guard schedule their
 * first events — and post their cross-shard messages — as that
 * shard. No-op when the simulation is unsharded, so call sites can
 * guard unconditionally.
 */
class ShardGuard
{
  public:
    ShardGuard(const void *owner, ShardSet *set, std::size_t shard)
        : saved_(detail::tls())
    {
        if (set == nullptr)
            return;
        assert(shard < set->shards());
        detail::tls() = {owner, shard, &set->queue(shard),
                         set->tracerFor(shard)};
    }

    ShardGuard(const ShardGuard &) = delete;
    ShardGuard &operator=(const ShardGuard &) = delete;

    ~ShardGuard() { detail::tls() = saved_; }

  private:
    detail::ShardTls saved_;
};

} // namespace pdes

} // namespace san::sim

#endif // SAN_SIM_PDES_HH
