#include "sim/Log.hh"

#include <iostream>

namespace san::sim {

namespace {

LogLevel globalLevel = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::None: return "none";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Trace: return "trace";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

void
logLine(LogLevel level, const std::string &component, Tick tick,
        const std::string &message)
{
    if (level > globalLevel)
        return;
    std::cerr << '[' << levelName(level) << "] t=" << tick << "ps "
              << component << ": " << message << '\n';
}

} // namespace san::sim
