/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the simulator flows through explicitly seeded
 * Random instances so that every experiment is exactly reproducible.
 * The generator is xoshiro256** (public domain, Blackman & Vigna).
 */

#ifndef SAN_SIM_RANDOM_HH
#define SAN_SIM_RANDOM_HH

#include <cstdint>

namespace san::sim {

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Random
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased via rejection from the top of the range.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace san::sim

#endif // SAN_SIM_RANDOM_HH
