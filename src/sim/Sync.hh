/**
 * @file
 * Inter-task synchronization: channels, gates and semaphores.
 *
 * All wakeups are funnelled through the event queue (at the current
 * tick, via EventQueue::postNow) rather than resuming inline, which
 * keeps resumption order deterministic and call stacks shallow.
 * postNow also keeps these zero-delay wakeups out of the ladder
 * scheduler's bucket-width tuning statistics, which only timed
 * events should feed.
 */

#ifndef SAN_SIM_SYNC_HH
#define SAN_SIM_SYNC_HH

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/Simulation.hh"

namespace san::sim {

/**
 * An unbounded FIFO channel of values of type T.
 *
 * push() never blocks; pop() is an awaitable that suspends the caller
 * until a value is available. Multiple poppers are served FIFO.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Simulation &sim) : sim_(sim) {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** Deposit a value, waking the longest-waiting popper if any. */
    void
    push(T value)
    {
        items_.push_back(std::move(value));
        wakeOne();
    }

    /** Number of values currently queued. */
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /** Non-blocking pop. */
    std::optional<T>
    tryPop()
    {
        if (items_.empty())
            return std::nullopt;
        T v = std::move(items_.front());
        items_.pop_front();
        return v;
    }

    struct PopAwaiter {
        Channel &ch;
        std::optional<T> value;

        bool
        await_ready()
        {
            // Only claim a value directly if no earlier popper is
            // queued, preserving FIFO service.
            if (ch.waiters_.empty() && !ch.items_.empty()) {
                value = std::move(ch.items_.front());
                ch.items_.pop_front();
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ch.waiters_.push_back(Waiter{h, this});
        }

        T
        await_resume()
        {
            assert(value.has_value());
            return std::move(*value);
        }
    };

    /** Awaitable: suspend until a value can be taken. */
    PopAwaiter pop() { return PopAwaiter{*this, std::nullopt}; }

  private:
    struct Waiter {
        std::coroutine_handle<> handle;
        PopAwaiter *awaiter;
    };

    void
    wakeOne()
    {
        if (waiters_.empty() || items_.empty())
            return;
        Waiter w = waiters_.front();
        waiters_.pop_front();
        w.awaiter->value = std::move(items_.front());
        items_.pop_front();
        sim_.events().postNow(detail::Resume{w.handle});
    }

    Simulation &sim_;
    std::deque<T> items_;
    std::deque<Waiter> waiters_;
};

/**
 * A one-shot (but resettable) broadcast event. Awaiting an open gate
 * proceeds immediately; open() releases every waiter.
 */
class Gate
{
  public:
    explicit Gate(Simulation &sim) : sim_(sim) {}

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    bool isOpen() const { return open_; }

    void
    open()
    {
        if (open_)
            return;
        open_ = true;
        for (auto h : waiters_)
            sim_.events().postNow(detail::Resume{h});
        waiters_.clear();
    }

    /** Close the gate again (subsequent awaits block). */
    void reset() { open_ = false; }

    struct Awaiter {
        Gate &gate;
        bool await_ready() const { return gate.open_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            gate.waiters_.push_back(h);
        }

        void await_resume() const {}
    };

    Awaiter wait() { return Awaiter{*this}; }

  private:
    Simulation &sim_;
    bool open_ = false;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** Counting semaphore with FIFO acquire order. */
class Semaphore
{
  public:
    Semaphore(Simulation &sim, std::size_t initial)
        : sim_(sim), count_(initial)
    {}

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    std::size_t available() const { return count_; }

    void
    release(std::size_t n = 1)
    {
        count_ += n;
        while (count_ > 0 && !waiters_.empty()) {
            --count_;
            auto h = waiters_.front();
            waiters_.pop_front();
            sim_.events().postNow(detail::Resume{h});
        }
    }

    struct Awaiter {
        Semaphore &sem;

        bool
        await_ready()
        {
            if (sem.waiters_.empty() && sem.count_ > 0) {
                --sem.count_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sem.waiters_.push_back(h);
        }

        void await_resume() const {}
    };

    Awaiter acquire() { return Awaiter{*this}; }

  private:
    Simulation &sim_;
    std::size_t count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Completion latch: counts down from n; waiters resume when it hits
 * zero. Useful for joining a set of spawned tasks.
 */
class Latch
{
  public:
    Latch(Simulation &sim, std::size_t n) : gate_(sim), remaining_(n)
    {
        if (remaining_ == 0)
            gate_.open();
    }

    void
    countDown()
    {
        assert(remaining_ > 0);
        if (--remaining_ == 0)
            gate_.open();
    }

    std::size_t remaining() const { return remaining_; }
    Gate::Awaiter wait() { return gate_.wait(); }

  private:
    Gate gate_;
    std::size_t remaining_;
};

} // namespace san::sim

#endif // SAN_SIM_SYNC_HH
