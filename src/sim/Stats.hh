/**
 * @file
 * Lightweight statistics: counters, accumulators and histograms that
 * components register into named groups for end-of-run dumps.
 */

#ifndef SAN_SIM_STATS_HH
#define SAN_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace san::sim {

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    void operator+=(double d) { value_ += d; }
    void operator++() { value_ += 1; }
    void operator++(int) { value_ += 1; }
    double value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** Tracks count / sum / min / max / mean of samples. */
class Accumulator
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0; }
    double max() const { return count_ ? max_ : 0; }
    double mean() const { return count_ ? sum_ / count_ : 0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width linear histogram over [lo, hi) with under/overflow. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets + 2, 0)
    {}

    void
    sample(double v)
    {
        std::size_t idx;
        if (v < lo_) {
            idx = 0;
        } else if (v >= hi_) {
            idx = counts_.size() - 1;
        } else {
            const double frac = (v - lo_) / (hi_ - lo_);
            idx = 1 + static_cast<std::size_t>(
                frac * static_cast<double>(counts_.size() - 2));
            // frac < 1 mathematically, but the product can round up
            // to exactly `buckets` for v just below hi; clamp so such
            // samples land in the top bucket, not the overflow slot.
            idx = std::min(idx, counts_.size() - 2);
        }
        ++counts_[idx];
        total_.sample(v);
    }

    std::uint64_t underflow() const { return counts_.front(); }
    std::uint64_t overflow() const { return counts_.back(); }
    std::uint64_t bucket(std::size_t i) const { return counts_[i + 1]; }
    std::size_t buckets() const { return counts_.size() - 2; }
    const Accumulator &summary() const { return total_; }

    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Lower edge of bucket @p i (upper edge is edge(i + 1)). */
    double
    edge(std::size_t i) const
    {
        const double width = (hi_ - lo_) /
                             static_cast<double>(counts_.size() - 2);
        return lo_ + width * static_cast<double>(i);
    }

    /**
     * Exact-from-bucket percentile for @p p in (0, 1]: the upper
     * edge of the bucket holding the ceil(p * count)-th sample, in
     * under/in-range/overflow order. Underflow resolves to lo() and
     * overflow to the observed max, so the result is always a value
     * the histogram actually saw the neighbourhood of. Returns 0
     * with no samples.
     */
    double
    percentile(double p) const
    {
        const std::uint64_t n = total_.count();
        if (n == 0)
            return 0;
        std::uint64_t rank = static_cast<std::uint64_t>(
            p * static_cast<double>(n) + 0.9999999999);
        rank = std::max<std::uint64_t>(1, std::min(rank, n));
        std::uint64_t cum = counts_.front();
        if (cum >= rank)
            return lo_;
        for (std::size_t i = 0; i + 2 < counts_.size(); ++i) {
            cum += counts_[i + 1];
            if (cum >= rank)
                return std::min(edge(i + 1), total_.max());
        }
        return total_.max();
    }

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> counts_;
    Accumulator total_;
};

/**
 * Read-only traversal of a StatGroup's registered statistics, in
 * registration order. Machine-readable exporters (JSON, fingerprint
 * folding) implement this instead of re-parsing the text dump.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;
    virtual void onCounter(const std::string &group,
                           const std::string &name,
                           const Counter &c) = 0;
    virtual void onAccumulator(const std::string &group,
                               const std::string &name,
                               const Accumulator &a) = 0;
    virtual void onHistogram(const std::string &group,
                             const std::string &name,
                             const Histogram &h) = 0;
};

/**
 * A named collection of statistics belonging to one component,
 * dumpable in a stable text format.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    Counter &
    counter(const std::string &stat_name)
    {
        counters_.push_back({stat_name, Counter{}});
        return counters_.back().second;
    }

    Accumulator &
    accumulator(const std::string &stat_name)
    {
        accums_.push_back({stat_name, Accumulator{}});
        return accums_.back().second;
    }

    Histogram &
    histogram(const std::string &stat_name, double lo, double hi,
              std::size_t buckets)
    {
        histograms_.push_back({stat_name, Histogram{lo, hi, buckets}});
        return histograms_.back().second;
    }

    const std::string &name() const { return name_; }

    /** Walk every registered statistic, in registration order. */
    void
    visit(StatVisitor &v) const
    {
        for (const auto &[n, c] : counters_)
            v.onCounter(name_, n, c);
        for (const auto &[n, a] : accums_)
            v.onAccumulator(name_, n, a);
        for (const auto &[n, h] : histograms_)
            v.onHistogram(name_, n, h);
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &[n, c] : counters_)
            os << name_ << '.' << n << ' ' << c.value() << '\n';
        for (const auto &[n, a] : accums_) {
            os << name_ << '.' << n << ".count " << a.count() << '\n'
               << name_ << '.' << n << ".mean " << a.mean() << '\n'
               << name_ << '.' << n << ".min " << a.min() << '\n'
               << name_ << '.' << n << ".max " << a.max() << '\n';
        }
        for (const auto &[n, h] : histograms_) {
            os << name_ << '.' << n << ".samples "
               << h.summary().count() << '\n'
               << name_ << '.' << n << ".underflow " << h.underflow()
               << '\n'
               << name_ << '.' << n << ".overflow " << h.overflow()
               << '\n';
            os << name_ << '.' << n << ".p50 " << h.percentile(0.50)
               << '\n'
               << name_ << '.' << n << ".p90 " << h.percentile(0.90)
               << '\n'
               << name_ << '.' << n << ".p99 " << h.percentile(0.99)
               << '\n';
            for (std::size_t i = 0; i < h.buckets(); ++i)
                os << name_ << '.' << n << ".bucket" << i << ' '
                   << h.bucket(i) << '\n';
        }
    }

  private:
    std::string name_;
    // Deques keep references handed out by counter()/accumulator()/
    // histogram() stable across later registrations.
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, Accumulator>> accums_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
};

} // namespace san::sim

#endif // SAN_SIM_STATS_HH
