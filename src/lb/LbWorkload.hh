/**
 * @file
 * The million-flow load-balancer workload: cluster shape, traffic,
 * drains, and stats collection for bench/lb_scale, the examples and
 * the tests.
 *
 * Topology (hosts around one active switch, no storage):
 *
 *   host[0 .. senders)                the clients (flow-churn pumps)
 *   host[senders .. senders+backends) the server pool
 *   host[senders+backends]            the lb host: runs the software
 *                                     balancer in Normal mode, and
 *                                     receives punts in Active mode
 *
 * In Active mode the balancer is registered as switch handler
 * kLbHandlerId and every client packet is an active message; the lb
 * host only sees what the switch could not place. In Normal mode the
 * same packets are plain sends to the lb host, which runs the same
 * balancer state machine on its own CPU — the paper's host-only
 * baseline.
 */

#ifndef SAN_LB_LB_WORKLOAD_HH
#define SAN_LB_LB_WORKLOAD_HH

#include <cstdint>
#include <map>
#include <vector>

#include "apps/Cluster.hh"
#include "lb/LoadBalancer.hh"
#include "net/Traffic.hh"

namespace san::lb {

/** The handler-table slot the balancer occupies in Active mode. */
inline constexpr std::uint8_t kLbHandlerId = 9;

struct LbWorkloadParams {
    unsigned senders = 4;
    unsigned backends = 8;
    unsigned switchCpus = 4;
    /** Flow pattern. dst / active / handlerId / handlerCpus are
     * overwritten by the workload; set the rest freely. */
    net::FlowChurnParams churn{};
    /** Balancer tuning. `backends` and `tupleSeed` are overwritten
     * to match the topology and the churn generator. */
    LbParams lb{};
    /** Application service charged per delivered packet at a backend
     * (identical in both modes, so the host-CPU delta between modes
     * isolates the balancing work itself). */
    std::uint64_t backendServiceInstructions = 60;
    /** Record per-flow delivery backends (tests only: costs memory
     * proportional to flow count). */
    bool recordDeliveries = false;
    unsigned switchPorts = 0; //!< 0 = hosts + 1
};

struct LbRunResult {
    apps::RunStats stats;
    net::FlowChurnCounts gen;
    /** Packets each backend host actually received. */
    std::vector<std::uint64_t> backendDelivered;
    /** Punted packets the lb host received (Active mode; in Normal
     * mode punts are serviced in place and this stays 0). */
    std::uint64_t puntArrivals = 0;
    /** flowId -> bitmask of backends that delivered its packets
     * (recordDeliveries only). One bit per flow unless the flow
     * migrated across a backend-down event. */
    std::map<std::uint64_t, std::uint64_t> deliveredBy;
};

/** Build the cluster, run one mode to completion, collect stats.
 * Uses Mode::Active (in-switch) and Mode::Normal (host baseline). */
LbRunResult runLb(apps::Mode mode, const LbWorkloadParams &params);

} // namespace san::lb

#endif // SAN_LB_LB_WORKLOAD_HH
