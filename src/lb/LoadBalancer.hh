/**
 * @file
 * The L4 load balancer: connection table + consistent hashing +
 * punt-path policy, runnable either as an ActiveSwitch handler (the
 * in-switch data plane) or as a host drain (the host-only baseline).
 *
 * Both paths share one processPacket() state machine, so hit/miss
 * decisions, backend assignments and counters are bit-identical —
 * the modes differ only in *where* the cycles are charged: the
 * 500 MHz switch CPU with its 1 KB D$, or the 2 GHz host CPU. Every
 * packet's memory traffic is described by the returned Action and
 * charged through the respective CPU's hierarchy at the connection
 * table's model addresses.
 *
 * Packet semantics ride in the message tag (net::flowTag): SYN
 * inserts a connection and picks its backend through the Maglev
 * table, DATA looks it up and forwards to the sticky backend, FIN
 * forwards then retires the entry. Unknown connections (orphans,
 * probe-cap insert failures, no-alive-backend) punt to a designated
 * host. Backend death/rebirth arrives through the fault layer
 * ("--fault-at TICK:backend-down:IDX"), polled deterministically at
 * each packet; dead backends' established flows lazily migrate via
 * a fresh Maglev pick at their next packet.
 */

#ifndef SAN_LB_LOAD_BALANCER_HH
#define SAN_LB_LOAD_BALANCER_HH

#include <cstdint>
#include <vector>

#include "active/ActiveSwitch.hh"
#include "apps/RunConfig.hh"
#include "lb/ConnTable.hh"
#include "lb/Maglev.hh"
#include "net/Traffic.hh"

namespace san::host {
class Host;
}

namespace san::lb {

/** Load-balancer configuration. */
struct LbParams {
    unsigned backends = 8;
    /** Must match the traffic generator's FlowChurnParams::seed. */
    std::uint64_t tupleSeed = 1;
    /** Connection-signature seed (apps::detTupleHash). */
    std::uint64_t hashSeed = 0x1b5eedull;
    ConnTable::Params table{};
    unsigned maglevSize = Maglev::kDefaultSize;
    /** I$ footprint of the per-packet fast path. */
    std::uint64_t codeBytes = 768;
    /** Decode + tuple hash + steering, instructions per packet. */
    std::uint64_t instructions = 48;
    /** Host-side software overhead per packet (interrupt/demux) the
     * baseline pays on top; the switch's Dispatch unit does this in
     * hardware. */
    std::uint64_t hostExtraInstructions = 120;
    /** Host-side service of one punted (unknown) connection. */
    std::uint64_t puntInstructions = 800;
};

class LoadBalancer
{
  public:
    /** Model PC of the handler's code (distinct I$ region). */
    static constexpr std::uint64_t kCodeAddr = 0x8000;

    LoadBalancer(const LbParams &params,
                 std::vector<net::NodeId> backend_nodes,
                 net::NodeId punt_node);

    /** One charged memory operation of a packet's table work. */
    struct MemOp {
        std::uint64_t addr = 0;
        std::uint32_t bytes = 0;
        mem::AccessKind kind = mem::AccessKind::Load;
    };

    /** The routing decision plus the memory traffic to charge. */
    struct Action {
        bool punt = false;
        std::uint8_t backend = 0;
        unsigned opCount = 0;
        MemOp ops[6];

        void
        add(std::uint64_t addr, std::uint32_t bytes,
            mem::AccessKind kind)
        {
            ops[opCount++] = MemOp{addr, bytes, kind};
        }
    };

    /**
     * Advance the balancer by one packet: poll backend up/down fault
     * events, run the two-stage lookup state machine, update every
     * counter. Pure simulation state — the caller charges the
     * returned Action through its CPU and moves the packet.
     */
    Action processPacket(std::uint32_t tag, sim::Tick now);

    /** The in-switch data plane (register under a handler id). */
    active::HandlerFn makeHandler();

    /** The host-only baseline: drain @p lb_host's app queue, charge
     * the same table work to its CPU, forward via its HCA. */
    sim::Task hostDrain(host::Host &lb_host);

    void fillStats(apps::LbStats &out) const;

    const apps::LbStats &counters() const { return counters_; }
    const ConnTable &table() const { return table_; }
    const Maglev &maglev() const { return maglev_; }
    const LbParams &params() const { return params_; }
    net::NodeId backendNode(unsigned b) const
    {
        return backendNodes_.at(b);
    }
    net::NodeId puntNode() const { return puntNode_; }

  private:
    sim::Task handlerBody(active::HandlerContext &ctx);
    void pollFaultEvents(sim::Tick now);

    void
    forward(Action &act, std::uint8_t backend)
    {
        act.punt = false;
        act.backend = backend;
        ++counters_.forwarded;
        ++counters_.backendPackets[backend];
    }

    void
    punt(Action &act)
    {
        act.punt = true;
        ++counters_.punts;
    }

    LbParams params_;
    std::vector<net::NodeId> backendNodes_;
    net::NodeId puntNode_;
    ConnTable table_;
    Maglev maglev_;
    apps::LbStats counters_;
};

/**
 * The balancer driving the current run, or nullptr (the default).
 * Installed by the lb workload for the duration of a run so the
 * stats report and metrics sampler can export lb state; when null,
 * reports are byte-identical to pre-lb output.
 */
LoadBalancer *&globalBalancer();

} // namespace san::lb

#endif // SAN_LB_LOAD_BALANCER_HH
