/**
 * @file
 * Maglev-style consistent-hash backend selector.
 *
 * A prime-sized lookup table is filled from per-backend permutations
 * (offset/skip derived from apps::detHash, so the table is a pure
 * function of the seed and the alive set). New connections pick
 * table[sig % M]; established connections never consult it again —
 * their assignment lives in the ConnTable — which is exactly the
 * consistency-under-churn property: removing a backend reassigns
 * only the removed backend's *new* traffic, while surviving flows
 * keep their entry.
 *
 * The table is modelled at its own address range so the data plane
 * charges one byte-read through the D$ per new-connection pick.
 */

#ifndef SAN_LB_MAGLEV_HH
#define SAN_LB_MAGLEV_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "apps/DetHash.hh"

namespace san::lb {

class Maglev
{
  public:
    /** "No backend alive" sentinel. */
    static constexpr std::uint8_t kNone = 0xFF;
    /** Model address range (distinct from ConnTable's). */
    static constexpr std::uint64_t kTableBase = 0x1000;
    /** Default prime table size: ~100x typical backend counts keeps
     * the per-backend share within a few percent of even. */
    static constexpr unsigned kDefaultSize = 2053;

    Maglev(unsigned backends, std::uint64_t seed,
           unsigned table_size = kDefaultSize)
        : n_(backends), seed_(seed), table_(table_size, kNone),
          alive_(backends, true)
    {
        assert(backends >= 1 && backends < kNone);
        rebuild();
    }

    /** New-connection pick; kNone when no backend is alive. */
    std::uint8_t
    pick(std::uint64_t sig) const
    {
        return table_[sig % table_.size()];
    }

    bool alive(unsigned b) const { return alive_.at(b); }

    unsigned
    aliveCount() const
    {
        unsigned n = 0;
        for (unsigned b = 0; b < n_; ++b)
            if (alive_[b])
                ++n;
        return n;
    }

    /** Mark a backend dead/alive and repopulate the table. Returns
     * true if the state actually changed. */
    bool
    setAlive(unsigned b, bool alive)
    {
        if (alive_.at(b) == alive)
            return false;
        alive_[b] = alive;
        rebuild();
        return true;
    }

    unsigned backendCount() const { return n_; }
    unsigned size() const { return static_cast<unsigned>(table_.size()); }
    std::uint64_t memoryBytes() const { return table_.size(); }

    /** Model address charged for one pick. */
    std::uint64_t
    pickAddr(std::uint64_t sig) const
    {
        return kTableBase + sig % table_.size();
    }

    /** Standard Maglev population over the alive set. */
    void
    rebuild()
    {
        const auto m = static_cast<std::uint64_t>(table_.size());
        std::fill(table_.begin(), table_.end(), kNone);
        if (aliveCount() == 0)
            return;
        std::vector<std::uint64_t> offset(n_), skip(n_), next(n_, 0);
        for (unsigned b = 0; b < n_; ++b) {
            offset[b] = apps::detHash(seed_, 2 * b) % m;
            skip[b] = apps::detHash(seed_, 2 * b + 1) % (m - 1) + 1;
        }
        std::uint64_t filled = 0;
        while (filled < m) {
            for (unsigned b = 0; b < n_; ++b) {
                if (!alive_[b])
                    continue;
                std::uint64_t c = (offset[b] + next[b] * skip[b]) % m;
                while (table_[c] != kNone) {
                    ++next[b];
                    c = (offset[b] + next[b] * skip[b]) % m;
                }
                table_[c] = static_cast<std::uint8_t>(b);
                ++next[b];
                if (++filled == m)
                    break;
            }
        }
    }

  private:
    unsigned n_;
    std::uint64_t seed_;
    std::vector<std::uint8_t> table_;
    std::vector<bool> alive_;
};

} // namespace san::lb

#endif // SAN_LB_MAGLEV_HH
