#include "lb/LoadBalancer.hh"

#include <cassert>
#include <string>

#include "apps/DetHash.hh"
#include "fault/FaultPlan.hh"
#include "host/Host.hh"

namespace san::lb {

LoadBalancer *&
globalBalancer()
{
    static LoadBalancer *balancer = nullptr;
    return balancer;
}

LoadBalancer::LoadBalancer(const LbParams &params,
                           std::vector<net::NodeId> backend_nodes,
                           net::NodeId punt_node)
    : params_(params), backendNodes_(std::move(backend_nodes)),
      puntNode_(punt_node), table_(params.table),
      maglev_(params.backends, params.hashSeed, params.maglevSize)
{
    assert(backendNodes_.size() == params_.backends);
    counters_.backendPackets.assign(params_.backends, 0);
}

void
LoadBalancer::pollFaultEvents(sim::Tick now)
{
    fault::FaultPlan *plan = fault::globalPlan();
    if (plan == nullptr)
        return;
    // Targets are backend indices as decimal strings, mirroring how
    // handler-crash events name handler ids.
    if (plan->eventPending(fault::FaultKind::BackendDown)) {
        for (unsigned b = 0; b < params_.backends; ++b)
            if (plan->eventDue(fault::FaultKind::BackendDown,
                               std::to_string(b), now) &&
                maglev_.setAlive(b, false))
                ++counters_.backendDownEvents;
    }
    if (plan->eventPending(fault::FaultKind::BackendUp)) {
        for (unsigned b = 0; b < params_.backends; ++b)
            if (plan->eventDue(fault::FaultKind::BackendUp,
                               std::to_string(b), now) &&
                maglev_.setAlive(b, true))
                ++counters_.backendUpEvents;
    }
}

LoadBalancer::Action
LoadBalancer::processPacket(std::uint32_t tag, sim::Tick now)
{
    pollFaultEvents(now);

    Action act;
    const std::uint64_t flowId = net::flowTagId(tag);
    const net::FlowOp op = net::flowTagOp(tag);
    const net::FiveTuple t = net::lfsrTuple(params_.tupleSeed, flowId);
    const std::uint64_t sig =
        apps::detTupleHash(params_.hashSeed, t.w0(), t.w1());

    ++counters_.lookups;
    // Every packet reads its hot set: one D$ line of ways.
    act.add(ConnTable::hotSetAddr(sig),
            sizeof(HotEntry) * HotIndex::kWays, mem::AccessKind::Load);

    if (op == net::FlowOp::Syn) {
        const std::uint8_t b = maglev_.pick(sig);
        act.add(maglev_.pickAddr(sig), 1, mem::AccessKind::Load);
        if (b == Maglev::kNone) {
            ++counters_.insertFailures;
            punt(act);
            return act;
        }
        const auto ir = table_.insert(sig, b);
        act.add(ConnTable::tableAddr(ir.firstBucket),
                ir.probes * sizeof(TableEntry), mem::AccessKind::Load);
        if (!ir.ok) {
            ++counters_.insertFailures;
            punt(act);
            return act;
        }
        act.add(ConnTable::tableAddr(ir.firstBucket),
                sizeof(TableEntry), mem::AccessKind::Store);
        act.add(ConnTable::hotSetAddr(sig), sizeof(HotEntry),
                mem::AccessKind::Store);
        if (!ir.existed) {
            ++counters_.inserts;
            counters_.peakFlows =
                std::max(counters_.peakFlows, table_.live());
        }
        forward(act, b);
        return act;
    }

    // DATA / FIN: look the connection up.
    auto lr = table_.lookup(sig);
    if (lr.probes > 0)
        act.add(ConnTable::tableAddr(lr.firstBucket),
                lr.probes * sizeof(TableEntry), mem::AccessKind::Load);
    if (lr.hotInstalled)
        act.add(ConnTable::hotSetAddr(sig), sizeof(HotEntry),
                mem::AccessKind::Store);
    if (!lr.hit) {
        ++counters_.misses;
        punt(act);
        return act;
    }
    if (lr.hotHit)
        ++counters_.hotHits;
    else
        ++counters_.tableHits;

    std::uint8_t b = lr.backend;
    if (!maglev_.alive(b)) {
        // Sticky backend died: lazily migrate this flow to a fresh
        // consistent-hash pick. Alive flows on other backends are
        // untouched — that is the consistency-under-churn invariant.
        const std::uint8_t nb = maglev_.pick(sig);
        act.add(maglev_.pickAddr(sig), 1, mem::AccessKind::Load);
        if (nb == Maglev::kNone) {
            if (op == net::FlowOp::Fin && table_.remove(sig).removed)
                ++counters_.removes;
            ++counters_.misses;
            punt(act);
            return act;
        }
        table_.reassign(sig, nb);
        act.add(ConnTable::tableAddr(lr.firstBucket),
                sizeof(TableEntry), mem::AccessKind::Store);
        ++counters_.migrations;
        b = nb;
    }

    if (op == net::FlowOp::Fin) {
        if (table_.remove(sig).removed)
            ++counters_.removes;
        act.add(ConnTable::tableAddr(lr.firstBucket),
                sizeof(TableEntry), mem::AccessKind::Store);
    }
    forward(act, b);
    return act;
}

sim::Task
LoadBalancer::handlerBody(active::HandlerContext &ctx)
{
    // Runs forever: the instance keeps its stream open for the whole
    // run (Host::demux precedent — suspended at simulation end).
    for (;;) {
        active::StreamChunk chunk = co_await ctx.nextChunk();
        co_await ctx.awaitValid(
            chunk, 0, std::min<std::uint32_t>(chunk.bytes, 64));

        sim::Tick cost = ctx.fetchCode(kCodeAddr, params_.codeBytes).ticks;
        cost += ctx.compute(params_.instructions).ticks;

        const Action act =
            processPacket(chunk.tag, ctx.sim().now());

        // Charge the table's memory traffic through the switch D$,
        // batched into one await (the stall is accounted per op).
        sim::Tick lookup_cost = 0;
        for (unsigned i = 0; i < act.opCount; ++i)
            lookup_cost += ctx.access(act.ops[i].addr, act.ops[i].bytes,
                                      act.ops[i].kind)
                               .ticks;
        cost += lookup_cost;
        if (chunk.telemetry)
            chunk.telemetry->noteLbLookup(lookup_cost);
        co_await sim::Delay{cost};

        if (act.punt)
            co_await ctx.send(puntNode_, chunk.bytes, std::nullopt,
                              chunk.payload, chunk.tag);
        else
            co_await ctx.send(backendNodes_[act.backend], chunk.bytes,
                              std::nullopt, chunk.payload, chunk.tag);
        ctx.deallocateOne(chunk.address);
    }
}

active::HandlerFn
LoadBalancer::makeHandler()
{
    return [this](active::HandlerContext &ctx) {
        return handlerBody(ctx);
    };
}

sim::Task
LoadBalancer::hostDrain(host::Host &lb_host)
{
    for (;;) {
        net::Message msg = co_await lb_host.appQueue().pop();
        cpu::HostCpu &cpu = lb_host.cpu();

        sim::Tick cost =
            cpu.fetchCode(kCodeAddr, params_.codeBytes).ticks;
        cost += cpu.compute(params_.instructions +
                            params_.hostExtraInstructions)
                    .ticks;

        const Action act = processPacket(msg.tag, cpu.now());
        for (unsigned i = 0; i < act.opCount; ++i)
            cost += cpu.touch(act.ops[i].addr, act.ops[i].bytes,
                              act.ops[i].kind)
                        .ticks;
        if (act.punt) {
            // The baseline host IS the fallback: unknown connections
            // are serviced right here instead of being forwarded.
            cost += cpu.compute(params_.puntInstructions).ticks;
        }
        co_await sim::Delay{cost};
        if (!act.punt) {
            co_await cpu.compute(32); // descriptor post
            lb_host.hca().sendMessage(backendNodes_[act.backend],
                                      msg.bytes, std::nullopt,
                                      msg.payload, msg.tag);
        }
    }
}

void
LoadBalancer::fillStats(apps::LbStats &out) const
{
    out = counters_;
    out.active = true;
    out.flowsTracked = table_.live();
    out.hotBytes = ConnTable::hotBytes();
    out.tableBytes = table_.memoryBytes();
    out.occupancy = static_cast<double>(table_.live()) /
                    static_cast<double>(table_.capacity());
}

} // namespace san::lb
