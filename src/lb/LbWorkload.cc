#include "lb/LbWorkload.hh"

#include <algorithm>

#include "obs/Hooks.hh"
#include "obs/Metrics.hh"

namespace san::lb {

namespace {

/**
 * One backend's application loop: service every delivered packet.
 * Runs forever; suspended at simulation end like Host::demux.
 */
sim::Task
backendDrain(host::Host &h, unsigned b, std::uint64_t service_instr,
             bool record, LbRunResult &res)
{
    for (;;) {
        net::Message msg = co_await h.appQueue().pop();
        co_await h.cpu().compute(service_instr);
        ++res.backendDelivered[b];
        if (record)
            res.deliveredBy[net::flowTagId(msg.tag)] |= 1ull << b;
    }
}

/** Active mode: the lb host services whatever the switch punted. */
sim::Task
puntDrain(host::Host &h, std::uint64_t punt_instr, LbRunResult &res)
{
    for (;;) {
        net::Message msg = co_await h.appQueue().pop();
        (void)msg;
        co_await h.cpu().compute(punt_instr);
        ++res.puntArrivals;
    }
}

} // namespace

LbRunResult
runLb(apps::Mode mode, const LbWorkloadParams &params)
{
    LbWorkloadParams p = params;
    const unsigned S = p.senders;
    const unsigned B = p.backends;

    apps::ClusterParams cp;
    cp.hosts = S + B + 1;
    cp.storageNodes = 0;
    cp.switchPorts =
        p.switchPorts != 0 ? p.switchPorts : cp.hosts + 1;
    cp.active.cpus = p.switchCpus;
    apps::Cluster cluster(cp);

    const unsigned lbHostIdx = S + B;
    std::vector<net::NodeId> backendNodes;
    backendNodes.reserve(B);
    for (unsigned b = 0; b < B; ++b)
        backendNodes.push_back(cluster.host(S + b).id());

    p.lb.backends = B;
    p.lb.tupleSeed = p.churn.seed;
    LoadBalancer balancer(p.lb, backendNodes,
                          cluster.host(lbHostIdx).id());
    globalBalancer() = &balancer;

    // Occupancy / punt / lookup timelines for --metrics-csv. The
    // Cluster constructor re-registered the component gauges just
    // above; columns latch at the first row, so appending here is
    // safe.
    if (obs::IntervalSampler *sampler = obs::globalSampler()) {
        obs::MetricsRegistry &m = sampler->registry();
        m.add("lb.flows", obs::GaugeKind::Gauge, [&balancer] {
            return static_cast<double>(balancer.table().live());
        });
        m.add("lb.occupancy", obs::GaugeKind::Gauge, [&balancer] {
            return static_cast<double>(balancer.table().live()) /
                   static_cast<double>(balancer.table().capacity());
        });
        m.add("lb.lookups", obs::GaugeKind::Rate, [&balancer] {
            return static_cast<double>(balancer.counters().lookups);
        });
        m.add("lb.punts", obs::GaugeKind::Rate, [&balancer] {
            return static_cast<double>(balancer.counters().punts);
        });
    }

    net::FlowChurnParams churn = p.churn;
    churn.active = apps::isActive(mode);
    // Active packets terminate at the switch (Switch::receive only
    // hands dst==self to the active layer); plain packets go to the
    // lb host, the software baseline.
    churn.dst = churn.active ? cluster.sw().id()
                             : cluster.host(lbHostIdx).id();
    churn.handlerId = kLbHandlerId;
    churn.handlerCpus = p.switchCpus;
    if (churn.spacing == 0) {
        // Pace each sender so the aggregate stays within the slowest
        // data plane's service rate (the host baseline, bounded by
        // its table misses): ~500 ns of service per packet across
        // `senders` competing pumps.
        churn.spacing = sim::ns(500) * S;
    }

    std::vector<net::Adapter *> senders;
    senders.reserve(S);
    for (unsigned s = 0; s < S; ++s)
        senders.push_back(&cluster.host(s).hca());
    net::FlowChurnGen gen(cluster.sim(), senders, churn);

    LbRunResult res;
    res.backendDelivered.assign(B, 0);

    if (apps::isActive(mode)) {
        cluster.sw().registerHandler(kLbHandlerId, "lb",
                                     balancer.makeHandler());
        cluster.sim().spawn(puntDrain(cluster.host(lbHostIdx),
                                      p.lb.puntInstructions, res));
    } else {
        cluster.sim().spawn(
            balancer.hostDrain(cluster.host(lbHostIdx)));
    }
    for (unsigned b = 0; b < B; ++b)
        cluster.sim().spawn(backendDrain(
            cluster.host(S + b), b, p.backendServiceInstructions,
            p.recordDeliveries, res));

    gen.start();
    res.stats = cluster.collect(mode);
    balancer.fillStats(res.stats.lb);
    res.gen = gen.counts();
    globalBalancer() = nullptr;
    return res;
}

} // namespace san::lb
