/**
 * @file
 * Two-stage connection table for the in-switch L4 load balancer.
 *
 * Stage 1 is a hot index sized to live entirely in the switch CPU's
 * 1 KB data cache (static_asserted below): 16 sets x 4 ways of
 * 16-byte entries holding the full 64-bit connection signature plus
 * the backend assignment. Stage 2 is a large open-addressing table
 * in switch-attached memory (modelled at a distinct address range so
 * every probe is charged through the D$/memory hierarchy), sized for
 * millions of concurrent connections.
 *
 * The table is purely functional state: every operation returns the
 * probe counts and hot-index activity the caller needs to charge the
 * CPU cost model (HandlerContext::access for the switch data plane,
 * Cpu::touch for the host baseline). No timing happens here, which
 * is what lets the in-switch and host-only paths share one
 * implementation and produce identical hit/miss decisions.
 *
 * Entries store the full signature, never a truncated tag: a lookup
 * can only return the backend that was inserted for that signature,
 * so hash collisions (astronomically unlikely at 64 bits) are merely
 * *consistent* — they can never mis-route one connection's packet to
 * another connection's backend mid-run.
 */

#ifndef SAN_LB_CONN_TABLE_HH
#define SAN_LB_CONN_TABLE_HH

#include <cassert>
#include <cstdint>
#include <vector>

namespace san::lb {

/** One hot-index way: full signature + assignment, cache-friendly. */
struct HotEntry {
    std::uint64_t sig = 0;
    std::uint8_t backend = 0;
    std::uint8_t valid = 0;
    std::uint8_t pad[6] = {};
};
static_assert(sizeof(HotEntry) == 16, "hot entry must pack to 16 B");

/** The D$-resident first stage: 16 sets x 4 ways = exactly 1 KB. */
struct HotIndex {
    static constexpr unsigned kSets = 16;
    static constexpr unsigned kWays = 4;
    HotEntry ways[kSets][kWays];
};
static_assert(sizeof(HotIndex) <= 1024,
              "the hot index must fit the switch CPU's 1 KB D$");

/** One second-stage bucket. */
struct TableEntry {
    std::uint64_t sig = 0;
    std::uint8_t backend = 0;
    std::uint8_t state = 0; //!< 0 empty, 1 live, 2 tombstone
    std::uint8_t pad[6] = {};
};
static_assert(sizeof(TableEntry) == 16, "bucket must pack to 16 B");

class ConnTable
{
  public:
    struct Params {
        /** Second-stage buckets; must be a power of two. Default
         * holds 10^6 flows at < 50% occupancy. */
        std::uint64_t capacity = 1ull << 21;
        /** Linear-probe cap: past this an insert fails (punt). */
        unsigned probeCap = 64;
    };

    /** Model address ranges, for charging the memory hierarchy. The
     * hot index sits at the bottom of switch-local memory so it maps
     * cleanly onto the 1 KB D$; the second stage lives far away so
     * probes always charge real cache traffic. */
    static constexpr std::uint64_t kHotBase = 0x0;
    static constexpr std::uint64_t kTableBase = 0x100000;

    struct LookupResult {
        bool hit = false;
        bool hotHit = false;      //!< resolved in stage 1
        std::uint8_t backend = 0;
        unsigned probes = 0;      //!< stage-2 buckets touched
        bool hotInstalled = false; //!< stage-2 hit promoted to stage 1
        std::uint64_t firstBucket = 0; //!< for access charging
    };

    struct InsertResult {
        bool ok = false;
        bool existed = false;     //!< signature was already live
        unsigned probes = 0;
        std::uint64_t firstBucket = 0;
    };

    struct RemoveResult {
        bool removed = false;
        std::uint8_t backend = 0;
        unsigned probes = 0;
        std::uint64_t firstBucket = 0;
    };

    explicit ConnTable(const Params &params) : probeCap_(params.probeCap)
    {
        assert(params.capacity >= 2 &&
               (params.capacity & (params.capacity - 1)) == 0 &&
               "capacity must be a power of two");
        mask_ = params.capacity - 1;
        table_.resize(params.capacity);
    }

    LookupResult
    lookup(std::uint64_t sig)
    {
        LookupResult r;
        r.firstBucket = bucketOf(sig);
        if (const HotEntry *e = hotFind(sig)) {
            r.hit = true;
            r.hotHit = true;
            r.backend = e->backend;
            return r;
        }
        const std::uint64_t idx = probeFind(sig, &r.probes);
        if (idx == kNotFound)
            return r;
        r.hit = true;
        r.backend = table_[idx].backend;
        hotInstall(sig, r.backend);
        r.hotInstalled = true;
        return r;
    }

    InsertResult
    insert(std::uint64_t sig, std::uint8_t backend)
    {
        InsertResult r;
        r.firstBucket = bucketOf(sig);
        std::uint64_t slot = kNotFound;
        std::uint64_t idx = r.firstBucket;
        for (unsigned p = 0; p < probeCap_; ++p) {
            TableEntry &e = table_[idx];
            ++r.probes;
            if (e.state == 1 && e.sig == sig) {
                // Re-open of a live signature: refresh the backend.
                e.backend = backend;
                hotInstall(sig, backend);
                r.ok = true;
                r.existed = true;
                return r;
            }
            if (e.state == 2) {
                if (slot == kNotFound)
                    slot = idx;
            } else if (e.state == 0) {
                if (slot == kNotFound)
                    slot = idx;
                break;
            }
            idx = (idx + 1) & mask_;
        }
        if (slot == kNotFound)
            return r; // probe cap hit: table too clustered/full
        table_[slot] = TableEntry{sig, backend, 1, {}};
        ++live_;
        hotInstall(sig, backend);
        r.ok = true;
        return r;
    }

    RemoveResult
    remove(std::uint64_t sig)
    {
        RemoveResult r;
        r.firstBucket = bucketOf(sig);
        hotInvalidate(sig);
        const std::uint64_t idx = probeFind(sig, &r.probes);
        if (idx == kNotFound)
            return r;
        r.removed = true;
        r.backend = table_[idx].backend;
        table_[idx].state = 2;
        --live_;
        return r;
    }

    /** Point a live signature at a new backend (flow migration after
     * its old backend died). Returns false if the flow is unknown. */
    bool
    reassign(std::uint64_t sig, std::uint8_t backend)
    {
        unsigned probes = 0;
        const std::uint64_t idx = probeFind(sig, &probes);
        if (idx == kNotFound)
            return false;
        table_[idx].backend = backend;
        hotInstall(sig, backend);
        return true;
    }

    std::uint64_t live() const { return live_; }
    std::uint64_t capacity() const { return mask_ + 1; }
    std::uint64_t
    memoryBytes() const
    {
        return capacity() * sizeof(TableEntry);
    }
    static constexpr std::uint64_t hotBytes() { return sizeof(HotIndex); }

    /** Model address of the hot set @p sig maps to (one D$ line's
     * worth of ways is read per lookup). */
    static constexpr std::uint64_t
    hotSetAddr(std::uint64_t sig)
    {
        return kHotBase +
               (sig & (HotIndex::kSets - 1)) * sizeof(HotEntry) *
                   HotIndex::kWays;
    }

    /** Model address of stage-2 bucket @p bucket. */
    static constexpr std::uint64_t
    tableAddr(std::uint64_t bucket)
    {
        return kTableBase + bucket * sizeof(TableEntry);
    }

  private:
    static constexpr std::uint64_t kNotFound = ~0ull;

    std::uint64_t bucketOf(std::uint64_t sig) const { return sig & mask_; }

    /** Stage-2 linear probe for a live @p sig; probe count out. */
    std::uint64_t
    probeFind(std::uint64_t sig, unsigned *probes) const
    {
        std::uint64_t idx = bucketOf(sig);
        for (unsigned p = 0; p < probeCap_; ++p) {
            const TableEntry &e = table_[idx];
            ++*probes;
            if (e.state == 0)
                return kNotFound;
            if (e.state == 1 && e.sig == sig)
                return idx;
            idx = (idx + 1) & mask_;
        }
        return kNotFound;
    }

    HotEntry *
    hotFind(std::uint64_t sig)
    {
        auto &set = hot_.ways[sig & (HotIndex::kSets - 1)];
        for (unsigned w = 0; w < HotIndex::kWays; ++w)
            if (set[w].valid && set[w].sig == sig)
                return &set[w];
        return nullptr;
    }

    void
    hotInstall(std::uint64_t sig, std::uint8_t backend)
    {
        const auto s =
            static_cast<unsigned>(sig & (HotIndex::kSets - 1));
        auto &set = hot_.ways[s];
        for (unsigned w = 0; w < HotIndex::kWays; ++w) {
            if (set[w].valid && set[w].sig == sig) {
                set[w].backend = backend;
                return;
            }
        }
        for (unsigned w = 0; w < HotIndex::kWays; ++w) {
            if (!set[w].valid) {
                set[w] = HotEntry{sig, backend, 1, {}};
                return;
            }
        }
        // Round-robin victim. The clock lives outside HotIndex — it
        // models a tiny rotating register per set, not cached state —
        // which keeps the data-cache-resident structure at 1 KB flat.
        const unsigned w = hotClock_[s]++ % HotIndex::kWays;
        set[w] = HotEntry{sig, backend, 1, {}};
    }

    void
    hotInvalidate(std::uint64_t sig)
    {
        auto &set = hot_.ways[sig & (HotIndex::kSets - 1)];
        for (unsigned w = 0; w < HotIndex::kWays; ++w)
            if (set[w].valid && set[w].sig == sig)
                set[w].valid = 0;
    }

    HotIndex hot_{};
    std::uint8_t hotClock_[HotIndex::kSets] = {};
    std::vector<TableEntry> table_;
    std::uint64_t mask_ = 0;
    unsigned probeCap_;
    std::uint64_t live_ = 0;
};

} // namespace san::lb

#endif // SAN_LB_CONN_TABLE_HH
