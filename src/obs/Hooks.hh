/**
 * @file
 * Process-wide observability hooks.
 *
 * Benchmarks construct their simulated systems deep inside per-app
 * run functions, so command-line-selected instrumentation cannot be
 * threaded through every call site. Instead the harness installs a
 * tracer here and cluster builders attach it to each Simulation they
 * create. A null tracer (the default) keeps every probe at a single
 * predictable branch.
 */

#ifndef SAN_OBS_HOOKS_HH
#define SAN_OBS_HOOKS_HH

#include "sim/Tracer.hh"

namespace san::obs {

class IntervalSampler;

/**
 * The tracer newly built simulations should attach, or nullptr.
 * Owned by whoever installed it (typically bench::init()).
 */
sim::Tracer *&globalTracer();

/**
 * The interval sampler newly built clusters should register their
 * gauges with and attach to their event queue, or nullptr. Owned by
 * whoever installed it (typically bench::init()).
 */
IntervalSampler *&globalSampler();

} // namespace san::obs

#endif // SAN_OBS_HOOKS_HH
