/**
 * @file
 * Run fingerprint: one 64-bit integer summarizing an entire run.
 *
 * Attached as an EventQueue observer, the fingerprint folds every
 * executed event's (tick, sequence-number) pair through a splitmix64
 * avalanche. Because event sequence numbers are assigned in schedule
 * order and ties break deterministically, two runs produce the same
 * fingerprint iff they executed the same events at the same times in
 * the same order — the strongest cheap determinism check available.
 * End-of-run statistic values are folded on top so a run that
 * somehow times identically but computes different numbers still
 * diverges.
 *
 * The fold is associative-free (order-sensitive) by design: a
 * reordered pair of same-tick events changes the value.
 */

#ifndef SAN_OBS_FINGERPRINT_HH
#define SAN_OBS_FINGERPRINT_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Simulation.hh"
#include "sim/Types.hh"

namespace san::obs {

/** Streaming 64-bit fingerprint of a simulation run. */
class RunFingerprint : public sim::EventQueue::Observer
{
  public:
    /** EventQueue::Observer: fold one executed event. */
    void
    onEvent(sim::Tick when, std::uint64_t seq) override
    {
        fold(when);
        fold(seq);
        ++events_;
    }

    /** Fold one 64-bit value into the hash. */
    void
    fold(std::uint64_t v)
    {
        hash_ = mix(hash_ ^ (v + 0x9e3779b97f4a7c15ull));
    }

    /** Fold a double by bit pattern (exact, not approximate). */
    void
    fold(double v)
    {
        // Canonicalize the two zero bit patterns; NaN payloads are
        // folded as-is (a NaN stat is itself a regression to catch).
        if (v == 0.0)
            v = 0.0;
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        fold(bits);
    }

    /** Fold a named end-of-run statistic value. */
    void
    foldStat(std::string_view name, double value)
    {
        // FNV-1a over the name keeps renames from colliding silently.
        std::uint64_t h = 0xcbf29ce484222325ull;
        for (const char c : name) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        fold(h);
        fold(value);
    }

    /** The fingerprint so far. */
    std::uint64_t value() const { return mix(hash_ ^ events_); }

    /** Events folded so far (sanity/debug aid). */
    std::uint64_t eventsFolded() const { return events_; }

    void
    reset()
    {
        hash_ = 0;
        events_ = 0;
    }

  private:
    /** splitmix64 finalizer: full-avalanche 64-bit mix. */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t hash_ = 0;
    std::uint64_t events_ = 0;
};

/**
 * Fingerprint of a sharded run: one streaming RunFingerprint per
 * shard queue, each folding its own shard's event stream in (tick,
 * seq) execution order, combined deterministically in shard-id
 * order. Because the partition and the window sequence depend only
 * on the topology — never on the thread count — each per-shard
 * stream is bit-identical across worker counts and repeat runs, and
 * so is the combined digest. This is the "merge per-shard event
 * streams in deterministic order, then fold" rule of DESIGN.md §14.
 */
class ShardedFingerprint
{
  public:
    /** Attach one observer per shard queue of @p sim (which must be
     *  sharded). Call once, before the run. */
    void
    attach(sim::Simulation &sim)
    {
        shards_.clear();
        for (std::size_t s = 0; s < sim.shardCount(); ++s) {
            shards_.push_back(std::make_unique<RunFingerprint>());
            sim.shardQueue(s).setObserver(shards_.back().get());
        }
    }

    std::size_t shardCount() const { return shards_.size(); }

    /** Shard @p s's own stream digest (tests compare these across
     *  thread counts directly). */
    const RunFingerprint &shard(std::size_t s) const
    {
        return *shards_.at(s);
    }

    /** Total events executed across all shards. */
    std::uint64_t
    eventsFolded() const
    {
        std::uint64_t n = 0;
        for (const auto &f : shards_)
            n += f->eventsFolded();
        return n;
    }

    /**
     * Fold the merged digest into @p into: the shard count, then
     * every shard's (value, events) in shard order. @p into may
     * carry prior folds (Cluster seeds its stat fingerprint this
     * way) or be fresh.
     */
    void
    combineInto(RunFingerprint &into) const
    {
        into.fold(static_cast<std::uint64_t>(shards_.size()));
        for (const auto &f : shards_) {
            into.fold(f->value());
            into.fold(f->eventsFolded());
        }
    }

    /** The combined run digest. */
    std::uint64_t
    value() const
    {
        RunFingerprint combined;
        combineInto(combined);
        return combined.value();
    }

  private:
    std::vector<std::unique_ptr<RunFingerprint>> shards_;
};

} // namespace san::obs

#endif // SAN_OBS_FINGERPRINT_HH
