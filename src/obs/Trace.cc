#include "obs/Trace.hh"

#include <charconv>
#include <ostream>

namespace san::obs {

namespace {

/** ps -> trace microseconds, in shortest round-trip decimal form. */
void
writeMicros(std::ostream &os, sim::Tick t)
{
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf),
                             static_cast<double>(t) / 1e6);
    os.write(buf, res.ptr - buf);
}

} // namespace

ChromeTracer::ChromeTracer(std::ostream &os) : os_(os)
{
    os_ << "[";
}

ChromeTracer::~ChromeTracer()
{
    finish();
}

void
ChromeTracer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    os_ << "\n]\n";
    os_.flush();
}

void
ChromeTracer::beginProcess(const std::string &name)
{
    ++pid_;
    nextTid_ = 1;
    metadata("process_name", pid_, 0, name);
}

int
ChromeTracer::tidFor(const std::string &track)
{
    if (pid_ == 0)
        beginProcess("run");
    const auto key = std::make_pair(pid_, track);
    auto it = tids_.find(key);
    if (it != tids_.end())
        return it->second;
    const int tid = nextTid_++;
    tids_.emplace(key, tid);
    metadata("thread_name", pid_, tid, track);
    return tid;
}

void
ChromeTracer::metadata(const char *name, int pid, int tid,
                       const std::string &value)
{
    close();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
    for (const char c : value) {
        if (c == '"' || c == '\\')
            os_ << '\\';
        os_ << c;
    }
    os_ << "\"}}";
    ++events_;
}

void
ChromeTracer::close()
{
    if (!first_)
        os_ << ",";
    os_ << "\n";
    first_ = false;
}

void
ChromeTracer::header(const char *ph, const char *name, int tid,
                     sim::Tick ts)
{
    close();
    os_ << "{\"name\":\"" << name << "\",\"cat\":\"sim\",\"ph\":\""
        << ph << "\",\"pid\":" << pid_ << ",\"tid\":" << tid
        << ",\"ts\":";
    writeMicros(os_, ts);
    ++events_;
}

void
ChromeTracer::span(const std::string &track, const char *name,
                   sim::Tick start, sim::Tick end)
{
    const int tid = tidFor(track);
    header("X", name, tid, start);
    os_ << ",\"dur\":";
    writeMicros(os_, end - start);
    os_ << "}";
}

void
ChromeTracer::instant(const std::string &track, const char *name,
                      sim::Tick at)
{
    const int tid = tidFor(track);
    header("i", name, tid, at);
    os_ << ",\"s\":\"t\"}";
}

void
ChromeTracer::asyncBegin(const std::string &track, const char *name,
                         std::uint64_t id, sim::Tick at)
{
    const int tid = tidFor(track);
    header("b", name, tid, at);
    os_ << ",\"id\":" << id << "}";
}

void
ChromeTracer::asyncEnd(const std::string &track, const char *name,
                       std::uint64_t id, sim::Tick at)
{
    const int tid = tidFor(track);
    header("e", name, tid, at);
    os_ << ",\"id\":" << id << "}";
}

// Flow events ("s"/"t"/"f") bind to the slice enclosing them on
// their track, so callers emit them inside (or as zero-duration
// anchors alongside) an "X" span at the same timestamp. The "f"
// event carries bp:"e" — bind to the enclosing slice — which is
// what Perfetto needs to draw the terminating arrow head.

void
ChromeTracer::flowBegin(const std::string &track, const char *name,
                        std::uint64_t id, sim::Tick at)
{
    const int tid = tidFor(track);
    header("s", name, tid, at);
    os_ << ",\"id\":" << id << "}";
}

void
ChromeTracer::flowStep(const std::string &track, const char *name,
                       std::uint64_t id, sim::Tick at)
{
    const int tid = tidFor(track);
    header("t", name, tid, at);
    os_ << ",\"id\":" << id << "}";
}

void
ChromeTracer::flowEnd(const std::string &track, const char *name,
                      std::uint64_t id, sim::Tick at)
{
    const int tid = tidFor(track);
    header("f", name, tid, at);
    os_ << ",\"bp\":\"e\",\"id\":" << id << "}";
}

void
ChromeTracer::counter(const std::string &track, const char *name,
                      sim::Tick at, double value)
{
    const int tid = tidFor(track);
    header("C", name, tid, at);
    os_ << ",\"args\":{\"value\":";
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    os_.write(buf, res.ptr - buf);
    os_ << "}}";
}

} // namespace san::obs
