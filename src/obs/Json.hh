/**
 * @file
 * Minimal streaming JSON writer for machine-readable stat dumps.
 *
 * Emits deterministic, byte-stable output suitable for golden-file
 * comparison: keys appear in emission order, numbers are formatted
 * with std::to_chars (shortest round-trip form, so the same double
 * always prints the same bytes on every conforming implementation),
 * and integral doubles print without an exponent or trailing ".0".
 */

#ifndef SAN_OBS_JSON_HH
#define SAN_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace san::obs {

/** Streaming writer producing pretty-printed, stable JSON. */
class JsonWriter
{
  public:
    /** Writes to @p os; @p indent spaces per nesting level. */
    explicit JsonWriter(std::ostream &os, int indent = 2);

    /** @{ Containers. Root value must be exactly one value. */
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** @} */

    /** Emit the key of the next member (inside an object). */
    JsonWriter &key(std::string_view k);

    /** @{ Scalar values. */
    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(int v);
    JsonWriter &value(bool b);
    /** @} */

    /** @{ key + value in one call, the common case. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }
    /** @} */

  private:
    void separate(bool is_key);
    void newlineIndent();
    void escaped(std::string_view s);

    std::ostream &os_;
    int indent_;
    /** One frame per open container: true = object, false = array. */
    std::vector<bool> stack_;
    bool firstInScope_ = true;
    bool afterKey_ = false;
};

} // namespace san::obs

#endif // SAN_OBS_JSON_HH
