#include "obs/Telemetry.hh"

#include <algorithm>
#include <map>

#include "sim/Pdes.hh"

namespace san::obs {

const char *
flowClassName(FlowClass fc)
{
    switch (fc) {
    case FlowClass::Data:
        return "data";
    case FlowClass::Active:
        return "active";
    case FlowClass::Control:
        return "control";
    }
    return "?";
}

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::TxQueue:
        return "txQueue";
    case Stage::PolicyWait:
        return "policyWait";
    case Stage::SwitchQueue:
        return "switchQueue";
    case Stage::HandlerCpu:
        return "handlerCpu";
    case Stage::EndToEnd:
        return "endToEnd";
    case Stage::LbLookup:
        return "lbLookup";
    }
    return "?";
}

const char *
hopStageName(HopStage s)
{
    switch (s) {
    case HopStage::Residency:
        return "residency";
    case HopStage::PolicyWait:
        return "policyWait";
    case HopStage::QueueWait:
        return "queueWait";
    }
    return "?";
}

void
Telemetry::beginRun(std::string label)
{
    label_ = std::move(label);
    seen_ = 0;
    nextUid_ = 1;
    packetsObserved_ = 0;
    bytesObserved_ = 0;
    records_.clear();
    slices_.clear();
    sketch_.reset();
}

void
Telemetry::enableShards(std::size_t shards)
{
    slices_.clear();
    for (std::size_t s = 0; s < shards; ++s)
        slices_.push_back(std::make_unique<Slice>());
}

Telemetry::Slice *
Telemetry::currentSlice()
{
    if (slices_.empty())
        return nullptr;
    const std::size_t s = sim::pdes::currentShard();
    return s < slices_.size() ? slices_[s].get() : nullptr;
}

std::shared_ptr<TelemetryRecord>
Telemetry::sample(std::uint32_t src, std::uint32_t dst, FlowClass fc,
                  sim::Tick now)
{
    if (rate_ == 0)
        return nullptr;
    if (Slice *sl = currentSlice()) {
        // Shard-local 1-in-N over this shard's own packet stream;
        // uids stripe by shard so the merged registry stays unique
        // and reproducible: uid = k * shards + shard + 1.
        if (sl->seen++ % rate_ != 0)
            return nullptr;
        auto rec = std::make_shared<TelemetryRecord>();
        rec->uid = sl->sampled++ * slices_.size() +
                   sim::pdes::currentShard() + 1;
        rec->flowClass = fc;
        rec->src = src;
        rec->dst = dst;
        rec->bornAt = now;
        sl->records.push_back(rec);
        return rec;
    }
    if (seen_++ % rate_ != 0)
        return nullptr;
    auto rec = std::make_shared<TelemetryRecord>();
    rec->uid = nextUid_++;
    rec->flowClass = fc;
    rec->src = src;
    rec->dst = dst;
    rec->bornAt = now;
    records_.push_back(rec);
    return rec;
}

const TelemetryStats &
Telemetry::finishRun()
{
    // Fold the per-shard slices first (sharded runs): counters and
    // sketches merge in shard order, records interleave by their
    // striped uid. Both orders depend only on the partition, so the
    // folded stats are identical for any worker-thread count.
    if (!slices_.empty()) {
        for (auto &sl : slices_) {
            packetsObserved_ += sl->packetsObserved;
            bytesObserved_ += sl->bytesObserved;
            sketch_.merge(sl->sketch);
            records_.insert(records_.end(), sl->records.begin(),
                            sl->records.end());
        }
        slices_.clear();
        std::sort(records_.begin(), records_.end(),
                  [](const auto &a, const auto &b) {
                      return a->uid < b->uid;
                  });
    }

    last_ = TelemetryStats{};
    last_.active = true;
    last_.sampleRate = rate_;
    last_.packetsObserved = packetsObserved_;
    last_.bytesObserved = bytesObserved_;

    struct FlowLat {
        std::uint64_t samples = 0;
        sim::Tick worst = 0;
        std::uint64_t sum = 0;
    };
    std::map<std::uint64_t, FlowLat> flows;

    // Records fold in creation (uid) order: byte-stable output.
    for (const auto &rec : records_) {
        ++last_.recordsSampled;
        last_.retransmitsSampled += rec->retransmits;
        last_.stampsDropped += rec->stampsDropped;
        if (!rec->delivered) {
            ++last_.recordsInFlight;
            continue;
        }
        ++last_.recordsDelivered;
        const auto fc = static_cast<std::size_t>(rec->flowClass);
        const sim::Tick e2e = rec->deliveredAt > rec->bornAt
                                  ? rec->deliveredAt - rec->bornAt
                                  : 0;
        auto &stages = last_.stage[fc];
        stages[static_cast<std::size_t>(Stage::EndToEnd)].add(e2e);
        stages[static_cast<std::size_t>(Stage::TxQueue)].add(
            rec->stage[static_cast<std::size_t>(Stage::TxQueue)]);
        stages[static_cast<std::size_t>(Stage::PolicyWait)].add(
            rec->stage[static_cast<std::size_t>(Stage::PolicyWait)]);
        stages[static_cast<std::size_t>(Stage::SwitchQueue)].add(
            rec->stage[static_cast<std::size_t>(Stage::SwitchQueue)]);
        // Handler CPU only means something for packets a handler
        // actually processed; folding zeros for pure transit
        // traffic would bury the signal.
        const sim::Tick hcpu =
            rec->stage[static_cast<std::size_t>(Stage::HandlerCpu)];
        if (hcpu > 0)
            stages[static_cast<std::size_t>(Stage::HandlerCpu)].add(
                hcpu);
        // Same rule for lb lookups: only lb-handled packets carry one.
        const sim::Tick lbl =
            rec->stage[static_cast<std::size_t>(Stage::LbLookup)];
        if (lbl > 0)
            stages[static_cast<std::size_t>(Stage::LbLookup)].add(lbl);
        for (std::size_t h = 0; h < rec->hopCount; ++h) {
            const TelemetryHop &hop = rec->hops[h];
            auto &hh = last_.hop[fc][h];
            hh[static_cast<std::size_t>(HopStage::Residency)].add(
                hop.egress - hop.ingress);
            hh[static_cast<std::size_t>(HopStage::PolicyWait)].add(
                hop.admitted - hop.ingress);
            hh[static_cast<std::size_t>(HopStage::QueueWait)].add(
                hop.egress - hop.admitted);
        }
        FlowLat &fl = flows[FlowSketch::keyOf(rec->src, rec->dst)];
        ++fl.samples;
        fl.worst = std::max(fl.worst, e2e);
        fl.sum += e2e;
    }

    for (const FlowSketch::Entry &e : sketch_.top(kTopFlows))
        last_.topByVolume.push_back(TelemetryFlowVolume{
            static_cast<std::uint32_t>(e.key >> 32),
            static_cast<std::uint32_t>(e.key), e.bytes, e.error});

    std::vector<std::pair<std::uint64_t, FlowLat>> byLat(flows.begin(),
                                                         flows.end());
    std::sort(byLat.begin(), byLat.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.worst != b.second.worst)
                      return a.second.worst > b.second.worst;
                  return a.first < b.first;
              });
    if (byLat.size() > kTopFlows)
        byLat.resize(kTopFlows);
    for (const auto &[key, fl] : byLat)
        last_.worstLatency.push_back(TelemetryFlowLatency{
            static_cast<std::uint32_t>(key >> 32),
            static_cast<std::uint32_t>(key), fl.samples, fl.worst,
            fl.samples ? fl.sum / fl.samples : 0});

    return last_;
}

Telemetry *&
globalTelemetry()
{
    static Telemetry *telemetry = nullptr;
    return telemetry;
}

} // namespace san::obs
