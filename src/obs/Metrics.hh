/**
 * @file
 * Time-series metrics: a pull-based gauge registry plus an interval
 * sampler producing byte-stable CSV/JSONL utilization timelines.
 *
 * Components register named sampling callbacks (no per-event
 * bookkeeping of their own); the IntervalSampler wakes at every
 * --metrics-interval boundary of simulated time and appends one row
 * per interval. It is implemented as a chained EventQueue observer
 * rather than a self-rescheduling sim process, for two reasons that
 * matter to reproducibility:
 *
 *  - sampling adds no events, so enabling metrics changes neither
 *    the simulated end time nor the run fingerprint, and
 *  - the queue still drains naturally, so `Simulation::run()`
 *    terminates exactly as it would without metrics.
 *
 * Counters only change when events execute, so observing the first
 * event at tick >= boundary B sees precisely the state "at B". A row
 * at B therefore reflects everything that happened in (prev row, B];
 * a run ending mid-interval flushes one final partial row at the end
 * tick (finishRun()).
 */

#ifndef SAN_OBS_METRICS_HH
#define SAN_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Tracer.hh"
#include "sim/Types.hh"

namespace san::obs {

/**
 * How a registered callback's cumulative value turns into the column
 * value of one row.
 */
enum class GaugeKind {
    Gauge,     //!< instantaneous value, emitted as-is (depth, occupancy)
    Rate,      //!< cumulative counter, emitted as delta per interval
    TimeShare, //!< cumulative ticks, emitted as delta / elapsed (0..1)
    IdleShare, //!< cumulative ticks, emitted as 1 - delta / elapsed
};

/** Named pull-based gauges, sampled together by an IntervalSampler. */
class MetricsRegistry
{
  public:
    using Sample = std::function<double()>;

    struct Entry {
        std::string name;
        GaugeKind kind;
        Sample fn;
        double prev = 0.0; //!< last sampled raw value (delta kinds)
    };

    /**
     * Register a gauge. Names are the CSV column headers, so they
     * must be unique; @throws std::invalid_argument on a duplicate.
     */
    void add(std::string name, GaugeKind kind, Sample fn);

    /** Drop every gauge (a new run registers a fresh component set). */
    void clear() { entries_.clear(); }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    std::vector<Entry> &entries() { return entries_; }
    const std::vector<Entry> &entries() const { return entries_; }

  private:
    std::vector<Entry> entries_;
};

/**
 * Register the event-kernel's own gauges on @p m:
 *
 *   sim.pending            pending-event depth (queue size)
 *   sim.horizon            distance from now to the next event, in
 *                          ticks (0 when the queue is empty)
 *   sim.ladder.drain       events in the ladder's current drain heap
 *   sim.ladder.bucketed    events parked in ring buckets (O(1) tier)
 *   sim.ladder.spill       far-future events in the spill heap
 *   sim.ladder.width_ps    current auto-tuned bucket width
 *
 * Makes queue-depth claims and the ladder's width tuning visible in
 * --metrics-csv timelines. Pull-based like every other gauge: no
 * events added, fingerprints unchanged.
 */
void registerKernelGauges(MetricsRegistry &m,
                          const sim::EventQueue &events);

/** Output flavour of the time series. */
enum class MetricsFormat { Csv, Jsonl };

/**
 * Samples every registered gauge at fixed intervals of simulated
 * time, appending one row per interval to a stream. Attach to one
 * run's EventQueue (chains in front of any installed observer, e.g.
 * the run fingerprint, and forwards to it) and finishRun() when the
 * run ends to flush the final partial row.
 */
class IntervalSampler final : public sim::EventQueue::Observer
{
  public:
    /** Rows go to @p os; one row per @p interval ticks. */
    IntervalSampler(std::ostream &os, sim::Tick interval,
                    MetricsFormat format = MetricsFormat::Csv);

    MetricsRegistry &registry() { return registry_; }

    /** Label for the rows of subsequent runs (bench mode name). */
    void setRunLabel(std::string label) { runLabel_ = std::move(label); }

    /**
     * Also emit every sampled value as a Chrome trace_event counter
     * ("ph":"C") on @p mirror, so timelines appear under the trace
     * viewer next to the span tracks. Null disables mirroring.
     */
    void setMirror(sim::Tracer *mirror) { mirror_ = mirror; }

    /**
     * Start observing @p events: chains in front of the currently
     * installed observer and resets per-run sampling state. Register
     * this run's gauges (registry().clear() + add) around this call;
     * columns are latched when the first row is written.
     */
    void attach(sim::EventQueue &events);

    /**
     * Flush rows up to @p end — including one final partial row if
     * the run ended mid-interval — and restore the chained observer.
     * No-op when not attached.
     */
    void finishRun(sim::Tick end);

    /** Data rows written so far (header lines excluded). */
    std::uint64_t rowsWritten() const { return rows_; }

    void onEvent(sim::Tick when, std::uint64_t seq) override;

  private:
    void row(sim::Tick at);
    void writeHeaderIfNeeded();

    std::ostream &os_;
    sim::Tick interval_;
    MetricsFormat format_;
    MetricsRegistry registry_;
    std::string runLabel_ = "run";
    sim::Tracer *mirror_ = nullptr;

    sim::EventQueue *events_ = nullptr;
    sim::EventQueue::Observer *inner_ = nullptr;
    sim::Tick nextSample_ = 0;
    sim::Tick prevRow_ = 0;
    bool anyRowThisRun_ = false;
    std::uint64_t rows_ = 0;
    /** Column names of the last header written (re-emitted if the
     * registered gauge set ever changes between runs). */
    std::vector<std::string> headerNames_;
};

} // namespace san::obs

#endif // SAN_OBS_METRICS_HH
