#include "obs/Hooks.hh"

namespace san::obs {

sim::Tracer *&
globalTracer()
{
    static sim::Tracer *tracer = nullptr;
    return tracer;
}

IntervalSampler *&
globalSampler()
{
    static IntervalSampler *sampler = nullptr;
    return sampler;
}

} // namespace san::obs
