#include "obs/Hooks.hh"

namespace san::obs {

sim::Tracer *&
globalTracer()
{
    static sim::Tracer *tracer = nullptr;
    return tracer;
}

} // namespace san::obs
