#include "obs/Json.hh"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace san::obs {

JsonWriter::JsonWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{}

void
JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indent_; ++s)
            os_ << ' ';
}

void
JsonWriter::separate([[maybe_unused]] bool is_key)
{
    if (afterKey_) {
        // A value directly following its key stays on the same line.
        assert(!is_key && "key after key");
        afterKey_ = false;
        return;
    }
    if (!stack_.empty()) {
        assert((is_key == stack_.back()) &&
               "keys only in objects, bare values only in arrays");
        if (!firstInScope_)
            os_ << ',';
        newlineIndent();
        firstInScope_ = false;
    }
}

void
JsonWriter::escaped(std::string_view s)
{
    os_ << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os_ << "\\\""; break;
          case '\\': os_ << "\\\\"; break;
          case '\n': os_ << "\\n"; break;
          case '\t': os_ << "\\t"; break;
          case '\r': os_ << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os_ << buf;
            } else {
                os_ << c;
            }
        }
    }
    os_ << '"';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate(false);
    os_ << '{';
    stack_.push_back(true);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    assert(!stack_.empty() && stack_.back());
    const bool empty = firstInScope_;
    stack_.pop_back();
    firstInScope_ = false;
    if (!empty)
        newlineIndent();
    os_ << '}';
    if (stack_.empty())
        os_ << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate(false);
    os_ << '[';
    stack_.push_back(false);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    assert(!stack_.empty() && !stack_.back());
    const bool empty = firstInScope_;
    stack_.pop_back();
    firstInScope_ = false;
    if (!empty)
        newlineIndent();
    os_ << ']';
    if (stack_.empty())
        os_ << '\n';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    separate(true);
    escaped(k);
    os_ << ": ";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separate(false);
    escaped(s);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string_view(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    // Integral doubles (tick counts, byte totals) print as integers;
    // everything else in shortest round-trip form, which is unique
    // for a given bit pattern and therefore golden-file stable.
    if (!std::isfinite(d)) {
        separate(false);
        os_ << "null"; // JSON has no NaN/inf
        return *this;
    }
    if (d == 0.0)
        d = 0.0; // collapse -0.0
    if (std::nearbyint(d) == d && std::fabs(d) < 9.007199254740992e15)
        return value(static_cast<std::int64_t>(d));
    separate(false);
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    os_.write(buf, res.ptr - buf);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate(false);
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os_.write(buf, res.ptr - buf);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate(false);
    char buf[24];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os_.write(buf, res.ptr - buf);
    return *this;
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool b)
{
    separate(false);
    os_ << (b ? "true" : "false");
    return *this;
}

} // namespace san::obs
