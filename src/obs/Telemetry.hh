/**
 * @file
 * In-band telemetry (INT) and per-packet latency lineage.
 *
 * A sampled packet carries a shared TelemetryRecord that every layer
 * stamps in place, P4-INT style: the source adapter stamps birth,
 * each link stamps transmit-queue wait, each switch hop stamps
 * ingress / policy admission / egress, handlers charge their CPU
 * ticks, and the reliable channel counts retransmissions. Nothing
 * here schedules events or changes timing: a stamp is a plain store
 * into the record at an already-executing event, so enabling
 * telemetry leaves the event stream — and therefore the run
 * fingerprint — byte-identical.
 *
 * When telemetry is off, globalTelemetry() is null and every hook is
 * one predictable branch (the same contract as fault::globalPlan()
 * and the tracer). Packets then carry a null shared_ptr and the
 * per-packet cost is zero.
 *
 * End-of-run folding turns the records into log-bucketed (HDR-style)
 * latency histograms per (flow class, hop, stage) with
 * exact-from-bucket percentiles, a top-K flow table from a
 * space-saving sketch sized to the 1 KB switch-CPU D$ budget (so it
 * could later run *as* an active handler), and the K worst-latency
 * flows. All derived numbers are integer ticks: byte-stable across
 * runs and compilers.
 */

#ifndef SAN_OBS_TELEMETRY_HH
#define SAN_OBS_TELEMETRY_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/Types.hh"

namespace san::obs {

/** Traffic class a record is folded under. */
enum class FlowClass : std::uint8_t {
    Data = 0,   //!< plain host<->host / storage traffic
    Active = 1, //!< packets addressed to a switch handler
    Control = 2 //!< reliable-channel ACK/NACK packets
};
inline constexpr std::size_t kFlowClassCount = 3;

const char *flowClassName(FlowClass fc);

/** Life stages a packet's wait time is attributed to. */
enum class Stage : std::uint8_t {
    TxQueue = 0,     //!< link send queue + credit stalls, all hops
    PolicyWait = 1,  //!< switch ingress -> policy admission (staging)
    SwitchQueue = 2, //!< policy admission -> egress (buffer + grant)
    HandlerCpu = 3,  //!< switch-CPU ticks charged while processing
    EndToEnd = 4,    //!< birth -> delivery
    LbLookup = 5     //!< connection-table lookup inside the lb handler
};
inline constexpr std::size_t kStageCount = 6;

const char *stageName(Stage s);

/** Per-hop breakdown dimensions (subsets of a hop's residency). */
enum class HopStage : std::uint8_t {
    Residency = 0,  //!< ingress -> egress
    PolicyWait = 1, //!< ingress -> admission
    QueueWait = 2   //!< admission -> egress
};
inline constexpr std::size_t kHopStageCount = 3;

const char *hopStageName(HopStage s);

/** INT hop entry: one switch traversal's stamps. */
struct TelemetryHop {
    std::uint32_t node = 0; //!< switch node id
    sim::Tick ingress = 0;  //!< routing done, handed to the policy
    sim::Tick admitted = 0; //!< accepted into policy buffers
    sim::Tick egress = 0;   //!< forwarded to the output link
};

/** INT records keep a fixed-size hop stack, like real INT headers. */
inline constexpr std::size_t kMaxTelemetryHops = 8;

/**
 * The in-band record one sampled packet carries (shared by every
 * copy of the packet, so retransmissions accumulate into the same
 * lineage). All note*() methods are monotonic-safe: stamps taken
 * from overlapping duplicate copies that would read backwards are
 * dropped and counted instead of recorded.
 */
struct TelemetryRecord {
    std::uint64_t uid = 0;
    FlowClass flowClass = FlowClass::Data;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    sim::Tick bornAt = 0;
    sim::Tick deliveredAt = 0;
    bool delivered = false;
    std::uint32_t retransmits = 0;
    std::uint8_t hopCount = 0;     //!< closed hops recorded below
    std::uint8_t stampsDropped = 0; //!< hops lost to overflow/reorder
    bool flowTraced = false;       //!< trace flow arrow already opened

    /** Cumulative wait per Stage (EndToEnd derived at fold time). */
    std::array<sim::Tick, kStageCount> stage{};
    std::array<TelemetryHop, kMaxTelemetryHops> hops{};

    /** @{ In-flight scratch for the copy currently traversing. */
    sim::Tick txEnqueuedAt = 0;
    sim::Tick hopIngressAt = 0;
    sim::Tick hopAdmittedAt = 0;
    std::uint32_t hopNode = 0;
    bool inTxQueue = false;
    bool hopOpen = false;
    bool hopAdmitStamped = false;
    /** @} */

    void
    noteTxEnqueue(sim::Tick now)
    {
        if (inTxQueue)
            return;
        inTxQueue = true;
        txEnqueuedAt = now;
    }

    void
    noteTxStart(sim::Tick now)
    {
        if (!inTxQueue)
            return;
        inTxQueue = false;
        if (now > txEnqueuedAt)
            stage[static_cast<std::size_t>(Stage::TxQueue)] +=
                now - txEnqueuedAt;
    }

    void
    noteSwitchIngress(std::uint32_t node, sim::Tick now)
    {
        hopOpen = true;
        hopAdmitStamped = false;
        hopNode = node;
        hopIngressAt = now;
    }

    void
    noteAdmitted(sim::Tick now)
    {
        if (!hopOpen)
            return;
        hopAdmitStamped = true;
        hopAdmittedAt = now;
    }

    void
    noteEgress(sim::Tick now)
    {
        if (!hopOpen)
            return;
        hopOpen = false;
        const sim::Tick admit =
            hopAdmitStamped ? hopAdmittedAt : hopIngressAt;
        if (admit < hopIngressAt || now < admit) {
            // Overlapping duplicate copies interleaved their stamps;
            // drop the inconsistent hop rather than record a
            // non-monotonic lineage.
            ++stampsDropped;
            return;
        }
        stage[static_cast<std::size_t>(Stage::PolicyWait)] +=
            admit - hopIngressAt;
        stage[static_cast<std::size_t>(Stage::SwitchQueue)] +=
            now - admit;
        if (hopCount < kMaxTelemetryHops)
            hops[hopCount++] =
                TelemetryHop{hopNode, hopIngressAt, admit, now};
        else
            ++stampsDropped;
    }

    void
    noteHandlerTicks(sim::Tick ticks)
    {
        stage[static_cast<std::size_t>(Stage::HandlerCpu)] += ticks;
    }

    /** Connection-lookup time inside the lb handler (a subset of
     * HandlerCpu, broken out so --latency-report can show what the
     * two-stage table costs per packet). */
    void
    noteLbLookup(sim::Tick ticks)
    {
        stage[static_cast<std::size_t>(Stage::LbLookup)] += ticks;
    }

    void
    noteDelivered(sim::Tick now)
    {
        if (delivered)
            return;
        delivered = true;
        deliveredAt = now;
        // A hop still open at delivery is the terminal hop: the
        // packet ended inside a switch (handler staging, control
        // consume) and will never egress, so its residency closes
        // here. End-host deliveries have no open hop — the last
        // switch's egress already closed it.
        if (hopOpen)
            noteEgress(now);
    }

    void noteRetransmit() { ++retransmits; }
};

/**
 * HDR-style log2-bucketed latency histogram over ticks. Bucket b
 * holds values whose bit width is b, i.e. [2^(b-1), 2^b - 1], with
 * bucket 0 reserved for exact zero; percentiles return the upper
 * edge of the bucket containing the rank, clamped to the observed
 * max — pure integer math, byte-stable everywhere.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kBuckets = 65; // bit_width(2^64-1)+1

    void
    add(sim::Tick v)
    {
        ++counts_[bucketOf(v)];
        ++samples_;
        sum_ += v;
        min_ = samples_ == 1 ? v : std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t samples() const { return samples_; }
    sim::Tick min() const { return samples_ ? min_ : 0; }
    sim::Tick max() const { return max_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }

    /**
     * Exact-from-bucket percentile: @p permyriad is the rank in
     * 1/10000ths (p50 = 5000, p99.9 = 9990). Returns the upper edge
     * of the bucket the ceil-rank falls in, clamped to max().
     */
    sim::Tick
    percentile(unsigned permyriad) const
    {
        if (samples_ == 0)
            return 0;
        std::uint64_t rank = (samples_ * permyriad + 9999) / 10000;
        if (rank == 0)
            rank = 1;
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < kBuckets; ++b) {
            cum += counts_[b];
            if (cum >= rank)
                return std::min(upperEdge(b), max_);
        }
        return max_;
    }

    static std::size_t
    bucketOf(sim::Tick v)
    {
        return static_cast<std::size_t>(std::bit_width(v));
    }

    static sim::Tick
    upperEdge(std::size_t b)
    {
        if (b == 0)
            return 0;
        if (b >= 64)
            return sim::maxTick;
        return (sim::Tick(1) << b) - 1;
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    sim::Tick min_ = 0;
    sim::Tick max_ = 0;
};

/**
 * Space-saving heavy-hitter sketch over (src, dst) flows, weighted
 * by wire bytes. Sized to fit the paper's 1 KB switch-CPU data
 * cache, so the same structure could later run as an active handler
 * on the switch itself. Deterministic: ties break on scan order.
 */
class FlowSketch
{
  public:
    static constexpr std::size_t kEntries = 42;

    struct Entry {
        std::uint64_t key = 0;   //!< src << 32 | dst
        std::uint64_t bytes = 0; //!< estimated volume
        std::uint64_t error = 0; //!< max overestimate at takeover
    };

    static std::uint64_t
    keyOf(std::uint32_t src, std::uint32_t dst)
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    void
    add(std::uint32_t src, std::uint32_t dst, std::uint64_t bytes)
    {
        const std::uint64_t key = keyOf(src, dst);
        std::size_t minIdx = 0;
        for (std::size_t i = 0; i < used_; ++i) {
            if (slots_[i].key == key) {
                slots_[i].bytes += bytes;
                return;
            }
            if (slots_[i].bytes < slots_[minIdx].bytes)
                minIdx = i;
        }
        if (used_ < kEntries) {
            slots_[used_++] = Entry{key, bytes, 0};
            return;
        }
        // Space-saving takeover: the new flow inherits the smallest
        // counter as its (bounded) overestimate.
        Entry &victim = slots_[minIdx];
        victim.error = victim.bytes;
        victim.bytes += bytes;
        victim.key = key;
    }

    std::size_t used() const { return used_; }

    /**
     * Fold @p other into this sketch: the standard space-saving
     * merge (counts and overestimate bounds add; a takeover inherits
     * the victim's count into the error bound). Entry order of
     * @p other is its insertion order, so merging the same sketches
     * in the same order is deterministic — the per-shard telemetry
     * slices rely on that.
     */
    void
    merge(const FlowSketch &other)
    {
        for (std::size_t i = 0; i < other.used_; ++i)
            addEntry(other.slots_[i]);
    }

    /** Top @p k entries by (bytes desc, key asc). */
    std::vector<Entry>
    top(std::size_t k) const
    {
        std::vector<Entry> out(slots_.begin(), slots_.begin() + used_);
        std::sort(out.begin(), out.end(),
                  [](const Entry &a, const Entry &b) {
                      if (a.bytes != b.bytes)
                          return a.bytes > b.bytes;
                      return a.key < b.key;
                  });
        if (out.size() > k)
            out.resize(k);
        return out;
    }

    void
    reset()
    {
        used_ = 0;
        slots_.fill(Entry{});
    }

  private:
    void
    addEntry(const Entry &e)
    {
        std::size_t minIdx = 0;
        for (std::size_t i = 0; i < used_; ++i) {
            if (slots_[i].key == e.key) {
                slots_[i].bytes += e.bytes;
                slots_[i].error += e.error;
                return;
            }
            if (slots_[i].bytes < slots_[minIdx].bytes)
                minIdx = i;
        }
        if (used_ < kEntries) {
            slots_[used_++] = e;
            return;
        }
        Entry &victim = slots_[minIdx];
        victim.error = victim.bytes + e.error;
        victim.bytes += e.bytes;
        victim.key = e.key;
    }

    std::array<Entry, kEntries> slots_{};
    std::size_t used_ = 0;
};

static_assert(sizeof(std::array<FlowSketch::Entry, FlowSketch::kEntries>)
                  <= 1024,
              "FlowSketch table must fit the 1 KB switch-CPU D$");

/** One flow's volume estimate, from the sketch. */
struct TelemetryFlowVolume {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t bytes = 0;
    std::uint64_t error = 0;
};

/** One flow's sampled end-to-end latency summary. */
struct TelemetryFlowLatency {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t samples = 0;
    sim::Tick worst = 0; //!< worst sampled end-to-end ticks
    sim::Tick mean = 0;  //!< sum / samples, truncated
};

/** Folded per-run telemetry, embedded into apps::RunStats. */
struct TelemetryStats {
    bool active = false;
    std::uint64_t sampleRate = 0;
    std::uint64_t recordsSampled = 0;
    std::uint64_t recordsDelivered = 0;
    std::uint64_t recordsInFlight = 0;
    std::uint64_t retransmitsSampled = 0;
    std::uint64_t stampsDropped = 0;
    std::uint64_t packetsObserved = 0;
    std::uint64_t bytesObserved = 0;

    /** stage[flow class][Stage] */
    std::array<std::array<LatencyHistogram, kStageCount>,
               kFlowClassCount>
        stage{};
    /** hop[flow class][hop index][HopStage] */
    std::array<std::array<std::array<LatencyHistogram, kHopStageCount>,
                          kMaxTelemetryHops>,
               kFlowClassCount>
        hop{};

    std::vector<TelemetryFlowVolume> topByVolume;
    std::vector<TelemetryFlowLatency> worstLatency;

    const LatencyHistogram &
    stageHist(FlowClass fc, Stage s) const
    {
        return stage[static_cast<std::size_t>(fc)]
                    [static_cast<std::size_t>(s)];
    }

    const LatencyHistogram &
    hopHist(FlowClass fc, std::size_t h, HopStage s) const
    {
        return hop[static_cast<std::size_t>(fc)][h]
                  [static_cast<std::size_t>(s)];
    }
};

/** Flows reported in the top-K volume / worst-latency tables. */
inline constexpr std::size_t kTopFlows = 8;

/**
 * The telemetry engine: deterministic 1-in-N sampler, record
 * registry, heavy-hitter sketch and end-of-run fold. One instance
 * serves a whole bench process; beginRun() resets per-run state so
 * every mode starts from the same sampler phase.
 */
class Telemetry
{
  public:
    /** @p sampleRate 0 arms the hooks but samples no packet (used
     * to measure the passive overhead); N >= 1 samples 1-in-N. */
    explicit Telemetry(std::uint64_t sampleRate)
        : rate_(sampleRate)
    {}

    std::uint64_t sampleRate() const { return rate_; }
    const std::string &runLabel() const { return label_; }

    /** Reset per-run state (sampler phase, records, sketch). Also
     * drops any per-shard slices — a sharded run re-arms them via
     * enableShards() once its partition is known. */
    void beginRun(std::string label);

    /**
     * Arm per-shard routing for a sharded run: sampling decisions,
     * records, packet counters, and the flow sketch all live in one
     * slice per shard, written only by that shard's worker — no hot-
     * path locks. finishRun() folds the slices deterministically
     * (records interleave by uid = k * shards + shard + 1; sketches
     * and counters merge in shard order), so the folded output is
     * stable across thread counts. Call after beginRun(), before
     * the run.
     */
    void enableShards(std::size_t shards);

    std::size_t shardSlices() const { return slices_.size(); }

    /**
     * Sampling decision for a packet being born. Returns the new
     * record (already registered and birth-stamped) or null when
     * this packet is not sampled.
     */
    std::shared_ptr<TelemetryRecord>
    sample(std::uint32_t src, std::uint32_t dst, FlowClass fc,
           sim::Tick now);

    /** Heavy-hitter accounting: every packet seen at a switch.
     * Rate 0 returns immediately — that state exists to measure the
     * passive hook cost (branch + call), not the sketch's work. */
    void
    countPacket(std::uint32_t src, std::uint32_t dst,
                std::uint64_t wireBytes)
    {
        if (rate_ == 0)
            return;
        if (Slice *sl = currentSlice()) {
            ++sl->packetsObserved;
            sl->bytesObserved += wireBytes;
            sl->sketch.add(src, dst, wireBytes);
            return;
        }
        ++packetsObserved_;
        bytesObserved_ += wireBytes;
        sketch_.add(src, dst, wireBytes);
    }

    /** Fold all records into histograms / flow tables; the result
     * stays readable via lastRun() until the next beginRun(). */
    const TelemetryStats &finishRun();

    const TelemetryStats &lastRun() const { return last_; }
    std::uint64_t recordsLive() const { return records_.size(); }

    /** The run's sampled records in uid order (valid until the next
     * beginRun); tests use this to assert stamp monotonicity. */
    const std::vector<std::shared_ptr<TelemetryRecord>> &
    records() const
    {
        return records_;
    }

  private:
    /** One shard's private telemetry state (sharded runs only). */
    struct Slice {
        std::uint64_t seen = 0;
        std::uint64_t sampled = 0; //!< uids issued by this slice
        std::uint64_t packetsObserved = 0;
        std::uint64_t bytesObserved = 0;
        std::vector<std::shared_ptr<TelemetryRecord>> records;
        FlowSketch sketch;
    };

    /** The calling shard's slice, or null (unsharded / not armed). */
    Slice *currentSlice();

    std::uint64_t rate_;
    std::uint64_t seen_ = 0;
    std::uint64_t nextUid_ = 1;
    std::uint64_t packetsObserved_ = 0;
    std::uint64_t bytesObserved_ = 0;
    std::vector<std::shared_ptr<TelemetryRecord>> records_;
    std::vector<std::unique_ptr<Slice>> slices_;
    FlowSketch sketch_;
    TelemetryStats last_;
    std::string label_ = "run";
};

/**
 * Global telemetry hook, null by default. Installed by the bench
 * harness when --telemetry is given; every instrumentation site
 * guards on it, so the disabled cost is one branch (the
 * fault::globalPlan() contract).
 */
Telemetry *&globalTelemetry();

} // namespace san::obs

#endif // SAN_OBS_TELEMETRY_HH
