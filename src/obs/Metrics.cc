#include "obs/Metrics.hh"

#include <cassert>
#include <charconv>
#include <ostream>
#include <stdexcept>

namespace san::obs {

namespace {

/** Shortest round-trip decimal form, integral values without ".0"
 * (same convention as obs::JsonWriter, so CSV and JSON agree). */
void
writeDouble(std::ostream &os, double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        v > -1e15 && v < 1e15) {
        auto res = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<std::int64_t>(v));
        os.write(buf, res.ptr - buf);
        return;
    }
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os.write(buf, res.ptr - buf);
}

/** Ladder-occupancy gauges exist only when the scheduler exposes tier
 * introspection — a SAN_FORCE_HEAP_KERNEL build (the A/B escape
 * hatch) simply omits the sim.ladder.* columns. Template so the
 * requires-check is dependent and the untaken branch is discarded. */
template <typename Sched>
void
addLadderGauges(MetricsRegistry &m, const Sched &sched)
{
    if constexpr (requires { sched.drainEvents(); }) {
        m.add("sim.ladder.drain", GaugeKind::Gauge, [&sched] {
            return static_cast<double>(sched.drainEvents());
        });
        m.add("sim.ladder.bucketed", GaugeKind::Gauge, [&sched] {
            return static_cast<double>(sched.bucketedEvents());
        });
        m.add("sim.ladder.spill", GaugeKind::Gauge, [&sched] {
            return static_cast<double>(sched.spillEvents());
        });
        m.add("sim.ladder.width_ps", GaugeKind::Gauge, [&sched] {
            return static_cast<double>(sched.bucketWidth());
        });
    }
}

} // namespace

void
registerKernelGauges(MetricsRegistry &m, const sim::EventQueue &events)
{
    m.add("sim.pending", GaugeKind::Gauge, [&events] {
        return static_cast<double>(events.size());
    });
    m.add("sim.horizon", GaugeKind::Gauge, [&events] {
        const sim::Tick next = events.nextEventTick();
        if (next == sim::maxTick)
            return 0.0;
        return static_cast<double>(next - events.now());
    });
    addLadderGauges(m, events.scheduler());
}

void
MetricsRegistry::add(std::string name, GaugeKind kind, Sample fn)
{
    for (const Entry &e : entries_)
        if (e.name == name)
            throw std::invalid_argument("duplicate gauge name: " + name);
    entries_.push_back(Entry{std::move(name), kind, std::move(fn)});
}

IntervalSampler::IntervalSampler(std::ostream &os, sim::Tick interval,
                                 MetricsFormat format)
    : os_(os), interval_(interval), format_(format)
{
    assert(interval_ > 0 && "metrics interval must be positive");
}

void
IntervalSampler::attach(sim::EventQueue &events)
{
    events_ = &events;
    inner_ = events.observer();
    events.setObserver(this);
    nextSample_ = 0;
    prevRow_ = 0;
    anyRowThisRun_ = false;
    for (auto &e : registry_.entries())
        e.prev = 0.0;
}

void
IntervalSampler::onEvent(sim::Tick when, std::uint64_t seq)
{
    // Counters only move inside event callbacks, so the current gauge
    // values ARE the state at every boundary in (last event, when].
    while (when >= nextSample_) {
        row(nextSample_);
        nextSample_ += interval_;
    }
    if (inner_)
        inner_->onEvent(when, seq);
}

void
IntervalSampler::finishRun(sim::Tick end)
{
    if (!events_)
        return;
    while (end >= nextSample_) {
        row(nextSample_);
        nextSample_ += interval_;
    }
    // A run ending mid-interval still deserves its tail: one partial
    // row at the end tick (unless a boundary row landed exactly there).
    if (!anyRowThisRun_ || prevRow_ < end)
        row(end);
    os_.flush();
    events_->setObserver(inner_);
    events_ = nullptr;
    inner_ = nullptr;
}

void
IntervalSampler::writeHeaderIfNeeded()
{
    if (format_ != MetricsFormat::Csv)
        return;
    std::vector<std::string> names;
    names.reserve(registry_.size());
    for (const auto &e : registry_.entries())
        names.push_back(e.name);
    if (names == headerNames_)
        return;
    headerNames_ = std::move(names);
    os_ << "run,time_ps";
    for (const std::string &n : headerNames_)
        os_ << ',' << n;
    os_ << '\n';
}

void
IntervalSampler::row(sim::Tick at)
{
    writeHeaderIfNeeded();
    const sim::Tick elapsed = anyRowThisRun_ ? at - prevRow_ : at;
    if (format_ == MetricsFormat::Csv) {
        os_ << runLabel_ << ',' << at;
    } else {
        os_ << "{\"run\":\"" << runLabel_ << "\",\"time_ps\":" << at;
    }
    for (auto &e : registry_.entries()) {
        const double raw = e.fn();
        double out = 0.0;
        switch (e.kind) {
          case GaugeKind::Gauge:
            out = raw;
            break;
          case GaugeKind::Rate:
            out = raw - e.prev;
            break;
          case GaugeKind::TimeShare:
            out = elapsed > 0
                      ? (raw - e.prev) / static_cast<double>(elapsed)
                      : 0.0;
            break;
          case GaugeKind::IdleShare:
            out = elapsed > 0
                      ? 1.0 -
                            (raw - e.prev) / static_cast<double>(elapsed)
                      : 0.0;
            break;
        }
        e.prev = raw;
        if (format_ == MetricsFormat::Csv) {
            os_ << ',';
        } else {
            os_ << ",\"" << e.name << "\":";
        }
        writeDouble(os_, out);
        if (mirror_)
            mirror_->counter("metrics", e.name.c_str(), at, out);
    }
    if (format_ == MetricsFormat::Jsonl)
        os_ << '}';
    os_ << '\n';
    prevRow_ = at;
    anyRowThisRun_ = true;
    ++rows_;
}

} // namespace san::obs
