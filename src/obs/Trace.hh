/**
 * @file
 * Chrome trace_event exporter.
 *
 * Implements sim::Tracer by writing the Trace Event Format's "JSON
 * array" flavour, loadable in chrome://tracing and Perfetto. Each
 * named track becomes a (pid, tid) pair: processes group runs (one
 * per benchmark mode, via beginProcess()), threads are component
 * tracks registered lazily on first use, with process_name /
 * thread_name metadata events so the viewer shows real names.
 *
 * Spans map to complete ("X") events, instants to "i", async
 * begin/end to nestable "b"/"e" pairs. Timestamps convert from the
 * simulator's picosecond ticks to the format's microseconds.
 */

#ifndef SAN_OBS_TRACE_HH
#define SAN_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/Tracer.hh"
#include "sim/Types.hh"

namespace san::obs {

/** sim::Tracer writing Chrome trace_event JSON to a stream. */
class ChromeTracer : public sim::Tracer
{
  public:
    /** Starts the JSON array on @p os. Call finish() before reading
     * the output; the destructor finishes if you forget. */
    explicit ChromeTracer(std::ostream &os);
    ~ChromeTracer() override;

    /**
     * Start a new trace process (e.g. one benchmark mode). Track
     * names registered afterwards belong to it. Without an explicit
     * call, everything lands in an implicit process "run".
     */
    void beginProcess(const std::string &name);

    /** Close the JSON array. Idempotent. */
    void finish();

    /** Events written so far (metadata included). */
    std::uint64_t eventsWritten() const { return events_; }

    void span(const std::string &track, const char *name,
              sim::Tick start, sim::Tick end) override;
    void instant(const std::string &track, const char *name,
                 sim::Tick at) override;
    void asyncBegin(const std::string &track, const char *name,
                    std::uint64_t id, sim::Tick at) override;
    void asyncEnd(const std::string &track, const char *name,
                  std::uint64_t id, sim::Tick at) override;
    void counter(const std::string &track, const char *name,
                 sim::Tick at, double value) override;
    void flowBegin(const std::string &track, const char *name,
                   std::uint64_t id, sim::Tick at) override;
    void flowStep(const std::string &track, const char *name,
                  std::uint64_t id, sim::Tick at) override;
    void flowEnd(const std::string &track, const char *name,
                 std::uint64_t id, sim::Tick at) override;

  private:
    int tidFor(const std::string &track);
    void metadata(const char *name, int pid, int tid,
                  const std::string &value);
    void header(const char *ph, const char *name, int tid,
                sim::Tick ts);
    void close();

    std::ostream &os_;
    bool first_ = true;
    bool finished_ = false;
    int pid_ = 0;
    int nextTid_ = 1;
    std::uint64_t events_ = 0;
    /** (pid, track name) -> tid. */
    std::map<std::pair<int, std::string>, int> tids_;
};

} // namespace san::obs

#endif // SAN_OBS_TRACE_HH
