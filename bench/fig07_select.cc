/**
 * @file
 * Figure 7 + Figure 8: database Select, four configurations.
 *
 * Paper-reported shape: "normal" performs worst (synchronous I/O
 * stalls); the other three are nearly identical (the workload is
 * I/O-bound); active host I/O traffic is 25% of non-active; average
 * normal host utilization is ~21x the active one; active host cache
 * misses drop sharply.
 *
 * Pass --quick to run a 16 MB table instead of the paper's 128 MB.
 */

#include "BenchCommon.hh"
#include "apps/Select.hh"

int
main(int argc, char **argv)
{
    san::apps::SelectParams params;
    if (san::bench::init(argc, argv).quick)
        params.tableBytes = 16ull * 1024 * 1024;
    return san::bench::runFigure(
        "Fig 7: Select", "Fig 8: Select",
        [&](san::apps::Mode m) { return runSelect(m, params); });
}
