/**
 * @file
 * Figure 7 + Figure 8: database Select, four configurations.
 *
 * Paper-reported shape: "normal" performs worst (synchronous I/O
 * stalls); the other three are nearly identical (the workload is
 * I/O-bound); active host I/O traffic is 25% of non-active; average
 * normal host utilization is ~21x the active one; active host cache
 * misses drop sharply.
 *
 * Pass --quick to run a 16 MB table instead of the paper's 128 MB.
 */

#include <cstring>
#include <iostream>

#include "apps/Select.hh"
#include "harness/Report.hh"

int
main(int argc, char **argv)
{
    san::apps::SelectParams params;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            params.tableBytes = 16ull * 1024 * 1024;

    san::harness::ModeResults results;
    for (std::size_t i = 0; i < san::apps::allModes.size(); ++i)
        results[i] = runSelect(san::apps::allModes[i], params);

    san::harness::printOverview(std::cout, "Fig 7: Select", results);
    san::harness::printBreakdown(std::cout, "Fig 8: Select", results);
    if (!san::harness::checksumsAgree(results)) {
        std::cerr << "CHECKSUM MISMATCH across modes\n";
        san::harness::printRaw(std::cerr, results);
        return 1;
    }
    std::cout << "matching records: " << results[0].checksum << "\n";
    return 0;
}
