/**
 * @file
 * Million-flow L4 load-balancer scale bench (DESIGN.md §12).
 *
 * Drives the flow-churn generator (net::FlowChurnGen) against the lb
 * subsystem twice: in-switch (Mode::Active, the balancer runs as an
 * ActiveSwitch handler on the 500 MHz embedded CPU with its 1 KB D$
 * hot index) and host-only (Mode::Normal, the identical state machine
 * on the lb host's 2 GHz CPU, every packet paying the software demux
 * tax). The default shape opens one million concurrent connections —
 * the acceptance scale — then churns a tail of them closed/reopened
 * while orphan packets exercise the punt path.
 *
 * All gated numbers are SIMULATED and deterministic per build:
 * connection-table lookups per simulated second, punt rate, peak
 * tracked flows, and table/hot-index memory. Prints a JSON report on
 * stdout (tools/perf_baseline, schema san-lb-scale-v1) and a table on
 * stderr. --min-lb-lookups X gates the Active-mode lookup rate.
 *
 * Shares the figure benches' observability flags (BenchCommon.hh):
 * --stats-json includes the lb section, --metrics-csv carries the
 * lb.flows / lb.occupancy / lb.lookups / lb.punts gauges, --telemetry
 * plus --latency-report breaks out the in-handler lookup stage, and
 * --fault-at TICK:backend-down:IDX kills a backend mid-run.
 *
 * Usage: lb_scale [--quick] [--lb-flows N] [--lb-senders N]
 *                 [--lb-backends N] [--lb-cpus N] [--lb-rounds N]
 *                 [--lb-bytes N] [--lb-close-every N]
 *                 [--lb-churn-opens N] [--lb-orphan-every N]
 *                 [--lb-table-capacity N] [--lb-seed N]
 *                 [--min-lb-lookups X] [shared observability flags]
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

#include "BenchCommon.hh"
#include "lb/LbWorkload.hh"

namespace {

using namespace san;

struct ModeRun {
    lb::LbRunResult res;
    double wallMs = 0.0;
    double cpuMs = 0.0;
};

/** Simulated milliseconds of one run (ticks are picoseconds). */
double
simMs(const apps::RunStats &s)
{
    return static_cast<double>(s.execTime) / 1e9;
}

/** Simulated connection-table lookups per simulated second. */
double
lookupsPerSec(const apps::RunStats &s)
{
    const double secs = static_cast<double>(s.execTime) / 1e12;
    return secs > 0 ? static_cast<double>(s.lb.lookups) / secs : 0.0;
}

/** Busy+stall milliseconds of the lb host's CPU (simulated). */
double
lbHostBusyMs(const apps::RunStats &s, unsigned lb_host)
{
    if (lb_host >= s.hosts.size())
        return 0.0;
    const cpu::TimeBreakdown &h = s.hosts[lb_host];
    return static_cast<double>(h.busy + h.stall) / 1e9;
}

/** One mode with the same per-run setup runFigure() performs. */
ModeRun
runMode(apps::Mode mode, const lb::LbWorkloadParams &params)
{
    if (bench::detail::traceState().tracer)
        bench::detail::traceState().tracer->beginProcess(
            apps::modeName(mode));
    if (bench::detail::metricsState().sampler)
        bench::detail::metricsState().sampler->setRunLabel(
            apps::modeName(mode));
    bench::installFaultPlan();
    if (obs::Telemetry *tel = obs::globalTelemetry())
        tel->beginRun(apps::modeName(mode));

    const auto t0 = std::chrono::steady_clock::now();
    const std::clock_t c0 = std::clock();
    ModeRun run;
    run.res = lb::runLb(mode, params);
    run.cpuMs = 1e3 * static_cast<double>(std::clock() - c0) /
                CLOCKS_PER_SEC;
    run.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return run;
}

void
printJsonMode(const char *label, const ModeRun &run, unsigned lb_host,
              bool last)
{
    const apps::LbStats &lb = run.res.stats.lb;
    std::printf(
        "    \"%s\": {\"lookups\": %llu, \"hot_hits\": %llu, "
        "\"table_hits\": %llu, \"misses\": %llu, "
        "\"inserts\": %llu, \"insert_failures\": %llu, "
        "\"removes\": %llu, \"forwarded\": %llu, \"punts\": %llu, "
        "\"migrations\": %llu, \"peak_flows\": %llu, "
        "\"flows_tracked\": %llu, \"occupancy\": %.4f, "
        "\"punt_rate\": %.6f, \"hot_hit_rate\": %.4f, "
        "\"sim_ms\": %.3f, \"lookups_per_sec\": %.0f, "
        "\"lb_host_busy_ms\": %.3f, \"events\": %llu}%s\n",
        label, static_cast<unsigned long long>(lb.lookups),
        static_cast<unsigned long long>(lb.hotHits),
        static_cast<unsigned long long>(lb.tableHits),
        static_cast<unsigned long long>(lb.misses),
        static_cast<unsigned long long>(lb.inserts),
        static_cast<unsigned long long>(lb.insertFailures),
        static_cast<unsigned long long>(lb.removes),
        static_cast<unsigned long long>(lb.forwarded),
        static_cast<unsigned long long>(lb.punts),
        static_cast<unsigned long long>(lb.migrations),
        static_cast<unsigned long long>(lb.peakFlows),
        static_cast<unsigned long long>(lb.flowsTracked), lb.occupancy,
        lb.lookups > 0 ? static_cast<double>(lb.punts) /
                             static_cast<double>(lb.lookups)
                       : 0.0,
        lb.lookups > 0 ? static_cast<double>(lb.hotHits) /
                             static_cast<double>(lb.lookups)
                       : 0.0,
        simMs(run.res.stats), lookupsPerSec(run.res.stats),
        lbHostBusyMs(run.res.stats, lb_host),
        static_cast<unsigned long long>(run.res.stats.eventsExecuted),
        last ? "" : ",");
}

void
printTableRow(const char *label, const ModeRun &run, unsigned lb_host)
{
    const apps::LbStats &lb = run.res.stats.lb;
    const double hot =
        lb.lookups > 0 ? 100.0 * static_cast<double>(lb.hotHits) /
                             static_cast<double>(lb.lookups)
                       : 0.0;
    std::fprintf(stderr,
                 "%-8s %11llu %6.2f%% %9llu %9llu %10llu %9.1f "
                 "%12.0f %11.2f\n",
                 label, static_cast<unsigned long long>(lb.lookups),
                 hot, static_cast<unsigned long long>(lb.punts),
                 static_cast<unsigned long long>(lb.migrations),
                 static_cast<unsigned long long>(lb.peakFlows),
                 simMs(run.res.stats), lookupsPerSec(run.res.stats),
                 lbHostBusyMs(run.res.stats, lb_host));
}

std::uint64_t
parseU64(const char *flag, const char *arg)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(arg, &end, 0);
    if (end == arg || *end != '\0') {
        std::fprintf(stderr, "error: %s needs an integer, got '%s'\n",
                     flag, arg);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions &opts = bench::init(argc, argv);

    lb::LbWorkloadParams params;
    params.churn.flows = 1'000'000;
    params.churn.dataRounds = 1;
    params.churn.packetBytes = 64;
    params.churn.closeEvery = 4;
    params.churn.churnOpens = 65'536;
    params.churn.orphanEvery = 1'024;
    params.churn.seed = 1;
    if (opts.quick) {
        params.churn.flows = 20'000;
        params.churn.churnOpens = 2'048;
        params.churn.orphanEvery = 256;
    }

    double minLbLookups = 0.0;
    for (int i = 1; i < argc; ++i) {
        auto take = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = take("--lb-flows"))
            params.churn.flows = parseU64("--lb-flows", v);
        else if (const char *v = take("--lb-senders"))
            params.senders =
                static_cast<unsigned>(parseU64("--lb-senders", v));
        else if (const char *v = take("--lb-backends"))
            params.backends =
                static_cast<unsigned>(parseU64("--lb-backends", v));
        else if (const char *v = take("--lb-cpus"))
            params.switchCpus =
                static_cast<unsigned>(parseU64("--lb-cpus", v));
        else if (const char *v = take("--lb-rounds"))
            params.churn.dataRounds =
                static_cast<unsigned>(parseU64("--lb-rounds", v));
        else if (const char *v = take("--lb-bytes"))
            params.churn.packetBytes = static_cast<std::uint32_t>(
                parseU64("--lb-bytes", v));
        else if (const char *v = take("--lb-close-every"))
            params.churn.closeEvery = static_cast<unsigned>(
                parseU64("--lb-close-every", v));
        else if (const char *v = take("--lb-churn-opens"))
            params.churn.churnOpens = static_cast<unsigned>(
                parseU64("--lb-churn-opens", v));
        else if (const char *v = take("--lb-orphan-every"))
            params.churn.orphanEvery = static_cast<unsigned>(
                parseU64("--lb-orphan-every", v));
        else if (const char *v = take("--lb-table-capacity"))
            params.lb.table.capacity =
                parseU64("--lb-table-capacity", v);
        else if (const char *v = take("--lb-seed"))
            params.churn.seed = parseU64("--lb-seed", v);
        else if (const char *v = take("--min-lb-lookups"))
            minLbLookups = std::strtod(v, nullptr);
        // Anything else is a shared flag bench::init() already
        // consumed (it tolerates ours the same way).
    }

    const unsigned lbHost = params.senders + params.backends;

    // Normal first, Active second — the allModes order the shared
    // reports use. The pref modes don't exist for this workload.
    const ModeRun normal = runMode(apps::Mode::Normal, params);
    const ModeRun active = runMode(apps::Mode::Active, params);

    // Conservation self-check: every generated packet either reached
    // a backend through the balancer or was punted.
    for (const ModeRun *run : {&normal, &active}) {
        const apps::LbStats &lb = run->res.stats.lb;
        if (run->res.gen.posted != lb.forwarded + lb.punts) {
            std::fprintf(stderr,
                         "FATAL: packet conservation broken in %s: "
                         "posted %llu != forwarded %llu + punts %llu "
                         "(lookups %llu)\n",
                         apps::modeName(run->res.stats.mode),
                         static_cast<unsigned long long>(
                             run->res.gen.posted),
                         static_cast<unsigned long long>(lb.forwarded),
                         static_cast<unsigned long long>(lb.punts),
                         static_cast<unsigned long long>(lb.lookups));
            return 1;
        }
    }

    std::fprintf(stderr,
                 "%-8s %11s %7s %9s %9s %10s %9s %12s %11s\n", "mode",
                 "lookups", "hot", "punts", "migrated", "peakflows",
                 "sim ms", "lookups/s", "lbhost ms");
    printTableRow("normal", normal, lbHost);
    printTableRow("active", active, lbHost);

    const double activeRate = lookupsPerSec(active.res.stats);
    const double normalRate = lookupsPerSec(normal.res.stats);
    const double normalBusy = lbHostBusyMs(normal.res.stats, lbHost);
    const double activeBusy = lbHostBusyMs(active.res.stats, lbHost);
    const double offload =
        activeBusy > 0 ? normalBusy / activeBusy : 0.0;
    const apps::LbStats &alb = active.res.stats.lb;

    std::printf(
        "{\n  \"schema\": \"san-lb-scale-v1\",\n"
        "  \"flows\": %llu,\n  \"senders\": %u,\n"
        "  \"backends\": %u,\n"
        "  \"switch_cpus\": %u,\n  \"data_rounds\": %u,\n"
        "  \"churn_opens\": %u,\n  \"orphan_every\": %u,\n"
        "  \"table_capacity\": %llu,\n  \"table_bytes\": %llu,\n"
        "  \"hot_bytes\": %llu,\n  \"modes\": {\n",
        static_cast<unsigned long long>(params.churn.flows),
        params.senders, params.backends, params.switchCpus,
        params.churn.dataRounds,
        params.churn.churnOpens, params.churn.orphanEvery,
        static_cast<unsigned long long>(params.lb.table.capacity),
        static_cast<unsigned long long>(alb.tableBytes),
        static_cast<unsigned long long>(alb.hotBytes));
    printJsonMode("normal", normal, lbHost, false);
    printJsonMode("active", active, lbHost, true);
    std::printf("  },\n  \"lb_lookups_per_sec\": %.0f,\n"
                "  \"normal_lookups_per_sec\": %.0f,\n"
                "  \"lb_host_offload\": %.4f\n}\n",
                activeRate, normalRate, offload);
    std::fprintf(stderr,
                 "headline: in-switch balancer sustains %.2fM "
                 "lookups/sec over %llu peak flows (host baseline "
                 "%.2fM), lb-host CPU offload %.1fx\n",
                 activeRate / 1e6,
                 static_cast<unsigned long long>(alb.peakFlows),
                 normalRate / 1e6, offload);

    if (opts.fingerprint) {
        std::printf("fingerprint[normal]: 0x%llx\n",
                    static_cast<unsigned long long>(
                        normal.res.stats.fingerprint));
        std::printf("fingerprint[active]: 0x%llx\n",
                    static_cast<unsigned long long>(
                        active.res.stats.fingerprint));
    }
    if (opts.perf) {
        const ModeRun *runs[] = {&normal, &active};
        for (const ModeRun *run : runs) {
            const double secs = run->cpuMs / 1e3;
            const double eps =
                secs > 0 ? static_cast<double>(
                               run->res.stats.eventsExecuted) /
                               secs
                         : 0.0;
            std::printf("perf[%s]: events=%llu wall_ms=%.3f "
                        "cpu_ms=%.3f events_per_sec=%.0f\n",
                        apps::modeName(run->res.stats.mode),
                        static_cast<unsigned long long>(
                            run->res.stats.eventsExecuted),
                        run->wallMs, run->cpuMs, eps);
        }
    }
    if (!opts.statsJsonPath.empty())
        bench::detail::writeStatsJson(opts.statsJsonPath, "lb_scale");
    if (!opts.latencyReportPath.empty()) {
        harness::ModeResults results;
        results[0] = normal.res.stats;
        results[2] = active.res.stats;
        std::ofstream out(opts.latencyReportPath);
        if (out)
            harness::printLatencyReport(out, "lb_scale", results);
        else
            std::fprintf(stderr,
                         "cannot open latency report file %s\n",
                         opts.latencyReportPath.c_str());
    }
    if (bench::detail::traceState().tracer)
        bench::detail::traceState().tracer->finish();

    if (minLbLookups > 0 && activeRate < minLbLookups) {
        std::fprintf(stderr,
                     "FAIL: active lookup rate %.0f/s below required "
                     "%.0f/s\n",
                     activeRate, minLbLookups);
        return 1;
    }
    return 0;
}
