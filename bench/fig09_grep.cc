/**
 * @file
 * Fig 9: Grep (overview: exec time, host utilization, host I/O traffic).
 */

#include "BenchCommon.hh"
#include "apps/Grep.hh"

int
main(int argc, char **argv)
{
    san::apps::GrepParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 9: Grep", "Fig 9: Grep",
        [&](san::apps::Mode m) { return runGrep(m, params); },
        true, false);
}
