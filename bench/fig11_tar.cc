/**
 * @file
 * Fig 11: Tar (overview: exec time, host utilization, host I/O traffic).
 */

#include "BenchCommon.hh"
#include "apps/Tar.hh"

int
main(int argc, char **argv)
{
    san::apps::TarParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 11: Tar", "Fig 11: Tar",
        [&](san::apps::Mode m) { return runTar(m, params); },
        true, false);
}
