/**
 * @file
 * Figure 17: MD5 with multiple switch processors.
 *
 * Paper-reported shape: with one switch CPU the active cases are
 * *slower* than normal (the 500 MHz embedded core does all the
 * chained work); the K-chain interleaved reformulation on 4 switch
 * CPUs recovers speedups of ~1.50 (no prefetch) and ~1.18 (with
 * prefetch).
 */

#include <cstdio>

#include "apps/Md5App.hh"

int
main()
{
    using namespace san::apps;
    Md5Params params;

    std::printf("Fig 17: MD5 with multiple switch CPUs (256 KB)\n");
    std::printf("%-18s %12s %10s %s\n", "config", "exec(ms)",
                "vs normal", "digest");

    // Normal baselines.
    RunStats normal = runMd5(Mode::Normal, params);
    RunStats normal_pref = runMd5(Mode::NormalPref, params);
    std::printf("%-18s %12.3f %10.2f %s\n", "normal",
                san::sim::toMillis(normal.execTime), 1.0,
                normal.checksum.c_str());
    std::printf("%-18s %12.3f %10.2f %s\n", "normal+pref",
                san::sim::toMillis(normal_pref.execTime), 1.0,
                normal_pref.checksum.c_str());

    for (unsigned cpus : {1u, 2u, 4u}) {
        params.switchCpus = cpus;
        RunStats a = runMd5(Mode::Active, params);
        RunStats ap = runMd5(Mode::ActivePref, params);
        char label[32];
        std::snprintf(label, sizeof(label), "active(%ucpu)", cpus);
        std::printf("%-18s %12.3f %10.2f %s\n", label,
                    san::sim::toMillis(a.execTime),
                    static_cast<double>(normal.execTime) /
                        static_cast<double>(a.execTime),
                    a.checksum.c_str());
        std::snprintf(label, sizeof(label), "active+pref(%ucpu)",
                      cpus);
        std::printf("%-18s %12.3f %10.2f %s\n", label,
                    san::sim::toMillis(ap.execTime),
                    static_cast<double>(normal_pref.execTime) /
                        static_cast<double>(ap.execTime),
                    ap.checksum.c_str());
    }
    return 0;
}
