/**
 * @file
 * Ablation: network MTU (and therefore data-buffer size).
 *
 * The paper fixes the MTU at 512 B and sizes each data buffer to one
 * MTU. Larger MTUs amortize per-packet costs (headers, dispatch,
 * per-chunk handler overhead) but raise per-buffer latency and
 * staging needs. Sweep the MTU for active+pref Grep and Select.
 */

#include <cstdio>

#include "apps/Grep.hh"
#include "apps/Select.hh"

using namespace san;
using namespace san::apps;

int
main()
{
    std::printf("Ablation: MTU / data-buffer size (active+pref)\n");
    std::printf("%8s %16s %16s\n", "MTU(B)", "grep exec(ms)",
                "select exec(ms)");

    for (unsigned mtu : {256u, 512u, 1024u, 2048u}) {
        GrepParams gp;
        gp.cluster.adapter.mtu = mtu;
        gp.cluster.active.buffers.bytes = mtu;
        RunStats grep = runGrep(Mode::ActivePref, gp);

        SelectParams sp;
        sp.tableBytes = 16ull * 1024 * 1024;
        sp.cluster.adapter.mtu = mtu;
        sp.cluster.active.buffers.bytes = mtu;
        RunStats select = runSelect(Mode::ActivePref, sp);

        std::printf("%8u %16.3f %16.3f\n", mtu,
                    sim::toMillis(grep.execTime),
                    sim::toMillis(select.execTime));
    }
    std::printf("\nThese workloads are disk-bound end to end, so the "
                "MTU moves\nper-chunk overheads (visible in switch "
                "utilization) more than\nexecution time — consistent "
                "with the paper treating the MTU as a\nfree "
                "configuration choice.\n");
    return 0;
}
