/**
 * @file
 * Table 2: collective reduction semantics. Demonstrates (and
 * verifies against a sequential reference) what Distributed Reduce
 * and Reduce-to-one compute, in both the normal (binomial tree) and
 * active (switch tree) implementations.
 */

#include <cstdio>

#include "apps/Reduction.hh"

int
main()
{
    using namespace san::apps;
    ReductionParams params;
    params.nodes = 8;

    std::printf("Table 2. Collective Reduction (p=%u, %u B vectors)\n",
                params.nodes, params.vectorBytes);
    std::printf("%-16s %-8s %-10s %-22s %s\n", "operation", "impl",
                "latency", "result(first/last/sum)", "correct");

    int failures = 0;
    struct Row {
        const char *name;
        ReduceKind kind;
    };
    const Row rows[2] = {{"Distr. Red.", ReduceKind::Distributed},
                         {"Reduce-to-one", ReduceKind::ToOne}};
    for (const Row &row : rows) {
        for (bool active : {false, true}) {
            ReductionRun run = runReduction(active, row.kind, params);
            std::printf("%-16s %-8s %8.2f us %-22s %s\n", row.name,
                        active ? "active" : "normal",
                        san::sim::toMicros(run.latency),
                        run.checksum.c_str(),
                        run.correct ? "yes" : "NO");
            failures += !run.correct;
        }
    }
    return failures == 0 ? 0 : 1;
}
