/**
 * @file
 * Figure 3: MPEG-filter overview (exec time, host utilization, host
 * I/O traffic across the four configurations).
 *
 * Paper-reported shape: normal+pref ~1.13x over normal; active cases
 * 1.23x / 1.36x over the corresponding normal cases; host I/O
 * traffic reduced by 36.5% (the P-frame share); switch CPU nearly
 * fully utilized in a balanced pipeline with the host.
 */

#include "BenchCommon.hh"
#include "apps/MpegFilter.hh"

int
main(int argc, char **argv)
{
    san::apps::MpegParams params;
    const san::bench::BenchOptions &opts =
        san::bench::init(argc, argv);
    if (opts.quick)
        params.fileBytes = 512 * 1024;
    params.cluster.threads = opts.threads;
    return san::bench::runFigure(
        "Fig 3: MPEG filter", "",
        [&](san::apps::Mode m) { return runMpegFilter(m, params); },
        true, false);
}
