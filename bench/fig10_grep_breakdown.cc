/**
 * @file
 * Fig 10: Grep (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/Grep.hh"

int
main(int argc, char **argv)
{
    san::apps::GrepParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 10: Grep", "Fig 10: Grep",
        [&](san::apps::Mode m) { return runGrep(m, params); },
        false, true);
}
