/**
 * @file
 * Fig 10: Grep (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/Grep.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::GrepParams>(
        argc, argv, "Fig 10: Grep", san::apps::runGrep);
}
