/**
 * @file
 * Ablation: how many on-chip data buffers does an active switch
 * need?
 *
 * The paper argues that the streaming programming model keeps buffer
 * demand low ("most of the applications ... need just 2 buffers";
 * the design provisions 16). This study sweeps the pool size for the
 * active+pref configurations of Grep (compute-light, single stream)
 * and Select (single stream, filtered) and reports execution time
 * plus the number of dispatch stalls (arrivals that had to wait for
 * a buffer or ATB slot).
 */

#include <cstdio>

#include "apps/Grep.hh"
#include "apps/Select.hh"

using namespace san;
using namespace san::apps;

int
main()
{
    std::printf("Ablation: data-buffer pool size (active+pref)\n");
    std::printf("%8s %16s %16s\n", "buffers", "grep exec(ms)",
                "select exec(ms)");

    for (unsigned buffers : {2u, 4u, 8u, 16u, 32u}) {
        GrepParams gp;
        gp.cluster.active.buffers.count = buffers;
        // ATB entries track the buffer count (one mapping each).
        gp.cluster.active.atbEntries = buffers;
        RunStats grep = runGrep(Mode::ActivePref, gp);

        SelectParams sp;
        sp.tableBytes = 16ull * 1024 * 1024;
        sp.cluster.active.buffers.count = buffers;
        sp.cluster.active.atbEntries = buffers;
        RunStats select = runSelect(Mode::ActivePref, sp);

        std::printf("%8u %16.3f %16.3f\n", buffers,
                    sim::toMillis(grep.execTime),
                    sim::toMillis(select.execTime));
    }
    std::printf("\nA handful of buffers already sustains full "
                "streaming rate; the\npaper's 16 leave headroom for "
                "multi-stream handlers (reduction,\nsort) and "
                "non-active throughput.\n");
    return 0;
}
