/**
 * @file
 * Switch queueing-policy comparison on the hotspot workloads the
 * policy lab targets (DESIGN.md §10).
 *
 * Two patterns from net/Traffic.hh, each run through four policies:
 *
 *   perm_hotspot  a ring permutation among 7 senders (a load a
 *                 non-blocking 8-port switch carries at line rate)
 *                 with 1/3 of each sender's messages aimed at a
 *                 receive-only hotspot. The finite hot burst piles up
 *                 inside the switch: a 64-cell bounded central queue
 *                 lets it head-of-line block the ring, per-input VOQs
 *                 absorb it (192 cells/input) and keep the ring
 *                 moving. This is the acceptance headline.
 *   incast        pure N-to-1. The hot link is the bottleneck under
 *                 every policy; what differs is fairness and queueing
 *                 delay, not aggregate throughput.
 *
 * Policies: fifo (central output queue bounded at 64 shared cells —
 * the realistic baseline), voq (VOQ + iSLIP), xpoint (buffered
 * crossbar), central (unbounded central queue — the paper's
 * idealization, an upper bound no real switch reaches).
 *
 * All numbers are simulated (deterministic, byte-stable): aggregate
 * goodput over the permutation window, permutation goodput and
 * latency, Jain fairness across senders, and the policy's HOL-block
 * counter. Prints a JSON report on stdout (tools/perf_baseline,
 * schema san-incast-policy-v1) and a table on stderr.
 * --min-voq-speedup X gates agg(voq)/agg(fifo) on perm_hotspot.
 *
 * Usage: incast_policy [--message-bytes N] [--perm N] [--hot N]
 *                      [--min-voq-speedup X]
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/Fabric.hh"
#include "net/Traffic.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::net;

struct RunSettings {
    std::uint32_t messageBytes = 4096;
    unsigned permMessages = 48;
    unsigned hotMessages = 24;
};

struct PolicyResult {
    std::string policy;
    TrafficReport report;
    std::uint64_t holBlocked = 0;
    std::uint64_t maxGrantWait = 0;
};

PolicyResult
runOne(TrafficParams::Pattern pattern, const std::string &spec,
       const RunSettings &s)
{
    const auto cfg = parsePolicySpec(spec);
    if (!cfg.has_value()) {
        std::fprintf(stderr, "FATAL: bad policy spec %s\n",
                     spec.c_str());
        std::exit(1);
    }

    sim::Simulation sim;
    Fabric fabric(sim);
    SwitchParams params;
    params.ports = 8;
    params.policy = *cfg;
    Switch &sw = fabric.addSwitch(params);
    std::vector<Adapter *> hosts;
    for (unsigned h = 0; h < 8; ++h) {
        Adapter &a = fabric.addAdapter("h" + std::to_string(h));
        fabric.connect(sw, h, a);
        hosts.push_back(&a);
    }
    fabric.computeRoutes();

    TrafficParams traffic;
    traffic.pattern = pattern;
    traffic.messageBytes = s.messageBytes;
    traffic.permMessages = s.permMessages;
    traffic.hotMessages = s.hotMessages;
    TrafficGen gen(sim, hosts, traffic);
    gen.start();
    sim.run();

    PolicyResult r;
    r.policy = sw.policy().name();
    r.report = gen.report();
    r.holBlocked = sw.policy().counters().holBlocked;
    r.maxGrantWait = sw.policy().maxGrantWaitRounds();
    return r;
}

const char *
patternName(TrafficParams::Pattern p)
{
    return p == TrafficParams::Pattern::Incast ? "incast"
                                               : "perm_hotspot";
}

void
printJsonResult(const char *label, const PolicyResult &r, bool last)
{
    const TrafficReport &t = r.report;
    std::printf(
        "      \"%s\": {\"policy\": \"%s\", \"agg_gbps\": %.4f, "
        "\"perm_goodput_gbps\": %.4f, \"perm_done_us\": %.3f, "
        "\"lat_mean_ns\": %.1f, \"lat_max_ns\": %.1f, "
        "\"jain\": %.4f, \"hol_blocked\": %llu, "
        "\"max_grant_wait\": %llu}%s\n",
        label, r.policy.c_str(), t.aggregateGBps, t.permGoodputGBps,
        static_cast<double>(t.permDoneAt) / 1e6, t.permLatencyMeanNs,
        t.permLatencyMaxNs, t.jainFairness,
        static_cast<unsigned long long>(r.holBlocked),
        static_cast<unsigned long long>(r.maxGrantWait),
        last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    RunSettings settings;
    double minVoqSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--message-bytes") == 0 &&
            i + 1 < argc) {
            settings.messageBytes = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--perm") == 0 && i + 1 < argc) {
            settings.permMessages = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc) {
            settings.hotMessages = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--min-voq-speedup") == 0 &&
                   i + 1 < argc) {
            minVoqSpeedup = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--message-bytes N] [--perm N] "
                         "[--hot N] [--min-voq-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }

    const char *specs[] = {"fifo", "voq", "xpoint", "central"};
    const TrafficParams::Pattern patterns[] = {
        TrafficParams::Pattern::PermutationHotspot,
        TrafficParams::Pattern::Incast,
    };

    double fifoAgg = 0.0, voqAgg = 0.0;
    std::printf("{\n  \"schema\": \"san-incast-policy-v1\",\n"
                "  \"message_bytes\": %u,\n  \"perm_messages\": %u,\n"
                "  \"hot_messages\": %u,\n  \"patterns\": {\n",
                settings.messageBytes, settings.permMessages,
                settings.hotMessages);
    for (std::size_t p = 0; p < 2; ++p) {
        const auto pattern = patterns[p];
        std::printf("    \"%s\": {\n", patternName(pattern));
        std::fprintf(stderr,
                     "%-14s %-16s %9s %9s %11s %9s %7s %8s\n",
                     patternName(pattern), "policy", "agg GB/s",
                     "perm GB/s", "latency ns", "done us", "jain",
                     "HOLblk");
        for (std::size_t i = 0; i < 4; ++i) {
            const PolicyResult r = runOne(pattern, specs[i], settings);
            printJsonResult(specs[i], r, i + 1 == 4);
            const TrafficReport &t = r.report;
            std::fprintf(stderr,
                         "%-14s %-16s %9.3f %9.3f %11.0f %9.1f "
                         "%7.4f %8llu\n",
                         "", r.policy.c_str(), t.aggregateGBps,
                         t.permGoodputGBps, t.permLatencyMeanNs,
                         static_cast<double>(t.permDoneAt) / 1e6,
                         t.jainFairness,
                         static_cast<unsigned long long>(r.holBlocked));
            if (pattern == TrafficParams::Pattern::PermutationHotspot) {
                if (std::strcmp(specs[i], "fifo") == 0)
                    fifoAgg = t.aggregateGBps;
                else if (std::strcmp(specs[i], "voq") == 0)
                    voqAgg = t.aggregateGBps;
            }
        }
        std::printf("    }%s\n", p + 1 < 2 ? "," : "");
    }
    const double voqSpeedup = fifoAgg > 0 ? voqAgg / fifoAgg : 0.0;
    std::printf("  },\n  \"voq_speedup\": %.4f\n}\n", voqSpeedup);
    std::fprintf(stderr,
                 "headline: VOQ+iSLIP %.2fx aggregate goodput over "
                 "the bounded FIFO on perm_hotspot\n",
                 voqSpeedup);

    if (minVoqSpeedup > 0 && voqSpeedup < minVoqSpeedup) {
        std::fprintf(stderr,
                     "FAIL: voq speedup %.2fx below required %.2fx\n",
                     voqSpeedup, minVoqSpeedup);
        return 1;
    }
    return 0;
}
