/**
 * @file
 * Figure 15: Reduce-to-one latency, normal (binomial/MST software
 * tree) vs active (switch-tree reduction), 2..128 nodes.
 *
 * Paper-reported shape: the active system's latency is nearly flat
 * in p (alpha + gamma + ceil(log_{N/2} p) * delta) while the normal
 * system grows as ceil(log2 p)(alpha + lambda); speedup reaches
 * ~5.61 at 128 nodes.
 */

#include <cstdio>

#include "apps/Reduction.hh"

int
main()
{
    using namespace san::apps;
    std::printf("Fig 15: Reduce-to-one (512 B vectors)\n");
    std::printf("%6s %14s %14s %9s %8s\n", "nodes", "normal(us)",
                "active(us)", "speedup", "correct");
    int failures = 0;
    for (unsigned p = 2; p <= 128; p *= 2) {
        ReductionParams params;
        params.nodes = p;
        ReductionRun normal =
            runReduction(false, ReduceKind::ToOne, params);
        ReductionRun active =
            runReduction(true, ReduceKind::ToOne, params);
        std::printf("%6u %14.2f %14.2f %9.2f %8s\n", p,
                    san::sim::toMicros(normal.latency),
                    san::sim::toMicros(active.latency),
                    static_cast<double>(normal.latency) /
                        static_cast<double>(active.latency),
                    (normal.correct && active.correct) ? "yes" : "NO");
        failures += !(normal.correct && active.correct);
    }
    return failures == 0 ? 0 : 1;
}
