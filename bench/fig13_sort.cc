/**
 * @file
 * Fig 13: Parallel sort (overview: exec time, host utilization, host I/O traffic).
 */

#include "BenchCommon.hh"
#include "apps/ParallelSort.hh"

int
main(int argc, char **argv)
{
    san::apps::SortParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 13: Parallel sort", "Fig 13: Parallel sort",
        [&](san::apps::Mode m) { return runParallelSort(m, params); },
        true, false);
}
