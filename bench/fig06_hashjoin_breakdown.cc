/**
 * @file
 * Fig 6: HashJoin (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/HashJoin.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::HashJoinParams>(
        argc, argv, "Fig 6: HashJoin", san::apps::runHashJoin,
        [](san::apps::HashJoinParams &p) {
            p.rBytes = 4ull * 1024 * 1024;
            p.sBytes = 16ull * 1024 * 1024;
        });
}
