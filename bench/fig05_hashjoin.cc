/**
 * @file
 * Fig 5: HashJoin (overview: exec time, host utilization, host I/O traffic).
 */

#include "BenchCommon.hh"
#include "apps/HashJoin.hh"

int
main(int argc, char **argv)
{
    san::apps::HashJoinParams params;
    if (san::bench::init(argc, argv).quick) {
        params.rBytes = 4ull * 1024 * 1024;
        params.sBytes = 16ull * 1024 * 1024;
    }
    return san::bench::runFigure(
        "Fig 5: HashJoin", "Fig 5: HashJoin",
        [&](san::apps::Mode m) { return runHashJoin(m, params); },
        true, false);
}
