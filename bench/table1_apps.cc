/**
 * @file
 * Table 1: applications and problem sizes. Regenerated from the
 * workload parameter structs so the table always reflects what the
 * benches actually run.
 */

#include <cstdio>

#include "apps/Grep.hh"
#include "apps/HashJoin.hh"
#include "apps/Md5App.hh"
#include "apps/MpegFilter.hh"
#include "apps/ParallelSort.hh"
#include "apps/Reduction.hh"
#include "apps/Select.hh"
#include "apps/Tar.hh"

int
main()
{
    using namespace san::apps;
    MpegParams mpeg;
    HashJoinParams hj;
    SelectParams sel;
    GrepParams grep;
    TarParams tar;
    SortParams sort;
    Md5Params md5;
    ReductionParams red;

    std::printf("Table 1. Applications and Problem Sizes\n");
    std::printf("%-22s %s\n", "Applications", "Input Data Size (Bytes)");
    std::printf("%-22s %llu\n", "MPEG filter",
                static_cast<unsigned long long>(mpeg.fileBytes));
    std::printf("%-22s %lluM x %lluM\n", "HashJoin",
                static_cast<unsigned long long>(hj.rBytes >> 20),
                static_cast<unsigned long long>(hj.sBytes >> 20));
    std::printf("%-22s %lluM\n", "Select",
                static_cast<unsigned long long>(sel.tableBytes >> 20));
    std::printf("%-22s %llu\n", "Grep",
                static_cast<unsigned long long>(grep.fileBytes));
    std::printf("%-22s %lluM\n", "Tar",
                static_cast<unsigned long long>(tar.totalBytes >> 20));
    std::printf("%-22s %lluM\n", "Parallel sort",
                static_cast<unsigned long long>(sort.totalBytes >> 20));
    std::printf("%-22s %lluK\n", "MD5",
                static_cast<unsigned long long>(md5.fileBytes >> 10));
    std::printf("%-22s %u\n", "Collective Reduction",
                red.vectorBytes);
    return 0;
}
