/**
 * @file
 * google-benchmark microbenches of the simulation substrate: they
 * keep the kernel fast enough that the 128 MB table scans stay
 * interactive, and act as performance regression guards.
 */

#include <benchmark/benchmark.h>

#include "apps/Md5.hh"
#include "mem/Cache.hh"
#include "mem/MemorySystem.hh"
#include "sim/EventQueue.hh"
#include "sim/Random.hh"
#include "sim/Simulation.hh"
#include "sim/Sync.hh"

namespace {

using namespace san;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::Random rng(7);
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sum = 0;
        for (int i = 0; i < n; ++i)
            q.schedule(rng.below(1'000'000),
                       [&sum, i] { sum += static_cast<unsigned>(i); });
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_CacheStreamingAccess(benchmark::State &state)
{
    mem::Cache cache(
        mem::CacheParams{"bench", 512 * 1024, 2, 128, false});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        cache.access(addr, false);
        addr += 64;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheStreamingAccess);

void
BM_CacheRandomClassified(benchmark::State &state)
{
    mem::Cache cache(mem::CacheParams{"bench", 64 * 1024, 2, 128, true});
    sim::Random rng(3);
    for (auto _ : state)
        cache.access(rng.below(16 * 1024 * 1024), rng.chance(0.3));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheRandomClassified);

void
BM_MemorySystemStreaming(benchmark::State &state)
{
    mem::MemorySystem ms(mem::hostMemoryParams());
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ms.dataAccess(addr, 128, mem::AccessKind::Load, 0));
        addr += 128;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySystemStreaming);

void
BM_ChannelPingPong(benchmark::State &state)
{
    const int msgs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulation s;
        sim::Channel<int> ch(s);
        s.spawn([](sim::Channel<int> &c, int n) -> sim::Task {
            for (int i = 0; i < n; ++i) {
                co_await sim::Delay{1000};
                c.push(i);
            }
        }(ch, msgs));
        s.spawn([](sim::Channel<int> &c, int n) -> sim::Task {
            for (int i = 0; i < n; ++i)
                benchmark::DoNotOptimize(co_await c.pop());
        }(ch, msgs));
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1024);

void
BM_Md5Throughput(benchmark::State &state)
{
    std::vector<std::uint8_t> data(64 * 1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31);
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::md5(data));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Md5Throughput);

} // namespace

BENCHMARK_MAIN();
