/**
 * @file
 * Ablation: cache-line valid bits in the data buffers.
 *
 * The paper credits the per-line valid bits (with the separated
 * control/data paths) with letting the switch CPU start processing a
 * message before its copy completes. Two measurements:
 *
 * 1. Direct: the time from message injection until a handler's first
 *    read of byte 0 unblocks, as a function of valid-bit granularity
 *    (coarser bits delay the first touch by up to the remaining
 *    serialization of the buffer).
 *
 * 2. System-level: switch-tree reduction latency. Here all child
 *    vectors arrive concurrently while the combine itself is cheap,
 *    so granularity barely moves end-to-end latency — the honest
 *    conclusion being that valid bits buy per-message reaction time,
 *    not bulk throughput, exactly the property the collective
 *    handler's "start computation without waiting for the whole
 *    message" claim relies on.
 */

#include <cstdio>

#include "apps/Cluster.hh"
#include "apps/Reduction.hh"

using namespace san;
using namespace san::apps;

namespace {

/** Dispatch-to-first-byte-readable latency for one 512 B message. */
sim::Tick
firstTouchLatency(unsigned line_bytes)
{
    ClusterParams cp;
    cp.active.buffers.lineBytes = line_bytes;
    Cluster cluster(cp);
    auto &sw = cluster.sw();
    sim::Tick seen = 0, readable = 0;
    sw.registerHandler(1, "probe",
                       [&](active::HandlerContext &ctx) -> sim::Task {
        active::StreamChunk c = co_await ctx.nextChunk();
        seen = ctx.sim().now();
        co_await ctx.awaitValid(c, 0, 1); // first byte only
        readable = ctx.sim().now();
        ctx.deallocateThrough(c.address + c.bytes);
    });
    cluster.sim().spawn([](host::Host &h, net::NodeId sw_id) -> sim::Task {
        co_await h.send(sw_id, 512, net::ActiveHeader{1, 0, 0});
    }(cluster.host(), sw.id()));
    cluster.sim().run();
    return readable - seen;
}

} // namespace

int
main()
{
    std::printf("Ablation 1: handler wait for the first byte of a "
                "512 B message\n");
    std::printf("%12s %22s\n", "line bytes", "extra wait (ns)");
    for (unsigned line : {32u, 64u, 128u, 256u, 512u})
        std::printf("%12u %22.0f\n", line,
                    static_cast<double>(firstTouchLatency(line)) / 1000);

    std::printf("\nAblation 2: active reduce-to-one latency (us)\n");
    std::printf("%12s %10s %10s %10s\n", "line bytes", "p=8", "p=32",
                "p=128");
    for (unsigned line : {32u, 128u, 512u}) {
        std::printf("%12u", line);
        for (unsigned nodes : {8u, 32u, 128u}) {
            ReductionParams params;
            params.nodes = nodes;
            params.switchConfig.buffers.lineBytes = line;
            ReductionRun run =
                runReduction(true, ReduceKind::ToOne, params);
            std::printf(" %10.2f", sim::toMicros(run.latency));
            if (!run.correct)
                return 1;
        }
        std::printf("\n");
    }
    std::printf("\nFine valid bits cut per-message reaction time "
                "(ablation 1) but the\nreduction's end-to-end latency "
                "(ablation 2) is insensitive: child\nvectors arrive "
                "concurrently and the combine is cheap, so only the\n"
                "first message's early lines are on the critical "
                "path.\n");
    return 0;
}
