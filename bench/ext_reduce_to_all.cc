/**
 * @file
 * Extension experiment: Reduce-to-all.
 *
 * The paper evaluates Reduce-to-one and Distributed Reduce and notes
 * that "results for Reduce-to-all are similar to those for
 * Reduce-to-one". This bench completes the set: the normal
 * implementation is recursive-doubling allreduce (log2 p full-vector
 * exchange rounds), the active one reduces up the switch tree and
 * broadcasts the result from the root. Every node's result vector is
 * verified against the sequential reference.
 */

#include <cstdio>

#include "apps/Reduction.hh"

int
main()
{
    using namespace san::apps;
    std::printf("Extension: Reduce-to-all (512 B vectors)\n");
    std::printf("%6s %14s %14s %9s %8s\n", "nodes", "normal(us)",
                "active(us)", "speedup", "correct");
    int failures = 0;
    for (unsigned p = 2; p <= 128; p *= 2) {
        ReductionParams params;
        params.nodes = p;
        ReductionRun normal =
            runReduction(false, ReduceKind::ToAll, params);
        ReductionRun active =
            runReduction(true, ReduceKind::ToAll, params);
        std::printf("%6u %14.2f %14.2f %9.2f %8s\n", p,
                    san::sim::toMicros(normal.latency),
                    san::sim::toMicros(active.latency),
                    static_cast<double>(normal.latency) /
                        static_cast<double>(active.latency),
                    (normal.correct && active.correct) ? "yes" : "NO");
        failures += !(normal.correct && active.correct);
    }
    std::printf("\nAs the paper asserts, the curves track "
                "Reduce-to-one: the switch tree\nabsorbs the log2(p) "
                "software rounds; only the final broadcast scales\n"
                "with p.\n");
    return failures == 0 ? 0 : 1;
}
