/**
 * @file
 * Active-vs-normal at fabric scale: handler placement on multi-switch
 * topologies (DESIGN.md §13).
 *
 * Builds the net::Topology fabrics — k=4 and k=8 fat-trees (16 / 128
 * hosts) and a dragonfly a=4,p=4,h=2 (144 hosts) — entirely out of
 * ActiveSwitches and replays the paper's filter-offload experiment
 * across handler placements. Every host except a collector streams
 * messages; a filter handler passes 1/16th of the bytes on to the
 * collector. Where the filter runs decides what the fabric carries:
 *
 *   normal  no handler — raw streams converge on the collector host,
 *           whose single edge link is the incast bottleneck.
 *   edge    the filter runs on each sender's own edge switch /
 *           router: full distribution, only matches cross the fabric.
 *   mid     one concentration point per group (a pod's first
 *           aggregation switch; a dragonfly group's first router).
 *   hub     one switch for everything (fat-tree core 0 / the
 *           collector's router) — active, but maximally concentrated.
 *
 * Also in this bench: the fabric-wide traffic patterns (uniform /
 * adversarial permutation / group-local) at scale on every topology,
 * a 10-seed x 2-run fingerprint-stability check, and a route-lookup
 * scaling micro (1 K vs 16 K routing entries — the hot-path lookup
 * must not be O(#destinations); the wall-clock ratio is gated).
 *
 * All simulated numbers are deterministic and byte-stable. Prints a
 * JSON report on stdout (tools/perf_baseline, schema
 * san-fabric-scale-v1) and tables on stderr. Gates:
 * --min-edge-speedup X on source_gbps(edge)/source_gbps(normal) per
 * topology; --max-lookup-ratio X on the route-lookup micro.
 *
 * Shares the figure benches' observability flags (BenchCommon.hh):
 * --telemetry plus --latency-report writes per-placement lineage
 * tables (the terminal handler hop included), --fingerprint prints
 * per-run fingerprints.
 *
 * Usage: fabric_scale [--quick] [--messages N] [--message-bytes N]
 *                     [--seeds N] [--min-edge-speedup X]
 *                     [--max-lookup-ratio X] [shared flags]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "BenchCommon.hh"
#include "active/ActiveSwitch.hh"
#include "net/Topology.hh"
#include "net/Traffic.hh"
#include "obs/Fingerprint.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::net;

constexpr std::uint8_t kFilterHandlerId = 7;
constexpr std::uint32_t kFilterDivisor = 16;

struct Settings {
    unsigned messages = 8;          //!< messages per sender
    std::uint32_t messageBytes = 4096;
    unsigned seeds = 10;            //!< fingerprint-stability seeds
    unsigned patternMessages = 4;   //!< per host, pattern sweep
    unsigned threads = 1;           //!< PDES workers (placement runs)
};

/** One benchmark topology. */
struct Shape {
    const char *name;
    bool fatTree;
    unsigned k;          //!< fat-tree arity
    DragonflyParams df;  //!< dragonfly shape
};

enum class Placement { Normal, Edge, Mid, Hub };
constexpr Placement kPlacements[] = {Placement::Normal,
                                     Placement::Edge, Placement::Mid,
                                     Placement::Hub};

const char *
placementName(Placement p)
{
    switch (p) {
    case Placement::Normal: return "normal";
    case Placement::Edge: return "edge";
    case Placement::Mid: return "mid";
    case Placement::Hub: return "hub";
    }
    return "?";
}

Topology
build(Fabric &fabric, const Shape &shape,
      const active::ActiveConfig &acfg)
{
    return shape.fatTree
               ? buildFatTree<active::ActiveSwitch>(
                     fabric, FatTreeParams{shape.k}, acfg)
               : buildDragonfly<active::ActiveSwitch>(fabric,
                                                      shape.df, acfg);
}

/**
 * The filter handler: validate the chunk, charge the scan cost, and
 * on a message's last chunk forward bytes/16 to the collector. No
 * cross-chunk state, so instances shared by many senders (mid / hub)
 * interleave safely.
 */
sim::Task
filterBody(active::HandlerContext &ctx, NodeId collector)
{
    for (;;) {
        const active::StreamChunk chunk = co_await ctx.nextChunk();
        co_await ctx.awaitValid(chunk, 0, chunk.bytes);
        // ~0.25 instructions/byte plus per-chunk overhead: one
        // 500 MHz switch CPU filters a touch above line rate, so
        // concentration — not handler speed — is what placements
        // compare.
        co_await ctx.compute(32 + chunk.bytes / 4);
        const bool last = chunk.lastOfMessage;
        const std::uint64_t msgBytes = chunk.messageBytes;
        const std::uint32_t tag = chunk.tag;
        ctx.deallocateOne(chunk.address);
        if (last) {
            std::uint64_t matched = msgBytes / kFilterDivisor;
            if (matched == 0)
                matched = 1;
            co_await ctx.send(collector, matched, std::nullopt,
                              nullptr, tag);
        }
    }
}

sim::Task
senderPump(Adapter &host, NodeId dst,
           std::optional<ActiveHeader> hdr_base, unsigned messages,
           std::uint32_t bytes, sim::Tick spacing, unsigned slot)
{
    for (unsigned j = 0; j < messages; ++j) {
        std::optional<ActiveHeader> hdr = hdr_base;
        if (hdr) {
            // Per-sender 16 MB ATB window, 128 KB stride per
            // message: chunk addresses never collide across the
            // senders sharing a handler instance.
            hdr->address =
                (static_cast<std::uint32_t>(slot) + 1) * 0x01000000u +
                (j % 128u) * 0x20000u;
        }
        host.sendMessage(dst, bytes, hdr, nullptr,
                         static_cast<std::uint32_t>(slot) * 4096u +
                             j + 1);
        co_await sim::Delay{spacing};
    }
}

sim::Task
drainCollector(Adapter &host, std::uint64_t expected,
               sim::Tick *last_at, std::uint64_t *msgs,
               std::uint64_t *bytes)
{
    for (std::uint64_t i = 0; i < expected; ++i) {
        const Message m = co_await host.recvQueue().pop();
        ++*msgs;
        *bytes += m.bytes;
        *last_at = std::max(*last_at, m.completedAt);
    }
}

struct PlacementResult {
    std::uint64_t collectorMsgs = 0;
    std::uint64_t collectorBytes = 0;
    double makespanUs = 0.0;
    double sourceGBps = 0.0; //!< offered source bytes / makespan
    std::uint64_t handlerChunks = 0;
    std::uint64_t dispatchStalls = 0;
    std::uint64_t events = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t e2eP99Ns = 0; //!< 0 unless --telemetry
    double wallMs = 0.0;
};

PlacementResult
runPlacement(const Shape &shape, Placement pl, const Settings &s,
             std::ostream *latency_out)
{
    sim::Simulation sim;
    obs::RunFingerprint fp;
    sim.events().setObserver(&fp);
    Fabric fabric(sim);
    active::ActiveConfig acfg;
    acfg.cpus = 4;
    const Topology topo = build(fabric, shape, acfg);

    // Threaded run: one shard per switch; every host adapter lives on
    // its edge switch's shard (net::Fabric::planShards). The pattern
    // sweep and the seed-stability loop stay single-threaded — the
    // placement runs are the scaling workload.
    obs::Telemetry *tel = obs::globalTelemetry();
    const std::string label =
        std::string(shape.name) + "/" + placementName(pl);
    if (tel)
        tel->beginRun(label);
    net::ShardPlan plan;
    obs::ShardedFingerprint shardedFp;
    if (s.threads > 1) {
        plan = fabric.planShards(topo.switchCount());
        fabric.applyShardPlan(plan);
        shardedFp.attach(sim);
        if (tel)
            tel->enableShards(plan.shards);
    }
    const auto hostShard = [&](unsigned h) -> std::size_t {
        if (!sim.sharded())
            return 0;
        return plan.adapterShard[fabric.adapterIndex(*topo.hosts[h])];
    };

    const unsigned collector = 0;
    const NodeId collectorId = topo.hosts[collector]->id();

    std::vector<Switch *> all;
    all.insert(all.end(), topo.edge.begin(), topo.edge.end());
    all.insert(all.end(), topo.aggregation.begin(),
               topo.aggregation.end());
    all.insert(all.end(), topo.core.begin(), topo.core.end());
    for (Switch *sw : all)
        static_cast<active::ActiveSwitch *>(sw)->registerHandler(
            kFilterHandlerId, "filter",
            [collectorId](active::HandlerContext &ctx) {
                return filterBody(ctx, collectorId);
            });

    const unsigned perEdge =
        shape.fatTree ? shape.k / 2 : shape.df.hostsPerRouter;
    const unsigned m = shape.fatTree ? shape.k / 2 : 0;
    const auto targetOf = [&](unsigned h) -> Switch * {
        switch (pl) {
        case Placement::Edge:
            return topo.edge[h / perEdge];
        case Placement::Mid:
            // One concentration point per group: the pod's first
            // aggregation switch / the group's first router.
            return shape.fatTree
                       ? topo.aggregation[topo.hostGroup[h] * m]
                       : topo.edge[topo.hostGroup[h] *
                                   shape.df.routersPerGroup];
        case Placement::Hub:
            return shape.fatTree ? topo.core[0] : topo.edge[0];
        case Placement::Normal:
            break;
        }
        return nullptr;
    };

    const std::uint64_t pkts =
        (s.messageBytes + fabric.mtu() - 1) / fabric.mtu();
    const sim::Tick spacing =
        sim::ns(s.messageBytes + pkts * headerBytes);

    // Per-target round-robin CPU assignment: senders that share a
    // concentration switch spread over its 4 embedded CPUs.
    std::unordered_map<const Switch *, unsigned> localIndex;
    std::uint64_t senders = 0;
    std::uint64_t sourceBytes = 0;
    for (unsigned h = 0; h < topo.hosts.size(); ++h) {
        if (h == collector)
            continue;
        ++senders;
        sourceBytes +=
            static_cast<std::uint64_t>(s.messages) * s.messageBytes;
        std::optional<ActiveHeader> hdr;
        NodeId dst = collectorId;
        if (Switch *target = targetOf(h)) {
            ActiveHeader a;
            a.handlerId = kFilterHandlerId;
            a.cpuId = static_cast<std::uint8_t>(
                localIndex[target]++ % acfg.cpus);
            hdr = a;
            dst = target->id();
        }
        // The pump sends its first message at spawn time, so the
        // spawn itself must land on the sender's shard.
        sim::ShardGuard guard(sim, hostShard(h));
        sim.spawn(senderPump(*topo.hosts[h], dst, hdr, s.messages,
                             s.messageBytes, spacing, h));
    }

    sim::Tick lastAt = 0;
    std::uint64_t msgs = 0, bytes = 0;
    {
        sim::ShardGuard guard(sim, hostShard(collector));
        sim.spawn(drainCollector(*topo.hosts[collector],
                                 senders * s.messages, &lastAt, &msgs,
                                 &bytes));
    }

    const auto t0 = std::chrono::steady_clock::now();
    if (s.threads > 1)
        sim.runSharded(s.threads);
    else
        sim.run();
    PlacementResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    r.collectorMsgs = msgs;
    r.collectorBytes = bytes;
    r.makespanUs = static_cast<double>(lastAt) / 1e6;
    if (lastAt > 0)
        r.sourceGBps = static_cast<double>(sourceBytes) * 1e3 /
                       static_cast<double>(lastAt);
    for (Switch *sw : all) {
        auto *as = static_cast<active::ActiveSwitch *>(sw);
        r.handlerChunks += as->chunksStaged();
        r.dispatchStalls += as->dispatchStalls();
    }
    if (sim.sharded()) {
        // Deterministic per-shard stream merge (DESIGN.md §14): the
        // legacy queue saw no events, so fold the shard digests into
        // the same accumulator the single-threaded path uses.
        shardedFp.combineInto(fp);
        r.events = shardedFp.eventsFolded();
    } else {
        r.events = fp.eventsFolded();
    }
    r.fingerprint = fp.value();
    if (tel) {
        const obs::TelemetryStats &t = tel->finishRun();
        const auto fc = pl == Placement::Normal
                            ? obs::FlowClass::Data
                            : obs::FlowClass::Active;
        r.e2eP99Ns =
            t.stageHist(fc, obs::Stage::EndToEnd).percentile(9900) /
            1000;
        if (latency_out)
            harness::printTelemetryStats(*latency_out, label, t);
    }
    return r;
}

struct PatternResult {
    std::uint64_t delivered = 0;
    double aggGBps = 0.0;
    double latMeanNs = 0.0;
    double latMaxNs = 0.0;
    double interFrac = 0.0;
};

PatternResult
runPattern(const Shape &shape, FabricTrafficParams::Pattern pattern,
           std::uint64_t seed, unsigned messages,
           std::uint32_t message_bytes, std::uint64_t *fingerprint)
{
    sim::Simulation sim;
    obs::RunFingerprint fp;
    sim.events().setObserver(&fp);
    Fabric fabric(sim);
    // Plain switches: the pattern sweep measures the fabric and the
    // spread rule, not the active hardware.
    const Topology topo =
        shape.fatTree
            ? buildFatTree(fabric, FatTreeParams{shape.k})
            : buildDragonfly(fabric, shape.df);

    FabricTrafficParams p;
    p.pattern = pattern;
    p.seed = seed;
    p.messagesPerHost = messages;
    p.messageBytes = message_bytes;
    FabricTrafficGen gen(sim, topo.hosts, topo.hostGroup, p);
    gen.start();
    sim.run();

    const FabricTrafficReport rep = gen.report();
    PatternResult r;
    r.delivered = rep.deliveredMessages;
    r.aggGBps = rep.aggregateGBps;
    r.latMeanNs = rep.latencyMeanNs;
    r.latMaxNs = rep.latencyMaxNs;
    if (rep.deliveredMessages > 0)
        r.interFrac = static_cast<double>(rep.interGroupMessages) /
                      static_cast<double>(rep.deliveredMessages);
    if (fingerprint)
        *fingerprint = fp.value();
    return r;
}

/** Route-lookup scaling micro: ns/lookup at 1 K vs 16 K entries. */
struct LookupMicro {
    double nsSmall = 0.0;
    double nsBig = 0.0;
    double ratio = 0.0;
    std::uint64_t guard = 0; //!< defeats dead-code elimination
};

LookupMicro
runLookupMicro()
{
    sim::Simulation sim;
    LookupMicro r;
    constexpr unsigned kPorts = 16;
    constexpr std::uint64_t kLookups = 1u << 22;
    const auto measure = [&](std::size_t entries) {
        Switch sw(sim, "micro", 1, SwitchParams{kPorts});
        std::vector<NodeId> dsts(entries);
        for (std::size_t i = 0; i < entries; ++i) {
            dsts[i] = static_cast<NodeId>(detMix64(i) >> 24);
            sw.setRoute(dsts[i],
                        static_cast<unsigned>(i % kPorts));
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < kLookups; ++i)
            r.guard += sw.route(dsts[i & (entries - 1)]);
        const double ns =
            std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return ns / static_cast<double>(kLookups);
    };
    r.nsSmall = measure(1024);
    r.nsBig = measure(16384);
    r.ratio = r.nsSmall > 0 ? r.nsBig / r.nsSmall : 0.0;
    return r;
}

std::uint64_t
parseU64(const char *flag, const char *arg)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(arg, &end, 0);
    if (end == arg || *end != '\0') {
        std::fprintf(stderr, "error: %s needs an integer, got '%s'\n",
                     flag, arg);
        std::exit(2);
    }
    return v;
}

const char *
patternKey(FabricTrafficParams::Pattern p)
{
    switch (p) {
    case FabricTrafficParams::Pattern::Uniform: return "uniform";
    case FabricTrafficParams::Pattern::Permutation:
        return "permutation";
    case FabricTrafficParams::Pattern::GroupLocal:
        return "group_local";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions &opts = bench::init(argc, argv);

    Settings s;
    double minEdgeSpeedup = 0.0;
    double maxLookupRatio = 0.0;
    if (opts.quick) {
        s.messages = 4;
        s.seeds = 3;
        s.patternMessages = 2;
    }
    s.threads = opts.threads;
    for (int i = 1; i < argc; ++i) {
        auto take = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = take("--messages"))
            s.messages =
                static_cast<unsigned>(parseU64("--messages", v));
        else if (const char *v = take("--message-bytes"))
            s.messageBytes = static_cast<std::uint32_t>(
                parseU64("--message-bytes", v));
        else if (const char *v = take("--seeds"))
            s.seeds = static_cast<unsigned>(parseU64("--seeds", v));
        else if (const char *v = take("--min-edge-speedup"))
            minEdgeSpeedup = std::strtod(v, nullptr);
        else if (const char *v = take("--max-lookup-ratio"))
            maxLookupRatio = std::strtod(v, nullptr);
        // Anything else is a shared flag bench::init() consumed.
    }

    std::vector<Shape> shapes;
    shapes.push_back({"fattree4", true, 4, {}});
    if (!opts.quick)
        shapes.push_back({"fattree8", true, 8, {}});
    shapes.push_back(
        {opts.quick ? "dragonfly221" : "dragonfly442", false, 0,
         opts.quick ? DragonflyParams{2, 2, 1}
                    : DragonflyParams{4, 4, 2}});

    std::ofstream latencyFile;
    std::ostream *latencyOut = nullptr;
    if (!opts.latencyReportPath.empty()) {
        latencyFile.open(opts.latencyReportPath);
        if (latencyFile)
            latencyOut = &latencyFile;
        else
            std::fprintf(stderr,
                         "cannot open latency report file %s\n",
                         opts.latencyReportPath.c_str());
    }

    const LookupMicro micro = runLookupMicro();
    std::fprintf(stderr,
                 "route lookup: %.2f ns @1k entries, %.2f ns @16k "
                 "(ratio %.2f)\n",
                 micro.nsSmall, micro.nsBig, micro.ratio);

    constexpr FabricTrafficParams::Pattern kPatterns[] = {
        FabricTrafficParams::Pattern::Uniform,
        FabricTrafficParams::Pattern::Permutation,
        FabricTrafficParams::Pattern::GroupLocal};

    bool gateFailed = false;
    std::printf("{\n  \"schema\": \"san-fabric-scale-v1\",\n"
                "  \"quick\": %s,\n  \"threads\": %u,\n"
                "  \"messages_per_sender\": %u,\n"
                "  \"message_bytes\": %u,\n  \"filter_divisor\": %u,\n"
                "  \"route_lookup\": {\"entries_small\": 1024, "
                "\"entries_big\": 16384, \"ns_small\": %.3f, "
                "\"ns_big\": %.3f, \"ratio\": %.3f},\n"
                "  \"topologies\": {\n",
                opts.quick ? "true" : "false", s.threads, s.messages,
                s.messageBytes, kFilterDivisor, micro.nsSmall,
                micro.nsBig, micro.ratio);

    for (std::size_t si = 0; si < shapes.size(); ++si) {
        const Shape &shape = shapes[si];

        // Shape facts from one throwaway build.
        std::size_t nHosts, nSwitches, nLinks;
        unsigned nGroups;
        {
            sim::Simulation sim;
            Fabric fabric(sim);
            const Topology t =
                shape.fatTree
                    ? buildFatTree(fabric, FatTreeParams{shape.k})
                    : buildDragonfly(fabric, shape.df);
            nHosts = t.hosts.size();
            nSwitches = t.switchCount();
            nLinks = fabric.links().size();
            nGroups = t.groups;
        }
        std::printf("    \"%s\": {\n      \"hosts\": %zu, "
                    "\"switches\": %zu, \"links\": %zu, "
                    "\"groups\": %u,\n      \"patterns\": {\n",
                    shape.name, nHosts, nSwitches, nLinks, nGroups);

        for (std::size_t pi = 0; pi < 3; ++pi) {
            const PatternResult pr =
                runPattern(shape, kPatterns[pi], 1,
                           s.patternMessages, s.messageBytes,
                           nullptr);
            std::printf(
                "        \"%s\": {\"delivered\": %llu, "
                "\"agg_gbps\": %.4f, \"lat_mean_ns\": %.1f, "
                "\"lat_max_ns\": %.1f, \"inter_group_frac\": "
                "%.4f}%s\n",
                patternKey(kPatterns[pi]),
                static_cast<unsigned long long>(pr.delivered),
                pr.aggGBps, pr.latMeanNs, pr.latMaxNs, pr.interFrac,
                pi + 1 < 3 ? "," : "");
        }
        std::printf("      },\n      \"placements\": {\n");

        std::fprintf(stderr,
                     "== %s: %zu hosts, %zu switches ==\n"
                     "%-8s %10s %12s %12s %10s %10s %12s\n",
                     shape.name, nHosts, nSwitches, "place",
                     "coll msgs", "makespan us", "source GB/s",
                     "chunks", "stalls", "e2e p99 ns");

        double normalGBps = 0.0, edgeGBps = 0.0;
        for (std::size_t pi = 0; pi < 4; ++pi) {
            const Placement pl = kPlacements[pi];
            const PlacementResult pr =
                runPlacement(shape, pl, s, latencyOut);
            if (pl == Placement::Normal)
                normalGBps = pr.sourceGBps;
            if (pl == Placement::Edge)
                edgeGBps = pr.sourceGBps;
            std::printf(
                "        \"%s\": {\"collector_msgs\": %llu, "
                "\"collector_bytes\": %llu, \"makespan_us\": %.3f, "
                "\"source_gbps\": %.4f, \"handler_chunks\": %llu, "
                "\"dispatch_stalls\": %llu, \"e2e_p99_ns\": %llu, "
                "\"events\": %llu, \"wall_ms\": %.3f, "
                "\"fingerprint\": \"0x%llx\"}%s\n",
                placementName(pl),
                static_cast<unsigned long long>(pr.collectorMsgs),
                static_cast<unsigned long long>(pr.collectorBytes),
                pr.makespanUs, pr.sourceGBps,
                static_cast<unsigned long long>(pr.handlerChunks),
                static_cast<unsigned long long>(pr.dispatchStalls),
                static_cast<unsigned long long>(pr.e2eP99Ns),
                static_cast<unsigned long long>(pr.events),
                pr.wallMs,
                static_cast<unsigned long long>(pr.fingerprint),
                pi + 1 < 4 ? "," : "");
            std::fprintf(stderr,
                         "%-8s %10llu %12.3f %12.4f %10llu %10llu "
                         "%12llu\n",
                         placementName(pl),
                         static_cast<unsigned long long>(
                             pr.collectorMsgs),
                         pr.makespanUs, pr.sourceGBps,
                         static_cast<unsigned long long>(
                             pr.handlerChunks),
                         static_cast<unsigned long long>(
                             pr.dispatchStalls),
                         static_cast<unsigned long long>(
                             pr.e2eP99Ns));
            if (opts.fingerprint)
                std::fprintf(stderr, "fingerprint[%s/%s]: 0x%llx\n",
                             shape.name, placementName(pl),
                             static_cast<unsigned long long>(
                                 pr.fingerprint));
        }

        const double edgeSpeedup =
            normalGBps > 0 ? edgeGBps / normalGBps : 0.0;
        std::fprintf(stderr,
                     "headline: %s edge-placement filters at %.2fx "
                     "the normal-mode source rate\n",
                     shape.name, edgeSpeedup);
        if (minEdgeSpeedup > 0 && edgeSpeedup < minEdgeSpeedup) {
            std::fprintf(stderr,
                         "FAIL: %s edge speedup %.2f below required "
                         "%.2f\n",
                         shape.name, edgeSpeedup, minEdgeSpeedup);
            gateFailed = true;
        }

        // Seed sweep: every seed twice on the uniform pattern; the
        // two fingerprints must agree bit for bit.
        bool stable = true;
        std::string seedList;
        for (unsigned seed = 1; seed <= s.seeds; ++seed) {
            std::uint64_t fpA = 0, fpB = 0;
            runPattern(shape, FabricTrafficParams::Pattern::Uniform,
                       seed, s.patternMessages, s.messageBytes,
                       &fpA);
            runPattern(shape, FabricTrafficParams::Pattern::Uniform,
                       seed, s.patternMessages, s.messageBytes,
                       &fpB);
            if (fpA != fpB)
                stable = false;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%s\"0x%llx\"",
                          seed > 1 ? ", " : "",
                          static_cast<unsigned long long>(fpA));
            seedList += buf;
        }
        if (!stable) {
            std::fprintf(stderr,
                         "FAIL: %s fingerprints unstable across "
                         "repeat runs\n",
                         shape.name);
            gateFailed = true;
        }
        std::printf("      },\n      \"edge_speedup\": %.4f,\n"
                    "      \"seed_fingerprints\": [%s],\n"
                    "      \"seeds_stable\": %s\n    }%s\n",
                    edgeSpeedup, seedList.c_str(),
                    stable ? "true" : "false",
                    si + 1 < shapes.size() ? "," : "");
    }

    std::printf("  },\n  \"lookup_guard\": %llu\n}\n",
                static_cast<unsigned long long>(micro.guard));

    if (maxLookupRatio > 0 && micro.ratio > maxLookupRatio) {
        std::fprintf(stderr,
                     "FAIL: route-lookup scaling ratio %.2f above "
                     "allowed %.2f (lookup is not O(1))\n",
                     micro.ratio, maxLookupRatio);
        gateFailed = true;
    }
    return gateFailed ? 1 : 0;
}
