/**
 * @file
 * Fig 12: Tar (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/Tar.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::TarParams>(
        argc, argv, "Fig 12: Tar", san::apps::runTar);
}
