/**
 * @file
 * Fig 12: Tar (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/Tar.hh"

int
main(int argc, char **argv)
{
    san::apps::TarParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 12: Tar", "Fig 12: Tar",
        [&](san::apps::Mode m) { return runTar(m, params); },
        false, true);
}
