/**
 * @file
 * Fig 14: Parallel sort (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/ParallelSort.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::SortParams>(
        argc, argv, "Fig 14: Parallel sort",
        san::apps::runParallelSort);
}
