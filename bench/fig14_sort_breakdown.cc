/**
 * @file
 * Fig 14: Parallel sort (execution-time breakdown: busy / cache stall / idle).
 */

#include "BenchCommon.hh"
#include "apps/ParallelSort.hh"

int
main(int argc, char **argv)
{
    san::apps::SortParams params;
    san::bench::init(argc, argv);
    return san::bench::runFigure(
        "Fig 14: Parallel sort", "Fig 14: Parallel sort",
        [&](san::apps::Mode m) { return runParallelSort(m, params); },
        false, true);
}
