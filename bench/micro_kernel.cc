/**
 * @file
 * Event-kernel micro-benchmark: the overhauled EventQueue (explicit
 * binary heap + small-buffer event slots, see sim/EventSlot.hh)
 * against the pre-overhaul design (std::function entries inside
 * std::priority_queue), on the capture sizes the simulator actually
 * schedules:
 *
 *   resume16    16 B capture — coroutine resumption / channel wakeup
 *   packet48  48 B capture  — at the slot's inline boundary; the old
 *                             std::function heap-allocates here
 *   message96 96 B capture  — Packet-sized; both designs allocate,
 *                             the new kernel from a recycling pool
 *
 * Prints a JSON report on stdout (consumed by tools/perf_baseline)
 * and a human-readable table on stderr. With --min-speedup X the
 * process fails unless the headline (packet48) speedup reaches X,
 * which is the CI gate for "the overhaul actually pays".
 *
 * Usage: micro_kernel [--events N] [--min-speedup X]
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Types.hh"

namespace {

using san::sim::Tick;

/**
 * The pre-overhaul kernel, verbatim: type-erased std::function
 * callbacks ordered by a std::priority_queue, popped by moving out of
 * the const top() (the const_cast UB the overhaul removed — kept here
 * unchanged because it IS the baseline being measured).
 */
class LegacyQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            when = now_;
        heap_.push(Entry{when, nextSeq_++, std::move(cb)});
    }

    void
    after(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        top.cb();
        return true;
    }

    Tick
    run()
    {
        while (step()) {}
        return now_;
    }

    std::uint64_t executedEvents() const { return nextSeq_ - heap_.size(); }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** Deterministic xorshift so both kernels see identical schedules. */
struct Rng {
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    Tick delay() { return (next() % 1000) + 1; }
};

/** Self-rescheduling load shared by every capture size: @p Pad extra
 * 8-byte words ride in the capture alongside the state pointer. */
template <typename Queue, unsigned Pad>
struct Load {
    Queue q;
    Rng rng{0x9e3779b97f4a7c15ull};
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;

    struct Cb {
        Load *load;
        std::uint64_t pad[Pad];

        void
        operator()()
        {
            Load &l = *load;
            l.sink += l.q.now() ^ pad[0];
            if (l.remaining > 0) {
                --l.remaining;
                pad[0] ^= l.sink;
                l.q.after(l.rng.delay(), Cb{load, {pad[0]}});
            }
        }
    };

    /** Run @p total events through @p pending concurrent chains;
     * returns events/sec of process CPU time (immune to descheduling
     * noise on shared CI machines — these runs take milliseconds). */
    double
    run(std::uint64_t total, unsigned pending)
    {
        remaining = total > pending ? total - pending : 0;
        const std::clock_t c0 = std::clock();
        for (unsigned i = 0; i < pending; ++i)
            q.after(rng.delay(), Cb{this, {i}});
        q.run();
        const double secs =
            static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
        const double events =
            static_cast<double>(q.executedEvents());
        return secs > 0 ? events / secs : 0.0;
    }
};

struct Result {
    const char *name;
    std::size_t captureBytes;
    double legacyEps;
    double kernelEps;
    double speedup() const { return legacyEps > 0 ? kernelEps / legacyEps : 0; }
};

template <unsigned Pad>
Result
compare(const char *name, std::uint64_t events, unsigned pending)
{
    static_assert(sizeof(typename Load<LegacyQueue, Pad>::Cb) ==
                  sizeof(typename Load<san::sim::EventQueue, Pad>::Cb));
    // Interleave a warmup of each side before its timed run so
    // allocator state is comparable.
    Load<LegacyQueue, Pad>{}.run(events / 8, pending);
    Load<LegacyQueue, Pad> legacy;
    const double legacyEps = legacy.run(events, pending);
    Load<san::sim::EventQueue, Pad>{}.run(events / 8, pending);
    Load<san::sim::EventQueue, Pad> kernel;
    const double kernelEps = kernel.run(events, pending);
    // The schedules are identical, so the folded sinks must agree —
    // a cheap determinism cross-check between the two kernels.
    if (legacy.sink != kernel.sink) {
        std::fprintf(stderr,
                     "FATAL: %s: legacy and kernel diverged "
                     "(sink %llu vs %llu)\n",
                     name,
                     static_cast<unsigned long long>(legacy.sink),
                     static_cast<unsigned long long>(kernel.sink));
        std::exit(1);
    }
    return Result{name, sizeof(typename Load<LegacyQueue, Pad>::Cb),
                  legacyEps, kernelEps};
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 2'000'000;
    double minSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                   i + 1 < argc) {
            minSpeedup = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--min-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }
    const unsigned pending = 4096;

    const Result results[] = {
        compare<1>("resume16", events, pending),
        compare<5>("packet48", events, pending),
        compare<11>("message96", events, pending),
    };
    const double headline = results[1].speedup();

    std::fprintf(stderr, "%-10s %8s %15s %15s %8s\n", "workload",
                 "capture", "legacy ev/s", "kernel ev/s", "speedup");
    for (const Result &r : results)
        std::fprintf(stderr, "%-10s %7zuB %15.0f %15.0f %7.2fx\n",
                     r.name, r.captureBytes, r.legacyEps, r.kernelEps,
                     r.speedup());

    std::printf("{\n  \"schema\": \"san-micro-kernel-v1\",\n"
                "  \"events\": %llu,\n  \"workloads\": {\n",
                static_cast<unsigned long long>(events));
    for (std::size_t i = 0; i < 3; ++i) {
        const Result &r = results[i];
        std::printf("    \"%s\": {\"capture_bytes\": %zu, "
                    "\"legacy_eps\": %.0f, \"kernel_eps\": %.0f, "
                    "\"speedup\": %.4f}%s\n",
                    r.name, r.captureBytes, r.legacyEps, r.kernelEps,
                    r.speedup(), i + 1 < 3 ? "," : "");
    }
    std::printf("  },\n  \"headline_speedup\": %.4f\n}\n", headline);

    if (minSpeedup > 0 && headline < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: headline speedup %.2fx below required "
                     "%.2fx\n",
                     headline, minSpeedup);
        return 1;
    }
    return 0;
}
