/**
 * @file
 * Event-kernel micro-benchmark, three experiments in one binary.
 *
 * 1. Slot-arena overhaul (PR 4): the kernel against the pre-overhaul
 *    design (std::function entries inside std::priority_queue), on
 *    the capture sizes the simulator actually schedules:
 *
 *      resume16   16 B capture — coroutine resumption / channel wakeup
 *      packet48   48 B capture — at the slot's inline boundary; the
 *                                old std::function heap-allocates here
 *      message96  96 B capture — Packet-sized; both designs allocate,
 *                                the new kernel from a recycling pool
 *
 * 2. Ladder scheduler (PR 5): EventQueue (ladder) against
 *    HeapEventQueue (the PR 4 binary heap) at pending depths 1k, 10k
 *    and 100k, under three scheduling-horizon mixes:
 *
 *      short   1..1000 ns delays — link serialization, routing,
 *              credit returns: the dominant simulator pattern the
 *              ladder's O(1) buckets target
 *      uniform 1 ns..100 us — spread across the whole ring, stressing
 *              bucket adoption and width tuning
 *      far     mostly short, 1/16 jumping +1 ms — adversarial for the
 *              ladder: spill pushes, refills and window rebases
 *
 * 3. Per-hop packet shuffle (PR 10 audit): a real net::Packet moved
 *    vs copied through the staging -> VOQ -> output queue chain a
 *    switch hop performs. The production switch-policy queues have
 *    been move-only since the PR 6 policy lab (every staged_/voq/
 *    crosspoint Cell transfer in net/SwitchPolicy.cc is std::move),
 *    so this case does not gate a new optimisation — it documents
 *    what the move path is worth: a Packet carries two shared_ptr
 *    fields (payload, telemetry), so the copy variant pays four
 *    atomic refcount bumps per hop that the move variant skips.
 *    Both variants run the identical shuffle and must agree on a
 *    folded sink.
 *
 * Experiments 1 and 2 replay identical schedules through both kernels
 * and cross-check a folded sink value, so a determinism divergence
 * fails the bench. Prints a JSON report on stdout (consumed by
 * tools/perf_baseline, schema san-micro-kernel-v3) and human-readable
 * tables on stderr. --min-speedup X gates the PR 4 headline
 * (packet48); --min-ladder-speedup X gates the PR 5 headline
 * (short-horizon mix at 10k pending). The hop-shuffle ratio is
 * recorded, not gated: it compares against a hypothetical copy
 * implementation, not against a previous build.
 *
 * Usage: micro_kernel [--events N] [--min-speedup X]
 *                     [--min-ladder-speedup X]
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "net/Packet.hh"
#include "sim/EventQueue.hh"
#include "sim/Types.hh"

namespace {

using san::sim::Tick;

/**
 * The pre-overhaul kernel, verbatim: type-erased std::function
 * callbacks ordered by a std::priority_queue, popped by moving out of
 * the const top() (the const_cast UB the overhaul removed — kept here
 * unchanged because it IS the baseline being measured).
 */
class LegacyQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        if (when < now_)
            when = now_;
        heap_.push(Entry{when, nextSeq_++, std::move(cb)});
    }

    void
    after(Tick delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        Entry top = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = top.when;
        top.cb();
        return true;
    }

    Tick
    run()
    {
        while (step()) {}
        return now_;
    }

    std::uint64_t executedEvents() const { return nextSeq_ - heap_.size(); }

  private:
    struct Entry {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** Deterministic xorshift so both kernels see identical schedules. */
struct Rng {
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    Tick delay() { return (next() % 1000) + 1; }
};

/** Self-rescheduling load shared by every capture size: @p Pad extra
 * 8-byte words ride in the capture alongside the state pointer. */
template <typename Queue, unsigned Pad>
struct Load {
    Queue q;
    Rng rng{0x9e3779b97f4a7c15ull};
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;

    struct Cb {
        Load *load;
        std::uint64_t pad[Pad];

        void
        operator()()
        {
            Load &l = *load;
            l.sink += l.q.now() ^ pad[0];
            if (l.remaining > 0) {
                --l.remaining;
                pad[0] ^= l.sink;
                l.q.after(l.rng.delay(), Cb{load, {pad[0]}});
            }
        }
    };

    /** Run @p total events through @p pending concurrent chains;
     * returns events/sec of process CPU time (immune to descheduling
     * noise on shared CI machines — these runs take milliseconds). */
    double
    run(std::uint64_t total, unsigned pending)
    {
        remaining = total > pending ? total - pending : 0;
        const std::clock_t c0 = std::clock();
        for (unsigned i = 0; i < pending; ++i)
            q.after(rng.delay(), Cb{this, {i}});
        q.run();
        const double secs =
            static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
        const double events =
            static_cast<double>(q.executedEvents());
        return secs > 0 ? events / secs : 0.0;
    }
};

struct Result {
    const char *name;
    std::size_t captureBytes;
    double legacyEps;
    double kernelEps;
    double speedup() const { return legacyEps > 0 ? kernelEps / legacyEps : 0; }
};

/** Scheduling-horizon mix of one depth-scaled workload. */
enum class Mix { Short, Uniform, Far };

constexpr const char *
mixName(Mix m)
{
    switch (m) {
      case Mix::Short:
        return "short";
      case Mix::Uniform:
        return "uniform";
      case Mix::Far:
        return "far";
    }
    return "?";
}

/**
 * Depth-scaled ladder-vs-heap load: @p pending self-rescheduling
 * chains with a 16-byte capture (the dominant real capture size),
 * delays drawn from one of the horizon mixes above. The heap and the
 * ladder execute the identical schedule — any (tick, seq) ordering
 * divergence desynchronizes the shared rng stream and trips the sink
 * cross-check in compareDepth().
 */
template <typename Queue>
struct DepthLoad {
    Queue q;
    Rng rng{0x2545f4914f6cdd1dull};
    Mix mix;
    std::uint64_t remaining = 0;
    std::uint64_t sink = 0;

    explicit DepthLoad(Mix m) : mix(m) {}

    Tick
    delay()
    {
        switch (mix) {
          case Mix::Short: // 1..1000 ns
            return ((rng.next() % 1000) + 1) * 1000;
          case Mix::Uniform: // 1 ns..100 us
            return ((rng.next() % 100'000) + 1) * 1000;
          case Mix::Far: // short, with 1/16 jumping +1 ms
            return ((rng.next() % 500) + 1) * 1000 +
                   (rng.next() % 16 == 0 ? 1'000'000'000 : 0);
        }
        return 1;
    }

    struct Cb {
        DepthLoad *load;
        std::uint64_t pad;

        void
        operator()()
        {
            DepthLoad &l = *load;
            l.sink += l.q.now() ^ pad;
            if (l.remaining > 0) {
                --l.remaining;
                l.q.after(l.delay(), Cb{load, l.sink});
            }
        }
    };

    /** Events/sec of process CPU time over @p total events across
     * @p pending concurrent chains (see Load::run on why CPU time). */
    double
    run(std::uint64_t total, std::uint64_t pending)
    {
        remaining = total > pending ? total - pending : 0;
        const std::clock_t c0 = std::clock();
        for (std::uint64_t i = 0; i < pending; ++i)
            q.after(delay(), Cb{this, i});
        q.run();
        const double secs =
            static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
        const double events = static_cast<double>(q.executedEvents());
        return secs > 0 ? events / secs : 0.0;
    }
};

struct DepthResult {
    std::string name;
    std::uint64_t pending;
    Mix mix;
    double heapEps;
    double ladderEps;
    double speedup() const { return heapEps > 0 ? ladderEps / heapEps : 0; }
};

DepthResult
compareDepth(std::uint64_t pending, Mix mix, std::uint64_t events)
{
    using san::sim::EventQueue;
    using san::sim::HeapEventQueue;
    // Size the run so deep workloads still cycle every chain a few
    // times past the warm-up fill.
    const std::uint64_t total = events > pending * 4 ? events
                                                     : pending * 4;
    DepthLoad<HeapEventQueue>(mix).run(total / 8, pending);
    DepthLoad<EventQueue>(mix).run(total / 8, pending);
    // Interleaved best-of-2 per kernel: a noise burst hitting one
    // timed sample cannot swing the ratio the gate reads.
    double heapEps = 0.0;
    double ladderEps = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
        DepthLoad<HeapEventQueue> heap(mix);
        heapEps = std::max(heapEps, heap.run(total, pending));
        DepthLoad<EventQueue> ladder(mix);
        ladderEps = std::max(ladderEps, ladder.run(total, pending));
        if (heap.sink != ladder.sink) {
            std::fprintf(stderr,
                         "FATAL: depth %llu/%s: heap and ladder "
                         "diverged (sink %llu vs %llu)\n",
                         static_cast<unsigned long long>(pending),
                         mixName(mix),
                         static_cast<unsigned long long>(heap.sink),
                         static_cast<unsigned long long>(ladder.sink));
            std::exit(1);
        }
        // Sanity: the adversarial mix must actually exercise the
        // spill and refill paths the sanitizer job wants covered.
        if (mix == Mix::Far) {
            const auto &st = ladder.q.scheduler().stats();
            if (st.spillPushes == 0 || st.refills == 0) {
                std::fprintf(
                    stderr,
                    "FATAL: far mix never hit the spill/refill "
                    "path (spills=%llu refills=%llu)\n",
                    static_cast<unsigned long long>(st.spillPushes),
                    static_cast<unsigned long long>(st.refills));
                std::exit(1);
            }
        }
    }
    std::string name = mixName(mix);
    name += "_";
    name += pending >= 100'000 ? "100k" : pending >= 10'000 ? "10k"
                                                            : "1k";
    return DepthResult{std::move(name), pending, mix, heapEps,
                       ladderEps};
}

/**
 * One switch hop's worth of queue shuffling on a real net::Packet:
 * ingress staging, VOQ admission, output drain (the exact chain
 * net/SwitchPolicy.cc runs per forwarded packet). @p Move selects the
 * production move path or the hypothetical copy path; both fold the
 * same sink so a semantic divergence aborts the bench.
 */
template <bool Move>
struct HopShuffle {
    std::deque<san::net::Packet> staged, voq, outq;
    std::uint64_t sink = 0;

    static san::net::Packet
    make(std::uint32_t seq, const san::net::PayloadPtr &payload)
    {
        san::net::Packet p;
        p.src = 1;
        p.dst = 2;
        p.payloadBytes = 4096;
        p.messageId = 7;
        p.seq = seq;
        p.messageBytes = 1u << 20;
        p.payload = payload;
        // Model a sampled packet: the telemetry shared_ptr is where
        // the copy path pays its second pair of refcount bumps.
        p.telemetry = std::make_shared<san::obs::TelemetryRecord>();
        return p;
    }

    san::net::Packet
    take(std::deque<san::net::Packet> &q)
    {
        if constexpr (Move) {
            san::net::Packet p = std::move(q.front());
            q.pop_front();
            return p;
        } else {
            san::net::Packet p = q.front();
            q.pop_front();
            return p;
        }
    }

    void
    put(std::deque<san::net::Packet> &q, san::net::Packet &&p)
    {
        if constexpr (Move)
            q.push_back(std::move(p));
        else
            q.push_back(p);
    }

    /** @p hops total queue transfers over @p inflight packets;
     * returns hops/sec of process CPU time. */
    double
    run(std::uint64_t hops, unsigned inflight)
    {
        const auto payload =
            std::make_shared<const std::vector<std::uint8_t>>(4096);
        for (unsigned i = 0; i < inflight; ++i)
            staged.push_back(make(i, payload));
        const std::clock_t c0 = std::clock();
        for (std::uint64_t h = 0; h < hops; ++h) {
            if (!staged.empty()) {
                put(voq, take(staged));
            } else if (!voq.empty()) {
                san::net::Packet p = take(voq);
                sink += p.seq ^ p.payloadBytes;
                put(outq, std::move(p));
            } else {
                // Recirculate: the drained packet re-enters staging,
                // as a multi-hop path would present it to the next
                // switch.
                put(staged, take(outq));
            }
        }
        const double secs =
            static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
        return secs > 0 ? static_cast<double>(hops) / secs : 0.0;
    }
};

struct HopResult {
    double copyHps;
    double moveHps;
    double speedup() const { return copyHps > 0 ? moveHps / copyHps : 0; }
};

HopResult
compareHopShuffle(std::uint64_t hops)
{
    constexpr unsigned kInflight = 512;
    HopShuffle<false>{}.run(hops / 8, kInflight);
    HopShuffle<true>{}.run(hops / 8, kInflight);
    HopResult r{0.0, 0.0};
    std::uint64_t copySink = 0, moveSink = 0;
    for (int rep = 0; rep < 2; ++rep) {
        HopShuffle<false> copy;
        r.copyHps = std::max(r.copyHps, copy.run(hops, kInflight));
        copySink = copy.sink;
        HopShuffle<true> move;
        r.moveHps = std::max(r.moveHps, move.run(hops, kInflight));
        moveSink = move.sink;
    }
    if (copySink != moveSink) {
        std::fprintf(stderr,
                     "FATAL: hop shuffle: copy and move diverged "
                     "(sink %llu vs %llu)\n",
                     static_cast<unsigned long long>(copySink),
                     static_cast<unsigned long long>(moveSink));
        std::exit(1);
    }
    return r;
}

template <unsigned Pad>
Result
compare(const char *name, std::uint64_t events, unsigned pending)
{
    static_assert(sizeof(typename Load<LegacyQueue, Pad>::Cb) ==
                  sizeof(typename Load<san::sim::EventQueue, Pad>::Cb));
    // Interleave a warmup of each side before its timed run so
    // allocator state is comparable.
    Load<LegacyQueue, Pad>{}.run(events / 8, pending);
    Load<LegacyQueue, Pad> legacy;
    const double legacyEps = legacy.run(events, pending);
    Load<san::sim::EventQueue, Pad>{}.run(events / 8, pending);
    Load<san::sim::EventQueue, Pad> kernel;
    const double kernelEps = kernel.run(events, pending);
    // The schedules are identical, so the folded sinks must agree —
    // a cheap determinism cross-check between the two kernels.
    if (legacy.sink != kernel.sink) {
        std::fprintf(stderr,
                     "FATAL: %s: legacy and kernel diverged "
                     "(sink %llu vs %llu)\n",
                     name,
                     static_cast<unsigned long long>(legacy.sink),
                     static_cast<unsigned long long>(kernel.sink));
        std::exit(1);
    }
    return Result{name, sizeof(typename Load<LegacyQueue, Pad>::Cb),
                  legacyEps, kernelEps};
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 2'000'000;
    double minSpeedup = 0.0;
    double minLadderSpeedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                   i + 1 < argc) {
            minSpeedup = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--min-ladder-speedup") == 0 &&
                   i + 1 < argc) {
            minLadderSpeedup = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--min-speedup X] "
                         "[--min-ladder-speedup X]\n",
                         argv[0]);
            return 2;
        }
    }
    const unsigned pending = 4096;

    const Result results[] = {
        compare<1>("resume16", events, pending),
        compare<5>("packet48", events, pending),
        compare<11>("message96", events, pending),
    };
    const double headline = results[1].speedup();

    const Mix mixes[] = {Mix::Short, Mix::Uniform, Mix::Far};
    const std::uint64_t depths[] = {1'024, 10'240, 102'400};
    std::vector<DepthResult> depthResults;
    for (const Mix mix : mixes)
        for (const std::uint64_t depth : depths)
            depthResults.push_back(compareDepth(depth, mix, events));
    // The acceptance headline: short-horizon events at 10k pending,
    // the depth the large figures actually carry.
    double ladderHeadline = 0.0;
    for (const DepthResult &r : depthResults)
        if (r.mix == Mix::Short && r.pending == 10'240)
            ladderHeadline = r.speedup();

    const HopResult hop = compareHopShuffle(events);

    std::fprintf(stderr, "%-10s %8s %15s %15s %8s\n", "workload",
                 "capture", "legacy ev/s", "kernel ev/s", "speedup");
    for (const Result &r : results)
        std::fprintf(stderr, "%-10s %7zuB %15.0f %15.0f %7.2fx\n",
                     r.name, r.captureBytes, r.legacyEps, r.kernelEps,
                     r.speedup());
    std::fprintf(stderr, "%-12s %8s %15s %15s %8s\n", "depth-load",
                 "pending", "heap ev/s", "ladder ev/s", "speedup");
    for (const DepthResult &r : depthResults)
        std::fprintf(stderr, "%-12s %8llu %15.0f %15.0f %7.2fx\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.pending),
                     r.heapEps, r.ladderEps, r.speedup());
    std::fprintf(stderr,
                 "%-12s %8s %15.0f %15.0f %7.2fx\n", "hop-shuffle",
                 "copy/mv", hop.copyHps, hop.moveHps, hop.speedup());

    std::printf("{\n  \"schema\": \"san-micro-kernel-v3\",\n"
                "  \"events\": %llu,\n  \"workloads\": {\n",
                static_cast<unsigned long long>(events));
    for (std::size_t i = 0; i < 3; ++i) {
        const Result &r = results[i];
        std::printf("    \"%s\": {\"capture_bytes\": %zu, "
                    "\"legacy_eps\": %.0f, \"kernel_eps\": %.0f, "
                    "\"speedup\": %.4f}%s\n",
                    r.name, r.captureBytes, r.legacyEps, r.kernelEps,
                    r.speedup(), i + 1 < 3 ? "," : "");
    }
    std::printf("  },\n  \"headline_speedup\": %.4f,\n"
                "  \"depth_workloads\": {\n",
                headline);
    for (std::size_t i = 0; i < depthResults.size(); ++i) {
        const DepthResult &r = depthResults[i];
        std::printf("    \"%s\": {\"pending\": %llu, \"mix\": \"%s\", "
                    "\"heap_eps\": %.0f, \"ladder_eps\": %.0f, "
                    "\"speedup\": %.4f}%s\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.pending),
                    mixName(r.mix), r.heapEps, r.ladderEps,
                    r.speedup(), i + 1 < depthResults.size() ? "," : "");
    }
    std::printf("  },\n  \"ladder_headline_speedup\": %.4f,\n"
                "  \"hop_shuffle\": {\"copy_hps\": %.0f, "
                "\"move_hps\": %.0f, \"speedup\": %.4f}\n}\n",
                ladderHeadline, hop.copyHps, hop.moveHps,
                hop.speedup());

    if (minSpeedup > 0 && headline < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: headline speedup %.2fx below required "
                     "%.2fx\n",
                     headline, minSpeedup);
        return 1;
    }
    if (minLadderSpeedup > 0 && ladderHeadline < minLadderSpeedup) {
        std::fprintf(stderr,
                     "FAIL: ladder headline speedup %.2fx below "
                     "required %.2fx\n",
                     ladderHeadline, minLadderSpeedup);
        return 1;
    }
    return 0;
}
