/**
 * @file
 * Figure 16: Distributed Reduce latency, normal (binomial reduce +
 * binomial scatter) vs active (switch-tree reduce + root
 * redistribution handler), 2..128 nodes.
 *
 * Paper-reported shape: like Reduce-to-one with slightly larger
 * normal latencies (the scatter rounds); active speedup reaches
 * ~5.92 at 128 nodes.
 */

#include <cstdio>

#include "BenchCommon.hh"
#include "apps/Reduction.hh"

int
main(int argc, char **argv)
{
    using namespace san::apps;
    const san::bench::BenchOptions &opts =
        san::bench::init(argc, argv);
    std::printf("Fig 16: Distributed Reduce (512 B vectors)\n");
    std::printf("%6s %14s %14s %9s %8s\n", "nodes", "normal(us)",
                "active(us)", "speedup", "correct");
    int failures = 0;
    std::uint64_t events = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const std::clock_t c0 = std::clock();
    for (unsigned p = 2; p <= 128; p *= 2) {
        ReductionParams params;
        params.nodes = p;
        params.threads = opts.threads;
        ReductionRun normal =
            runReduction(false, ReduceKind::Distributed, params);
        ReductionRun active =
            runReduction(true, ReduceKind::Distributed, params);
        std::printf("%6u %14.2f %14.2f %9.2f %8s\n", p,
                    san::sim::toMicros(normal.latency),
                    san::sim::toMicros(active.latency),
                    static_cast<double>(normal.latency) /
                        static_cast<double>(active.latency),
                    (normal.correct && active.correct) ? "yes" : "NO");
        failures += !(normal.correct && active.correct);
        events += normal.events + active.events;
        if (opts.fingerprint) {
            std::printf("fingerprint[normal,%u]: 0x%016llx\n", p,
                        static_cast<unsigned long long>(
                            normal.fingerprint));
            std::printf("fingerprint[active,%u]: 0x%016llx\n", p,
                        static_cast<unsigned long long>(
                            active.fingerprint));
        }
    }
    // Same perf line shape as runFigure(), consumed by
    // tools/perf_baseline's parallel section.
    if (opts.perf) {
        const double cpu_ms =
            1e3 * static_cast<double>(std::clock() - c0) /
            CLOCKS_PER_SEC;
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        const double eps = cpu_ms > 0
                               ? static_cast<double>(events) /
                                     (cpu_ms / 1e3)
                               : 0.0;
        std::printf("perf[all]: events=%llu wall_ms=%.3f cpu_ms=%.3f "
                    "events_per_sec=%.0f\n",
                    static_cast<unsigned long long>(events), wall_ms,
                    cpu_ms, eps);
    }
    return failures == 0 ? 0 : 1;
}
