/**
 * @file
 * Figure 16: Distributed Reduce latency, normal (binomial reduce +
 * binomial scatter) vs active (switch-tree reduce + root
 * redistribution handler), 2..128 nodes.
 *
 * Paper-reported shape: like Reduce-to-one with slightly larger
 * normal latencies (the scatter rounds); active speedup reaches
 * ~5.92 at 128 nodes.
 */

#include <cstdio>

#include "apps/Reduction.hh"

int
main()
{
    using namespace san::apps;
    std::printf("Fig 16: Distributed Reduce (512 B vectors)\n");
    std::printf("%6s %14s %14s %9s %8s\n", "nodes", "normal(us)",
                "active(us)", "speedup", "correct");
    int failures = 0;
    for (unsigned p = 2; p <= 128; p *= 2) {
        ReductionParams params;
        params.nodes = p;
        ReductionRun normal =
            runReduction(false, ReduceKind::Distributed, params);
        ReductionRun active =
            runReduction(true, ReduceKind::Distributed, params);
        std::printf("%6u %14.2f %14.2f %9.2f %8s\n", p,
                    san::sim::toMicros(normal.latency),
                    san::sim::toMicros(active.latency),
                    static_cast<double>(normal.latency) /
                        static_cast<double>(active.latency),
                    (normal.correct && active.correct) ? "yes" : "NO");
        failures += !(normal.correct && active.correct);
    }
    return failures == 0 ? 0 : 1;
}
