/**
 * @file
 * Extension experiment: the two-level active I/O system (paper §6).
 *
 * "If active I/O devices do become prevalent, they can also be used
 * within our active switch system, creating a two-level active I/O
 * system." This bench runs a 32 MB range-selection scan (selectivity
 * 0.25) four ways:
 *
 *   host-only     all filtering on the host (normal+pref)
 *   switch        filtering in the active switch (active+pref)
 *   device        filtering on an active-disk device processor
 *                 (200 MHz) before data enters the fabric
 *   device+switch two-level: the device applies a cheap coarse page
 *                 filter (keeps ~50%), the switch refines to the
 *                 exact 25%
 *
 * Reported: execution time, host I/O traffic, fabric traffic into the
 * switch (which only the device-level filter can reduce), and where
 * the filtering cycles were spent.
 */

#include <cstdio>
#include <memory>

#include "apps/Cluster.hh"
#include "apps/DetHash.hh"
#include "apps/StreamCommon.hh"

using namespace san;
using namespace san::apps;

namespace {

constexpr std::uint64_t tableBytes = 32ull * 1024 * 1024;
constexpr unsigned recordBytes = 128;
constexpr double selectivity = 0.25;
constexpr std::uint64_t blockBytes = 64 * 1024;
constexpr std::uint64_t seed = 2026;
constexpr std::uint64_t checkInstr = 24;

bool
finalMatch(std::uint64_t record)
{
    return detChance(seed, record, selectivity);
}

/** Coarse device-level filter: page-granular, keeps ~50%. */
bool
coarseMatch(std::uint64_t record)
{
    // Any record whose 4-record page contains a final match.
    const std::uint64_t page = record / 4;
    for (unsigned i = 0; i < 4; ++i)
        if (finalMatch(page * 4 + i))
            return true;
    return false;
}

struct Outcome {
    sim::Tick exec = 0;
    std::uint64_t hostBytes = 0;
    std::uint64_t fabricBytes = 0; //!< entering the switch from TCA
    double deviceBusyMs = 0;
    double switchBusyMs = 0;
    std::uint64_t matches = 0;
};

enum class Scheme { HostOnly, Switch, Device, TwoLevel };

Outcome
run(Scheme scheme)
{
    ClusterParams cp;
    cp.hostMem = mem::scaledHostMemoryParams();
    Cluster cluster(cp);
    auto &host = cluster.host();
    auto &sw = cluster.sw();
    auto &storage = cluster.storage();
    Outcome out;
    auto matches = std::make_shared<std::uint64_t>(0);

    // Device-level filter, where the scheme uses one.
    if (scheme == Scheme::Device || scheme == Scheme::TwoLevel) {
        const bool coarse = (scheme == Scheme::TwoLevel);
        storage.setDeviceFilter(io::DeviceFilter{
            [coarse](std::uint64_t offset,
                     std::uint32_t bytes) {
                const std::uint64_t first = offset / recordBytes;
                const std::uint64_t recs = bytes / recordBytes;
                std::uint32_t kept = 0;
                for (std::uint64_t i = 0; i < recs; ++i) {
                    const bool keep = coarse
                                          ? coarseMatch(first + i)
                                          : finalMatch(first + i);
                    kept += keep ? recordBytes : 0;
                }
                return std::pair<std::uint32_t, std::uint64_t>(
                    kept, recs * checkInstr);
            },
            200'000'000});
    }

    if (scheme == Scheme::HostOnly || scheme == Scheme::Device) {
        // Data comes straight to the host (filtered or not).
        cluster.sim().spawn([](host::Host &h, net::NodeId st,
                               std::shared_ptr<std::uint64_t> cnt,
                               Scheme sch) -> sim::Task {
            std::uint64_t posted = 0;
            bool have = false;
            std::uint64_t prev_id = 0;
            while (posted < tableBytes || have) {
                if (!have && posted < tableBytes) {
                    prev_id = co_await h.postRead(st, posted,
                                                  blockBytes);
                    posted += blockBytes;
                    have = true;
                }
                const std::uint64_t cur = prev_id;
                have = false;
                if (posted < tableBytes) {
                    prev_id = co_await h.postRead(st, posted,
                                                  blockBytes);
                    posted += blockBytes;
                    have = true;
                }
                auto done = co_await h.awaitIo(cur);
                const std::uint64_t recs =
                    done.bytes / recordBytes;
                // Host checks whatever arrived; in the device scheme
                // that is already only the matches.
                co_await h.cpu().compute(recs * checkInstr);
                if (done.bytes > 0) {
                    const mem::Addr buf = h.allocBuffer(done.bytes);
                    co_await h.cpu().touch(buf, done.bytes,
                                           mem::AccessKind::Load);
                }
                if (sch == Scheme::Device)
                    *cnt += recs; // all arrivals are matches
            }
            co_return;
        }(host, storage.id(), matches, scheme));
        if (scheme == Scheme::HostOnly) {
            // Count matches analytically for the checksum.
            for (std::uint64_t r = 0; r < tableBytes / recordBytes;
                 ++r)
                *matches += finalMatch(r);
        }
    } else {
        // Custom handler: consume until the device says last,
        // refining the surviving records (a FilterHandler cannot be
        // used here because device-side filtering changes the byte
        // count in flight; completion rides IoReply.last instead).
        auto handler = [matches](active::HandlerContext &ctx)
            -> sim::Task {
            active::StreamChunk arg = co_await ctx.nextChunk();
            const net::NodeId reply_to = arg.src;
            ctx.deallocateOne(arg.address);
            bool done = false;
            std::uint64_t block_acc = 0;
            while (!done) {
                active::StreamChunk c = co_await ctx.nextChunk();
                const io::IoReply &reply =
                    *static_cast<const io::IoReply *>(
                        c.payload.get());
                co_await ctx.awaitValid(c, 0, c.bytes);
                const std::uint64_t recs = c.bytes / recordBytes;
                co_await ctx.compute(40 + recs * checkInstr);
                // Refine: of the arriving records, how many are
                // final matches? (Device kept coarse pages or the
                // stream is raw.)
                const std::uint64_t first_raw =
                    reply.offset / recordBytes;
                // The raw chunk is one MTU regardless of how many
                // bytes survived the device filter.
                const std::uint64_t raw_recs = 512 / recordBytes;
                std::uint64_t m = 0;
                for (std::uint64_t i = 0; i < raw_recs; ++i)
                    m += finalMatch(first_raw + i);
                // NOTE: with the coarse device filter the surviving
                // records are a superset of final matches within the
                // raw range, so the count is the same.
                *matches += m;
                block_acc += m * recordBytes;
                ctx.deallocateThrough(c.address + c.bytes);
                // reply.last marks the end of one *block request*;
                // the stream ends with the last chunk of the final
                // block.
                done = reply.last &&
                       reply.offset + 512 >= tableBytes;
                // Per-block result back to the host.
                if (reply.last ||
                    (reply.offset + 512) % blockBytes == 0) {
                    co_await ctx.send(reply_to, block_acc,
                                      std::nullopt, nullptr,
                                      tagResult);
                    block_acc = 0;
                }
            }
        };
        sw.registerHandler(1, "refine", handler);

        cluster.sim().spawn([](host::Host &h, net::NodeId st,
                               net::NodeId sw_id) -> sim::Task {
            co_await h.send(sw_id, 64, net::ActiveHeader{1, 0xF0000000,
                                                          0},
                            nullptr, tagArgs);
            std::uint64_t posted = 0, acked = 0;
            const std::uint64_t blocks = tableBytes / blockBytes;
            auto post = [&]() -> sim::Task {
                co_await h.postReadTo(
                    st, posted * blockBytes, blockBytes, sw_id,
                    net::ActiveHeader{
                        1,
                        static_cast<std::uint32_t>(posted *
                                                   blockBytes),
                        0});
                ++posted;
            };
            while (posted < blocks && posted < 2)
                co_await post();
            while (acked < blocks) {
                net::Message m = co_await h.recv();
                if (m.tag != tagResult)
                    continue;
                ++acked;
                if (posted < blocks)
                    co_await post();
                if (m.bytes > 0) {
                    const mem::Addr buf = h.allocBuffer(m.bytes);
                    co_await h.cpu().touch(buf, m.bytes,
                                           mem::AccessKind::Prefetch);
                }
            }
        }(host, storage.id(), sw.id()));
    }

    out.exec = cluster.sim().run();
    out.hostBytes = host.ioTrafficBytes();
    out.fabricBytes = storage.tca().bytesSent();
    out.deviceBusyMs = sim::toMillis(storage.deviceBusyTicks());
    out.switchBusyMs = sim::toMillis(sw.cpu(0).busyTicks());
    out.matches = *matches;
    return out;
}

const char *
name(Scheme s)
{
    switch (s) {
      case Scheme::HostOnly: return "host-only";
      case Scheme::Switch: return "switch";
      case Scheme::Device: return "device";
      case Scheme::TwoLevel: return "device+switch";
    }
    return "?";
}

} // namespace

int
main()
{
    std::printf("Extension: two-level active I/O (32 MB select, "
                "selectivity 0.25)\n");
    std::printf("%-14s %10s %12s %13s %11s %11s %9s\n", "scheme",
                "exec(ms)", "host(MB)", "fabric(MB)", "device(ms)",
                "switch(ms)", "matches");
    std::uint64_t reference = 0;
    bool ok = true;
    for (Scheme s : {Scheme::HostOnly, Scheme::Switch, Scheme::Device,
                     Scheme::TwoLevel}) {
        const Outcome o = run(s);
        if (s == Scheme::HostOnly)
            reference = o.matches;
        ok = ok && (o.matches == reference);
        std::printf("%-14s %10.2f %12.2f %13.2f %11.2f %11.2f %9llu\n",
                    name(s), sim::toMillis(o.exec),
                    o.hostBytes / 1048576.0, o.fabricBytes / 1048576.0,
                    o.deviceBusyMs, o.switchBusyMs,
                    static_cast<unsigned long long>(o.matches));
        std::fflush(stdout);
    }
    if (!ok) {
        std::fprintf(stderr, "match counts diverged!\n");
        return 1;
    }
    std::printf("\nDevice-level filtering is the only scheme that "
                "also removes fabric\ntraffic; the two-level split "
                "shares the cycles between the 200 MHz\ndevice core "
                "and the 500 MHz switch CPU, as §6 of the paper "
                "anticipates.\n");
    return 0;
}
