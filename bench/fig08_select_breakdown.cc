/**
 * @file
 * Figure 8: Select execution-time breakdown (busy / cache stall /
 * idle). The active cases show the sharp drop in host cache misses
 * the paper highlights.
 */

#include "BenchCommon.hh"
#include "apps/Select.hh"

int
main(int argc, char **argv)
{
    san::apps::SelectParams params;
    if (san::bench::init(argc, argv).quick)
        params.tableBytes = 16ull * 1024 * 1024;
    return san::bench::runFigure(
        "", "Fig 8: Select",
        [&](san::apps::Mode m) { return runSelect(m, params); },
        false, true);
}
