/**
 * @file
 * Figure 8: Select execution-time breakdown (busy / cache stall /
 * idle). The active cases show the sharp drop in host cache misses
 * the paper highlights.
 */

#include "BenchCommon.hh"
#include "apps/Select.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::SelectParams>(
        argc, argv, "Fig 8: Select", san::apps::runSelect,
        [](san::apps::SelectParams &p) {
            p.tableBytes = 16ull * 1024 * 1024;
        });
}
