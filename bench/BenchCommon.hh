/**
 * @file
 * Shared driver for the per-figure bench binaries: run one benchmark
 * across the four configurations, print the paper's two figure
 * tables, and verify the modes agree semantically.
 *
 * Observability flags (see README "Observability"):
 *   --quick              smaller problem sizes (per-bench choice)
 *   --stats-json <file>  write per-mode component stats as JSON
 *   --trace <file>       write a Chrome trace_event file (one trace
 *                        process per mode)
 *   --fingerprint        print each mode's 64-bit run fingerprint
 *   --metrics-csv <file> write a per-interval utilization time series
 *                        (CSV, or JSONL when the file ends .jsonl)
 *   --metrics-interval <micros>  sampling interval in simulated
 *                        microseconds (default 100)
 *   --perf               print per-mode wall clock and simulator
 *                        throughput (events/sec) lines, consumed by
 *                        tools/perf_baseline
 *   --threads N          run the simulation on N worker threads
 *                        (sharded conservative PDES; DESIGN.md §14).
 *                        N=1 (default) is the classic single-queue
 *                        kernel, byte-identical to earlier releases.
 *                        Incompatible with --metrics-csv (the
 *                        interval sampler walks live component state
 *                        from its own event). Benches that drive the
 *                        simulator directly (ablations, micro_*)
 *                        ignore the flag.
 *   --telemetry[=N]      arm packet-lineage telemetry, sampling one
 *                        packet in N (default 1 = every packet; 0
 *                        arms the hooks without sampling, for
 *                        overhead measurement). Adds no events: run
 *                        fingerprints match untelemetered runs.
 *   --latency-report <file>  write the per-stage latency lineage
 *                        tables (requires --telemetry)
 *
 * Fault-injection flags (see DESIGN.md "Fault model and recovery"):
 *   --fault-spec KIND:RATE[:SEED]  arm a rate-driven fault class
 *                        (link-ber, credit-loss, handler-crash,
 *                        disk-spike, disk-timeout; "none:0" arms the
 *                        recovery protocol without injecting).
 *                        Repeatable.
 *   --fault-at TICK:KIND:TARGET  schedule one fault at/after TICK
 *                        picoseconds on a named component (a link
 *                        name, a storage TCA name, or a handler id
 *                        for handler-crash). Repeatable.
 *   --fault-seed SEED    base seed of every fault stream (default
 *                        fault::FaultPlan::defaultSeed)
 */

#ifndef SAN_BENCH_BENCH_COMMON_HH
#define SAN_BENCH_BENCH_COMMON_HH

#include <array>
#include <chrono>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include <vector>

#include "apps/Cluster.hh"
#include "apps/RunConfig.hh"
#include "fault/FaultPlan.hh"
#include "harness/Report.hh"
#include "harness/StatsReport.hh"
#include "obs/Hooks.hh"
#include "obs/Metrics.hh"
#include "obs/Telemetry.hh"
#include "obs/Trace.hh"
#include "sim/Types.hh"

namespace san::bench {

/** Command-line options shared by every figure bench. */
struct BenchOptions {
    bool quick = false;
    bool fingerprint = false;
    bool perf = false; //!< print per-mode wall clock and events/sec
    unsigned threads = 1; //!< PDES worker threads (1 = unsharded)
    std::string statsJsonPath;
    std::string tracePath;
    std::string metricsCsvPath;
    sim::Tick metricsInterval = sim::us(100);
    std::vector<fault::FaultSpec> faultSpecs;
    std::vector<fault::FaultEvent> faultEvents;
    std::uint64_t faultSeed = fault::FaultPlan::defaultSeed;
    bool telemetry = false;                 //!< --telemetry given
    std::uint64_t telemetrySampleRate = 1;  //!< 1-in-N (0 = armed only)
    std::string latencyReportPath;
};

/** The options parsed by init() (defaults if init was never called). */
inline BenchOptions &
options()
{
    static BenchOptions opts;
    return opts;
}

namespace detail {

/** Trace file + exporter kept alive for the whole process. */
struct TraceState {
    std::ofstream file;
    std::unique_ptr<obs::ChromeTracer> tracer;
};

inline TraceState &
traceState()
{
    static TraceState state;
    return state;
}

/** Per-mode JSON stat dumps captured via the cluster observer. */
inline std::map<std::string, std::string> &
capturedStats()
{
    static std::map<std::string, std::string> stats;
    return stats;
}

/** Metrics file + sampler kept alive for the whole process. */
struct MetricsState {
    std::ofstream file;
    std::unique_ptr<obs::IntervalSampler> sampler;
};

inline MetricsState &
metricsState()
{
    static MetricsState state;
    return state;
}

/**
 * The installed fault plan. Rebuilt per mode by runFigure() so every
 * mode sees the same fault schedule (one-shot --fault-at events
 * re-arm, rate streams restart from their seeds).
 */
struct FaultState {
    std::unique_ptr<fault::FaultPlan> plan;
};

inline FaultState &
faultState()
{
    static FaultState state;
    return state;
}

/** The process-lifetime telemetry engine (installed by init()). */
struct TelemetryState {
    std::unique_ptr<obs::Telemetry> tel;
};

inline TelemetryState &
telemetryState()
{
    static TelemetryState state;
    return state;
}

} // namespace detail

/** True when any --fault-spec / --fault-at flag was given. */
inline bool
faultsConfigured()
{
    return !options().faultSpecs.empty() ||
           !options().faultEvents.empty();
}

/**
 * (Re)build the fault plan from the parsed flags and install it via
 * fault::globalPlan(). No-op without fault flags, so fault-free runs
 * keep the zero-overhead fast path.
 */
inline void
installFaultPlan()
{
    if (!faultsConfigured())
        return;
    const BenchOptions &opts = options();
    auto &fs = detail::faultState();
    fs.plan = std::make_unique<fault::FaultPlan>(opts.faultSeed);
    for (const auto &spec : opts.faultSpecs)
        fs.plan->addSpec(spec);
    for (const auto &event : opts.faultEvents)
        fs.plan->addEvent(event);
    fault::globalPlan() = fs.plan.get();
}

/**
 * Parse the shared flags and install the requested instrumentation
 * (tracer hook, stats-capturing cluster observer). Call once at the
 * top of main(); returns the parsed options.
 */
inline BenchOptions &
init(int argc, char **argv)
{
    BenchOptions &opts = options();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            opts.quick = true;
        } else if (std::strcmp(argv[i], "--fingerprint") == 0) {
            opts.fingerprint = true;
        } else if (std::strcmp(argv[i], "--perf") == 0) {
            opts.perf = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --threads requires a count\n";
                std::exit(2);
            }
            const char *arg = argv[++i];
            char *end = nullptr;
            const unsigned long n = std::strtoul(arg, &end, 0);
            if (end == arg || *end != '\0' || n == 0 || n > 256) {
                std::cerr << "error: --threads needs an integer in "
                             "[1, 256], got '"
                          << arg << "'\n";
                std::exit(2);
            }
            opts.threads = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--stats-json") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --stats-json requires a file\n";
                std::exit(2);
            }
            opts.statsJsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --trace requires a file\n";
                std::exit(2);
            }
            opts.tracePath = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --metrics-csv requires a file\n";
                std::exit(2);
            }
            opts.metricsCsvPath = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics-interval") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --metrics-interval requires a "
                             "value in microseconds\n";
                std::exit(2);
            }
            const char *arg = argv[++i];
            char *end = nullptr;
            const double micros = std::strtod(arg, &end);
            if (end == arg || *end != '\0' || !(micros > 0)) {
                std::cerr << "error: --metrics-interval needs a "
                             "positive number of microseconds, got '"
                          << arg << "'\n";
                std::exit(2);
            }
            opts.metricsInterval =
                static_cast<sim::Tick>(micros * 1e6); // us -> ps
            if (opts.metricsInterval == 0) {
                std::cerr << "error: --metrics-interval '" << arg
                          << "' is below one picosecond\n";
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--fault-spec") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --fault-spec requires "
                             "KIND:RATE[:SEED]\n";
                std::exit(2);
            }
            std::string error;
            const auto spec =
                fault::FaultPlan::parseSpec(argv[++i], &error);
            if (!spec) {
                std::cerr << "error: --fault-spec: " << error << "\n";
                std::exit(2);
            }
            opts.faultSpecs.push_back(*spec);
        } else if (std::strcmp(argv[i], "--fault-at") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --fault-at requires "
                             "TICK:KIND:TARGET\n";
                std::exit(2);
            }
            std::string error;
            auto event = fault::FaultPlan::parseAt(argv[++i], &error);
            if (!event) {
                std::cerr << "error: --fault-at: " << error << "\n";
                std::exit(2);
            }
            opts.faultEvents.push_back(std::move(*event));
        } else if (std::strcmp(argv[i], "--telemetry") == 0) {
            opts.telemetry = true;
            opts.telemetrySampleRate = 1;
        } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
            const char *arg = argv[i] + 12;
            char *end = nullptr;
            opts.telemetrySampleRate = std::strtoull(arg, &end, 0);
            if (end == arg || *end != '\0') {
                std::cerr << "error: --telemetry=N needs an integer "
                             "sample rate, got '"
                          << arg << "'\n";
                std::exit(2);
            }
            opts.telemetry = true;
        } else if (std::strcmp(argv[i], "--latency-report") == 0) {
            if (i + 1 >= argc) {
                std::cerr
                    << "error: --latency-report requires a file\n";
                std::exit(2);
            }
            opts.latencyReportPath = argv[++i];
        } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "error: --fault-seed requires a value\n";
                std::exit(2);
            }
            const char *arg = argv[++i];
            char *end = nullptr;
            opts.faultSeed = std::strtoull(arg, &end, 0);
            if (end == arg || *end != '\0') {
                std::cerr << "error: --fault-seed needs an integer, "
                             "got '"
                          << arg << "'\n";
                std::exit(2);
            }
        }
    }

    auto reject_collision = [](const std::string &a_flag,
                               const std::string &a,
                               const std::string &b_flag,
                               const std::string &b) {
        if (!a.empty() && a == b) {
            std::cerr << "error: " << a_flag << " and " << b_flag
                      << " must name different files\n";
            std::exit(2);
        }
    };
    reject_collision("--trace", opts.tracePath, "--stats-json",
                     opts.statsJsonPath);
    reject_collision("--metrics-csv", opts.metricsCsvPath, "--trace",
                     opts.tracePath);
    reject_collision("--metrics-csv", opts.metricsCsvPath,
                     "--stats-json", opts.statsJsonPath);
    reject_collision("--latency-report", opts.latencyReportPath,
                     "--trace", opts.tracePath);
    reject_collision("--latency-report", opts.latencyReportPath,
                     "--stats-json", opts.statsJsonPath);
    reject_collision("--latency-report", opts.latencyReportPath,
                     "--metrics-csv", opts.metricsCsvPath);

    if (!opts.latencyReportPath.empty() && !opts.telemetry) {
        std::cerr << "error: --latency-report requires --telemetry\n";
        std::exit(2);
    }
    if (opts.threads > 1 && !opts.metricsCsvPath.empty()) {
        std::cerr << "error: --metrics-csv requires --threads 1 (the "
                     "interval sampler reads live component state "
                     "from a simulation event)\n";
        std::exit(2);
    }
    if (opts.telemetry) {
        auto &ts = detail::telemetryState();
        ts.tel =
            std::make_unique<obs::Telemetry>(opts.telemetrySampleRate);
        obs::globalTelemetry() = ts.tel.get();
    }

    if (!opts.tracePath.empty()) {
        auto &ts = detail::traceState();
        ts.file.open(opts.tracePath);
        if (ts.file) {
            ts.tracer = std::make_unique<obs::ChromeTracer>(ts.file);
            obs::globalTracer() = ts.tracer.get();
        } else {
            std::cerr << "cannot open trace file " << opts.tracePath
                      << "\n";
        }
    }

    if (!opts.metricsCsvPath.empty()) {
        auto &ms = detail::metricsState();
        ms.file.open(opts.metricsCsvPath);
        if (ms.file) {
            const bool jsonl =
                opts.metricsCsvPath.size() >= 6 &&
                opts.metricsCsvPath.compare(
                    opts.metricsCsvPath.size() - 6, 6, ".jsonl") == 0;
            ms.sampler = std::make_unique<obs::IntervalSampler>(
                ms.file, opts.metricsInterval,
                jsonl ? obs::MetricsFormat::Jsonl
                      : obs::MetricsFormat::Csv);
            if (obs::globalTracer())
                ms.sampler->setMirror(obs::globalTracer());
            obs::globalSampler() = ms.sampler.get();
        } else {
            std::cerr << "cannot open metrics file "
                      << opts.metricsCsvPath << "\n";
        }
    }

    if (!opts.statsJsonPath.empty()) {
        apps::clusterObserver() = [](apps::Cluster &cluster,
                                     apps::Mode mode) {
            std::ostringstream oss;
            obs::JsonWriter json(oss);
            harness::dumpClusterStatsJson(json, cluster);
            detail::capturedStats()[apps::modeName(mode)] = oss.str();
        };
    }

    installFaultPlan();
    if (faultsConfigured())
        std::cerr << "fault plan:\n"
                  << detail::faultState().plan->describe();
    return opts;
}

/** True if --quick appears in the argument list. */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    return false;
}

namespace detail {

/** Write the per-mode stats captured during runFigure() to disk. */
inline void
writeStatsJson(const std::string &path, const std::string &title)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open stats file " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"" << title << "\",\n  \"modes\": {";
    bool first = true;
    for (const auto &[mode, json] : capturedStats()) {
        if (!first)
            out << ",";
        first = false;
        // Indent the captured object two levels under "modes".
        out << "\n    \"" << mode << "\": ";
        std::istringstream in(json);
        std::string line;
        bool first_line = true;
        while (std::getline(in, line)) {
            if (!first_line)
                out << "\n    ";
            first_line = false;
            out << line;
        }
    }
    out << "\n  }\n}\n";
}

} // namespace detail

/**
 * Run @p run_one for all four modes, print overview and/or breakdown
 * tables, and check the semantic checksum.
 * @return process exit code.
 */
inline int
runFigure(const std::string &overview_title,
          const std::string &breakdown_title,
          const std::function<apps::RunStats(apps::Mode)> &run_one,
          bool print_overview = true, bool print_breakdown = true)
{
    const BenchOptions &opts = options();
    harness::ModeResults results;
    std::array<double, apps::allModes.size()> wallMs{};
    std::array<double, apps::allModes.size()> cpuMs{};
    for (std::size_t i = 0; i < apps::allModes.size(); ++i) {
        if (detail::traceState().tracer)
            detail::traceState().tracer->beginProcess(
                apps::modeName(apps::allModes[i]));
        if (detail::metricsState().sampler)
            detail::metricsState().sampler->setRunLabel(
                apps::modeName(apps::allModes[i]));
        // Fresh plan per mode: one-shot events re-arm, rate streams
        // restart, so every mode faces the same fault schedule.
        installFaultPlan();
        // Fresh sampler phase per mode, so every mode samples the
        // same 1-in-N positions of its packet stream.
        if (obs::Telemetry *tel = obs::globalTelemetry())
            tel->beginRun(apps::modeName(apps::allModes[i]));
        const auto t0 = std::chrono::steady_clock::now();
        const std::clock_t c0 = std::clock();
        results[i] = run_one(apps::allModes[i]);
        cpuMs[i] = 1e3 * static_cast<double>(std::clock() - c0) /
                   CLOCKS_PER_SEC;
        wallMs[i] = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    }

    if (print_overview)
        harness::printOverview(std::cout, overview_title, results);
    if (print_breakdown)
        harness::printBreakdown(std::cout, breakdown_title, results);
    harness::printHandlerProfile(std::cout,
                                 overview_title.empty()
                                     ? breakdown_title
                                     : overview_title,
                                 results);

    if (opts.fingerprint)
        for (const auto &r : results)
            std::cout << "fingerprint[" << apps::modeName(r.mode)
                      << "]: 0x" << std::hex << r.fingerprint
                      << std::dec << "\n";
    // events_per_sec divides by process CPU time, not wall time:
    // these runs last milliseconds, so a noisy-neighbor descheduling
    // would otherwise dominate the figure the perf gate compares.
    if (opts.perf)
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            const double secs = cpuMs[i] / 1e3;
            const double eps =
                secs > 0 ? static_cast<double>(r.eventsExecuted) / secs
                         : 0.0;
            std::cout << "perf[" << apps::modeName(r.mode)
                      << "]: events=" << r.eventsExecuted
                      << " wall_ms=" << std::fixed
                      << std::setprecision(3) << wallMs[i]
                      << " cpu_ms=" << cpuMs[i]
                      << " events_per_sec=" << std::setprecision(0)
                      << eps << std::defaultfloat
                      << std::setprecision(6) << "\n";
        }
    if (!opts.statsJsonPath.empty())
        detail::writeStatsJson(opts.statsJsonPath,
                               overview_title.empty() ? breakdown_title
                                                      : overview_title);
    if (!opts.latencyReportPath.empty()) {
        std::ofstream out(opts.latencyReportPath);
        if (out)
            harness::printLatencyReport(out,
                                        overview_title.empty()
                                            ? breakdown_title
                                            : overview_title,
                                        results);
        else
            std::cerr << "cannot open latency report file "
                      << opts.latencyReportPath << "\n";
    }
    if (detail::traceState().tracer)
        detail::traceState().tracer->finish();

    if (!harness::checksumsAgree(results)) {
        std::cerr << "CHECKSUM MISMATCH across modes\n";
        harness::printRaw(std::cerr, results);
        return 1;
    }
    std::cout << "checksum: " << results[0].checksum << "\n";
    return 0;
}

/**
 * Whole-main() driver for the breakdown-figure benches (Fig 4, 6, 8,
 * 10, 12, 14), which differ only in the app run function and how
 * --quick shrinks the problem. @p quick_shrink (may be empty) adjusts
 * the default-constructed params when --quick was given.
 */
template <typename Params>
int
runBreakdownFigure(int argc, char **argv, const std::string &title,
                   apps::RunStats (*run_one)(apps::Mode,
                                             const Params &),
                   const std::function<void(Params &)> &quick_shrink =
                       {})
{
    Params params;
    if (init(argc, argv).quick && quick_shrink)
        quick_shrink(params);
    return runFigure(
        "", title,
        [&](apps::Mode m) { return run_one(m, params); }, false, true);
}

} // namespace san::bench

#endif // SAN_BENCH_BENCH_COMMON_HH
