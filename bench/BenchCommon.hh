/**
 * @file
 * Shared driver for the per-figure bench binaries: run one benchmark
 * across the four configurations, print the paper's two figure
 * tables, and verify the modes agree semantically.
 */

#ifndef SAN_BENCH_BENCH_COMMON_HH
#define SAN_BENCH_BENCH_COMMON_HH

#include <cstring>
#include <functional>
#include <iostream>
#include <string>

#include "apps/RunConfig.hh"
#include "harness/Report.hh"

namespace san::bench {

/** True if --quick appears in the argument list. */
inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    return false;
}

/**
 * Run @p run_one for all four modes, print overview and/or breakdown
 * tables, and check the semantic checksum.
 * @return process exit code.
 */
inline int
runFigure(const std::string &overview_title,
          const std::string &breakdown_title,
          const std::function<apps::RunStats(apps::Mode)> &run_one,
          bool print_overview = true, bool print_breakdown = true)
{
    harness::ModeResults results;
    for (std::size_t i = 0; i < apps::allModes.size(); ++i)
        results[i] = run_one(apps::allModes[i]);

    if (print_overview)
        harness::printOverview(std::cout, overview_title, results);
    if (print_breakdown)
        harness::printBreakdown(std::cout, breakdown_title, results);
    if (!harness::checksumsAgree(results)) {
        std::cerr << "CHECKSUM MISMATCH across modes\n";
        harness::printRaw(std::cerr, results);
        return 1;
    }
    std::cout << "checksum: " << results[0].checksum << "\n";
    return 0;
}

} // namespace san::bench

#endif // SAN_BENCH_BENCH_COMMON_HH
