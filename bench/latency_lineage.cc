/**
 * @file
 * Tail-latency lineage lab: where do the p99 nanoseconds of a
 * congested fabric actually go?
 *
 * Runs the policy lab's two hotspot patterns (net/Traffic.hh) through
 * the bounded central FIFO and the VOQ+iSLIP policies with packet
 * lineage telemetry sampling every packet, and reports per-stage
 * latency percentiles (tx-queue wait, policy wait, switch queueing,
 * end-to-end) from the folded INT records. The headline the numbers
 * show: under perm_hotspot the central FIFO's p99 end-to-end latency
 * is dominated by switch queueing (HOL blocking behind the hot
 * output), while VOQs move the wait back into the per-input queues
 * and cut the permutation flows' tail.
 *
 * Also measures the *passive* telemetry overhead the ISSUE's ≤2%
 * budget gates: the same incast workload is timed with the hooks
 * absent (globalTelemetry() null) and with the hooks armed at sample
 * rate 0 (every branch taken, no packet sampled), best-of-N process
 * CPU time. Note this is a packet-path measurement by necessity —
 * micro_kernel exercises the bare event kernel, which has no packets
 * and therefore no telemetry branches at all. Reported as
 * "telemetry_overhead" and gated by tools/perf_baseline
 * --max-telemetry-overhead (and --max-overhead here).
 *
 * Prints a JSON report on stdout (schema san-latency-lineage-v1) and
 * a table on stderr. All latency numbers are simulated integer
 * nanoseconds from log-bucketed tick histograms: byte-stable across
 * repeats and compilers.
 *
 * Usage: latency_lineage [--message-bytes N] [--perm N] [--hot N]
 *                        [--overhead-reps N] [--overhead-iters N]
 *                        [--max-overhead X]
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "net/Fabric.hh"
#include "net/Traffic.hh"
#include "obs/Telemetry.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::net;

struct RunSettings {
    std::uint32_t messageBytes = 4096;
    unsigned permMessages = 48;
    unsigned hotMessages = 24;
};

struct StageCut {
    std::uint64_t samples = 0;
    std::uint64_t p50 = 0; //!< ns
    std::uint64_t p99 = 0; //!< ns
    std::uint64_t max = 0; //!< ns
};

struct PolicyResult {
    std::string policy;
    TrafficReport report;
    std::uint64_t holBlocked = 0;
    StageCut txQueue, policyWait, switchQueue, endToEnd;
};

StageCut
cut(const obs::LatencyHistogram &h)
{
    StageCut c;
    c.samples = h.samples();
    c.p50 = h.percentile(5000) / 1000;
    c.p99 = h.percentile(9900) / 1000;
    c.max = h.max() / 1000;
    return c;
}

/** One traffic run; telemetry (if any) must already be installed and
 * beginRun() primed by the caller. */
TrafficReport
runTraffic(TrafficParams::Pattern pattern, const std::string &spec,
           const RunSettings &s, std::uint64_t *hol_blocked)
{
    const auto cfg = parsePolicySpec(spec);
    if (!cfg.has_value()) {
        std::fprintf(stderr, "FATAL: bad policy spec %s\n",
                     spec.c_str());
        std::exit(1);
    }
    sim::Simulation sim;
    Fabric fabric(sim);
    SwitchParams params;
    params.ports = 8;
    params.policy = *cfg;
    Switch &sw = fabric.addSwitch(params);
    std::vector<Adapter *> hosts;
    for (unsigned h = 0; h < 8; ++h) {
        Adapter &a = fabric.addAdapter("h" + std::to_string(h));
        fabric.connect(sw, h, a);
        hosts.push_back(&a);
    }
    fabric.computeRoutes();

    TrafficParams traffic;
    traffic.pattern = pattern;
    traffic.messageBytes = s.messageBytes;
    traffic.permMessages = s.permMessages;
    traffic.hotMessages = s.hotMessages;
    TrafficGen gen(sim, hosts, traffic);
    gen.start();
    sim.run();
    if (hol_blocked != nullptr)
        *hol_blocked = sw.policy().counters().holBlocked;
    return gen.report();
}

PolicyResult
runOne(TrafficParams::Pattern pattern, const std::string &spec,
       const RunSettings &s, obs::Telemetry &tel)
{
    obs::globalTelemetry() = &tel;
    tel.beginRun(spec);
    PolicyResult r;
    r.policy = spec;
    r.report = runTraffic(pattern, spec, s, &r.holBlocked);
    const obs::TelemetryStats &t = tel.finishRun();
    obs::globalTelemetry() = nullptr;
    using obs::FlowClass;
    using obs::Stage;
    r.txQueue = cut(t.stageHist(FlowClass::Data, Stage::TxQueue));
    r.policyWait =
        cut(t.stageHist(FlowClass::Data, Stage::PolicyWait));
    r.switchQueue =
        cut(t.stageHist(FlowClass::Data, Stage::SwitchQueue));
    r.endToEnd = cut(t.stageHist(FlowClass::Data, Stage::EndToEnd));
    return r;
}

/**
 * Process CPU seconds for @p iters back-to-back incast workloads,
 * with the telemetry hooks in whatever state the caller installed
 * (null = off, armed-at-rate-0 = every hook branch taken, nothing
 * sampled). One workload is well under a millisecond — below
 * clock() quantization — so each timed sample batches enough
 * iterations to make a sub-2% overhead resolvable. The caller
 * interleaves off/armed samples so a sustained CPU-throttle window
 * (common on shared CI machines) cannot land on only one side.
 */
double
timeBatch(const RunSettings &s, unsigned iters)
{
    const std::clock_t c0 = std::clock();
    for (unsigned k = 0; k < iters; ++k)
        runTraffic(TrafficParams::Pattern::Incast, "fifo", s,
                   nullptr);
    return static_cast<double>(std::clock() - c0) / CLOCKS_PER_SEC;
}

const char *
patternName(TrafficParams::Pattern p)
{
    return p == TrafficParams::Pattern::Incast ? "incast"
                                               : "perm_hotspot";
}

void
printJsonResult(const char *label, const PolicyResult &r, bool last)
{
    const auto u = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    std::printf(
        "      \"%s\": {\"samples\": %llu, "
        "\"txq_p50_ns\": %llu, \"txq_p99_ns\": %llu, "
        "\"policy_wait_p99_ns\": %llu, "
        "\"switchq_p50_ns\": %llu, \"switchq_p99_ns\": %llu, "
        "\"e2e_p50_ns\": %llu, \"e2e_p99_ns\": %llu, "
        "\"e2e_max_ns\": %llu, \"hol_blocked\": %llu}%s\n",
        label, u(r.endToEnd.samples), u(r.txQueue.p50),
        u(r.txQueue.p99), u(r.policyWait.p99), u(r.switchQueue.p50),
        u(r.switchQueue.p99), u(r.endToEnd.p50), u(r.endToEnd.p99),
        u(r.endToEnd.max), u(r.holBlocked), last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    RunSettings settings;
    unsigned overheadReps = 25;
    unsigned overheadIters = 128;
    double maxOverhead = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--message-bytes") == 0 &&
            i + 1 < argc) {
            settings.messageBytes = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--perm") == 0 && i + 1 < argc) {
            settings.permMessages = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc) {
            settings.hotMessages = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--overhead-reps") == 0 &&
                   i + 1 < argc) {
            overheadReps = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--overhead-iters") == 0 &&
                   i + 1 < argc) {
            overheadIters = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--max-overhead") == 0 &&
                   i + 1 < argc) {
            maxOverhead = std::strtod(argv[++i], nullptr);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--message-bytes N] [--perm N] [--hot N] "
                "[--overhead-reps N] [--overhead-iters N] "
                "[--max-overhead X]\n",
                argv[0]);
            return 2;
        }
    }

    obs::Telemetry tel(1); // sample every packet
    const char *specs[] = {"fifo", "voq"};
    const TrafficParams::Pattern patterns[] = {
        TrafficParams::Pattern::PermutationHotspot,
        TrafficParams::Pattern::Incast,
    };

    std::printf("{\n  \"schema\": \"san-latency-lineage-v1\",\n"
                "  \"message_bytes\": %u,\n  \"perm_messages\": %u,\n"
                "  \"hot_messages\": %u,\n  \"patterns\": {\n",
                settings.messageBytes, settings.permMessages,
                settings.hotMessages);
    for (std::size_t p = 0; p < 2; ++p) {
        const auto pattern = patterns[p];
        std::printf("    \"%s\": {\n", patternName(pattern));
        std::fprintf(stderr,
                     "%-14s %-8s %8s %9s %9s %9s %9s %9s\n",
                     patternName(pattern), "policy", "samples",
                     "txq p99", "polW p99", "swq p99", "e2e p50",
                     "e2e p99");
        for (std::size_t i = 0; i < 2; ++i) {
            const PolicyResult r =
                runOne(pattern, specs[i], settings, tel);
            printJsonResult(specs[i], r, i + 1 == 2);
            std::fprintf(
                stderr,
                "%-14s %-8s %8llu %9llu %9llu %9llu %9llu %9llu\n",
                "", r.policy.c_str(),
                static_cast<unsigned long long>(r.endToEnd.samples),
                static_cast<unsigned long long>(r.txQueue.p99),
                static_cast<unsigned long long>(r.policyWait.p99),
                static_cast<unsigned long long>(r.switchQueue.p99),
                static_cast<unsigned long long>(r.endToEnd.p50),
                static_cast<unsigned long long>(r.endToEnd.p99));
        }
        std::printf("    }%s\n", p + 1 < 2 ? "," : "");
    }

    // Passive overhead: hooks absent vs armed-at-rate-0. Same
    // deterministic workload, best-of-N CPU time each.
    obs::Telemetry armed(0);
    armed.beginRun("overhead");
    double plain = 1e30;
    double hooked = 1e30;
    std::vector<double> ratios;
    for (unsigned rep = 0; rep < overheadReps; ++rep) {
        // Alternate which side runs first: a monotonic frequency
        // drift across the pair would otherwise bias every ratio
        // against whichever side always ran second.
        double p, h;
        if (rep % 2 == 0) {
            obs::globalTelemetry() = nullptr;
            p = timeBatch(settings, overheadIters);
            obs::globalTelemetry() = &armed;
            h = timeBatch(settings, overheadIters);
        } else {
            obs::globalTelemetry() = &armed;
            h = timeBatch(settings, overheadIters);
            obs::globalTelemetry() = nullptr;
            p = timeBatch(settings, overheadIters);
        }
        plain = std::min(plain, p);
        hooked = std::min(hooked, h);
        if (p > 0)
            ratios.push_back(h / p);
    }
    obs::globalTelemetry() = nullptr;
    // Median of the per-rep paired ratios: each pair runs
    // back-to-back, so a CPU-throttle window hits both sides of the
    // ratio, and the median discards the reps where it straddled
    // only one.
    std::sort(ratios.begin(), ratios.end());
    const double overhead =
        ratios.empty() ? 0.0 : ratios[ratios.size() / 2] - 1.0;

    std::printf("  },\n  \"telemetry_overhead\": %.4f\n}\n", overhead);
    std::fprintf(stderr,
                 "passive telemetry overhead: %.2f%% (off %.4fs, "
                 "armed@0 %.4fs, best of %u x %u iters)\n",
                 overhead * 100.0, plain, hooked, overheadReps,
                 overheadIters);

    if (maxOverhead > 0 && overhead > maxOverhead) {
        std::fprintf(stderr,
                     "FAIL: passive telemetry overhead %.2f%% above "
                     "the %.2f%% budget\n",
                     overhead * 100.0, maxOverhead * 100.0);
        return 1;
    }
    return 0;
}
