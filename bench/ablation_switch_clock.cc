/**
 * @file
 * Ablation: embedded switch-CPU clock.
 *
 * The paper fixes the switch CPU at a quarter of the host clock
 * (500 MHz vs 2 GHz) and stresses that handlers "must not be
 * compute-intensive". This study sweeps the embedded clock for the
 * two extremes among the benchmarks: MPEG-filter (whose active split
 * is a balanced pipeline — the switch is on the critical path) and
 * Select (I/O bound — the switch has slack), both in active+pref.
 */

#include <cstdio>

#include "apps/MpegFilter.hh"
#include "apps/Select.hh"

using namespace san;
using namespace san::apps;

int
main()
{
    std::printf("Ablation: switch CPU clock (active+pref exec, ms)\n");
    std::printf("%10s %14s %14s %18s\n", "clock", "mpeg", "select",
                "mpeg switch-util");

    for (std::uint64_t hz : {250'000'000ull, 500'000'000ull,
                             1'000'000'000ull, 2'000'000'000ull}) {
        MpegParams mp;
        mp.cluster.active.cpuHz = hz;
        RunStats mpeg = runMpegFilter(Mode::ActivePref, mp);

        SelectParams sp;
        sp.tableBytes = 16ull * 1024 * 1024;
        sp.cluster.active.cpuHz = hz;
        RunStats select = runSelect(Mode::ActivePref, sp);

        std::printf("%7llu MHz %14.3f %14.3f %18.3f\n",
                    static_cast<unsigned long long>(hz / 1'000'000),
                    sim::toMillis(mpeg.execTime),
                    sim::toMillis(select.execTime),
                    mpeg.switchUtilization());
    }
    std::printf("\nMPEG rides the switch CPU (halving the clock "
                "stretches the run;\ndoubling it helps until the host "
                "becomes the bottleneck); Select\nis indifferent — "
                "its handler has an order of magnitude of slack.\n");
    return 0;
}
