/**
 * @file
 * Figure 4: MPEG-filter execution-time breakdown (busy / cache stall
 * / idle for host and switch CPUs).
 */

#include "BenchCommon.hh"
#include "apps/MpegFilter.hh"

int
main(int argc, char **argv)
{
    san::apps::MpegParams params;
    if (san::bench::init(argc, argv).quick)
        params.fileBytes = 512 * 1024;
    return san::bench::runFigure(
        "", "Fig 4: MPEG filter",
        [&](san::apps::Mode m) { return runMpegFilter(m, params); },
        false, true);
}
