/**
 * @file
 * Figure 4: MPEG-filter execution-time breakdown (busy / cache stall
 * / idle for host and switch CPUs).
 */

#include "BenchCommon.hh"
#include "apps/MpegFilter.hh"

int
main(int argc, char **argv)
{
    return san::bench::runBreakdownFigure<san::apps::MpegParams>(
        argc, argv, "Fig 4: MPEG filter", san::apps::runMpegFilter,
        [](san::apps::MpegParams &p) { p.fileBytes = 512 * 1024; });
}
