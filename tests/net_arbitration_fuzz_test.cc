/**
 * @file
 * Cross-policy conservation / ordering fuzz for the switch queueing
 * policies (modeled on sim_ladder_fuzz_test): one random multi-port
 * traffic plan per seed is replayed through every policy, and each
 * run must deliver the exact same multiset of (src, dst, messageId,
 * seq) packets with monotone per-flow ordering. The default central
 * policy must additionally reproduce its run fingerprint bit-for-bit
 * across repeat runs, and the VOQ arbiter must keep its bounded
 * grant-wait (starvation-freedom) promise under a sustained hotspot.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "net/Link.hh"
#include "net/Switch.hh"
#include "net/SwitchPolicy.hh"
#include "obs/Fingerprint.hh"
#include "sim/Random.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::net;

constexpr unsigned kPorts = 6;

NodeId
endpointId(unsigned port)
{
    return 100 + port;
}

/** One posted message: all its packets enter the source link at once
 * (the link serializes them in FIFO wire order). */
struct Post {
    sim::Tick at = 0;
    unsigned in = 0;
    unsigned out = 0;
    std::uint64_t mid = 0;
    unsigned pkts = 1;
    std::uint32_t bytes = 0;
};

/** A policy-independent traffic plan derived from one seed. */
struct Plan {
    std::vector<Post> posts;
    /** Per-output endpoint drain delay before the credit goes back:
     * uneven drains are what make backpressure (and the policies'
     * staging paths) actually fire. */
    std::vector<sim::Tick> drain;
};

Plan
makePlan(std::uint64_t seed)
{
    sim::Random rng(seed);
    Plan plan;
    std::uint64_t mid = 1;
    for (unsigned in = 0; in < kPorts; ++in) {
        sim::Tick t = 0;
        const unsigned messages =
            static_cast<unsigned>(rng.between(20, 45));
        for (unsigned m = 0; m < messages; ++m) {
            t += sim::ns(rng.below(900));
            Post p;
            p.at = t;
            p.in = in;
            p.out = static_cast<unsigned>(rng.below(kPorts));
            p.mid = mid++;
            p.pkts = static_cast<unsigned>(1 + rng.below(3));
            p.bytes = static_cast<std::uint32_t>(rng.between(1, 512));
            plan.posts.push_back(p);
        }
    }
    for (unsigned p = 0; p < kPorts; ++p)
        plan.drain.push_back(sim::ns(rng.below(1500)));
    return plan;
}

using PacketKey = std::tuple<NodeId, NodeId, std::uint64_t, std::uint32_t>;
using FlowKey = std::pair<NodeId, NodeId>;
using FlowSeq = std::pair<std::uint64_t, std::uint32_t>; //!< (mid, seq)

struct RunResult {
    std::vector<PacketKey> delivered; //!< sorted multiset
    std::map<FlowKey, std::vector<FlowSeq>> perFlow;
    std::uint64_t fingerprint = 0;
    std::uint64_t maxGrantWait = 0;
};

/** The per-flow delivery order the plan demands: posting order per
 * (src, dst), seqs ascending within each message. */
std::map<FlowKey, std::vector<FlowSeq>>
expectedFlows(const Plan &plan)
{
    // Posts were generated per input in time order, and a flow never
    // spans inputs, so plan order is posting order within every flow.
    std::map<FlowKey, std::vector<FlowSeq>> flows;
    for (const Post &p : plan.posts) {
        auto &f = flows[{endpointId(p.in), endpointId(p.out)}];
        for (unsigned s = 0; s < p.pkts; ++s)
            f.emplace_back(p.mid, s);
    }
    return flows;
}

std::vector<PacketKey>
expectedMultiset(const Plan &plan)
{
    std::vector<PacketKey> all;
    for (const Post &p : plan.posts)
        for (unsigned s = 0; s < p.pkts; ++s)
            all.emplace_back(endpointId(p.in), endpointId(p.out),
                             p.mid, s);
    std::sort(all.begin(), all.end());
    return all;
}

RunResult
runPlan(const Plan &plan, const SwitchPolicyConfig &cfg)
{
    sim::Simulation sim;
    obs::RunFingerprint fp;
    sim.events().setObserver(&fp);

    SwitchParams params;
    params.ports = kPorts;
    params.policy = cfg;
    Switch sw(sim, "fuzz", 1, params);

    RunResult result;
    std::vector<std::unique_ptr<Link>> toSw(kPorts), fromSw(kPorts);
    for (unsigned p = 0; p < kPorts; ++p) {
        toSw[p] = std::make_unique<Link>(
            sim, "to" + std::to_string(p), LinkParams{});
        fromSw[p] = std::make_unique<Link>(
            sim, "from" + std::to_string(p), LinkParams{});
        sw.attachPort(p, *fromSw[p], *toSw[p]);
        sw.setRoute(endpointId(p), p);
        Link *link = fromSw[p].get();
        const sim::Tick drain = plan.drain[p];
        fromSw[p]->setSink([&result, &sim, link,
                            drain](Arrival &&a) {
            result.delivered.emplace_back(a.pkt.src, a.pkt.dst,
                                          a.pkt.messageId, a.pkt.seq);
            result.perFlow[{a.pkt.src, a.pkt.dst}].emplace_back(
                a.pkt.messageId, a.pkt.seq);
            sim.events().after(drain, [link] { link->returnCredit(); });
        });
    }

    for (const Post &p : plan.posts) {
        sim.events().schedule(p.at, [&toSw, p] {
            for (unsigned s = 0; s < p.pkts; ++s) {
                Packet pkt;
                pkt.src = endpointId(p.in);
                pkt.dst = endpointId(p.out);
                pkt.payloadBytes = p.bytes;
                pkt.messageId = p.mid;
                pkt.seq = s;
                pkt.last = s + 1 == p.pkts;
                pkt.messageBytes =
                    static_cast<std::uint64_t>(p.bytes) * p.pkts;
                toSw[p.in]->send(std::move(pkt));
            }
        });
    }

    sim.run();
    std::sort(result.delivered.begin(), result.delivered.end());
    result.fingerprint = fp.value();
    result.maxGrantWait = sw.policy().maxGrantWaitRounds();
    return result;
}

/** Every policy/discipline combination the lab ships. */
std::vector<std::pair<std::string, SwitchPolicyConfig>>
allPolicies()
{
    std::vector<std::pair<std::string, SwitchPolicyConfig>> out;
    SwitchPolicyConfig central;
    out.emplace_back("central", central);

    SwitchPolicyConfig bounded;
    bounded.sharedCapacityCells = 16;
    out.emplace_back("central-bounded", bounded);

    for (ServiceOrder order : {ServiceOrder::Fifo,
                               ServiceOrder::OldestFirst,
                               ServiceOrder::LongestFirst}) {
        SwitchPolicyConfig voq;
        voq.kind = SwitchPolicyKind::Voq;
        voq.order = order;
        out.emplace_back(std::string("voq-") + serviceOrderName(order),
                         voq);
    }
    for (ServiceOrder order :
         {ServiceOrder::Fifo, ServiceOrder::LongestFirst}) {
        SwitchPolicyConfig xp;
        xp.kind = SwitchPolicyKind::Crosspoint;
        xp.order = order;
        out.emplace_back(
            std::string("xpoint-") + serviceOrderName(order), xp);
    }
    return out;
}

constexpr std::uint64_t kSeeds[] = {
    1, 2, 3, 5, 8, 13, 42, 0xc0ffee, 0xdeadbeef, 0x5eed5eed5eed5eedull,
};

TEST(ArbitrationFuzz, EveryPolicyConservesAndOrdersEveryFlow)
{
    for (const std::uint64_t seed : kSeeds) {
        const Plan plan = makePlan(seed);
        const auto wantAll = expectedMultiset(plan);
        const auto wantFlows = expectedFlows(plan);
        for (const auto &[label, cfg] : allPolicies()) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " policy " +
                         label);
            const RunResult got = runPlan(plan, cfg);
            // Conservation: exactly the posted multiset, no loss, no
            // duplication, under every policy.
            ASSERT_EQ(got.delivered, wantAll);
            // Per-flow monotone order: a (src, dst) flow leaves the
            // switch in posting order under every discipline.
            ASSERT_EQ(got.perFlow, wantFlows);
        }
    }
}

TEST(ArbitrationFuzz, DefaultPolicyFingerprintIsReproducible)
{
    for (const std::uint64_t seed : kSeeds) {
        const Plan plan = makePlan(seed);
        const RunResult a = runPlan(plan, SwitchPolicyConfig{});
        const RunResult b = runPlan(plan, SwitchPolicyConfig{});
        ASSERT_NE(a.fingerprint, 0u);
        ASSERT_EQ(a.fingerprint, b.fingerprint)
            << "seed " << seed
            << ": default policy must schedule identical events";
    }
}

TEST(ArbitrationFuzz, VoqGrantWaitIsBoundedUnderHotspot)
{
    // Sustained N-to-1: every input hammers the last port. The iSLIP
    // pointer desynchronization must keep every eligible input's
    // grant wait bounded by a small multiple of the input count, and
    // round-robin service must split the hot link evenly.
    const unsigned hot = kPorts - 1;
    Plan plan;
    std::uint64_t mid = 1;
    for (unsigned in = 0; in < kPorts - 1; ++in)
        for (unsigned m = 0; m < 40; ++m)
            plan.posts.push_back(Post{sim::ns(m * 50), in, hot, mid++,
                                      1, defaultMtu});
    plan.drain.assign(kPorts, 0);

    for (ServiceOrder order : {ServiceOrder::Fifo,
                               ServiceOrder::OldestFirst,
                               ServiceOrder::LongestFirst}) {
        SCOPED_TRACE(serviceOrderName(order));
        SwitchPolicyConfig voq;
        voq.kind = SwitchPolicyKind::Voq;
        voq.order = order;

        sim::Simulation sim;
        SwitchParams params;
        params.ports = kPorts;
        params.policy = voq;
        Switch sw(sim, "hotspot", 1, params);
        std::vector<std::unique_ptr<Link>> toSw(kPorts),
            fromSw(kPorts);
        for (unsigned p = 0; p < kPorts; ++p) {
            toSw[p] = std::make_unique<Link>(
                sim, "to" + std::to_string(p), LinkParams{});
            fromSw[p] = std::make_unique<Link>(
                sim, "from" + std::to_string(p), LinkParams{});
            sw.attachPort(p, *fromSw[p], *toSw[p]);
            sw.setRoute(endpointId(p), p);
            Link *link = fromSw[p].get();
            fromSw[p]->setSink(
                [link](Arrival &&) { link->returnCredit(); });
        }
        for (const Post &p : plan.posts)
            sim.events().schedule(p.at, [&toSw, p] {
                Packet pkt;
                pkt.src = endpointId(p.in);
                pkt.dst = endpointId(p.out);
                pkt.payloadBytes = p.bytes;
                pkt.messageId = p.mid;
                toSw[p.in]->send(std::move(pkt));
            });
        sim.run();

        // Starvation freedom: no input ever waited more than two
        // full pointer revolutions while eligible.
        EXPECT_LE(sw.policy().maxGrantWaitRounds(),
                  2 * (kPorts + 1));
        // Fair shares: identical offered loads earn identical
        // service (within 10%).
        std::uint64_t lo = ~0ull, hi = 0;
        for (unsigned in = 0; in < kPorts - 1; ++in) {
            const std::uint64_t bytes =
                sw.policy().forwardedBytesFrom(in);
            lo = std::min(lo, bytes);
            hi = std::max(hi, bytes);
        }
        EXPECT_GT(lo, 0u);
        EXPECT_LE(static_cast<double>(hi),
                  1.10 * static_cast<double>(lo));
    }
}

} // namespace
