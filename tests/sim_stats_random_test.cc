/**
 * @file
 * Tests for statistics containers and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "sim/Random.hh"
#include "sim/Stats.hh"

namespace {

using namespace san::sim;

TEST(Counter, AccumulatesAndResets)
{
    Counter c;
    c += 2.5;
    ++c;
    c++;
    EXPECT_DOUBLE_EQ(c.value(), 4.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Accumulator, TracksMoments)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1);
    a.sample(3);
    a.sample(8);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12);
    EXPECT_DOUBLE_EQ(a.min(), 1);
    EXPECT_DOUBLE_EQ(a.max(), 8);
    EXPECT_DOUBLE_EQ(a.mean(), 4);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 10, 5); // buckets of width 2
    h.sample(-1);
    h.sample(0);
    h.sample(1.9);
    h.sample(5);
    h.sample(10);
    h.sample(99);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.summary().count(), 6u);
}

TEST(Histogram, BucketBoundaries)
{
    // The range is [lo, hi): lo lands in the first bucket (not
    // underflow), hi in the overflow slot (not the last bucket).
    Histogram h(10, 20, 5);
    h.sample(10); // v == lo
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    h.sample(20); // v == hi
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(4), 0u);
    // Just below hi must land in the top bucket even when the
    // floating-point bucket computation rounds up.
    h.sample(std::nextafter(20.0, 10.0));
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    // Just below lo is underflow.
    h.sample(std::nextafter(10.0, 0.0));
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.summary().count(), 4u);
}

TEST(Histogram, EdgesAndRange)
{
    Histogram h(0, 10, 5);
    EXPECT_DOUBLE_EQ(h.lo(), 0.0);
    EXPECT_DOUBLE_EQ(h.hi(), 10.0);
    EXPECT_DOUBLE_EQ(h.edge(0), 0.0);
    EXPECT_DOUBLE_EQ(h.edge(1), 2.0);
    EXPECT_DOUBLE_EQ(h.edge(5), 10.0);
}

TEST(StatGroup, DumpsStableFormat)
{
    StatGroup g("disk0");
    auto &reads = g.counter("reads");
    auto &lat = g.accumulator("latency");
    reads += 3;
    lat.sample(10);
    lat.sample(20);
    std::ostringstream oss;
    g.dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("disk0.reads 3"), std::string::npos);
    EXPECT_NE(text.find("disk0.latency.count 2"), std::string::npos);
    EXPECT_NE(text.find("disk0.latency.mean 15"), std::string::npos);
}

TEST(StatGroup, ReferencesStayValidAcrossRegistration)
{
    StatGroup g("grp");
    auto &first = g.counter("first");
    for (int i = 0; i < 100; ++i)
        g.counter("c" + std::to_string(i));
    first += 1;
    EXPECT_DOUBLE_EQ(first.value(), 1.0);
}

TEST(StatGroup, DumpIncludesAccumulatorMin)
{
    StatGroup g("dev");
    auto &lat = g.accumulator("latency");
    lat.sample(4);
    lat.sample(10);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("dev.latency.min 4"), std::string::npos);
    EXPECT_NE(oss.str().find("dev.latency.max 10"), std::string::npos);
}

TEST(StatGroup, RegistersAndDumpsHistograms)
{
    StatGroup g("sw");
    auto &h = g.histogram("qdepth", 0, 8, 4);
    h.sample(1);
    h.sample(3);
    h.sample(100);
    std::ostringstream oss;
    g.dump(oss);
    const std::string text = oss.str();
    EXPECT_NE(text.find("sw.qdepth.samples 3"), std::string::npos);
    EXPECT_NE(text.find("sw.qdepth.overflow 1"), std::string::npos);
    EXPECT_NE(text.find("sw.qdepth.bucket0 1"), std::string::npos);
    EXPECT_NE(text.find("sw.qdepth.bucket1 1"), std::string::npos);
    // Histogram references stay valid across later registrations.
    auto &again = g.histogram("other", 0, 1, 1);
    g.histogram("more", 0, 1, 1);
    again.sample(0.5);
    EXPECT_EQ(again.summary().count(), 1u);
}

/** Visitor that records the traversal in registration order. */
class RecordingVisitor : public StatVisitor
{
  public:
    void
    onCounter(const std::string &group, const std::string &name,
              const Counter &c) override
    {
        seen.push_back(group + "." + name + "=counter:" +
                       std::to_string(static_cast<long>(c.value())));
    }

    void
    onAccumulator(const std::string &group, const std::string &name,
                  const Accumulator &a) override
    {
        seen.push_back(group + "." + name + "=accum:" +
                       std::to_string(a.count()));
    }

    void
    onHistogram(const std::string &group, const std::string &name,
                const Histogram &h) override
    {
        seen.push_back(group + "." + name + "=hist:" +
                       std::to_string(h.summary().count()));
    }

    std::vector<std::string> seen;
};

TEST(StatGroup, VisitorWalksEveryStatInRegistrationOrder)
{
    StatGroup g("grp");
    auto &c = g.counter("events");
    c += 7;
    auto &a = g.accumulator("lat");
    a.sample(1);
    a.sample(2);
    auto &h = g.histogram("depth", 0, 4, 2);
    h.sample(1);

    RecordingVisitor v;
    g.visit(v);
    ASSERT_EQ(v.seen.size(), 3u);
    EXPECT_EQ(v.seen[0], "grp.events=counter:7");
    EXPECT_EQ(v.seen[1], "grp.lat=accum:2");
    EXPECT_EQ(v.seen[2], "grp.depth=hist:1");
}

TEST(Random, DeterministicForSameSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

class RandomRange : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomRange, BelowStaysInBounds)
{
    Random rng(GetParam());
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST_P(RandomRange, BetweenInclusive)
{
    Random rng(GetParam());
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST_P(RandomRange, RealInUnitInterval)
{
    Random rng(GetParam());
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
        sum += r;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRange,
                         ::testing::Values(3, 17, 2026));

} // namespace
