/**
 * @file
 * Tests for channels, gates, semaphores and latches.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/Simulation.hh"
#include "sim/Sync.hh"

namespace {

using namespace san::sim;

Task
producer(Channel<int> &ch, int n, Tick gap)
{
    for (int i = 0; i < n; ++i) {
        co_await Delay{gap};
        ch.push(i);
    }
}

Task
consumer(Simulation &sim, Channel<int> &ch, int n,
         std::vector<std::pair<int, Tick>> &log)
{
    for (int i = 0; i < n; ++i) {
        int v = co_await ch.pop();
        log.push_back({v, sim.now()});
    }
}

TEST(Channel, ValuesArriveInOrderAtProducerTime)
{
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<std::pair<int, Tick>> log;
    sim.spawn(producer(ch, 3, ns(10)));
    sim.spawn(consumer(sim, ch, 3, log));
    sim.run();
    ASSERT_EQ(log.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(log[i].first, i);
        EXPECT_EQ(log[i].second, ns(10) * (i + 1));
    }
}

TEST(Channel, BufferedValuesPopImmediately)
{
    Simulation sim;
    Channel<std::string> ch(sim);
    ch.push("a");
    ch.push("b");
    EXPECT_EQ(ch.size(), 2u);
    std::vector<std::string> got;
    sim.spawn([](Channel<std::string> &c, std::vector<std::string> &out)
                  -> Task {
        out.push_back(co_await c.pop());
        out.push_back(co_await c.pop());
    }(ch, got));
    sim.run();
    EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(Channel, TryPopDoesNotBlock)
{
    Simulation sim;
    Channel<int> ch(sim);
    EXPECT_FALSE(ch.tryPop().has_value());
    ch.push(7);
    auto v = ch.tryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
}

TEST(Channel, MultiplePoppersServedFifo)
{
    Simulation sim;
    Channel<int> ch(sim);
    std::vector<std::pair<int, int>> got; // (popper id, value)
    auto popOne = [](Channel<int> &c, std::vector<std::pair<int, int>> &out,
                     int id) -> Task {
        int v = co_await c.pop();
        out.push_back({id, v});
    };
    sim.spawn(popOne(ch, got, 0));
    sim.spawn(popOne(ch, got, 1));
    sim.events().schedule(ns(5), [&] { ch.push(100); });
    sim.events().schedule(ns(6), [&] { ch.push(200); });
    sim.run();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
    EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
}

TEST(Gate, ReleasesAllWaitersOnOpen)
{
    Simulation sim;
    Gate gate(sim);
    int released = 0;
    auto waiter = [](Gate &g, int &n) -> Task {
        co_await g.wait();
        ++n;
    };
    for (int i = 0; i < 5; ++i)
        sim.spawn(waiter(gate, released));
    sim.events().schedule(ns(50), [&] { gate.open(); });
    sim.run();
    EXPECT_EQ(released, 5);
    EXPECT_TRUE(gate.isOpen());
}

TEST(Gate, OpenGatePassesImmediately)
{
    Simulation sim;
    Gate gate(sim);
    gate.open();
    Tick when = maxTick;
    sim.spawn([](Simulation &s, Gate &g, Tick &w) -> Task {
        co_await g.wait();
        w = s.now();
    }(sim, gate, when));
    sim.run();
    EXPECT_EQ(when, 0u);
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulation sim;
    Semaphore sem(sim, 2);
    int active = 0, peak = 0, done = 0;
    auto worker = [](Semaphore &s, int &act, int &pk, int &dn) -> Task {
        co_await s.acquire();
        ++act;
        pk = std::max(pk, act);
        co_await Delay{ns(10)};
        --act;
        ++dn;
        s.release();
    };
    for (int i = 0; i < 6; ++i)
        sim.spawn(worker(sem, active, peak, done));
    sim.run();
    EXPECT_EQ(done, 6);
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(sem.available(), 2u);
}

TEST(Latch, WaitersReleaseAtZero)
{
    Simulation sim;
    Latch latch(sim, 3);
    Tick doneAt = 0;
    sim.spawn([](Simulation &s, Latch &l, Tick &t) -> Task {
        co_await l.wait();
        t = s.now();
    }(sim, latch, doneAt));
    sim.events().schedule(ns(10), [&] { latch.countDown(); });
    sim.events().schedule(ns(20), [&] { latch.countDown(); });
    sim.events().schedule(ns(30), [&] { latch.countDown(); });
    sim.run();
    EXPECT_EQ(doneAt, ns(30));
}

TEST(Latch, ZeroInitialIsOpen)
{
    Simulation sim;
    Latch latch(sim, 0);
    bool passed = false;
    sim.spawn([](Latch &l, bool &p) -> Task {
        co_await l.wait();
        p = true;
    }(latch, passed));
    sim.run();
    EXPECT_TRUE(passed);
}

} // namespace
