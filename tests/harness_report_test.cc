/**
 * @file
 * Tests for the figure/table printers and the component stats dump.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/Cluster.hh"
#include "harness/Report.hh"
#include "harness/StatsReport.hh"

namespace {

using namespace san;
using namespace san::apps;
using namespace san::harness;

ModeResults
fakeResults()
{
    ModeResults results;
    for (std::size_t i = 0; i < allModes.size(); ++i) {
        RunStats &r = results[i];
        r.mode = allModes[i];
        r.execTime = sim::ms(100 - 10 * i);
        cpu::TimeBreakdown host;
        host.busy = sim::ms(20);
        host.stall = sim::ms(10);
        host.total = r.execTime;
        r.hosts.push_back(host);
        if (isActive(r.mode)) {
            cpu::TimeBreakdown sp;
            sp.busy = sim::ms(40);
            sp.stall = sim::ms(5);
            sp.total = r.execTime;
            r.switchCpus.push_back(sp);
        }
        r.hostIoBytes = 1000 - 100 * i;
        r.checksum = "42";
    }
    return results;
}

TEST(Report, OverviewNormalizesToNormal)
{
    std::ostringstream oss;
    printOverview(oss, "UnitTest", fakeResults());
    const std::string out = oss.str();
    EXPECT_NE(out.find("== UnitTest =="), std::string::npos);
    EXPECT_NE(out.find("normal"), std::string::npos);
    EXPECT_NE(out.find("active+pref"), std::string::npos);
    // First row normalizes to 1.000 in time and traffic.
    EXPECT_NE(out.find("1.000"), std::string::npos);
}

TEST(Report, BreakdownShowsPaperLabels)
{
    std::ostringstream oss;
    printBreakdown(oss, "UnitTest", fakeResults());
    const std::string out = oss.str();
    for (const char *label : {"n-HP", "n+p-HP", "a-HP", "a+p-HP",
                              "a-SP", "a+p-SP"})
        EXPECT_NE(out.find(label), std::string::npos) << label;
}

TEST(Report, ChecksumsAgreeDetectsMismatch)
{
    ModeResults results = fakeResults();
    EXPECT_TRUE(checksumsAgree(results));
    results[2].checksum = "43";
    EXPECT_FALSE(checksumsAgree(results));
}

TEST(Report, BreakdownFractionsSumToOne)
{
    std::ostringstream oss;
    const auto results = fakeResults();
    printBreakdown(oss, "T", results);
    for (const auto &r : results) {
        for (const auto &bd : r.hosts) {
            const double total = static_cast<double>(bd.total);
            EXPECT_NEAR((bd.busy + bd.stall + bd.idle()) / total, 1.0,
                        1e-9);
        }
    }
}

TEST(StatsReport, DumpsEveryComponentClass)
{
    ClusterParams params;
    params.hosts = 2;
    Cluster cluster(params);
    // Exercise the system a little so counters are nonzero.
    cluster.sim().spawn([](host::Host &a, net::NodeId b) -> sim::Task {
        co_await a.send(b, 256);
    }(cluster.host(0), cluster.host(1).id()));
    cluster.sim().run();

    std::ostringstream oss;
    dumpClusterStats(oss, cluster);
    const std::string out = oss.str();
    for (const char *key :
         {"host0.cpu.busyTicks", "host0.mem.l1d.hits",
          "host0.mem.dram.pageHits", "host0.hca.bytesSent",
          "switch0.packetsRouted", "switch0.buffers.peakInUse",
          "switch0.sp0.atb.mappings", "storage0.disk.bytesRead",
          "storage0.scsi.transactions"})
        EXPECT_NE(out.find(key), std::string::npos) << key;
    // The 256-byte message was routed.
    EXPECT_NE(out.find("host0.hca.bytesSent 256"), std::string::npos);
}

} // namespace
