/**
 * @file
 * Integration tests for the active switch: dispatch, handler
 * invocation, streaming, valid-bit stalls, buffer management, send
 * unit, and switch-initiated I/O.
 */

#include <gtest/gtest.h>

#include <vector>

#include "active/ActiveSwitch.hh"
#include "host/Host.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::active;

struct ActiveFixture {
    Simulation s;
    net::Fabric fabric{s};
    ActiveSwitch *sw;
    host::Host *h;
    net::Adapter *tca;
    io::StorageNode *storage;

    explicit ActiveFixture(ActiveConfig cfg = {})
    {
        sw = &fabric.addSwitch<ActiveSwitch>(net::SwitchParams{8}, cfg);
        h = new host::Host(s, "host0", fabric);
        tca = &fabric.addAdapter("tca0");
        storage = new io::StorageNode(s, *tca);
        fabric.connect(*sw, 0, h->hca());
        fabric.connect(*sw, 1, *tca);
        fabric.computeRoutes();
        h->start();
        storage->start();
    }

    ~ActiveFixture()
    {
        delete storage;
        delete h;
    }
};

TEST(ActiveSwitch, InvokesHandlerOnActiveMessage)
{
    ActiveFixture f;
    int invocations = 0;
    std::uint32_t seen_addr = 0;
    f.sw->registerHandler(1, "probe", [&](HandlerContext &ctx) -> Task {
        StreamChunk c = co_await ctx.nextChunk();
        ++invocations;
        seen_addr = c.address;
    });
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        co_await h.send(sw, 64, net::ActiveHeader{1, 0x4000, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    EXPECT_EQ(invocations, 1);
    EXPECT_EQ(seen_addr, 0x4000u);
    EXPECT_EQ(f.sw->handlersInvoked(), 1u);
    EXPECT_EQ(f.sw->chunksStaged(), 1u);
}

TEST(ActiveSwitch, UnregisteredHandlerDropsPacket)
{
    ActiveFixture f;
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        co_await h.send(sw, 64, net::ActiveHeader{9, 0, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    EXPECT_EQ(f.sw->handlersInvoked(), 0u);
}

TEST(ActiveSwitch, MultiPacketMessageMapsRisingAddresses)
{
    ActiveFixture f;
    std::vector<std::uint32_t> addrs;
    f.sw->registerHandler(2, "stream", [&](HandlerContext &ctx) -> Task {
        for (;;) {
            StreamChunk c = co_await ctx.nextChunk();
            addrs.push_back(c.address);
            ctx.deallocateThrough(c.address + c.bytes);
            if (c.lastOfMessage)
                break;
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        co_await h.send(sw, 1536, net::ActiveHeader{2, 0x8000, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    ASSERT_EQ(addrs.size(), 3u);
    EXPECT_EQ(addrs[0], 0x8000u);
    EXPECT_EQ(addrs[1], 0x8000u + 512);
    EXPECT_EQ(addrs[2], 0x8000u + 1024);
    // All buffers returned to the pool.
    EXPECT_EQ(f.sw->buffers().freeCount(), 16u);
}

TEST(ActiveSwitch, ValidBitStallUntilDataArrives)
{
    ActiveFixture f;
    Tick chunk_seen = 0, first_line = 0, last_line = 0;
    f.sw->registerHandler(3, "valid", [&](HandlerContext &ctx) -> Task {
        StreamChunk c = co_await ctx.nextChunk();
        chunk_seen = ctx.sim().now();
        co_await ctx.awaitValid(c, 0, 32);
        first_line = ctx.sim().now();
        co_await ctx.awaitValid(c, 0, c.bytes);
        last_line = ctx.sim().now();
    });
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        co_await h.send(sw, 512, net::ActiveHeader{3, 0, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    // Cut-through: the handler sees the chunk while the payload is
    // still streaming in. Routing (100 ns) + dispatch (40 ns) have
    // already elapsed by then, so the first 32 B line (valid 32 ns
    // into the payload) is ready, but the tail is not: the last
    // line lands 528 - 156 = 372 ns after dispatch.
    EXPECT_GE(first_line, chunk_seen);
    EXPECT_GT(last_line, first_line);
    EXPECT_EQ(last_line - chunk_seen, ns(372));
}

TEST(ActiveSwitch, HandlerComputeChargesSwitchCpu)
{
    ActiveFixture f;
    f.sw->registerHandler(4, "compute", [&](HandlerContext &ctx) -> Task {
        co_await ctx.nextChunk();
        co_await ctx.compute(1000); // 1000 cycles at 500 MHz = 2 us
    });
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        co_await h.send(sw, 64, net::ActiveHeader{4, 0, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    EXPECT_EQ(f.sw->cpu(0).busyTicks(), us(2));
}

TEST(ActiveSwitch, HandlerSendsResultToHost)
{
    ActiveFixture f;
    f.sw->registerHandler(5, "echo", [&](HandlerContext &ctx) -> Task {
        StreamChunk c = co_await ctx.nextChunk();
        co_await ctx.awaitValid(c, 0, c.bytes);
        ctx.deallocateThrough(c.address + c.bytes);
        co_await ctx.send(c.src, 128, std::nullopt, nullptr,
                          host::tagApp);
    });
    bool got = false;
    f.s.spawn([](host::Host &h, net::NodeId sw, bool &flag) -> Task {
        co_await h.send(sw, 64, net::ActiveHeader{5, 0, 0});
        net::Message m = co_await h.recv();
        flag = (m.bytes == 128 && m.src == sw);
    }(*f.h, f.sw->id(), got));
    f.s.run();
    EXPECT_TRUE(got);
}

TEST(ActiveSwitch, DiskDataStreamsIntoHandler)
{
    ActiveFixture f;
    std::uint64_t received = 0;
    int chunks = 0;
    f.sw->registerHandler(6, "sink", [&](HandlerContext &ctx) -> Task {
        const std::uint64_t want = 8192;
        std::uint32_t addr = 0;
        while (received < want) {
            StreamChunk c = co_await ctx.nextChunk();
            co_await ctx.awaitValid(c, 0, c.bytes);
            received += c.bytes;
            ++chunks;
            addr = c.address + c.bytes;
            ctx.deallocateThrough(addr);
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 net::NodeId sw) -> Task {
        co_await h.postReadTo(storage, 0, 8192, sw,
                              net::ActiveHeader{6, 0, 0});
    }(*f.h, f.storage->id(), f.sw->id()));
    f.s.run();
    EXPECT_EQ(received, 8192u);
    EXPECT_EQ(chunks, 16);
    EXPECT_EQ(f.sw->buffers().freeCount(), 16u);
    // Host never saw the data.
    EXPECT_EQ(f.h->hca().bytesReceived(), 0u);
}

TEST(ActiveSwitch, PerChunkAddressesAdvanceWithDiskOffset)
{
    // The TCA advances the mapped address with the file offset so the
    // handler sees a flat file image.
    ActiveFixture f;
    std::vector<std::uint32_t> addrs;
    f.sw->registerHandler(7, "map", [&](HandlerContext &ctx) -> Task {
        for (int i = 0; i < 4; ++i) {
            StreamChunk c = co_await ctx.nextChunk();
            addrs.push_back(c.address);
            ctx.deallocateThrough(c.address + c.bytes);
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 net::NodeId sw) -> Task {
        co_await h.postReadTo(storage, 0, 2048, sw,
                              net::ActiveHeader{7, 0x1000, 0});
    }(*f.h, f.storage->id(), f.sw->id()));
    f.s.run();
    ASSERT_EQ(addrs.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(addrs[i], 0x1000u + 512 * i);
}

TEST(ActiveSwitch, BufferExhaustionStallsDispatchThenRecovers)
{
    ActiveFixture f;
    // A handler that consumes slowly: buffers pile up, dispatch
    // stalls, then everything drains once buffers free.
    std::uint64_t received = 0;
    f.sw->registerHandler(8, "slow", [&](HandlerContext &ctx) -> Task {
        const std::uint64_t want = 32 * 512;
        while (received < want) {
            StreamChunk c = co_await ctx.nextChunk();
            co_await ctx.awaitValid(c, 0, c.bytes);
            co_await ctx.compute(5000); // 10 us per 512 B chunk
            received += c.bytes;
            ctx.deallocateThrough(c.address + c.bytes);
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 net::NodeId sw) -> Task {
        co_await h.postReadTo(storage, 0, 32 * 512, sw,
                              net::ActiveHeader{8, 0, 0});
    }(*f.h, f.storage->id(), f.sw->id()));
    f.s.run();
    EXPECT_EQ(received, 32u * 512);
    EXPECT_GT(f.sw->dispatchStalls(), 0u);
    EXPECT_EQ(f.sw->buffers().freeCount(), 16u);
}

TEST(ActiveSwitch, SwitchInitiatedReadBypassesHost)
{
    // Tar pattern: the handler itself posts the disk read and
    // redirects the data to a third node.
    Simulation s;
    net::Fabric fabric(s);
    auto &sw = fabric.addSwitch<ActiveSwitch>(net::SwitchParams{8},
                                              ActiveConfig{});
    host::Host h(s, "host0", fabric);
    host::Host remote(s, "remote", fabric);
    auto &tca = fabric.addAdapter("tca0");
    io::StorageNode storage(s, tca);
    fabric.connect(sw, 0, h.hca());
    fabric.connect(sw, 1, tca);
    fabric.connect(sw, 2, remote.hca());
    fabric.computeRoutes();
    h.start();
    remote.start();
    storage.start();

    sw.registerHandler(9, "tar", [&](HandlerContext &ctx) -> Task {
        StreamChunk arg = co_await ctx.nextChunk();
        ctx.deallocateThrough(arg.address + 512);
        // Read 4 KB from disk straight to the remote node.
        co_await ctx.postRead(storage.id(), 0, 4096, remote.id(),
                              std::nullopt);
    });

    s.spawn([](host::Host &host, net::NodeId sw_id) -> Task {
        co_await host.send(sw_id, 64, net::ActiveHeader{9, 0, 0});
    }(h, sw.id()));
    s.run();
    EXPECT_EQ(remote.hca().bytesReceived(), 4096u);
    EXPECT_EQ(h.hca().bytesReceived(), 0u);
}

TEST(ActiveSwitch, MultiCpuInstancesRunConcurrently)
{
    ActiveConfig cfg;
    cfg.cpus = 4;
    ActiveFixture f(cfg);
    int done = 0;
    f.sw->registerHandler(10, "par", [&](HandlerContext &ctx) -> Task {
        co_await ctx.nextChunk();
        co_await ctx.compute(50000); // 100 us of switch CPU work
        ++done;
    });
    f.s.spawn([](host::Host &h, net::NodeId sw) -> Task {
        for (std::uint8_t k = 0; k < 4; ++k)
            co_await h.send(sw, 64, net::ActiveHeader{10, 0, k});
    }(*f.h, f.sw->id()));
    Tick end = f.s.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(f.sw->handlersInvoked(), 4u);
    // Ran in parallel: total far below 4 x 100 us.
    EXPECT_LT(end, us(250));
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(f.sw->cpu(i).busyTicks(), us(100));
}

TEST(ActiveSwitch, NonActiveTrafficUnaffectedByHandlers)
{
    // Active processing on the switch must not perturb plain
    // forwarding between two other ports.
    Simulation s;
    net::Fabric fabric(s);
    auto &sw = fabric.addSwitch<ActiveSwitch>(net::SwitchParams{8},
                                              ActiveConfig{});
    host::Host a(s, "a", fabric), b(s, "b", fabric);
    fabric.connect(sw, 0, a.hca());
    fabric.connect(sw, 1, b.hca());
    fabric.computeRoutes();
    a.start();
    b.start();

    sw.registerHandler(11, "busy", [&](HandlerContext &ctx) -> Task {
        co_await ctx.nextChunk();
        co_await ctx.compute(1000000);
    });

    Tick delivered = 0;
    s.spawn([](host::Host &h, net::NodeId sw_id, net::NodeId dst)
                -> Task {
        co_await h.send(sw_id, 64, net::ActiveHeader{11, 0, 0});
        co_await h.send(dst, 512);
    }(a, sw.id(), b.id()));
    s.spawn([](host::Host &h, Tick &t) -> Task {
        co_await h.recv();
        t = h.cpu().memory().dram().bytesTransferred(); // placate
        t = 0;
    }(b, delivered));
    Tick end = s.run();
    // The end time is dominated by the handler's 2 ms of compute,
    // but b received its message long before.
    EXPECT_EQ(b.hca().bytesReceived(), 512u);
    EXPECT_GE(end, ms(2));
}

} // namespace
