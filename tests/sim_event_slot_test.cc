/**
 * @file
 * Tests for the event-slot arena behind the EventQueue: the inline
 * small-buffer boundary, the overflow pool's free-list reuse, and
 * capture lifetime (destruction on execution, teardown, and slot
 * recycling across runs).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/EventSlot.hh"
#include "sim/Types.hh"

namespace {

using namespace san::sim;

/** A callback whose capture is exactly @p Bytes large. */
template <std::size_t Bytes>
struct SizedCb {
    static_assert(Bytes >= sizeof(int *));
    int *counter;
    unsigned char pad[Bytes - sizeof(int *)];

    void operator()() const { ++*counter; }
};

TEST(SlotArena, CaptureAtInlineBoundaryNeverAllocates)
{
    EventQueue q;
    int fired = 0;
    SizedCb<EventQueue::inlineCaptureBytes> cb{&fired, {}};
    static_assert(sizeof(cb) == EventQueue::inlineCaptureBytes);
    for (int i = 0; i < 100; ++i)
        q.schedule(ns(i), cb);
    q.run();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(q.overflowAllocs(), 0u);
    EXPECT_EQ(q.overflowReuses(), 0u);
}

TEST(SlotArena, CaptureOneByteOverInlineGoesToPool)
{
    EventQueue q;
    int fired = 0;
    SizedCb<EventQueue::inlineCaptureBytes + 1> cb{&fired, {}};
    static_assert(sizeof(cb) > EventQueue::inlineCaptureBytes);
    q.schedule(ns(1), cb);
    EXPECT_EQ(q.overflowAllocs(), 1u);
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(SlotArena, OverflowBlocksRecycleThroughFreeList)
{
    // A chain of big-capture events: each schedules the next before
    // its own slot recycles, so the pool peaks at two blocks and every
    // later event reuses one — steady state allocates nothing.
    EventQueue q;
    constexpr int n = 50;
    int fired = 0;
    struct Chain {
        EventQueue *q;
        int *fired;
        int left;
        unsigned char pad[64];

        void
        operator()() const
        {
            ++*fired;
            if (left > 0)
                q->after(ns(1), Chain{q, fired, left - 1, {}});
        }
    };
    static_assert(sizeof(Chain) > EventQueue::inlineCaptureBytes);
    q.schedule(0, Chain{&q, &fired, n - 1, {}});
    q.run();
    EXPECT_EQ(fired, n);
    EXPECT_EQ(q.overflowAllocs(), 2u);
    EXPECT_EQ(q.overflowReuses(), static_cast<std::uint64_t>(n - 2));
}

TEST(SlotArena, InlineSlotsRecycleAcrossRuns)
{
    // Back-to-back run() loads reuse the same slots and chunks; the
    // arena's footprint is the peak pending count, not the total
    // event count.
    EventQueue q;
    int fired = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i)
            q.schedule(q.now() + ns(i), [&fired] { ++fired; });
        q.run();
    }
    EXPECT_EQ(fired, 1000);
    EXPECT_EQ(q.slotChunks(), 1u); // 100 pending peak < 256-slot chunk
    EXPECT_EQ(q.overflowAllocs(), 0u);
}

TEST(SlotArena, CaptureDestroyedAfterExecution)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    EventQueue q;
    int seen = 0;
    q.schedule(ns(1), [t = std::move(token), &seen] { seen = *t; });
    EXPECT_EQ(watch.use_count(), 1); // capture owns the only reference
    q.run();
    EXPECT_EQ(seen, 7);
    EXPECT_TRUE(watch.expired()); // recycled slot released the capture
}

TEST(SlotArena, PendingCapturesDestroyedOnQueueTeardown)
{
    auto small = std::make_shared<int>(1);
    auto big = std::make_shared<int>(2);
    std::weak_ptr<int> watchSmall = small, watchBig = big;
    {
        EventQueue q;
        q.schedule(ns(5), [t = std::move(small)] { (void)t; });
        struct BigCb {
            std::shared_ptr<int> t;
            unsigned char pad[64];
            void operator()() const {}
        };
        q.schedule(ns(6), BigCb{std::move(big), {}});
        // Queue destroyed with both events still pending.
    }
    EXPECT_TRUE(watchSmall.expired());
    EXPECT_TRUE(watchBig.expired());
}

TEST(SlotArena, MixedSizesKeepSameTickInsertionOrder)
{
    // Inline and pooled captures at one tick interleave purely by
    // insertion sequence — storage location never affects ordering.
    EventQueue q;
    std::vector<int> order;
    struct Big {
        std::vector<int> *order;
        int tag;
        unsigned char pad[64];
        void operator()() const { order->push_back(tag); }
    };
    q.schedule(ns(3), [&order] { order.push_back(0); });
    q.schedule(ns(3), Big{&order, 1, {}});
    q.schedule(ns(3), [&order] { order.push_back(2); });
    q.schedule(ns(3), Big{&order, 3, {}});
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SlotArena, HugeCapturesFallBackToPlainNew)
{
    // Above the largest pool class the arena falls back to operator
    // new per event; correctness is unchanged.
    detail::SlotArena arena;
    int fired = 0;
    struct Huge {
        int *fired;
        unsigned char pad[16 * 1024];
        void operator()() const { ++*fired; }
    };
    const std::uint32_t id = arena.emplace(Huge{&fired, {}});
    EXPECT_EQ(arena.liveSlots(), 1u);
    arena.runAndRecycle(id);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(arena.liveSlots(), 0u);
}

TEST(SlotArena, ChunksAreStableWhileCallbackRuns)
{
    // A callback that forces the arena to grow (scheduling more than a
    // chunk's worth of new events) must keep executing safely from its
    // own slot — chunks never move.
    EventQueue q;
    int scheduled = 0;
    int fired = 0;
    q.schedule(0, [&] {
        for (int i = 0; i < 600; ++i) { // > 2 chunks of 256
            q.after(ns(1), [&fired] { ++fired; });
            ++scheduled;
        }
    });
    q.run();
    EXPECT_EQ(scheduled, 600);
    EXPECT_EQ(fired, 600);
    EXPECT_GE(q.slotChunks(), 3u);
}

} // namespace
