/**
 * @file
 * Property tests of the fabric: random tree topologies route every
 * pair, message interleaving reassembles correctly, and bandwidth
 * sharing under contention is conserved.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/Fabric.hh"
#include "sim/Random.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::net;

/** Build a random tree of switches with hosts sprinkled on leaves. */
struct RandomTree {
    Simulation s;
    Fabric fabric{s};
    std::vector<Switch *> switches;
    std::vector<Adapter *> hosts;

    explicit RandomTree(std::uint64_t seed)
    {
        Random rng(seed);
        const unsigned n_switches =
            static_cast<unsigned>(rng.between(2, 6));
        std::vector<unsigned> free_port(n_switches, 0);
        for (unsigned i = 0; i < n_switches; ++i)
            switches.push_back(&fabric.addSwitch(SwitchParams{16}));
        // Random tree: switch i attaches to a random earlier switch.
        for (unsigned i = 1; i < n_switches; ++i) {
            const unsigned parent =
                static_cast<unsigned>(rng.below(i));
            fabric.connectSwitches(*switches[parent],
                                   free_port[parent]++, *switches[i],
                                   free_port[i]++);
        }
        // 1-3 hosts per switch.
        for (unsigned i = 0; i < n_switches; ++i) {
            const unsigned n_hosts =
                static_cast<unsigned>(rng.between(1, 3));
            for (unsigned hh = 0; hh < n_hosts; ++hh) {
                auto &a = fabric.addAdapter(
                    "h" + std::to_string(i) + "_" + std::to_string(hh));
                fabric.connect(*switches[i], free_port[i]++, a);
                hosts.push_back(&a);
            }
        }
        fabric.computeRoutes();
    }
};

class RandomTopology : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomTopology, AllPairsDeliverAllBytes)
{
    RandomTree t(GetParam());
    Random rng(GetParam() ^ 0xf00d);
    std::uint64_t sent = 0;
    for (auto *from : t.hosts) {
        for (auto *to : t.hosts) {
            if (from == to)
                continue;
            const std::uint64_t bytes = rng.between(1, 2000);
            from->sendMessage(to->id(), bytes);
            sent += bytes;
        }
    }
    t.s.run();
    std::uint64_t received = 0;
    for (auto *h : t.hosts) {
        received += h->bytesReceived();
        // Everything that completed reassembly was delivered whole.
        EXPECT_EQ(h->messagesReceived(),
                  t.hosts.size() - 1); // one from each peer
    }
    EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Fabric, InterleavedMessagesFromTwoSendersReassemble)
{
    // Packets of big messages from two sources interleave at the
    // receiver's input link; reassembly is per messageId.
    Simulation s;
    Fabric fabric(s);
    auto &sw = fabric.addSwitch(SwitchParams{8});
    auto &a = fabric.addAdapter("a");
    auto &b = fabric.addAdapter("b");
    auto &dst = fabric.addAdapter("dst");
    fabric.connect(sw, 0, a);
    fabric.connect(sw, 1, b);
    fabric.connect(sw, 2, dst);
    fabric.computeRoutes();

    a.sendMessage(dst.id(), 10000);
    b.sendMessage(dst.id(), 7000);
    std::vector<Message> got;
    s.spawn([](Adapter &rx, std::vector<Message> &out) -> Task {
        out.push_back(co_await rx.recvQueue().pop());
        out.push_back(co_await rx.recvQueue().pop());
    }(dst, got));
    s.run();
    ASSERT_EQ(got.size(), 2u);
    std::uint64_t total = got[0].bytes + got[1].bytes;
    EXPECT_EQ(total, 17000u);
    EXPECT_NE(got[0].src, got[1].src);
}

TEST(Fabric, ContendingSendersShareOneOutputLink)
{
    // Two hosts blast a third: the shared output link halves each
    // sender's throughput but loses nothing.
    Simulation s;
    Fabric fabric(s);
    auto &sw = fabric.addSwitch(SwitchParams{8});
    auto &a = fabric.addAdapter("a");
    auto &b = fabric.addAdapter("b");
    auto &dst = fabric.addAdapter("dst");
    fabric.connect(sw, 0, a);
    fabric.connect(sw, 1, b);
    fabric.connect(sw, 2, dst);
    fabric.computeRoutes();

    const std::uint64_t bytes = 512 * 1024;
    a.sendMessage(dst.id(), bytes);
    b.sendMessage(dst.id(), bytes);
    Tick both_done = 0;
    s.spawn([](Adapter &rx, Tick &end) -> Task {
        Message m1 = co_await rx.recvQueue().pop();
        Message m2 = co_await rx.recvQueue().pop();
        end = std::max(m1.completedAt, m2.completedAt);
    }(dst, both_done));
    s.run();
    EXPECT_EQ(dst.bytesReceived(), 2 * bytes);
    // Wire time for 2 x 1024 packets of 528 B at 1 GB/s.
    const double ideal = 2 * 1024 * 528 / 1e9;
    EXPECT_GE(toSeconds(both_done), ideal);
    EXPECT_LE(toSeconds(both_done), ideal * 1.1);
}

TEST(Fabric, CreditBackpressurePropagatesNotDrops)
{
    // Tiny credit budget: everything still arrives, just slower.
    Simulation s;
    LinkParams lp;
    lp.credits = 1;
    Fabric fabric(s, lp);
    auto &sw = fabric.addSwitch(SwitchParams{4});
    auto &a = fabric.addAdapter("a");
    auto &b = fabric.addAdapter("b");
    fabric.connect(sw, 0, a);
    fabric.connect(sw, 1, b);
    fabric.computeRoutes();
    a.sendMessage(b.id(), 100 * 512);
    s.run();
    EXPECT_EQ(b.bytesReceived(), 100u * 512);
    EXPECT_EQ(b.messagesReceived(), 1u);
}

} // namespace
