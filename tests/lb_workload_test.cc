/**
 * @file
 * End-to-end tests of the lb subsystem through the full simulator:
 * conservation (every generated packet is delivered by its assigned
 * backend or counted as a punt), cross-mode decision equality,
 * multi-seed determinism, fault-driven backend churn, and the golden
 * stats snapshot (tests/golden/lb_scale.json).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "fault/FaultPlan.hh"
#include "harness/StatsReport.hh"
#include "lb/LbWorkload.hh"
#include "obs/Json.hh"

#ifndef SAN_GOLDEN_DIR
#error "SAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace san;

lb::LbWorkloadParams
smallParams()
{
    lb::LbWorkloadParams p;
    p.senders = 4;
    p.backends = 8;
    p.churn.flows = 2'000;
    p.churn.dataRounds = 2;
    p.churn.churnOpens = 200;
    p.churn.orphanEvery = 128;
    p.lb.table.capacity = 1 << 14;
    return p;
}

std::uint64_t
sumOf(const std::vector<std::uint64_t> &v)
{
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

TEST(LbConservation, EveryPacketForwardedOrPunted)
{
    for (const apps::Mode mode :
         {apps::Mode::Normal, apps::Mode::Active}) {
        lb::LbWorkloadParams p = smallParams();
        p.recordDeliveries = true;
        const lb::LbRunResult r = lb::runLb(mode, p);
        const apps::LbStats &lb = r.stats.lb;

        EXPECT_TRUE(lb.active);
        // The generator's exact expectations...
        EXPECT_EQ(r.gen.posted, r.gen.opens + r.gen.data + r.gen.closes);
        // ...against the balancer: nothing lost, nothing invented.
        EXPECT_EQ(r.gen.posted, lb.lookups) << apps::modeName(mode);
        EXPECT_EQ(lb.lookups, lb.forwarded + lb.punts);
        EXPECT_EQ(lb.hotHits + lb.tableHits + lb.misses +
                      lb.insertFailures,
                  lb.lookups - lb.inserts)
            << "every non-insert lookup resolves exactly once";
        // Every forwarded packet reached its backend's application.
        EXPECT_EQ(sumOf(r.backendDelivered), lb.forwarded);
        EXPECT_EQ(sumOf(lb.backendPackets), lb.forwarded);
        EXPECT_EQ(r.backendDelivered, lb.backendPackets);
        // Orphans are the only unknown connections in this shape.
        EXPECT_EQ(lb.punts, r.gen.orphans);
        if (mode == apps::Mode::Active)
            EXPECT_EQ(r.puntArrivals, lb.punts)
                << "punted packets must reach the fallback host";
        // No faults: every flow's packets hit exactly one backend.
        EXPECT_GT(r.deliveredBy.size(), 0u);
        for (const auto &[flow, mask] : r.deliveredBy)
            EXPECT_EQ(std::popcount(mask), 1)
                << "flow " << flow << " split across backends";
        EXPECT_EQ(lb.migrations, 0u);
        EXPECT_EQ(lb.peakFlows, r.gen.peakOpen);
    }
}

TEST(LbModes, SwitchAndHostMakeIdenticalDecisions)
{
    const lb::LbWorkloadParams p = smallParams();
    const lb::LbRunResult active = lb::runLb(apps::Mode::Active, p);
    const lb::LbRunResult normal = lb::runLb(apps::Mode::Normal, p);
    const apps::LbStats &a = active.stats.lb;
    const apps::LbStats &n = normal.stats.lb;
    EXPECT_EQ(a.lookups, n.lookups);
    EXPECT_EQ(a.hotHits, n.hotHits);
    EXPECT_EQ(a.tableHits, n.tableHits);
    EXPECT_EQ(a.misses, n.misses);
    EXPECT_EQ(a.inserts, n.inserts);
    EXPECT_EQ(a.removes, n.removes);
    EXPECT_EQ(a.forwarded, n.forwarded);
    EXPECT_EQ(a.punts, n.punts);
    EXPECT_EQ(a.backendPackets, n.backendPackets);
    // The balancing work ran on different silicon, though: the lb
    // host is essentially idle in Active mode.
    const unsigned lbHost = p.senders + p.backends;
    const auto &ah = active.stats.hosts.at(lbHost);
    const auto &nh = normal.stats.hosts.at(lbHost);
    EXPECT_LT(10 * (ah.busy + ah.stall), nh.busy + nh.stall);
}

TEST(LbDeterminism, TenSeedsReproduceBitIdenticalRuns)
{
    // Across ten churn seeds, a repeated run must reproduce the same
    // fingerprint (the fold over every executed event), and the lb
    // counters — which are NOT folded into the fingerprint — must
    // also match exactly.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        lb::LbWorkloadParams p = smallParams();
        p.churn.flows = 500;
        p.churn.churnOpens = 50;
        p.churn.seed = seed;
        const lb::LbRunResult a = lb::runLb(apps::Mode::Active, p);
        const lb::LbRunResult b = lb::runLb(apps::Mode::Active, p);
        EXPECT_EQ(a.stats.fingerprint, b.stats.fingerprint)
            << "nondeterminism at seed " << seed;
        EXPECT_EQ(a.stats.lb.forwarded, b.stats.lb.forwarded);
        EXPECT_EQ(a.stats.lb.hotHits, b.stats.lb.hotHits);
        EXPECT_EQ(a.stats.lb.backendPackets, b.stats.lb.backendPackets);
        EXPECT_EQ(a.gen.posted, b.gen.posted);
        if (seed > 1) {
            // Different seeds must actually change the tuple stream.
            EXPECT_NE(a.stats.fingerprint, 0u);
        }
    }
}

TEST(LbFaults, BackendDownMigratesOnlyItsFlows)
{
    lb::LbWorkloadParams p = smallParams();
    p.recordDeliveries = true;

    fault::FaultPlan plan;
    fault::FaultEvent down;
    down.at = sim::ms(1); // mid-run: after opens, before the churn
    down.kind = fault::FaultKind::BackendDown;
    down.target = "2";
    plan.addEvent(down);
    fault::globalPlan() = &plan;
    const lb::LbRunResult r = lb::runLb(apps::Mode::Active, p);
    fault::globalPlan() = nullptr;

    const apps::LbStats &lb = r.stats.lb;
    EXPECT_EQ(lb.backendDownEvents, 1u);
    EXPECT_GT(lb.migrations, 0u) << "backend 2's flows must move";
    // Conservation holds under faults too.
    EXPECT_EQ(r.gen.posted, lb.forwarded + lb.punts);
    EXPECT_EQ(sumOf(r.backendDelivered), lb.forwarded);
    // Only flows assigned to the dead backend may touch two backends.
    std::uint64_t split = 0;
    for (const auto &[flow, mask] : r.deliveredBy) {
        const int n = std::popcount(mask);
        ASSERT_LE(n, 2) << "flow " << flow;
        if (n == 2) {
            ++split;
            EXPECT_TRUE(mask & (1ull << 2))
                << "flow " << flow
                << " migrated without touching backend 2";
        }
    }
    // A migrated flow already delivered its SYN to backend 2, so it
    // shows up on exactly two backends; nothing else may.
    EXPECT_EQ(split, lb.migrations)
        << "migration count disagrees with per-flow delivery masks";
}

TEST(LbFaults, BackendUpRestoresNewFlowAdmission)
{
    lb::LbWorkloadParams p = smallParams();

    fault::FaultPlan plan;
    fault::FaultEvent down;
    down.at = 0;
    down.kind = fault::FaultKind::BackendDown;
    down.target = "0";
    plan.addEvent(down);
    fault::FaultEvent up;
    up.at = sim::ms(2);
    up.kind = fault::FaultKind::BackendUp;
    up.target = "0";
    plan.addEvent(up);
    fault::globalPlan() = &plan;
    const lb::LbRunResult r = lb::runLb(apps::Mode::Active, p);
    fault::globalPlan() = nullptr;

    EXPECT_EQ(r.stats.lb.backendDownEvents, 1u);
    EXPECT_EQ(r.stats.lb.backendUpEvents, 1u);
    EXPECT_GT(r.stats.lb.backendPackets.at(0), 0u)
        << "revived backend must serve traffic again";
    EXPECT_EQ(r.gen.posted, r.stats.lb.forwarded + r.stats.lb.punts);
}

TEST(LbScale, HotIndexStaysCacheResident)
{
    const lb::LbRunResult r =
        lb::runLb(apps::Mode::Active, smallParams());
    EXPECT_LE(r.stats.lb.hotBytes, 1024u);
    EXPECT_GT(r.stats.lb.hotHits, 0u);
}

/** The goldens pin the default policy's timing; a forced override
 * (the CI policy matrix) legitimately changes it. */
bool
policyForced()
{
    return std::getenv("SAN_FORCE_SWITCH_POLICY") != nullptr;
}

TEST(LbGolden, StatsSnapshotMatchesGoldenFile)
{
    if (policyForced())
        GTEST_SKIP() << "SAN_FORCE_SWITCH_POLICY overrides the "
                        "default policy this golden pins";
    std::string captured;
    apps::clusterObserver() = [&captured](apps::Cluster &cluster,
                                          apps::Mode) {
        std::ostringstream oss;
        obs::JsonWriter json(oss);
        harness::dumpClusterStatsJson(json, cluster);
        captured = oss.str();
    };
    lb::runLb(apps::Mode::Active, smallParams());
    apps::clusterObserver() = apps::ClusterObserver{};
    ASSERT_FALSE(captured.empty());
    ASSERT_NE(captured.find("\"lb\""), std::string::npos)
        << "stats JSON must carry the lb section during an lb run";

    const std::string path =
        std::string(SAN_GOLDEN_DIR) + "/lb_scale.json";
    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << captured;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; generate it with SAN_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(captured, golden.str())
        << "lb stats diverged from " << path
        << "\nIf intended, regenerate with SAN_UPDATE_GOLDEN=1.";
}

} // namespace
