/**
 * @file
 * Tests for the composed MemorySystem hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/MemorySystem.hh"

namespace {

using namespace san::mem;
using namespace san::sim;

TEST(MemorySystem, PresetGeometriesMatchPaper)
{
    auto host = hostMemoryParams();
    EXPECT_EQ(host.l1d.size, 32u * 1024);
    EXPECT_EQ(host.l1d.assoc, 2u);
    ASSERT_TRUE(host.l2.has_value());
    EXPECT_EQ(host.l2->size, 512u * 1024);
    EXPECT_EQ(host.l2->lineSize, 128u);

    auto scaled = scaledHostMemoryParams();
    EXPECT_EQ(scaled.l1d.size, 8u * 1024);
    EXPECT_EQ(scaled.l2->size, 64u * 1024);

    auto sw = switchMemoryParams();
    EXPECT_EQ(sw.l1i.size, 4u * 1024);
    EXPECT_EQ(sw.l1i.lineSize, 64u);
    EXPECT_EQ(sw.l1d.size, 1u * 1024);
    EXPECT_EQ(sw.l1d.lineSize, 32u);
    EXPECT_FALSE(sw.l2.has_value());
    EXPECT_EQ(sw.overlapDepth, 1u);
}

TEST(MemorySystem, HitAfterFillIsFree)
{
    MemorySystem ms(hostMemoryParams());
    Tick first = ms.dataAccess(0x10000, 8, AccessKind::Load, 0);
    EXPECT_GT(first, 0u);
    Tick second = ms.dataAccess(0x10000, 8, AccessKind::Load, first);
    EXPECT_EQ(second, 0u);
}

TEST(MemorySystem, L2HitCheaperThanDram)
{
    auto params = hostMemoryParams();
    MemorySystem ms(params);
    // Fill a line, then evict it from tiny L1 by touching conflicting
    // lines, so the next access hits in L2.
    const Addr target = 0;
    ms.dataAccess(target, 8, AccessKind::Load, 0);
    // L1D is 32 KB 2-way with 128 B lines -> 128 sets; lines 0,
    // 16K, 32K... share set 0. Touch 2 more to evict `target`.
    ms.dataAccess(16 * 1024, 8, AccessKind::Load, 0);
    ms.dataAccess(32 * 1024, 8, AccessKind::Load, 0);
    EXPECT_FALSE(ms.l1d().contains(target));
    EXPECT_TRUE(ms.l2()->contains(target));
    Tick l2hit = ms.dataAccess(target, 8, AccessKind::Load, us(1));
    EXPECT_EQ(l2hit, params.l2HitLatency);
}

TEST(MemorySystem, StoresOverlapLoadsDoNot)
{
    MemorySystem loads(hostMemoryParams());
    MemorySystem stores(hostMemoryParams());
    // Touch pages first so TLB walks don't skew the comparison.
    loads.dataAccess(0, 1, AccessKind::Load, 0);
    stores.dataAccess(0, 1, AccessKind::Load, 0);

    Tick lstall = loads.dataAccess(8192, 4096, AccessKind::Load, us(1));
    Tick sstall = stores.dataAccess(8192, 4096, AccessKind::Store, us(1));
    EXPECT_GT(lstall, sstall);
    // Four-deep overlap: stores should be roughly a quarter.
    EXPECT_NEAR(static_cast<double>(sstall) / lstall, 0.25, 0.15);
}

TEST(MemorySystem, TlbMissChargesWalk)
{
    auto params = hostMemoryParams();
    MemorySystem ms(params);
    // Warm the data line and the PTE line.
    ms.dataAccess(0x5000, 1, AccessKind::Load, 0);
    EXPECT_EQ(ms.dtlb().misses(), 1u);
    // Warm re-access: everything hits, zero stall.
    EXPECT_EQ(ms.dataAccess(0x5000, 1, AccessKind::Load, us(1)), 0u);
    // Drop only the translation: the same access now pays exactly the
    // walk overhead (the PTE itself is L1-resident).
    ms.dtlb().flush();
    Tick walk_only = ms.dataAccess(0x5000, 1, AccessKind::Load, us(2));
    EXPECT_EQ(walk_only, params.tlbWalkOverhead);
    EXPECT_EQ(ms.dtlb().misses(), 2u);
}

TEST(MemorySystem, SwitchHierarchyHasNoL2)
{
    MemorySystem ms(switchMemoryParams());
    EXPECT_EQ(ms.l2(), nullptr);
    Tick stall = ms.dataAccess(0x100, 1, AccessKind::Load, 0);
    // Must include a full DRAM round trip (>= 122ns page miss).
    EXPECT_GE(stall, ns(122));
}

TEST(MemorySystem, InstFetchFillsICache)
{
    MemorySystem ms(hostMemoryParams());
    Tick first = ms.instFetch(0x400000, 256, 0);
    EXPECT_GT(first, 0u);
    Tick second = ms.instFetch(0x400000, 256, first);
    EXPECT_EQ(second, 0u);
    EXPECT_GT(ms.l1i().hits(), 0u);
}

TEST(MemorySystem, StreamingLargeBufferCostScalesWithLines)
{
    MemorySystem ms(hostMemoryParams());
    // Stream 1 MB: every 128 B line misses (working set >> L2).
    Tick stall = ms.dataAccess(0, MiB, AccessKind::Load, 0);
    // At least DRAM bandwidth cost: 1 MB / 1.6 GB/s = 655 us.
    EXPECT_GE(stall, us(600));
    // Data lines plus the page-table entry lines pulled in by walks
    // (256 pages x 8 B PTEs = 16 extra lines).
    EXPECT_GE(ms.l1d().misses(), MiB / 128);
    EXPECT_LE(ms.l1d().misses(), MiB / 128 + 16);
}

TEST(MemorySystem, StallTicksAccumulate)
{
    MemorySystem ms(hostMemoryParams());
    Tick a = ms.dataAccess(0, 4096, AccessKind::Load, 0);
    Tick b = ms.instFetch(0x800000, 1024, a);
    EXPECT_EQ(ms.stallTicks(), a + b);
}

} // namespace
