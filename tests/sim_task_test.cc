/**
 * @file
 * Tests for the coroutine task / simulation process model.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/Simulation.hh"
#include "sim/Task.hh"

namespace {

using namespace san::sim;

Task
delayTwice(Simulation &sim, std::vector<Tick> &log)
{
    co_await Delay{ns(10)};
    log.push_back(sim.now());
    co_await Delay{ns(5)};
    log.push_back(sim.now());
}

TEST(Task, DelaysAdvanceSimulatedTime)
{
    Simulation sim;
    std::vector<Tick> log;
    sim.spawn(delayTwice(sim, log));
    sim.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], ns(10));
    EXPECT_EQ(log[1], ns(15));
    EXPECT_EQ(sim.liveTasks(), 0u);
}

Task
child(std::vector<int> &log, int id)
{
    log.push_back(id);
    co_await Delay{ns(1)};
    log.push_back(id + 100);
}

Task
parent(std::vector<int> &log)
{
    log.push_back(0);
    co_await child(log, 1);
    log.push_back(50);
    co_await child(log, 2);
    log.push_back(99);
}

TEST(Task, AwaitingChildTasksRunsThemToCompletion)
{
    Simulation sim;
    std::vector<int> log;
    sim.spawn(parent(log));
    sim.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 101, 50, 2, 102, 99}));
}

Task
interleaveA(Simulation &sim, std::vector<std::pair<char, Tick>> &log)
{
    for (int i = 0; i < 3; ++i) {
        co_await Delay{ns(10)};
        log.push_back({'a', sim.now()});
    }
}

Task
interleaveB(Simulation &sim, std::vector<std::pair<char, Tick>> &log)
{
    for (int i = 0; i < 2; ++i) {
        co_await Delay{ns(15)};
        log.push_back({'b', sim.now()});
    }
}

TEST(Task, ConcurrentTasksInterleaveByTime)
{
    Simulation sim;
    std::vector<std::pair<char, Tick>> log;
    sim.spawn(interleaveA(sim, log));
    sim.spawn(interleaveB(sim, log));
    sim.run();
    // At the t=30 tie, B's wakeup was scheduled (at t=15) before A's
    // (at t=20), so insertion order runs B first.
    std::vector<std::pair<char, Tick>> expect = {
        {'a', ns(10)}, {'b', ns(15)}, {'a', ns(20)},
        {'b', ns(30)}, {'a', ns(30)},
    };
    EXPECT_EQ(log, expect);
}

Task
thrower()
{
    co_await Delay{ns(1)};
    throw std::runtime_error("boom");
}

TEST(Task, ExceptionsPropagateOutOfRun)
{
    Simulation sim;
    sim.spawn(thrower());
    EXPECT_THROW(sim.run(), std::runtime_error);
}

Task
throwingChild()
{
    co_await Delay{ns(1)};
    throw std::logic_error("child failed");
    // Unreachable co_return keeps this a coroutine.
}

Task
catchingParent(bool &caught)
{
    try {
        co_await throwingChild();
    } catch (const std::logic_error &) {
        caught = true;
    }
}

TEST(Task, ParentCanCatchChildException)
{
    Simulation sim;
    bool caught = false;
    sim.spawn(catchingParent(caught));
    sim.run();
    EXPECT_TRUE(caught);
}

Task
noop()
{
    co_return;
}

TEST(Task, ImmediateCompletionIsReaped)
{
    Simulation sim;
    for (int i = 0; i < 100; ++i)
        sim.spawn(noop());
    sim.run();
    EXPECT_EQ(sim.liveTasks(), 0u);
}

ValueTask<int>
computeAnswer(Tick wait)
{
    co_await Delay{wait};
    co_return 42;
}

TEST(ValueTask, ReturnsValueToAwaiter)
{
    Simulation sim;
    int got = 0;
    Tick when = 0;
    sim.spawn([](Simulation &s, int &out, Tick &t) -> Task {
        out = co_await computeAnswer(ns(25));
        t = s.now();
    }(sim, got, when));
    sim.run();
    EXPECT_EQ(got, 42);
    EXPECT_EQ(when, ns(25));
}

ValueTask<std::string>
nested(int depth)
{
    if (depth == 0)
        co_return std::string("leaf");
    std::string inner = co_await nested(depth - 1);
    co_return inner + "+" + std::to_string(depth);
}

TEST(ValueTask, NestsRecursively)
{
    Simulation sim;
    std::string got;
    sim.spawn([](std::string &out) -> Task {
        out = co_await nested(3);
    }(got));
    sim.run();
    EXPECT_EQ(got, "leaf+1+2+3");
}

ValueTask<int>
valueThrower()
{
    co_await Delay{ns(1)};
    throw std::runtime_error("no value");
}

TEST(ValueTask, ExceptionPropagatesToAwaiter)
{
    Simulation sim;
    bool caught = false;
    sim.spawn([](bool &c) -> Task {
        try {
            (void)co_await valueThrower();
        } catch (const std::runtime_error &) {
            c = true;
        }
    }(caught));
    sim.run();
    EXPECT_TRUE(caught);
}

TEST(Task, ZeroDelayStillYields)
{
    // A zero-tick delay must still let same-tick events run first.
    Simulation sim;
    std::vector<int> order;
    sim.events().schedule(0, [&] { order.push_back(1); });
    sim.spawn([](std::vector<int> &ord) -> Task {
        co_await Delay{0};
        ord.push_back(2);
    }(order));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
