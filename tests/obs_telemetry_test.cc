/**
 * @file
 * Telemetry (INT / latency-lineage) tests: histogram percentile
 * exactness, flow-sketch behaviour, sampler determinism, stamp
 * monotonicity on real workloads, telemetry x fault interaction,
 * fingerprint neutrality across seeds, and byte-stability of the
 * latency report (including a golden-file comparison; regenerate
 * with SAN_UPDATE_GOLDEN=1 ctest -R LatencyReport).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/Grep.hh"
#include "apps/MpegFilter.hh"
#include "fault/FaultPlan.hh"
#include "harness/Report.hh"
#include "obs/Telemetry.hh"
#include "sim/Stats.hh"

#ifndef SAN_GOLDEN_DIR
#error "SAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace san;
using fault::FaultKind;
using fault::FaultPlan;
using obs::FlowClass;
using obs::FlowSketch;
using obs::HopStage;
using obs::LatencyHistogram;
using obs::Stage;
using obs::Telemetry;
using obs::TelemetryRecord;

/** Install a telemetry engine for one test; uninstall after. */
struct TelemetryGuard {
    explicit TelemetryGuard(std::uint64_t rate,
                            std::string label = "test")
        : tel(rate)
    {
        obs::globalTelemetry() = &tel;
        tel.beginRun(std::move(label));
    }
    ~TelemetryGuard() { obs::globalTelemetry() = nullptr; }
    Telemetry tel;
};

/** Install a fault plan for one test; restore no-fault after. */
struct PlanGuard {
    explicit PlanGuard(std::uint64_t seed = FaultPlan::defaultSeed)
        : plan(seed)
    {
        fault::globalPlan() = &plan;
    }
    ~PlanGuard() { fault::globalPlan() = nullptr; }
    FaultPlan plan;
};

void
addSpec(FaultPlan &plan, FaultKind kind, double rate)
{
    fault::FaultSpec spec;
    spec.kind = kind;
    spec.rate = rate;
    plan.addSpec(spec);
}

apps::MpegParams
smallMpeg()
{
    apps::MpegParams p;
    p.fileBytes = 256 * 1024;
    return p;
}

apps::GrepParams
smallGrep()
{
    apps::GrepParams p;
    p.fileBytes = 70 * 1024; // 1024 lines
    return p;
}

bool
policyForced()
{
    return std::getenv("SAN_FORCE_SWITCH_POLICY") != nullptr;
}

/** Recorded hops must read forward in time, each inside the next. */
void
expectMonotonic(const TelemetryRecord &r)
{
    sim::Tick prevEgress = r.bornAt;
    for (std::size_t h = 0; h < r.hopCount; ++h) {
        const obs::TelemetryHop &hop = r.hops[h];
        EXPECT_LE(r.bornAt, hop.ingress) << "uid " << r.uid;
        EXPECT_LE(hop.ingress, hop.admitted) << "uid " << r.uid;
        EXPECT_LE(hop.admitted, hop.egress) << "uid " << r.uid;
        EXPECT_LE(prevEgress, hop.egress) << "uid " << r.uid;
        prevEgress = hop.egress;
    }
    if (r.delivered) {
        EXPECT_LE(r.bornAt, r.deliveredAt) << "uid " << r.uid;
    }
}

// --- LatencyHistogram -------------------------------------------------

TEST(LatencyHistogram, EmptyReturnsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(5000), 0u);
    EXPECT_EQ(h.percentile(9990), 0u);
}

TEST(LatencyHistogram, ZeroGetsItsOwnBucket)
{
    LatencyHistogram h;
    h.add(0);
    h.add(0);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.percentile(5000), 0u);
    EXPECT_EQ(h.percentile(9990), 0u);
}

TEST(LatencyHistogram, PercentileIsBucketUpperEdgeClampedToMax)
{
    LatencyHistogram h;
    // 99 fast samples (bit width 7 -> bucket edge 127) and one slow
    // outlier. Ranks 1..99 resolve to the fast bucket's upper edge;
    // rank 100 (p99.9) lands in the outlier's bucket, clamped to the
    // observed max rather than the edge 2^20-1.
    for (int i = 0; i < 99; ++i)
        h.add(100);
    h.add(1000000);
    EXPECT_EQ(h.samples(), 100u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 1000000u);
    EXPECT_EQ(h.percentile(5000), 127u);
    EXPECT_EQ(h.percentile(9900), 127u);
    EXPECT_EQ(h.percentile(9990), 1000000u);
    EXPECT_EQ(h.percentile(10000), 1000000u);
}

TEST(LatencyHistogram, SingleSampleClampsEveryPercentile)
{
    LatencyHistogram h;
    h.add(1000); // upper edge of its bucket is 1023
    EXPECT_EQ(h.percentile(5000), 1000u);
    EXPECT_EQ(h.percentile(9990), 1000u);
}

TEST(LatencyHistogram, BucketOfMatchesBitWidth)
{
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketOf(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketOf(127), 7u);
    EXPECT_EQ(LatencyHistogram::bucketOf(128), 8u);
    EXPECT_EQ(LatencyHistogram::upperEdge(7), 127u);
    EXPECT_EQ(LatencyHistogram::upperEdge(0), 0u);
}

// --- FlowSketch -------------------------------------------------------

TEST(FlowSketch, ExactUnderCapacity)
{
    FlowSketch sk;
    sk.add(1, 2, 100);
    sk.add(3, 4, 300);
    sk.add(1, 2, 50);
    const auto top = sk.top(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, FlowSketch::keyOf(3, 4));
    EXPECT_EQ(top[0].bytes, 300u);
    EXPECT_EQ(top[0].error, 0u);
    EXPECT_EQ(top[1].key, FlowSketch::keyOf(1, 2));
    EXPECT_EQ(top[1].bytes, 150u);
}

TEST(FlowSketch, TiesBreakOnKeyAscending)
{
    FlowSketch sk;
    sk.add(9, 9, 100);
    sk.add(1, 1, 100);
    const auto top = sk.top(8);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, FlowSketch::keyOf(1, 1));
    EXPECT_EQ(top[1].key, FlowSketch::keyOf(9, 9));
}

TEST(FlowSketch, TakeoverInheritsSmallestCounterAsError)
{
    FlowSketch sk;
    // Fill the table; flow 0 is the smallest counter.
    for (std::uint32_t i = 0; i < FlowSketch::kEntries; ++i)
        sk.add(i, i, 10 + i);
    ASSERT_EQ(sk.used(), FlowSketch::kEntries);
    // One more flow evicts the minimum (bytes 10) and inherits it.
    sk.add(1000, 1000, 5);
    EXPECT_EQ(sk.used(), FlowSketch::kEntries);
    bool found = false;
    for (const auto &e : sk.top(FlowSketch::kEntries)) {
        if (e.key == FlowSketch::keyOf(1000, 1000)) {
            found = true;
            EXPECT_EQ(e.bytes, 15u); // 10 inherited + 5 real
            EXPECT_EQ(e.error, 10u);
        } else {
            EXPECT_EQ(e.error, 0u);
        }
    }
    EXPECT_TRUE(found);
}

// --- StatGroup histogram percentiles (satellite: derived stats) ------

TEST(StatGroupHistogram, PercentileFromLinearBuckets)
{
    sim::Histogram h(0, 100, 10);
    for (int i = 0; i < 50; ++i)
        h.sample(5);
    for (int i = 0; i < 50; ++i)
        h.sample(95);
    // Rank 50 is the last sample in the [0,10) bucket; its upper
    // edge is 10. Rank 99 lands in [90,100); the edge 100 clamps to
    // the observed max 95.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 95.0);
    sim::Histogram empty(0, 100, 10);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(StatGroupHistogram, DumpEmitsDerivedPercentiles)
{
    sim::StatGroup g("grp");
    sim::Histogram &h = g.histogram("lat", 0, 100, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(42);
    std::ostringstream oss;
    g.dump(oss);
    const std::string out = oss.str();
    // Every sample is 42: the bucket edge (50) clamps to the
    // observed max, so all derived percentiles read 42.
    EXPECT_NE(out.find("grp.lat.p50 42"), std::string::npos) << out;
    EXPECT_NE(out.find("grp.lat.p90 42"), std::string::npos) << out;
    EXPECT_NE(out.find("grp.lat.p99 42"), std::string::npos) << out;
}

// --- Sampler ----------------------------------------------------------

TEST(TelemetrySampler, RateZeroArmsButNeverSamples)
{
    Telemetry tel(0);
    tel.beginRun("r");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(tel.sample(1, 2, FlowClass::Data, 0), nullptr);
    EXPECT_EQ(tel.recordsLive(), 0u);
}

TEST(TelemetrySampler, OneInNIsDeterministic)
{
    Telemetry tel(3);
    tel.beginRun("r");
    int sampled = 0;
    for (int i = 0; i < 9; ++i)
        if (tel.sample(1, 2, FlowClass::Data, i) != nullptr)
            ++sampled;
    EXPECT_EQ(sampled, 3); // packets 0, 3, 6
    EXPECT_EQ(tel.recordsLive(), 3u);
    // beginRun resets the sampler phase: same decisions again.
    tel.beginRun("r2");
    EXPECT_NE(tel.sample(1, 2, FlowClass::Data, 0), nullptr);
    EXPECT_EQ(tel.sample(1, 2, FlowClass::Data, 1), nullptr);
}

// --- Workload lineage -------------------------------------------------

TEST(TelemetryLineage, StampsAreMonotonicOnActiveMpeg)
{
    TelemetryGuard guard(1, "mpeg-active");
    const apps::RunStats r =
        apps::runMpegFilter(apps::Mode::Active, smallMpeg());

    ASSERT_TRUE(r.telemetry.active);
    EXPECT_EQ(r.telemetry.sampleRate, 1u);
    EXPECT_GT(r.telemetry.recordsSampled, 0u);
    EXPECT_GT(r.telemetry.recordsDelivered, 0u);
    EXPECT_EQ(r.telemetry.stampsDropped, 0u); // fault-free run
    EXPECT_GT(r.telemetry.packetsObserved, 0u);
    EXPECT_GT(r.telemetry.bytesObserved, 0u);

    std::uint64_t withHops = 0;
    for (const auto &rec : guard.tel.records()) {
        expectMonotonic(*rec);
        if (rec->hopCount > 0)
            ++withHops;
    }
    EXPECT_GT(withHops, 0u);

    // Active traffic crossed a handler: CPU ticks were charged, and
    // every delivered record folded into the end-to-end histogram.
    EXPECT_GT(
        r.telemetry.stageHist(FlowClass::Active, Stage::HandlerCpu)
            .samples(),
        0u);
    std::uint64_t e2e = 0;
    for (std::size_t fc = 0; fc < obs::kFlowClassCount; ++fc)
        e2e += r.telemetry
                   .stageHist(static_cast<FlowClass>(fc),
                              Stage::EndToEnd)
                   .samples();
    EXPECT_EQ(e2e, r.telemetry.recordsDelivered);
}

TEST(TelemetryFault, RetransmitsShowUpInSampledLineage)
{
    const apps::GrepParams p = smallGrep();
    const apps::RunStats bare =
        apps::runGrep(apps::Mode::Active, p);

    PlanGuard faults;
    addSpec(faults.plan, FaultKind::LinkBitError, 5e-6);
    TelemetryGuard guard(1, "grep-faulty");
    const apps::RunStats r = apps::runGrep(apps::Mode::Active, p);

    // Telemetry changes neither the answer nor the recovery.
    EXPECT_EQ(r.checksum, bare.checksum);
    EXPECT_GT(r.faults.retransmits, 0u);

    // Sampling every packet, the lineage must see the retransmits
    // (the record is shared across a packet's retransmitted copies).
    ASSERT_TRUE(r.telemetry.active);
    EXPECT_GT(r.telemetry.retransmitsSampled, 0u);

    // Recorded stamps stay monotonic even with duplicate copies in
    // flight; inconsistent interleavings are dropped, not recorded.
    for (const auto &rec : guard.tel.records())
        expectMonotonic(*rec);
}

TEST(TelemetryFingerprint, TenSeedsUnchangedByTelemetry)
{
    const apps::GrepParams p = smallGrep();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        std::uint64_t plainFp = 0;
        {
            PlanGuard faults(seed);
            addSpec(faults.plan, FaultKind::LinkBitError, 2e-6);
            plainFp =
                apps::runGrep(apps::Mode::Active, p).fingerprint;
        }
        {
            PlanGuard faults(seed);
            addSpec(faults.plan, FaultKind::LinkBitError, 2e-6);
            TelemetryGuard guard(1, "seeded");
            const apps::RunStats r =
                apps::runGrep(apps::Mode::Active, p);
            EXPECT_EQ(r.fingerprint, plainFp) << "seed " << seed;
            EXPECT_GT(r.telemetry.recordsSampled, 0u);
        }
    }
}

// --- Report byte-stability -------------------------------------------

harness::ModeResults
mpegWithTelemetry(Telemetry &tel)
{
    harness::ModeResults results{};
    const apps::MpegParams p = smallMpeg();
    for (std::size_t i = 0; i < apps::allModes.size(); ++i) {
        tel.beginRun(apps::modeName(apps::allModes[i]));
        results[i] = apps::runMpegFilter(apps::allModes[i], p);
    }
    return results;
}

std::string
latencyReportFor(const harness::ModeResults &results)
{
    std::ostringstream oss;
    harness::printLatencyReport(oss, "mpeg", results);
    return oss.str();
}

TEST(LatencyReport, ByteStableAcrossRepeats)
{
    TelemetryGuard guard(1);
    const std::string a = latencyReportFor(mpegWithTelemetry(guard.tel));
    const std::string b = latencyReportFor(mpegWithTelemetry(guard.tel));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(LatencyReport, SilentWithoutTelemetry)
{
    harness::ModeResults results{};
    EXPECT_TRUE(latencyReportFor(results).empty());
}

TEST(LatencyReport, MatchesGoldenFile)
{
    if (policyForced())
        GTEST_SKIP() << "SAN_FORCE_SWITCH_POLICY overrides the "
                        "default policy this golden pins";
    TelemetryGuard guard(1);
    const std::string actual =
        latencyReportFor(mpegWithTelemetry(guard.tel));
    ASSERT_FALSE(actual.empty());
    const std::string path =
        std::string(SAN_GOLDEN_DIR) + "/latency_report_mpeg.txt";

    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden file regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; generate it with SAN_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(actual, golden.str())
        << "latency report diverged from " << path
        << "\nIf this change is intended, regenerate with "
           "SAN_UPDATE_GOLDEN=1 and commit the new golden file.";
}

} // namespace
