/**
 * @file
 * Tests for disks, the SCSI bus, the storage node, and the host I/O
 * path end to end.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/Host.hh"
#include "io/Disk.hh"
#include "io/ScsiBus.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;

TEST(Disk, SequentialReadsSkipSeek)
{
    io::Disk d;
    Tick t1 = d.read(0, 4096, 0);
    Tick t2 = d.read(4096, 4096, t1);
    EXPECT_EQ(d.seeks(), 0u); // heads start at the volume start
    // Second read is pure transfer: 4096 B at 50 MB/s.
    EXPECT_EQ(t2 - t1, transferTime(4096, bytesPerSec(50e6)));
}

TEST(Disk, RandomAccessPaysSeekAndRotation)
{
    io::DiskParams p;
    io::Disk d(p);
    Tick t1 = d.read(0, 512, 0);
    Tick t2 = d.read(100 * MiB, 512, t1);
    EXPECT_EQ(d.seeks(), 1u);
    EXPECT_GE(t2 - t1, p.seekTime + p.rotationalLatency());
}

TEST(Disk, RotationalLatencyFromRpm)
{
    io::DiskParams p;
    p.rotationRpm = 10000;
    // Half a revolution at 10k RPM = 3 ms.
    EXPECT_EQ(p.rotationalLatency(), ms(3));
}

TEST(DiskArray, AggregateBandwidthScalesWithSpindles)
{
    // 2 x 50 MB/s striped: 10 MB of 512 B chunks should take ~0.1 s.
    io::DiskArray arr(2);
    Tick done = 0;
    const std::uint64_t total = 10 * MiB;
    for (std::uint64_t off = 0; off < total; off += 512)
        done = std::max(done, arr.readChunk(off, 512, 0));
    const double seconds = toSeconds(done);
    EXPECT_NEAR(seconds, total / 100e6, total / 100e6 * 0.1);
    EXPECT_EQ(arr.bytesRead(), total);
}

TEST(ScsiBus, TransactionOverheadAndBandwidth)
{
    io::ScsiBus bus;
    Tick t1 = bus.transfer(32 * 1024, 0, true);
    EXPECT_EQ(t1, us(1) + transferTime(32 * 1024, bytesPerSec(320e6)));
    // Continuation of the same transaction: no arbitration.
    Tick t2 = bus.transfer(32 * 1024, t1, false);
    EXPECT_EQ(t2 - t1, transferTime(32 * 1024, bytesPerSec(320e6)));
    EXPECT_EQ(bus.transactions(), 1u);
}

TEST(ScsiBus, SharedBusSerializesUsers)
{
    io::ScsiBus bus;
    Tick a = bus.transfer(1024, 0, true);
    Tick b = bus.transfer(1024, 0, true); // contends with a
    EXPECT_GE(b, a);
}

/** Full path: host -> switch -> storage -> back. */
struct IoFixture {
    Simulation s;
    net::Fabric fabric{s};
    net::Switch *sw;
    host::Host *h;
    net::Adapter *tca;
    io::StorageNode *storage;

    IoFixture()
    {
        sw = &fabric.addSwitch(net::SwitchParams{8});
        h = new host::Host(s, "host0", fabric);
        tca = &fabric.addAdapter("tca0");
        storage = new io::StorageNode(s, *tca);
        fabric.connect(*sw, 0, h->hca());
        fabric.connect(*sw, 1, *tca);
        fabric.computeRoutes();
        h->start();
        storage->start();
    }

    ~IoFixture()
    {
        delete storage;
        delete h;
    }
};

TEST(StorageNode, BlockingReadDeliversAllBytes)
{
    IoFixture f;
    host::IoCompletion done{};
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 host::IoCompletion &out) -> Task {
        out = co_await h.readBlocking(storage, 0, 64 * 1024);
    }(*f.h, f.storage->id(), done));
    f.s.run();
    EXPECT_EQ(done.bytes, 64u * 1024);
    EXPECT_GT(done.completedAt, 0u);
    EXPECT_EQ(f.h->hca().bytesReceived(), 64u * 1024);
    EXPECT_EQ(f.storage->requestsServed(), 1u);
}

TEST(StorageNode, ReadTimeBoundedByDiskBandwidth)
{
    IoFixture f;
    host::IoCompletion done{};
    const std::uint64_t bytes = 1 * MiB;
    f.s.spawn([](host::Host &h, net::NodeId storage, std::uint64_t n,
                 host::IoCompletion &out) -> Task {
        out = co_await h.readBlocking(storage, 0, n);
    }(*f.h, f.storage->id(), bytes, done));
    f.s.run();
    // 1 MB at 100 MB/s aggregate = ~10.5 ms (plus initial seek).
    const double seconds = toSeconds(done.completedAt);
    EXPECT_GE(seconds, bytes / 100e6);
    EXPECT_LE(seconds, bytes / 100e6 + 0.015);
}

TEST(StorageNode, OsCostChargedToHostCpu)
{
    IoFixture f;
    f.s.spawn([](host::Host &h, net::NodeId storage) -> Task {
        co_await h.readBlocking(storage, 0, 64 * 1024);
    }(*f.h, f.storage->id()));
    f.s.run();
    // 30 us + 64 KB * 0.27 us/KB = 47.28 us.
    EXPECT_EQ(f.h->cpu().busyTicks(),
              us(30) + 64 * ns(270));
}

TEST(StorageNode, ActivePostIsCheapAndBypassesHost)
{
    IoFixture f;
    // Direct the reply at the switch: the host should receive no
    // data and pay only the QP post.
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 net::NodeId sw_node) -> Task {
        net::ActiveHeader hdr{1, 0x1000, 0};
        co_await h.postReadTo(storage, 0, 8192, sw_node, hdr);
    }(*f.h, f.storage->id(), f.sw->id()));
    f.s.run();
    EXPECT_EQ(f.h->hca().bytesReceived(), 0u);
    EXPECT_EQ(f.h->cpu().busyTicks(), us(2));
    // The base switch dropped the active chunks locally.
    EXPECT_EQ(f.sw->packetsLocal(), 8192u / 512);
}

TEST(StorageNode, TwoOutstandingRequestsOverlap)
{
    // "+pref" pattern: two posts in flight; total time is less than
    // two sequential blocking reads.
    IoFixture seq, pre;
    const std::uint64_t block = 256 * 1024;

    Tick seq_done = 0;
    seq.s.spawn([](host::Host &h, net::NodeId storage, std::uint64_t b,
                   Tick &out) -> Task {
        co_await h.readBlocking(storage, 0, b);
        co_await h.readBlocking(storage, b, b);
        out = h.cpu().busyTicks(); // placate unused warnings
        out = 0;
    }(*seq.h, seq.storage->id(), block, seq_done));
    seq_done = seq.s.run();

    Tick pre_done = 0;
    pre.s.spawn([](host::Host &h, net::NodeId storage, std::uint64_t b,
                   Tick &out) -> Task {
        auto r0 = co_await h.postRead(storage, 0, b);
        auto r1 = co_await h.postRead(storage, b, b);
        co_await h.awaitIo(r0);
        co_await h.awaitIo(r1);
        out = 0;
    }(*pre.h, pre.storage->id(), block, pre_done));
    pre_done = pre.s.run();

    EXPECT_LT(pre_done, seq_done);
}

TEST(StorageNode, DeviceFilterThinsTheStream)
{
    // Active-disk extension: a device filter keeps half of each
    // chunk; the host receives half the bytes but completion (via
    // the last flag) still fires.
    IoFixture f;
    f.storage->setDeviceFilter(io::DeviceFilter{
        [](std::uint64_t, std::uint32_t bytes) {
            return std::pair<std::uint32_t, std::uint64_t>(bytes / 2,
                                                           50);
        },
        200'000'000});
    host::IoCompletion done{};
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 host::IoCompletion &out) -> Task {
        out = co_await h.readBlocking(storage, 0, 64 * 1024);
    }(*f.h, f.storage->id(), done));
    f.s.run();
    EXPECT_EQ(done.bytes, 32u * 1024);
    EXPECT_EQ(f.h->hca().bytesReceived(), 32u * 1024);
    EXPECT_EQ(f.storage->bytesFilteredAtDevice(), 32u * 1024);
    // 128 chunks x 50 instructions at 200 MHz = 5 ns each.
    EXPECT_EQ(f.storage->deviceBusyTicks(), 128 * 50 * ns(5));
}

TEST(StorageNode, DeviceFilterKeepsConcurrentRequestsOrdered)
{
    // Regression test: device occupancy must be reserved in the
    // globally-ordered planning pass, or chunks of concurrent
    // requests can be delivered out of order.
    IoFixture f;
    f.storage->setDeviceFilter(io::DeviceFilter{
        [](std::uint64_t, std::uint32_t bytes) {
            return std::pair<std::uint32_t, std::uint64_t>(bytes, 500);
        },
        200'000'000});
    std::vector<std::uint64_t> order;
    f.s.spawn([](host::Host &h, net::NodeId storage,
                 std::vector<std::uint64_t> &out) -> Task {
        auto a = co_await h.postRead(storage, 0, 16 * 1024);
        auto b = co_await h.postRead(storage, 16 * 1024, 16 * 1024);
        auto da = co_await h.awaitIo(a);
        auto db = co_await h.awaitIo(b);
        out.push_back(da.completedAt);
        out.push_back(db.completedAt);
    }(*f.h, f.storage->id(), order));
    f.s.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_LT(order[0], order[1]); // request A completes before B
}

TEST(Host, AppMessagesFlowThroughAppQueue)
{
    Simulation s;
    net::Fabric fabric(s);
    auto &sw = fabric.addSwitch(net::SwitchParams{8});
    host::Host a(s, "a", fabric), b(s, "b", fabric);
    fabric.connect(sw, 0, a.hca());
    fabric.connect(sw, 1, b.hca());
    fabric.computeRoutes();
    a.start();
    b.start();

    bool got = false;
    s.spawn([](host::Host &h, net::NodeId dst) -> Task {
        co_await h.send(dst, 256);
    }(a, b.id()));
    s.spawn([](host::Host &h, bool &flag) -> Task {
        net::Message m = co_await h.recv();
        flag = (m.bytes == 256);
    }(b, got));
    s.run();
    EXPECT_TRUE(got);
}

TEST(Host, AllocBufferReturnsFreshPageAlignedRegions)
{
    Simulation s;
    net::Fabric fabric(s);
    host::Host h(s, "h", fabric);
    auto a = h.allocBuffer(100);
    auto b = h.allocBuffer(100);
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
}

} // namespace
