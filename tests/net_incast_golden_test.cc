/**
 * @file
 * Deterministic incast golden test: a small permutation-with-hotspot
 * run through the bounded-FIFO central queue and through VOQ+iSLIP,
 * each dumped as byte-stable stats JSON plus a metrics-CSV timeline
 * and compared against checked-in goldens. Regenerate after an
 * intended timing change with
 *
 *     SAN_UPDATE_GOLDEN=1 ctest -R IncastGolden
 *
 * Both runs configure their policy explicitly, so the files stay
 * valid under the CI policy matrix's SAN_FORCE_SWITCH_POLICY (the
 * override only replaces default-configured switches).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/Fabric.hh"
#include "net/Traffic.hh"
#include "obs/Json.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"

#ifndef SAN_GOLDEN_DIR
#error "SAN_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace san;
using namespace san::net;

struct LabOutput {
    std::string json;
    std::string csv;
};

/** 8 hosts on one 8-port switch, small perm-hotspot load. */
LabOutput
runLab(const std::string &label, const std::string &spec)
{
    const auto cfg = parsePolicySpec(spec);
    if (!cfg.has_value())
        ADD_FAILURE() << "bad policy spec " << spec;

    sim::Simulation sim;
    Fabric fabric(sim);
    SwitchParams params;
    params.ports = 8;
    params.policy = *cfg;
    Switch &sw = fabric.addSwitch(params);
    std::vector<Adapter *> hosts;
    for (unsigned h = 0; h < 8; ++h) {
        Adapter &a = fabric.addAdapter("h" + std::to_string(h));
        fabric.connect(sw, h, a);
        hosts.push_back(&a);
    }
    fabric.computeRoutes();

    TrafficParams traffic;
    traffic.pattern = TrafficParams::Pattern::PermutationHotspot;
    traffic.messageBytes = 2048;
    traffic.permMessages = 12;
    traffic.hotMessages = 6;
    traffic.hotInterleave = 3;
    TrafficGen gen(sim, hosts, traffic);

    std::ostringstream csv;
    obs::IntervalSampler sampler(csv, sim::us(10));
    sampler.setRunLabel(label);
    sw.registerMetrics(sampler.registry());
    sampler.attach(sim.events());

    gen.start();
    const sim::Tick end = sim.run();
    sampler.finishRun(end);
    const TrafficReport r = gen.report();

    std::ostringstream oss;
    obs::JsonWriter json(oss);
    json.beginObject();
    json.kv("policy", sw.policy().name());
    json.key("traffic").beginObject();
    json.kv("pattern", "perm_hotspot");
    json.kv("messageBytes", traffic.messageBytes);
    json.kv("permMessages", traffic.permMessages);
    json.kv("hotMessages", traffic.hotMessages);
    json.endObject();
    json.key("report").beginObject();
    json.kv("deliveredBytes", r.deliveredBytes);
    json.kv("deliveredMessages", r.deliveredMessages);
    json.kv("permBytes", r.permBytes);
    json.kv("hotBytes", r.hotBytes);
    json.kv("lastDeliveryAt", static_cast<std::uint64_t>(r.lastDeliveryAt));
    json.kv("permDoneAt", static_cast<std::uint64_t>(r.permDoneAt));
    json.kv("bytesAtPermDone", r.bytesAtPermDone);
    json.kv("aggregateGBps", r.aggregateGBps);
    json.kv("permGoodputGBps", r.permGoodputGBps);
    json.kv("permLatencyMeanNs", r.permLatencyMeanNs);
    json.kv("permLatencyMaxNs", r.permLatencyMaxNs);
    json.kv("jainFairness", r.jainFairness);
    json.endObject();
    const auto &pc = sw.policy().counters();
    json.key("policyCounters").beginObject();
    json.kv("admitted", pc.admitted);
    json.kv("forwarded", pc.forwarded);
    json.kv("holBlocked", pc.holBlocked);
    json.kv("grants", pc.grants);
    json.kv("arbRounds", pc.arbRounds);
    json.kv("peakOccupancy", pc.peakOccupancy);
    json.kv("maxGrantWaitRounds", sw.policy().maxGrantWaitRounds());
    json.endObject();
    json.endObject();

    // Sanity independent of the golden: every posted byte arrived.
    EXPECT_EQ(r.deliveredMessages, 7u * (12 + 6));
    EXPECT_EQ(r.deliveredBytes, 7ull * (12 + 6) * 2048);

    return LabOutput{oss.str(), csv.str()};
}

void
compareGolden(const std::string &actual, const std::string &file)
{
    const std::string path = std::string(SAN_GOLDEN_DIR) + "/" + file;
    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << "; generate it with SAN_UPDATE_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(actual, golden.str())
        << "incast stats diverged from " << path
        << "\nIf intended, regenerate with SAN_UPDATE_GOLDEN=1.";
}

TEST(IncastGolden, BoundedFifoMatchesGolden)
{
    const LabOutput out = runLab("incast_fifo", "fifo");
    compareGolden(out.json, "incast_fifo.json");
    compareGolden(out.csv, "incast_fifo.csv");
    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "goldens regenerated";
}

TEST(IncastGolden, VoqIslipMatchesGolden)
{
    const LabOutput out = runLab("incast_voq", "voq");
    compareGolden(out.json, "incast_voq.json");
    compareGolden(out.csv, "incast_voq.csv");
    if (std::getenv("SAN_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "goldens regenerated";
}

} // namespace
