/**
 * @file
 * Tests for the run fingerprint: determinism, seed sensitivity, and
 * independence from how the run is sliced into runUntil() windows.
 */

#include <gtest/gtest.h>

#include <functional>

#include "apps/MpegFilter.hh"
#include "apps/Select.hh"
#include "obs/Fingerprint.hh"
#include "sim/EventQueue.hh"
#include "sim/Random.hh"

namespace {

using namespace san;
using namespace san::sim;

/** Schedule a random event load (with cascading reschedules) and run
 * it through @p runner; return the resulting fingerprint. */
obs::RunFingerprint
fingerprintLoad(std::uint64_t seed,
                const std::function<void(EventQueue &)> &runner =
                    [](EventQueue &q) { q.run(); })
{
    EventQueue q;
    obs::RunFingerprint fp;
    q.setObserver(&fp);
    Random rng(seed);
    // A quarter of the events schedule one follow-up, so the load
    // exercises dynamically-created events too.
    std::function<void(Tick)> maybe_cascade = [&](Tick delta) {
        q.after(delta, [&q, &rng, &maybe_cascade] {
            if (rng.below(4) == 0)
                maybe_cascade(rng.below(1000));
        });
    };
    for (int i = 0; i < 400; ++i)
        maybe_cascade(rng.below(1'000'000));
    runner(q);
    EXPECT_EQ(fp.eventsFolded(), q.executedEvents());
    return fp;
}

TEST(RunFingerprint, SameSeedSameFingerprint)
{
    const auto a = fingerprintLoad(42);
    const auto b = fingerprintLoad(42);
    EXPECT_EQ(a.value(), b.value());
    EXPECT_EQ(a.eventsFolded(), b.eventsFolded());
    EXPECT_NE(a.value(), 0u);
}

TEST(RunFingerprint, DifferentSeedDifferentFingerprint)
{
    EXPECT_NE(fingerprintLoad(42).value(), fingerprintLoad(43).value());
    EXPECT_NE(fingerprintLoad(1).value(), fingerprintLoad(2).value());
}

TEST(RunFingerprint, StableAcrossRunUntilSlicing)
{
    const auto whole = fingerprintLoad(7);
    // Fine slices, coarse slices, and slices that mostly land between
    // events must all fold the identical execution.
    for (Tick step : {1000u, 77'777u, 1'000'000u}) {
        const auto sliced =
            fingerprintLoad(7, [step](EventQueue &q) {
                for (Tick t = step; !q.empty(); t += step)
                    q.runUntil(t);
            });
        EXPECT_EQ(whole.value(), sliced.value()) << "step " << step;
    }
    // Mixing runUntil() with a final run() is also equivalent.
    const auto mixed = fingerprintLoad(7, [](EventQueue &q) {
        q.runUntil(300'000);
        q.runUntil(300'000); // idempotent re-run at same limit
        q.run();
    });
    EXPECT_EQ(whole.value(), mixed.value());
}

TEST(RunFingerprint, FoldStatChangesValue)
{
    obs::RunFingerprint a, b;
    a.fold(std::uint64_t{1});
    b.fold(std::uint64_t{1});
    ASSERT_EQ(a.value(), b.value());
    b.foldStat("execTime", 123.0);
    EXPECT_NE(a.value(), b.value());
    // Same stat under a different name must also diverge.
    obs::RunFingerprint c;
    c.fold(std::uint64_t{1});
    c.foldStat("hostIoBytes", 123.0);
    EXPECT_NE(b.value(), c.value());
}

TEST(RunFingerprint, ResetRestartsTheFold)
{
    obs::RunFingerprint fp;
    fp.fold(std::uint64_t{5});
    const std::uint64_t once = fp.value();
    fp.reset();
    fp.fold(std::uint64_t{5});
    EXPECT_EQ(fp.value(), once);
}

/** Whole-cluster determinism: two identical runs, one fingerprint. */
TEST(RunFingerprint, ClusterRunsAreReproducible)
{
    apps::MpegParams params;
    params.fileBytes = 128 * 1024;
    const apps::RunStats a = runMpegFilter(apps::Mode::Active, params);
    const apps::RunStats b = runMpegFilter(apps::Mode::Active, params);
    EXPECT_NE(a.fingerprint, 0u);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.execTime, b.execTime);

    const apps::RunStats c = runMpegFilter(apps::Mode::Normal, params);
    EXPECT_NE(a.fingerprint, c.fingerprint);
}

/** Workload seed reaches the fingerprint through event timing. */
TEST(RunFingerprint, ClusterSeedChangesFingerprint)
{
    apps::SelectParams params;
    params.tableBytes = 1024 * 1024;
    apps::SelectParams other = params;
    other.seed = params.seed + 1;
    const apps::RunStats a = runSelect(apps::Mode::Normal, params);
    const apps::RunStats b = runSelect(apps::Mode::Normal, other);
    EXPECT_NE(a.fingerprint, b.fingerprint);
}

} // namespace
