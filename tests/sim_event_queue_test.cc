/**
 * @file
 * Unit and property tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/EventQueue.hh"
#include "sim/Random.hh"
#include "sim/Types.hh"

namespace {

using namespace san::sim;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTick(), maxTick);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(ns(30), [&] { order.push_back(3); });
    q.schedule(ns(10), [&] { order.push_back(1); });
    q.schedule(ns(20), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), ns(30));
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(ns(5), [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue q;
    Tick seen = maxTick;
    q.schedule(ns(100), [&] {
        q.schedule(ns(1), [&] { seen = q.now(); }); // "in the past"
    });
    q.run();
    EXPECT_EQ(seen, ns(100));
}

TEST(EventQueue, AfterSchedulesRelativeToNow)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(ns(10), [&] { q.after(ns(5), [&] { seen = q.now(); }); });
    q.run();
    EXPECT_EQ(seen, ns(15));
}

TEST(EventQueue, CallbackMaySchedule)
{
    // An event scheduling another event at the same tick runs it
    // in the same pass.
    EventQueue q;
    int depth = 0;
    q.schedule(0, [&] {
        q.schedule(0, [&] {
            q.schedule(0, [&] { depth = 3; });
            depth = 2;
        });
        depth = 1;
    });
    q.run();
    EXPECT_EQ(depth, 3);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        q.schedule(ns(i * 10), [&] { ++count; });
    q.runUntil(ns(50));
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), ns(50));
    q.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenDrained)
{
    EventQueue q;
    q.runUntil(ns(123));
    EXPECT_EQ(q.now(), ns(123));
}

TEST(EventQueue, RunUntilIncludesEventsExactlyAtLimit)
{
    // The window is inclusive: an event scheduled exactly at the
    // limit executes in this pass, not the next one.
    EventQueue q;
    int fired = 0;
    q.schedule(ns(50), [&] { ++fired; });
    q.schedule(ns(51), [&] { ++fired; });
    q.runUntil(ns(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), ns(50));
    EXPECT_EQ(q.nextEventTick(), ns(51));
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilRunsCallbackScheduledAtNow)
{
    // A callback at the limit that schedules another event at the
    // same tick keeps the pass going until that tick is exhausted.
    EventQueue q;
    std::vector<int> order;
    q.schedule(ns(10), [&] {
        order.push_back(1);
        q.schedule(q.now(), [&] { order.push_back(2); });
    });
    q.runUntil(ns(10));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MidStepSchedulingPreservesTickSeqOrder)
{
    // Regression test for the kernel overhaul: callbacks scheduled
    // from INSIDE a running callback must interleave with already
    // pending events in strict (tick, insertion-seq) order — the
    // arena hands out recycled slots, but ordering comes from the
    // heap's monotonically increasing sequence numbers, never from
    // slot identity.
    EventQueue q;
    std::vector<int> order;
    // Pre-scheduled events at ticks 10 and 20 (seq 0, 1).
    q.schedule(ns(10), [&] {
        order.push_back(1);
        // Same-tick events from within the pass: run after every
        // already pending tick-10 event, in scheduling order.
        q.schedule(ns(10), [&] { order.push_back(3); });
        q.schedule(ns(10), [&] { order.push_back(4); });
        // A tick-20 event scheduled mid-pass lands AFTER the
        // pre-scheduled tick-20 event (larger seq).
        q.schedule(ns(20), [&] { order.push_back(6); });
    });
    q.schedule(ns(20), [&] { order.push_back(5); });
    q.schedule(ns(10), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(EventQueue, MidStepSchedulingOrderIsDeterministicUnderChurn)
{
    // Two identical runs with heavy mid-step scheduling (slot reuse,
    // heap growth/shrink) must execute callbacks in the same order.
    const auto drive = [](std::vector<int> &order) {
        EventQueue q;
        for (int i = 0; i < 16; ++i)
            q.schedule(ns(i % 4), [&order, &q, i] {
                order.push_back(i);
                if (i % 3 == 0)
                    q.after(ns(1), [&order, i] {
                        order.push_back(100 + i);
                    });
                if (i % 5 == 0)
                    q.schedule(q.now(), [&order, i] {
                        order.push_back(200 + i);
                    });
            });
        q.run();
    };
    std::vector<int> first, second;
    drive(first);
    drive(second);
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.size(), 16u + 6u + 4u);
}

TEST(EventQueue, RunUntilAdvancesToLimitPastPendingFutureEvents)
{
    // Contract: runUntil(limit) always leaves now() == limit when the
    // next pending event is later — the caller (e.g. the interval
    // sampler) may treat the whole window as elapsed.
    EventQueue q;
    int fired = 0;
    q.schedule(ns(100), [&] { ++fired; });
    q.runUntil(ns(40));
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(q.now(), ns(40));
    EXPECT_EQ(q.nextEventTick(), ns(100));
}

TEST(EventQueue, RunUntilInThePastIsANoOp)
{
    // Contract: a limit at or before now() neither runs events nor
    // rewinds the clock; calling twice with the same limit is
    // idempotent.
    EventQueue q;
    int fired = 0;
    q.schedule(ns(50), [&] { ++fired; });
    q.runUntil(ns(50));
    EXPECT_EQ(fired, 1);
    q.schedule(ns(80), [&] { ++fired; });
    q.runUntil(ns(20)); // in the past
    EXPECT_EQ(q.now(), ns(50));
    EXPECT_EQ(fired, 1);
    q.runUntil(ns(50)); // idempotent at the current tick
    EXPECT_EQ(q.now(), ns(50));
    EXPECT_EQ(fired, 1);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedEventsCountsAcrossDrainedQueue)
{
    EventQueue q;
    EXPECT_EQ(q.executedEvents(), 0u);
    for (int i = 0; i < 5; ++i)
        q.schedule(ns(i), [] {});
    q.runUntil(ns(2));
    EXPECT_EQ(q.executedEvents(), 3u); // ticks 0, 1, 2
    q.run();
    EXPECT_EQ(q.executedEvents(), 5u);
    // Draining past the end of the load must not change the count.
    q.runUntil(ns(1000));
    EXPECT_FALSE(q.step());
    EXPECT_EQ(q.executedEvents(), 5u);
    // New work after a drain keeps accumulating.
    q.schedule(q.now(), [] {});
    q.run();
    EXPECT_EQ(q.executedEvents(), 6u);
}

/** Property: N random events always execute in nondecreasing order. */
class EventQueueProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EventQueueProperty, RandomLoadsExecuteSorted)
{
    Random rng(GetParam());
    EventQueue q;
    std::vector<Tick> fired;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        Tick when = rng.below(1000000);
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_EQ(q.executedEvents(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty,
                         ::testing::Values(1, 2, 3, 42, 0xdeadbeef));

// --- Ladder-scheduler edge cases -----------------------------------
//
// EventQueue is BasicEventQueue<LadderScheduler>; these tests pin the
// window mechanics (bucket spans, spill/refill, rebases) against the
// public determinism contract. The bucket width starts at
// scheduler().bucketWidth() and cannot retune mid-test (retunes need
// 64 horizon samples and an empty window).

TEST(LadderEventQueue, TierOccupancyPartitionsPendingEvents)
{
    EventQueue q;
    const Tick width = q.scheduler().bucketWidth();
    const Tick span =
        width * san::sim::detail::LadderScheduler::bucketCount;
    q.schedule(width / 2, [] {});  // current span -> drain heap
    q.schedule(width * 3, [] {});  // in-window -> ring bucket
    q.schedule(span * 4, [] {});   // beyond window -> spill heap
    const auto &lad = q.scheduler();
    EXPECT_EQ(lad.drainEvents(), 1u);
    EXPECT_EQ(lad.bucketedEvents(), 1u);
    EXPECT_EQ(lad.spillEvents(), 1u);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.nextEventTick(), width / 2);
    q.run();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), span * 4);
    // Three pending events reach the spilled tail via the small-queue
    // fallback swap, not a window rebase.
    EXPECT_GE(q.scheduler().stats().smallEnters, 1u);
}

TEST(LadderEventQueue, MidStepScheduleIntoDrainingBucketSpan)
{
    // A callback running deep inside a later bucket schedules more
    // events into the same (currently-draining) span: they must land
    // in the drain heap and run before anything in later buckets,
    // in (tick, seq) order.
    EventQueue q;
    std::vector<int> order;
    const Tick width = q.scheduler().bucketWidth();
    const Tick t0 = 3 * width + 100;
    q.schedule(t0, [&] {
        order.push_back(1);
        q.schedule(t0 + 2, [&] { order.push_back(3); });
        q.schedule(t0 + 1, [&] { order.push_back(2); });
        q.schedule(t0 + width, [&] { order.push_back(5); }); // next bucket
    });
    q.schedule(t0 + 3, [&] { order.push_back(4); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(LadderEventQueue, PastSchedulingClampsAfterWindowAdvance)
{
    // The clamp must hold even once the window has rebased far from
    // tick 0: a "past" schedule from a far-future callback lands in
    // the drain heap at now(), not in some dead bucket.
    EventQueue q;
    const Tick width = q.scheduler().bucketWidth();
    const Tick far = width * 5000; // beyond the initial window
    Tick seen = maxTick;
    q.schedule(far, [&] {
        q.schedule(ns(1), [&] { seen = q.now(); }); // deep past
    });
    q.run();
    EXPECT_EQ(seen, far);
}

TEST(LadderEventQueue, RunUntilLandsInsideBucketSpan)
{
    // runUntil with a limit strictly inside a bucket's span must
    // split that bucket: events at or before the limit execute,
    // later same-bucket events stay pending.
    EventQueue q;
    int fired = 0;
    const Tick width = q.scheduler().bucketWidth();
    const Tick base = 2 * width;
    q.schedule(base + 10, [&] { ++fired; });
    q.schedule(base + 30, [&] { ++fired; });
    q.runUntil(base + 20);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), base + 20);
    EXPECT_EQ(q.nextEventTick(), base + 30);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(LadderEventQueue, FarFutureSpillRefillsInOrder)
{
    // Events far beyond the window spill into a heap and come back
    // in-window as the ladder rebases over them; execution order must
    // stay globally sorted regardless of which tier each event
    // visited.
    EventQueue q;
    std::vector<Tick> fired;
    const Tick width = q.scheduler().bucketWidth();
    const Tick span =
        width * san::sim::detail::LadderScheduler::bucketCount;
    for (int i = 9; i >= 0; --i) // descending insert order
        q.schedule(span * static_cast<Tick>(i + 2) + static_cast<Tick>(i),
                   [&] { fired.push_back(q.now()); });
    q.schedule(10, [&] { fired.push_back(q.now()); });
    EXPECT_EQ(q.scheduler().spillEvents(), 10u);
    q.run();
    ASSERT_EQ(fired.size(), 11u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i]);
    // A population this small reaches the spilled events through the
    // small-queue fallback (one swap), not a window rebase.
    const auto &st = q.scheduler().stats();
    EXPECT_GE(st.smallEnters, 1u);
    EXPECT_GE(st.spillPushes, 10u);
}

TEST(LadderEventQueue, EventsAtMaxTickExecuteInSeqOrder)
{
    // maxTick events can never be covered by a (saturated) window;
    // the rebase fallback must still feed them to the drain heap one
    // by one, in sequence order, without looping.
    EventQueue q;
    std::vector<int> order;
    q.schedule(maxTick, [&] { order.push_back(1); });
    q.schedule(maxTick, [&] { order.push_back(2); });
    q.schedule(ns(5), [&] { order.push_back(0); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), maxTick);
}

TEST(LadderEventQueue, PostNowRunsAtCurrentTickAfterPendingPeers)
{
    // postNow() takes the next sequence number, exactly like
    // after(0, ...): already-pending events at the same tick run
    // first.
    EventQueue q;
    std::vector<int> order;
    q.schedule(ns(10), [&] {
        order.push_back(1);
        q.postNow([&] { order.push_back(3); });
    });
    q.schedule(ns(10), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), ns(10));
}

TEST(LadderEventQueue, SmallQueueFallbackEntersAndExits)
{
    // A tiny population degenerates to a plain binary heap once the
    // ring drains (the paper figures run at 1-20 pending events);
    // growth past the exit threshold re-partitions into the tiers.
    // The mode switches must be invisible to execution order.
    using Ladder = san::sim::detail::LadderScheduler;
    EventQueue q;
    const Tick width = q.scheduler().bucketWidth();
    q.schedule(width * 3, [] {});                 // ring bucket
    q.schedule(width * Ladder::bucketCount * 4, [] {}); // spill
    q.run();
    EXPECT_GE(q.scheduler().stats().smallEnters, 1u);
    EXPECT_EQ(q.scheduler().stats().smallExits, 0u);

    // Still in small mode: everything lands in the drain (side) heap
    // regardless of horizon, until the population crosses smallExit.
    std::vector<Tick> fired;
    const std::size_t n = Ladder::smallExit + 40;
    for (std::size_t i = 0; i < n; ++i) {
        const Tick when = q.now() + 1 + ((i * 7919) % 1000) * width;
        q.schedule(when, [&fired, &q] { fired.push_back(q.now()); });
        if (q.size() <= Ladder::smallExit)
            EXPECT_EQ(q.scheduler().drainEvents(), q.size());
    }
    EXPECT_GE(q.scheduler().stats().smallExits, 1u);
    // Re-partitioned: the tiers hold the population again.
    EXPECT_EQ(q.scheduler().drainEvents() +
                  q.scheduler().bucketedEvents() +
                  q.scheduler().spillEvents(),
              q.size());
    q.run();
    EXPECT_EQ(fired.size(), n);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(Types, UnitConversions)
{
    EXPECT_EQ(ns(1), ps(1000));
    EXPECT_EQ(us(1), ns(1000));
    EXPECT_EQ(ms(1), us(1000));
    EXPECT_EQ(sec(1), ms(1000));
    EXPECT_DOUBLE_EQ(toSeconds(sec(2)), 2.0);
    EXPECT_DOUBLE_EQ(toMicros(us(7)), 7.0);
}

TEST(Types, FrequencyCycleMath)
{
    Frequency host(2'000'000'000);   // 2 GHz
    Frequency sw(500'000'000);       // 500 MHz
    EXPECT_EQ(host.period(), ps(500));
    EXPECT_EQ(sw.period(), ps(2000));
    EXPECT_EQ(host.cycles(4), ns(2));
    EXPECT_EQ(sw.cyclesCeil(ns(2)), 1u);
    EXPECT_EQ(sw.cyclesCeil(ns(3)), 2u);
}

TEST(Types, TransferTime)
{
    // 1 GB/s -> 1 byte per ns.
    PsPerByte gbs = bytesPerSec(1e9);
    EXPECT_EQ(transferTime(512, gbs), ns(512));
    // 1.6 GB/s RDRAM: 128 bytes = 80 ns.
    EXPECT_EQ(transferTime(128, bytesPerSec(1.6e9)), ns(80));
}

} // namespace
