/**
 * @file
 * Tests for active-switch resource management: buffer quotas across
 * instances, pending-queue fairness, per-instance ordering, and
 * exact-address deallocation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "active/ActiveSwitch.hh"
#include "host/Host.hh"
#include "io/StorageNode.hh"
#include "net/Fabric.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::active;

struct Fixture {
    Simulation s;
    net::Fabric fabric{s};
    ActiveSwitch *sw;
    host::Host *h;
    net::Adapter *tca;
    io::StorageNode *storage;

    explicit Fixture(ActiveConfig cfg = {},
                     net::SwitchParams sw_params = net::SwitchParams{8})
    {
        sw = &fabric.addSwitch<ActiveSwitch>(sw_params, cfg);
        h = new host::Host(s, "host0", fabric);
        tca = &fabric.addAdapter("tca0");
        storage = new io::StorageNode(s, *tca);
        fabric.connect(*sw, 0, h->hca());
        fabric.connect(*sw, 1, *tca);
        fabric.computeRoutes();
        h->start();
        storage->start();
    }

    ~Fixture()
    {
        delete storage;
        delete h;
    }
};

/** The slow/fast two-instance starvation check, under @p sw_params:
 * active-dispatch fairness must hold regardless of which queueing
 * policy carries the packets to the dispatch unit. */
void
slowInstanceDoesNotStarveFastOne(const net::SwitchParams &sw_params)
{
    // Two CPUs: CPU 0 runs a pathologically slow consumer, CPU 1 a
    // fast one. Both stream 16 KB from disk concurrently. Without
    // per-instance buffer quotas the slow stream's backlog would
    // hold all 16 buffers and serialize the fast one behind it.
    ActiveConfig cfg;
    cfg.cpus = 2;
    Fixture f(cfg, sw_params);
    Tick fast_done = 0, slow_done = 0;
    const std::uint64_t bytes = 16 * 1024;

    f.sw->registerHandler(1, "stream",
                          [&](HandlerContext &ctx) -> Task {
        const bool slow = ctx.cpuIndex() == 0;
        std::uint64_t got = 0;
        while (got < bytes) {
            StreamChunk c = co_await ctx.nextChunk();
            co_await ctx.awaitValid(c, 0, c.bytes);
            co_await ctx.compute(slow ? 50000 : 50);
            got += c.bytes;
            ctx.deallocateThrough(c.address + c.bytes);
        }
        (slow ? slow_done : fast_done) = ctx.sim().now();
    });

    f.s.spawn([](host::Host &h, net::NodeId st, net::NodeId sw_id,
                 std::uint64_t n) -> Task {
        co_await h.postReadTo(st, 0, n, sw_id,
                              net::ActiveHeader{1, 0, 0});
        co_await h.postReadTo(st, n, n, sw_id,
                              net::ActiveHeader{1, 0, 1});
    }(*f.h, f.storage->id(), f.sw->id(), bytes));
    f.s.run();

    ASSERT_GT(fast_done, 0u);
    ASSERT_GT(slow_done, 0u);
    // The fast stream must finish long before the slow one (i.e. it
    // was not serialized behind the slow stream's backlog).
    EXPECT_LT(fast_done, slow_done / 2);
}

TEST(ActiveFairness, SlowInstanceDoesNotStarveFastOne)
{
    slowInstanceDoesNotStarveFastOne(net::SwitchParams{8});
}

TEST(ActiveFairness, SlowInstanceDoesNotStarveFastOneUnderVoq)
{
    // Same property with the active hardware composed over VOQ+iSLIP:
    // dispatch fairness must not depend on the default central queue.
    net::SwitchParams params{8};
    params.policy.kind = net::SwitchPolicyKind::Voq;
    slowInstanceDoesNotStarveFastOne(params);
}

TEST(ActiveFairness, SlowInstanceDoesNotStarveFastOneUnderCrosspoint)
{
    net::SwitchParams params{8};
    params.policy.kind = net::SwitchPolicyKind::Crosspoint;
    slowInstanceDoesNotStarveFastOne(params);
}

TEST(ActiveFairness, QuotaSplitsPoolAcrossInstances)
{
    ActiveConfig cfg;
    cfg.cpus = 4;
    Fixture f(cfg);
    // With up to 4 instances live the quota is pool/instances but
    // never below 2.
    EXPECT_EQ(f.sw->bufferQuota(), 16u); // no instances yet
}

TEST(ActiveFairness, PerInstanceOrderPreservedUnderStalls)
{
    // A single slow instance with a deep stream: chunks must arrive
    // at the handler in file order even when many wait in the
    // pending queue.
    Fixture f;
    std::vector<std::uint32_t> addrs;
    const std::uint64_t bytes = 32 * 512;
    f.sw->registerHandler(1, "ordered",
                          [&](HandlerContext &ctx) -> Task {
        std::uint64_t got = 0;
        while (got < bytes) {
            StreamChunk c = co_await ctx.nextChunk();
            co_await ctx.awaitValid(c, 0, c.bytes);
            co_await ctx.compute(10000); // force backlog
            addrs.push_back(c.address);
            got += c.bytes;
            ctx.deallocateThrough(c.address + c.bytes);
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId st, net::NodeId sw_id,
                 std::uint64_t n) -> Task {
        co_await h.postReadTo(st, 0, n, sw_id,
                              net::ActiveHeader{1, 0, 0});
    }(*f.h, f.storage->id(), f.sw->id(), bytes));
    f.s.run();
    ASSERT_EQ(addrs.size(), bytes / 512);
    for (std::size_t i = 1; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], addrs[i - 1] + 512);
    EXPECT_GT(f.sw->dispatchStalls(), 0u);
}

TEST(ActiveFairness, DeallocateOneReleasesExactly)
{
    Fixture f;
    bool checked = false;
    f.sw->registerHandler(1, "exact", [&](HandlerContext &ctx) -> Task {
        StreamChunk a = co_await ctx.nextChunk();
        StreamChunk b = co_await ctx.nextChunk();
        const unsigned free_before = ctx.owner().buffers().freeCount();
        ctx.deallocateOne(a.address);
        EXPECT_EQ(ctx.owner().buffers().freeCount(), free_before + 1);
        // b's mapping survives an exact release of a.
        EXPECT_TRUE(ctx.owner().atb(0).translate(b.address).has_value());
        EXPECT_FALSE(ctx.owner().atb(0).translate(a.address).has_value());
        ctx.deallocateOne(b.address);
        checked = true;
    });
    f.s.spawn([](host::Host &h, net::NodeId sw_id) -> Task {
        co_await h.send(sw_id, 64, net::ActiveHeader{1, 0, 0});
        co_await h.send(sw_id, 64, net::ActiveHeader{1, 512, 0});
    }(*f.h, f.sw->id()));
    f.s.run();
    EXPECT_TRUE(checked);
    EXPECT_EQ(f.sw->buffers().freeCount(), 16u);
}

TEST(ActiveFairness, BufferAccountingBalancedAfterRun)
{
    // Property: after any complete run, allocations == releases and
    // the free list is whole again.
    Fixture f;
    f.sw->registerHandler(1, "drain", [&](HandlerContext &ctx) -> Task {
        std::uint64_t got = 0;
        while (got < 8 * 512) {
            StreamChunk c = co_await ctx.nextChunk();
            got += c.bytes;
            ctx.deallocateThrough(c.address + c.bytes);
        }
    });
    f.s.spawn([](host::Host &h, net::NodeId st, net::NodeId sw_id)
                  -> Task {
        co_await h.postReadTo(st, 0, 8 * 512, sw_id,
                              net::ActiveHeader{1, 0, 0});
    }(*f.h, f.storage->id(), f.sw->id()));
    f.s.run();
    EXPECT_EQ(f.sw->buffers().allocations(), f.sw->buffers().releases());
    EXPECT_EQ(f.sw->buffers().freeCount(), 16u);
    EXPECT_EQ(f.sw->buffers().inUse(), 0u);
}

} // namespace
