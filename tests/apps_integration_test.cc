/**
 * @file
 * End-to-end application tests: every benchmark runs in all four
 * configurations on reduced problem sizes, and the paper's headline
 * invariants are asserted (semantic agreement across modes, traffic
 * reductions, ordering of execution times).
 */

#include <gtest/gtest.h>

#include "apps/Grep.hh"
#include "apps/HashJoin.hh"
#include "apps/Md5App.hh"
#include "apps/MpegFilter.hh"
#include "apps/ParallelSort.hh"
#include "apps/Reduction.hh"
#include "apps/Select.hh"
#include "apps/Tar.hh"

namespace {

using namespace san::apps;

template <typename RunFn>
std::array<RunStats, 4>
runAll(RunFn run)
{
    std::array<RunStats, 4> out;
    for (std::size_t i = 0; i < allModes.size(); ++i)
        out[i] = run(allModes[i]);
    return out;
}

TEST(SelectApp, ModesAgreeAndActiveFiltersTraffic)
{
    SelectParams p;
    p.tableBytes = 2 * 1024 * 1024;
    auto r = runAll([&](Mode m) { return runSelect(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    // Active host I/O traffic ~ selectivity of normal.
    const double ratio = static_cast<double>(r[2].hostIoBytes) /
                         static_cast<double>(r[0].hostIoBytes);
    EXPECT_NEAR(ratio, p.selectivity, 0.05);
    // Normal (sync) is the slowest configuration.
    EXPECT_GT(r[0].execTime, r[1].execTime);
    EXPECT_GT(r[0].execTime, r[3].execTime);
    // Active host utilization far below normal.
    EXPECT_LT(r[2].hostUtilization(), r[0].hostUtilization());
}

TEST(GrepApp, OnlyMatchedLinesReachHost)
{
    GrepParams p;
    p.fileBytes = 70 * 2048; // 2048 lines
    auto r = runAll([&](Mode m) { return runGrep(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    EXPECT_EQ(r[0].checksum,
              std::to_string(p.matchingLines) + ":" +
                  std::to_string(p.matchingLines * p.lineBytes));
    // Host receives (almost) nothing in active mode.
    EXPECT_LT(r[3].hostIoBytes, r[0].hostIoBytes / 20);
}

TEST(HashJoinApp, SurvivorsMatchAndStallsDrop)
{
    HashJoinParams p;
    p.rBytes = 1 * 1024 * 1024;
    p.sBytes = 4 * 1024 * 1024;
    auto r = runAll([&](Mode m) { return runHashJoin(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    // The bit-vector filter reduces host traffic.
    EXPECT_LT(r[2].hostIoBytes, r[0].hostIoBytes / 2);
    // Host cache-stall share shrinks in the active cases.
    const auto &np = r[1].hosts[0];
    const auto &ap = r[3].hosts[0];
    const double np_stall =
        static_cast<double>(np.stall) / static_cast<double>(np.total);
    const double ap_stall =
        static_cast<double>(ap.stall) / static_cast<double>(ap.total);
    EXPECT_LT(ap_stall, np_stall);
}

TEST(MpegApp, TrafficDropsToIFrameShare)
{
    MpegParams p;
    p.fileBytes = 512 * 1024;
    auto r = runAll([&](Mode m) { return runMpegFilter(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    const double ratio = static_cast<double>(r[2].hostIoBytes) /
                         static_cast<double>(r[0].hostIoBytes);
    EXPECT_NEAR(ratio, 0.365, 0.03);
    // Active cases beat the corresponding normal cases.
    EXPECT_LT(r[2].execTime, r[0].execTime);
    EXPECT_LT(r[3].execTime, r[1].execTime);
    // Both CPUs busy: the switch runs a balanced pipeline.
    EXPECT_GT(r[3].switchCpus.at(0).utilization(), 0.3);
}

TEST(TarApp, HostBypassedEntirely)
{
    TarParams p;
    p.totalBytes = 512 * 1024;
    auto r = runAll([&](Mode m) { return runTar(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    // Archive = files + one 512 B header per file.
    const unsigned files =
        static_cast<unsigned>(p.totalBytes / p.fileBytes);
    EXPECT_EQ(r[0].checksum,
              std::to_string(p.totalBytes + files * p.headerBytes));
    // Active host I/O: headers only (vs full data in normal).
    EXPECT_LT(r[2].hostIoBytes, r[0].hostIoBytes / 50);
    EXPECT_LT(r[2].hostUtilization(), 0.05);
}

TEST(SortApp, EveryRecordReachesItsOwner)
{
    SortParams p;
    p.totalBytes = 2 * 1024 * 1024;
    auto r = runAll([&](Mode m) { return runParallelSort(m, p); });
    for (const auto &stats : r)
        EXPECT_EQ(stats.checksum, r[0].checksum);
    // Paper: per-node traffic ratio p/(3p-2) = 0.4 at p = 4.
    const double ratio = static_cast<double>(r[2].hostIoBytes) /
                         static_cast<double>(r[0].hostIoBytes);
    EXPECT_NEAR(ratio, 0.4, 0.03);
}

TEST(Md5App, OneCpuLosesFourCpusWin)
{
    Md5Params p;
    p.fileBytes = 64 * 1024;
    p.blockBytes = 8 * 1024;
    RunStats normal = runMd5(Mode::Normal, p);
    p.switchCpus = 1;
    RunStats one = runMd5(Mode::Active, p);
    p.switchCpus = 4;
    RunStats four = runMd5(Mode::Active, p);
    EXPECT_GT(one.execTime, normal.execTime);  // 1 CPU: slowdown
    EXPECT_LT(four.execTime, normal.execTime); // 4 CPUs: speedup
    // Different algorithms -> different digests, but each mode is
    // self-consistent.
    RunStats four_again = runMd5(Mode::Active, p);
    EXPECT_EQ(four.checksum, four_again.checksum);
}

class ReductionModes
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>>
{};

TEST_P(ReductionModes, MatchesSequentialReference)
{
    auto [nodes, active] = GetParam();
    ReductionParams p;
    p.nodes = nodes;
    for (auto kind : {ReduceKind::ToOne, ReduceKind::Distributed,
                      ReduceKind::ToAll}) {
        ReductionRun run = runReduction(active, kind, p);
        EXPECT_TRUE(run.correct)
            << "nodes=" << nodes << " active=" << active;
        EXPECT_GT(run.latency, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionModes,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 64u),
                       ::testing::Bool()));

TEST(ReductionScaling, ActiveAdvantageGrowsWithNodes)
{
    ReductionParams small, large;
    small.nodes = 4;
    large.nodes = 64;
    const double speedup_small =
        static_cast<double>(
            runReduction(false, ReduceKind::ToOne, small).latency) /
        runReduction(true, ReduceKind::ToOne, small).latency;
    const double speedup_large =
        static_cast<double>(
            runReduction(false, ReduceKind::ToOne, large).latency) /
        runReduction(true, ReduceKind::ToOne, large).latency;
    EXPECT_GT(speedup_large, speedup_small);
    EXPECT_GT(speedup_large, 2.0);
}

} // namespace
