/**
 * @file
 * Tests of the time-series metrics layer: registry invariants,
 * interval-boundary behaviour of the sampler, byte-stable output,
 * and the per-handler switch-CPU profiler.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/Cluster.hh"
#include "apps/MpegFilter.hh"
#include "obs/Hooks.hh"
#include "obs/Metrics.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;

TEST(MetricsRegistry, RejectsDuplicateGaugeNames)
{
    obs::MetricsRegistry reg;
    reg.add("sw.busy", obs::GaugeKind::Gauge, [] { return 1.0; });
    EXPECT_THROW(
        reg.add("sw.busy", obs::GaugeKind::Rate, [] { return 2.0; }),
        std::invalid_argument);
    // Clearing frees the name again.
    reg.clear();
    EXPECT_NO_THROW(
        reg.add("sw.busy", obs::GaugeKind::Gauge, [] { return 3.0; }));
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST(IntervalSampler, FlushesPartialFinalRow)
{
    // Two events: one at t=0 and one at t=25us with a 10us interval.
    // Expect boundary rows at 0, 10us and 20us plus one final partial
    // row at the 25us end tick.
    sim::Simulation sim;
    std::ostringstream csv;
    obs::IntervalSampler sampler(csv, sim::us(10));
    std::uint64_t counter = 0;
    sampler.registry().add("events", obs::GaugeKind::Rate, [&counter] {
        return static_cast<double>(counter);
    });
    sampler.attach(sim.events());
    sim.events().schedule(0, [&counter] { ++counter; });
    sim.events().schedule(sim::us(25), [&counter] { ++counter; });
    const sim::Tick end = sim.run();
    ASSERT_EQ(end, sim::us(25));
    sampler.finishRun(end);

    EXPECT_EQ(sampler.rowsWritten(), 4u);
    const auto rows = lines(csv.str());
    ASSERT_EQ(rows.size(), 5u); // header + 4 data rows
    EXPECT_EQ(rows[0], "run,time_ps,events");
    EXPECT_EQ(rows[1], "run,0,0");
    EXPECT_EQ(rows[2], "run," + std::to_string(sim::us(10)) + ",1");
    EXPECT_EQ(rows[3], "run," + std::to_string(sim::us(20)) + ",0");
    EXPECT_EQ(rows[4], "run," + std::to_string(sim::us(25)) + ",1");
}

TEST(IntervalSampler, BoundaryEndingRunEmitsNoExtraRow)
{
    // A run whose last event lands exactly on a sample boundary must
    // not get a duplicate partial row at the same tick.
    sim::Simulation sim;
    std::ostringstream csv;
    obs::IntervalSampler sampler(csv, sim::us(10));
    sampler.registry().add("one", obs::GaugeKind::Gauge,
                           [] { return 1.0; });
    sampler.attach(sim.events());
    sim.events().schedule(sim::us(10), [] {});
    sampler.finishRun(sim.run());

    // Rows at 0 and 10us only.
    EXPECT_EQ(sampler.rowsWritten(), 2u);
    const auto rows = lines(csv.str());
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[2], "run," + std::to_string(sim::us(10)) + ",1");
}

/** One full MPEG-filter run with a sampler installed; returns the
 * time series bytes. */
std::string
sampledMpegRun(apps::Mode mode)
{
    std::ostringstream csv;
    obs::IntervalSampler sampler(csv, sim::us(100));
    obs::globalSampler() = &sampler;
    apps::MpegParams params;
    params.fileBytes = 128 * 1024;
    sampler.setRunLabel(apps::modeName(mode));
    runMpegFilter(mode, params);
    obs::globalSampler() = nullptr;
    return csv.str();
}

TEST(IntervalSampler, TimeSeriesIsDeterministic)
{
    const std::string first = sampledMpegRun(apps::Mode::Active);
    const std::string second = sampledMpegRun(apps::Mode::Active);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second)
        << "--metrics-csv output must be byte-identical across runs";
    // Sanity: the series has a header plus at least a couple of rows.
    EXPECT_GE(lines(first).size(), 3u);
}

TEST(IntervalSampler, SamplingDoesNotPerturbTheRun)
{
    apps::MpegParams params;
    params.fileBytes = 128 * 1024;
    const apps::RunStats bare = runMpegFilter(apps::Mode::Active, params);

    std::ostringstream csv;
    obs::IntervalSampler sampler(csv, sim::us(100));
    obs::globalSampler() = &sampler;
    const apps::RunStats sampled =
        runMpegFilter(apps::Mode::Active, params);
    obs::globalSampler() = nullptr;

    EXPECT_EQ(bare.execTime, sampled.execTime);
    EXPECT_EQ(bare.fingerprint, sampled.fingerprint)
        << "enabling metrics must not change the run fingerprint";
}

TEST(HandlerProfiler, CyclesSumToSwitchCpuBusyCounter)
{
    // Every busy tick a handler charges flows through its
    // HandlerContext, so the profiles must account for the switch
    // CPUs' busy counters exactly.
    sim::Tick profile_busy = 0;
    sim::Tick cpu_busy = 0;
    bool observed = false;
    apps::clusterObserver() = [&](apps::Cluster &cluster, apps::Mode) {
        observed = true;
        for (const auto &[id, p] : cluster.sw().handlerProfiles())
            profile_busy += p.busyTicks;
        for (unsigned i = 0; i < cluster.sw().cpuCount(); ++i)
            cpu_busy += cluster.sw().cpu(i).busyTicks();
    };
    apps::MpegParams params;
    params.fileBytes = 128 * 1024;
    const apps::RunStats stats =
        runMpegFilter(apps::Mode::Active, params);
    apps::clusterObserver() = apps::ClusterObserver{};

    ASSERT_TRUE(observed);
    ASSERT_GT(cpu_busy, 0u);
    EXPECT_EQ(profile_busy, cpu_busy);

    // The RunStats view agrees with the raw profiles.
    ASSERT_FALSE(stats.handlerProfiles.empty());
    sim::Tick stats_busy = 0;
    for (const auto &p : stats.handlerProfiles) {
        stats_busy += p.busyTicks;
        EXPECT_GT(p.invocations, 0u);
        if (p.bytes > 0)
            EXPECT_GT(p.cyclesPerByte, 0.0);
    }
    EXPECT_EQ(stats_busy, cpu_busy);
}

} // namespace
