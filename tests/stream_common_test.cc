/**
 * @file
 * Tests for the shared streaming machinery: the normal and active
 * host loops and the generic filter handler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/Cluster.hh"
#include "apps/StreamCommon.hh"

namespace {

using namespace san;
using namespace san::apps;

TEST(NormalHostLoop, SyncSerializesIoAndCompute)
{
    // With one outstanding request, total time ~= io + compute; with
    // two, ~= max(io, compute). The compute here is sized ~equal to
    // the I/O time so the contrast is sharp.
    auto run = [](unsigned outstanding) {
        Cluster cluster;
        const std::uint64_t bytes = 1 * sim::MiB;
        cluster.sim().spawn(normalHostLoop(
            cluster.host(), cluster.storage().id(), bytes, 64 * 1024,
            outstanding,
            [](host::Host &h, mem::Addr, std::uint64_t n) -> sim::Task {
                // ~10 ms of compute per MB at 2 GHz.
                co_await h.cpu().compute(n * 20);
            }));
        return cluster.sim().run();
    };
    const sim::Tick sync = run(1);
    const sim::Tick pref = run(2);
    EXPECT_GT(sync, pref);
    // Sync ~ io + compute ~ 2x pref when balanced.
    EXPECT_GT(static_cast<double>(sync) / pref, 1.5);
}

TEST(NormalHostLoop, DeliversEveryBlockOnce)
{
    Cluster cluster;
    std::vector<std::uint64_t> sizes;
    const std::uint64_t bytes = 200 * 1024; // not a block multiple
    cluster.sim().spawn(normalHostLoop(
        cluster.host(), cluster.storage().id(), bytes, 64 * 1024, 2,
        [&sizes](host::Host &, mem::Addr, std::uint64_t n) -> sim::Task {
            sizes.push_back(n);
            co_return;
        }));
    cluster.sim().run();
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 64u * 1024);
    EXPECT_EQ(sizes[3], 200u * 1024 - 3 * 64 * 1024);
}

TEST(FilterHandler, RepliesOncePerBlockWithFilteredSize)
{
    Cluster cluster;
    auto &sw = cluster.sw();
    const std::uint64_t file = 4 * 1024;
    const std::uint64_t block = 1024;

    FilterHandler spec;
    spec.fileBytes = file;
    spec.blockBytes = block;
    spec.processChunk = [](active::HandlerContext &ctx,
                           const active::StreamChunk &chunk)
        -> sim::ValueTask<std::uint32_t> {
        co_await ctx.awaitValid(chunk, 0, chunk.bytes);
        co_return chunk.bytes / 2; // keep half of everything
    };
    sw.registerHandler(1, "half", [spec](active::HandlerContext &c) {
        return runFilterHandler(c, spec);
    });

    std::vector<std::uint64_t> reply_sizes;
    ActiveLoop loop;
    loop.storage = cluster.storage().id();
    loop.switchNode = sw.id();
    loop.handlerId = 1;
    loop.fileBytes = file;
    loop.blockBytes = block;
    loop.outstanding = 2;
    cluster.sim().spawn(activeHostLoop(
        cluster.host(), loop,
        [&reply_sizes](host::Host &,
                       const net::Message &reply) -> sim::Task {
            reply_sizes.push_back(reply.bytes);
            co_return;
        }));
    cluster.sim().run();
    ASSERT_EQ(reply_sizes.size(), file / block);
    for (auto s : reply_sizes)
        EXPECT_EQ(s, block / 2);
}

TEST(FilterHandler, ZeroByteRepliesStillPaceTheLoop)
{
    // A filter that drops everything must still ack each block or
    // the host loop would deadlock.
    Cluster cluster;
    auto &sw = cluster.sw();
    FilterHandler spec;
    spec.fileBytes = 8 * 512;
    spec.blockBytes = 2 * 512;
    spec.processChunk = [](active::HandlerContext &ctx,
                           const active::StreamChunk &chunk)
        -> sim::ValueTask<std::uint32_t> {
        co_await ctx.awaitValid(chunk, 0, chunk.bytes);
        co_return 0;
    };
    sw.registerHandler(1, "drop", [spec](active::HandlerContext &c) {
        return runFilterHandler(c, spec);
    });

    int replies = 0;
    ActiveLoop loop;
    loop.storage = cluster.storage().id();
    loop.switchNode = sw.id();
    loop.handlerId = 1;
    loop.fileBytes = spec.fileBytes;
    loop.blockBytes = spec.blockBytes;
    loop.outstanding = 1;
    cluster.sim().spawn(activeHostLoop(
        cluster.host(), loop,
        [&replies](host::Host &, const net::Message &m) -> sim::Task {
            EXPECT_EQ(m.bytes, 0u);
            ++replies;
            co_return;
        }));
    cluster.sim().run();
    EXPECT_EQ(replies, 4);
    // All data buffers returned.
    EXPECT_EQ(sw.buffers().freeCount(), 16u);
}

TEST(ActiveHostLoop, OutstandingLimitsInflightBlocks)
{
    // With outstanding = 1, the storage node never sees request k+1
    // before the handler acked block k: requests are spread out in
    // time. With 2 the stream is denser. Compare completion times.
    auto run = [](unsigned outstanding) {
        Cluster cluster;
        auto &sw = cluster.sw();
        FilterHandler spec;
        spec.fileBytes = 64 * 1024;
        spec.blockBytes = 8 * 1024;
        spec.processChunk = [](active::HandlerContext &ctx,
                               const active::StreamChunk &chunk)
            -> sim::ValueTask<std::uint32_t> {
            co_await ctx.awaitValid(chunk, 0, chunk.bytes);
            co_await ctx.compute(2000); // 4 us per 512 B chunk
            co_return 0;
        };
        sw.registerHandler(1, "work", [spec](active::HandlerContext &c) {
            return runFilterHandler(c, spec);
        });
        ActiveLoop loop;
        loop.storage = cluster.storage().id();
        loop.switchNode = sw.id();
        loop.handlerId = 1;
        loop.fileBytes = spec.fileBytes;
        loop.blockBytes = spec.blockBytes;
        loop.outstanding = outstanding;
        cluster.sim().spawn(activeHostLoop(
            cluster.host(), loop,
            [](host::Host &, const net::Message &) -> sim::Task {
                co_return;
            }));
        return cluster.sim().run();
    };
    EXPECT_GT(run(1), run(2));
}

} // namespace
