/**
 * @file
 * Integration tests: switches, routing, and end-to-end fabric
 * latency/bandwidth.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>
#include <vector>

#include "net/Fabric.hh"
#include "sim/Random.hh"
#include "sim/Simulation.hh"

namespace {

using namespace san;
using namespace san::sim;
using namespace san::net;

struct TwoHostFixture {
    Simulation s;
    Fabric fabric{s};
    Switch *sw;
    Adapter *a;
    Adapter *b;

    TwoHostFixture()
    {
        sw = &fabric.addSwitch(SwitchParams{8});
        a = &fabric.addAdapter("hostA");
        b = &fabric.addAdapter("hostB");
        fabric.connect(*sw, 0, *a);
        fabric.connect(*sw, 1, *b);
        fabric.computeRoutes();
    }
};

TEST(Fabric, SingleSwitchDeliversMessage)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    Message got{};
    bool received = false;
    f.s.spawn([](Adapter &rx, Message &out, bool &flag) -> Task {
        out = co_await rx.recvQueue().pop();
        flag = true;
    }(*f.b, got, received));
    f.s.run();
    ASSERT_TRUE(received);
    EXPECT_EQ(got.src, f.a->id());
    EXPECT_EQ(got.bytes, 512u);
}

TEST(Fabric, OneHopLatencyIncludesRoutingAndSerialization)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    Message got{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, got));
    f.s.run();
    // Virtual cut-through: header time (16 ns) + 100 ns routing +
    // one full serialization (528 ns) + two propagation delays.
    EXPECT_EQ(got.completedAt, ns(16 + 100 + 528 + 10));
}

TEST(Fabric, BidirectionalTrafficDoesNotInterfere)
{
    TwoHostFixture f;
    f.a->sendMessage(f.b->id(), 512);
    f.b->sendMessage(f.a->id(), 512);
    Message at_b{}, at_a{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, at_b));
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.a, at_a));
    f.s.run();
    // Full duplex: both complete at the same time.
    EXPECT_EQ(at_b.completedAt, at_a.completedAt);
}

TEST(Fabric, LargeMessageStreamsAtLinkBandwidth)
{
    TwoHostFixture f;
    const std::uint64_t bytes = 1 * MiB;
    f.a->sendMessage(f.b->id(), bytes);
    Message got{};
    f.s.spawn([](Adapter &rx, Message &out) -> Task {
        out = co_await rx.recvQueue().pop();
    }(*f.b, got));
    f.s.run();
    // 2048 packets x 528 wire bytes at 1 GB/s ~= 1.08 ms; pipelined
    // across the two hops.
    const double seconds = toSeconds(got.completedAt);
    const double ideal = 2048 * 528 / 1e9;
    EXPECT_GE(seconds, ideal);
    EXPECT_LE(seconds, ideal * 1.05);
}

TEST(Fabric, MultiSwitchPathRoutes)
{
    Simulation s;
    Fabric fabric(s);
    auto &s0 = fabric.addSwitch(SwitchParams{4});
    auto &s1 = fabric.addSwitch(SwitchParams{4});
    auto &s2 = fabric.addSwitch(SwitchParams{4});
    auto &src = fabric.addAdapter("src");
    auto &dst = fabric.addAdapter("dst");
    fabric.connect(s0, 0, src);
    fabric.connect(s2, 0, dst);
    fabric.connectSwitches(s0, 1, s1, 1);
    fabric.connectSwitches(s1, 2, s2, 2);
    fabric.computeRoutes();

    src.sendMessage(dst.id(), 256);
    Message got{};
    bool ok = false;
    s.spawn([](Adapter &rx, Message &out, bool &flag) -> Task {
        out = co_await rx.recvQueue().pop();
        flag = true;
    }(dst, got, ok));
    s.run();
    ASSERT_TRUE(ok);
    EXPECT_EQ(s0.packetsRouted(), 1u);
    EXPECT_EQ(s1.packetsRouted(), 1u);
    EXPECT_EQ(s2.packetsRouted(), 1u);
}

TEST(Fabric, RoutesToSwitchNodeReachDeliverLocal)
{
    Simulation s;
    Fabric fabric(s);
    auto &s0 = fabric.addSwitch(SwitchParams{4});
    auto &s1 = fabric.addSwitch(SwitchParams{4});
    auto &src = fabric.addAdapter("src");
    fabric.connect(s0, 0, src);
    fabric.connectSwitches(s0, 1, s1, 1);
    fabric.computeRoutes();

    // Address the remote switch itself (an active message would do
    // this); the base switch counts it as local.
    src.sendMessage(s1.id(), 64);
    s.run();
    EXPECT_EQ(s1.packetsLocal(), 1u);
    EXPECT_EQ(s0.packetsRouted(), 1u);
}

TEST(Fabric, ByteConservationAcrossFabric)
{
    // Property: total payload bytes received == sent across many
    // random messages between 4 hosts on one switch.
    Simulation s;
    Fabric fabric(s);
    auto &sw = fabric.addSwitch(SwitchParams{8});
    std::vector<Adapter *> hosts;
    for (int i = 0; i < 4; ++i) {
        auto &h = fabric.addAdapter("h" + std::to_string(i));
        fabric.connect(sw, static_cast<unsigned>(i), h);
        hosts.push_back(&h);
    }
    fabric.computeRoutes();

    std::uint64_t sent = 0;
    Random rng(7);
    for (int m = 0; m < 50; ++m) {
        const int from = static_cast<int>(rng.below(4));
        int to = static_cast<int>(rng.below(4));
        if (to == from)
            to = (to + 1) % 4;
        const std::uint64_t bytes = rng.between(1, 4096);
        sent += bytes;
        hosts[from]->sendMessage(hosts[to]->id(), bytes);
    }
    s.run();
    std::uint64_t received = 0;
    for (auto *h : hosts)
        received += h->bytesReceived();
    EXPECT_EQ(received, sent);
}

TEST(Switch, AttachPortRejectsOutOfRangeAndRewiring)
{
    Simulation s;
    Switch sw(s, "sw", 1, SwitchParams{4});
    Link out(s, "out", LinkParams{});
    Link in(s, "in", LinkParams{});
    // Beyond params().ports: no such port exists.
    EXPECT_THROW(sw.attachPort(4, out, in), std::out_of_range);
    sw.attachPort(0, out, in);
    // Silent re-wiring would leave the first links' sinks dangling.
    Link out2(s, "out2", LinkParams{});
    Link in2(s, "in2", LinkParams{});
    EXPECT_THROW(sw.attachPort(0, out2, in2), std::logic_error);
    // The original wiring survives the failed attempts.
    EXPECT_EQ(sw.outLink(0), &out);
    EXPECT_EQ(sw.inLink(0), &in);
}

TEST(Switch, SetRouteRejectsOutOfRangePort)
{
    Simulation s;
    Switch sw(s, "sw", 1, SwitchParams{4});
    EXPECT_THROW(sw.setRoute(99, 4), std::out_of_range);
    EXPECT_FALSE(sw.hasRoute(99));
    sw.setRoute(99, 3);
    EXPECT_EQ(sw.route(99), 3u);
}

TEST(Switch, RouteTableHandlesThousandsOfEntries)
{
    // The route table must stay correct (and O(1) per lookup) at
    // fabric scale: 4096 destinations with sparse, non-contiguous
    // NodeIds on an 8-port switch.
    Simulation s;
    Switch sw(s, "sw", 1, SwitchParams{8});
    for (NodeId i = 0; i < 4096; ++i)
        sw.setRoute(i * 7 + 3, static_cast<unsigned>(i % 8));
    EXPECT_EQ(sw.routeCount(), 4096u);
    for (NodeId i = 0; i < 4096; ++i) {
        ASSERT_TRUE(sw.hasRoute(i * 7 + 3));
        EXPECT_EQ(sw.route(i * 7 + 3), i % 8);
    }
    // Absent keys between the installed ones never false-positive.
    for (NodeId i = 0; i < 4096; ++i)
        EXPECT_FALSE(sw.hasRoute(i * 7 + 4));
    // Overwrite is an update, not a duplicate insert.
    for (NodeId i = 0; i < 4096; i += 2)
        sw.setRoute(i * 7 + 3, static_cast<unsigned>((i + 1) % 8));
    EXPECT_EQ(sw.routeCount(), 4096u);
    for (NodeId i = 0; i < 4096; ++i)
        EXPECT_EQ(sw.route(i * 7 + 3),
                  i % 2 == 0 ? (i + 1) % 8 : i % 8);
}

/** A diamond: two equal-cost two-hop paths between sw0 and sw3, one
 * host on each end. The smallest topology where tie-breaking
 * matters. NodeIds: sw0=0, sw1=1, sw2=2, sw3=3, hostA=4, hostD=5. */
struct DiamondFixture {
    Simulation s;
    Fabric fabric{s};
    Switch *sw0, *sw1, *sw2, *sw3;
    Adapter *hostA, *hostD;

    DiamondFixture()
    {
        sw0 = &fabric.addSwitch(SwitchParams{4});
        sw1 = &fabric.addSwitch(SwitchParams{4});
        sw2 = &fabric.addSwitch(SwitchParams{4});
        sw3 = &fabric.addSwitch(SwitchParams{4});
        fabric.connectSwitches(*sw0, 2, *sw1, 0);
        fabric.connectSwitches(*sw0, 3, *sw2, 0);
        fabric.connectSwitches(*sw1, 1, *sw3, 2);
        fabric.connectSwitches(*sw2, 1, *sw3, 3);
        hostA = &fabric.addAdapter("hostA");
        hostD = &fabric.addAdapter("hostD");
        fabric.connect(*sw0, 0, *hostA);
        fabric.connect(*sw3, 0, *hostD);
    }
};

TEST(Fabric, TieBreakPicksLowestPortAmongEqualCostPaths)
{
    DiamondFixture f;
    f.fabric.computeRoutes();
    // sw0 -> hostD: candidates are ports 2 (via sw1) and 3 (via
    // sw2); lowest wins. Same for the reverse direction on sw3.
    EXPECT_EQ(f.sw0->route(f.hostD->id()), 2u);
    EXPECT_EQ(f.sw3->route(f.hostA->id()), 2u);
    // And it is a pure function of the topology: recomputing picks
    // the same ports.
    f.fabric.computeRoutes();
    EXPECT_EQ(f.sw0->route(f.hostD->id()), 2u);
    EXPECT_EQ(f.sw3->route(f.hostA->id()), 2u);
}

TEST(Fabric, DestinationModSpreadsEqualCostPaths)
{
    DiamondFixture f;
    f.fabric.computeRoutes(RouteSpread::DestinationMod);
    // Candidates ascending are {2, 3}; destination id mod 2 indexes
    // in. hostD id 5 -> port 3, hostA id 4 -> port 2.
    EXPECT_EQ(f.sw0->route(f.hostD->id()), 3u);
    EXPECT_EQ(f.sw3->route(f.hostA->id()), 2u);
    // Both choices still deliver.
    f.hostA->sendMessage(f.hostD->id(), 100);
    f.hostD->sendMessage(f.hostA->id(), 100);
    f.s.run();
    EXPECT_EQ(f.hostA->messagesReceived(), 1u);
    EXPECT_EQ(f.hostD->messagesReceived(), 1u);
}

TEST(Fabric, ComputeRoutesTwiceIsIdempotent)
{
    DiamondFixture f;
    f.fabric.computeRoutes();
    std::vector<std::pair<NodeId, unsigned>> before;
    const std::vector<NodeId> dsts = {f.sw0->id(), f.sw1->id(),
                                      f.sw2->id(), f.sw3->id(),
                                      f.hostA->id(), f.hostD->id()};
    const auto snapshot = [&] {
        std::vector<std::pair<NodeId, unsigned>> out;
        for (const auto &sw : f.fabric.switches())
            for (const NodeId d : dsts)
                if (sw->hasRoute(d))
                    out.emplace_back(d, sw->route(d));
        return out;
    };
    const auto first = snapshot();
    f.fabric.computeRoutes();
    EXPECT_EQ(snapshot(), first);
    EXPECT_EQ(f.sw0->routeCount(), 5u); // everyone but itself
}

TEST(Fabric, DisconnectedSwitchLeavesNoRoute)
{
    // Two islands: the diamond, plus an isolated switch with its own
    // host. computeRoutes must terminate cleanly and simply not
    // install routes across the partition.
    DiamondFixture f;
    Switch &island = f.fabric.addSwitch(SwitchParams{4});
    Adapter &hostI = f.fabric.addAdapter("hostI");
    f.fabric.connect(island, 0, hostI);
    f.fabric.computeRoutes();

    // No path between the islands, in either direction.
    EXPECT_FALSE(f.sw0->hasRoute(island.id()));
    EXPECT_FALSE(f.sw0->hasRoute(hostI.id()));
    EXPECT_FALSE(island.hasRoute(f.hostA->id()));
    EXPECT_FALSE(island.hasRoute(f.sw0->id()));
    // Each island still routes internally.
    EXPECT_TRUE(island.hasRoute(hostI.id()));
    EXPECT_TRUE(f.sw0->hasRoute(f.hostD->id()));
    f.hostA->sendMessage(f.hostD->id(), 100);
    f.s.run();
    EXPECT_EQ(f.hostD->messagesReceived(), 1u);
}

TEST(Fabric, TreeTopologyAllPairsReachable)
{
    // Star of switches: one root, three leaves, two hosts per leaf.
    Simulation s;
    Fabric fabric(s);
    auto &root = fabric.addSwitch(SwitchParams{8});
    std::vector<Adapter *> hosts;
    for (int l = 0; l < 3; ++l) {
        auto &leaf = fabric.addSwitch(SwitchParams{8});
        fabric.connectSwitches(root, static_cast<unsigned>(l), leaf, 7);
        for (int h = 0; h < 2; ++h) {
            auto &host = fabric.addAdapter(
                "h" + std::to_string(l) + std::to_string(h));
            fabric.connect(leaf, static_cast<unsigned>(h), host);
            hosts.push_back(&host);
        }
    }
    fabric.computeRoutes();

    for (auto *from : hosts)
        for (auto *to : hosts)
            if (from != to)
                from->sendMessage(to->id(), 100);
    s.run();
    for (auto *h : hosts) {
        EXPECT_EQ(h->messagesReceived(), 5u) << h->name();
        EXPECT_EQ(h->bytesReceived(), 500u) << h->name();
    }
}

} // namespace
